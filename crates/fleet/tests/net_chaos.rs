//! Network chaos against the fleet's exactly-once guarantee.
//!
//! The wire between router and replicas drops connections, corrupts and
//! truncates frames, and duplicates others — composed with device faults
//! and a hard replica kill — and the accounting must still balance
//! (`offered == completed + shed + expired + failed`), no request id may
//! complete twice, and the outcome digest must be *identical* to a run
//! with a quiet wire: chaos may shake the transport, never the result.
//!
//! Fault placement is deliberate: the router side only drops and
//! duplicates (content-independent faults), the replica side only
//! corrupts and truncates (its frames carry no ephemeral addresses), so
//! two runs on different loopback ports stay bit-for-bit comparable.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::thread;

use unigpu_device::{DeviceFaultPlan, Platform, Vendor};
use unigpu_engine::{Engine, ServeConfig};
use unigpu_farm::{Framed, FRAMING_VERSION};
use unigpu_fleet::proto::{read_frame, write_frame};
use unigpu_fleet::{
    run_replica, FleetFrame, FleetReport, NetFaultPlan, RemoteReplica, ReplicaConfig,
    ReplicaLink, RoutePolicy, Router, RouterConfig,
};
use unigpu_models::full_zoo;

const MODEL: &str = "SqueezeNet1.0";

fn temp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("unigpu-net-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Compile `MODEL` for `platform` into `cache_dir`, so every replica
/// `Load` in the test proper is a warm start — keeping `warm_start` (part
/// of the digest) identical across runs.
fn prime_cache(platform: &Platform, cache_dir: &PathBuf) {
    let entry = full_zoo()
        .into_iter()
        .find(|e| e.name == MODEL)
        .expect("model in zoo");
    let graph = (entry.build)(platform.gpu.vendor == Vendor::Arm);
    let _ = Engine::builder()
        .platform(platform.clone())
        .cache_dir(cache_dir)
        .build()
        .compile(&graph);
}

fn base_serve() -> ServeConfig {
    ServeConfig::builder()
        .concurrency(1)
        .max_batch(4)
        .queue_cap(16)
        .deadline_ms(2000.0)
        .breaker_threshold(3)
        .breaker_cooldown_ms(200.0)
        .build()
        .expect("valid serve config")
}

fn faulty_serve() -> ServeConfig {
    ServeConfig::builder()
        .concurrency(1)
        .max_batch(4)
        .queue_cap(16)
        .deadline_ms(2000.0)
        .breaker_threshold(3)
        .breaker_cooldown_ms(200.0)
        .faults(DeviceFaultPlan::parse("kernel_fail_first=4"))
        .build()
        .expect("valid serve config")
}

struct ReplicaProc {
    addr: String,
    handle: thread::JoinHandle<std::io::Result<()>>,
}

fn spawn_replica(cfg: ReplicaConfig) -> ReplicaProc {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || run_replica(&listener, &cfg));
    ReplicaProc { addr, handle }
}

/// One full fleet run over TCP: three heterogeneous replicas — one with
/// device faults tripping its breaker, one hard-killed on its 6th submit
/// — with `replica_net` injected on every replica's side of the wire and
/// `router_net` on every router link.
fn fleet_run(caches: &[PathBuf; 3], replica_net: NetFaultPlan, router_net: NetFaultPlan) -> FleetReport {
    let specs: [(&str, Platform, ServeConfig, Option<usize>); 3] = [
        ("intel", Platform::deeplens(), base_serve(), None),
        ("mali", Platform::aisage(), faulty_serve(), None),
        ("nano", Platform::jetson_nano(), base_serve(), Some(6)),
    ];
    let procs: Vec<ReplicaProc> = specs
        .iter()
        .enumerate()
        .map(|(i, (name, platform, serve, die))| {
            spawn_replica(ReplicaConfig {
                name: (*name).into(),
                platform: platform.clone(),
                serve: serve.clone(),
                cache_dir: Some(caches[i].clone()),
                die_on_submit: *die,
                net_faults: replica_net,
                max_resumes: 64,
            })
        })
        .collect();

    let mut links: Vec<RemoteReplica> = procs
        .iter()
        .map(|p| RemoteReplica::connect_with(&p.addr, router_net).expect("connect"))
        .collect();
    for link in &mut links {
        let (warm, _) = link.load(MODEL).expect("load");
        assert!(warm, "primed caches must make every load a warm start");
    }

    let mut router = Router::new(
        // round-robin keeps the doomed nano in rotation (pow2 would starve
        // the slowest device), so its 6th submit — the kill — lands early
        // and at the same id in every run; burn shedding stays disabled so
        // nothing races the deterministic death
        RouterConfig {
            policy: RoutePolicy::RoundRobin,
            burn_shed_threshold: f64::INFINITY,
            ..RouterConfig::default()
        },
        links
            .into_iter()
            .map(|r| Box::new(r) as Box<dyn ReplicaLink>)
            .collect(),
    );
    for id in 0..60 {
        router.route(id, id as f64);
    }
    let report = router.finish();

    for (i, p) in procs.into_iter().enumerate() {
        let exit = p.handle.join().expect("replica thread");
        if i == 2 {
            assert!(exit.is_err(), "the killed replica must exit with its injected death");
        } else {
            exit.expect("surviving replica exits cleanly");
        }
    }
    report
}

fn assert_balanced(report: &FleetReport, offered: usize) {
    assert_eq!(report.offered, offered);
    assert_eq!(report.lost(), 0, "fleet lost requests: {report:?}");
    assert_eq!(
        report.duplicate_completions(),
        0,
        "a request id completed twice: {:?}",
        report.completed
    );
    let mut ids: Vec<usize> = report
        .completed
        .iter()
        .map(|&(id, _)| id)
        .chain(report.shed.iter().copied())
        .chain(report.expired.iter().copied())
        .chain(report.failed.iter().copied())
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..offered).collect::<Vec<_>>(), "each id exactly once");
}

#[test]
fn composed_wire_and_device_chaos_changes_nothing_but_the_transport_counters() {
    let caches = [temp_root("accept-0"), temp_root("accept-1"), temp_root("accept-2")];
    let platforms = [Platform::deeplens(), Platform::aisage(), Platform::jetson_nano()];
    for (cache, platform) in caches.iter().zip(&platforms) {
        prime_cache(platform, cache);
    }

    // content-independent faults on the router side, address-free frames
    // corrupted/truncated on the replica side (see module docs)
    let replica_net = NetFaultPlan::parse("corrupt_byte_nth:9/truncate_frame_nth:13");
    let router_net = NetFaultPlan::parse("drop_conn_nth:11/dup_frame_nth:7");

    let quiet = fleet_run(&caches, NetFaultPlan::default(), NetFaultPlan::default());
    let chaos_a = fleet_run(&caches, replica_net, router_net);
    let chaos_b = fleet_run(&caches, replica_net, router_net);

    for report in [&quiet, &chaos_a, &chaos_b] {
        assert_balanced(report, 60);
        assert_eq!(report.replica_deaths, 1, "exactly the injected kill");
        assert!(report.replicas[2].dead, "the nano stub is a corpse");
        assert!(report.rerouted > 0, "the killed backlog must re-route");
    }

    // the wire actually hurt, and the recovery machinery actually ran
    assert!(!quiet.net.any(), "a quiet wire leaves every net counter at zero");
    assert!(chaos_a.net.conns_dropped > 0, "net: {:?}", chaos_a.net);
    assert!(chaos_a.net.frames_duplicated > 0, "net: {:?}", chaos_a.net);
    assert!(chaos_a.net.checksum_errors > 0, "net: {:?}", chaos_a.net);
    assert!(chaos_a.net.reconnects > 0, "net: {:?}", chaos_a.net);
    assert!(chaos_a.net.resumes > 0, "net: {:?}", chaos_a.net);
    assert!(chaos_a.net.replayed_frames > 0, "net: {:?}", chaos_a.net);
    assert!(chaos_a.net.backoff_ms > 0, "net: {:?}", chaos_a.net);

    // the heart of the guarantee: wire chaos is invisible in outcomes —
    // the chaos digest equals the quiet digest, and two identical chaos
    // runs agree with each other
    assert_eq!(quiet.digest(), chaos_a.digest(), "chaos changed an outcome");
    assert_eq!(chaos_a.digest(), chaos_b.digest(), "chaos replay diverged");
    assert_eq!(quiet.decisions, chaos_a.decisions);
    assert_eq!(chaos_a.decisions, chaos_b.decisions);
    assert_eq!(chaos_a.net, chaos_b.net, "even the injected noise replays");

    for cache in caches {
        let _ = std::fs::remove_dir_all(&cache);
    }
}

#[test]
fn a_truncated_final_report_is_redelivered_on_resume() {
    let cache = temp_root("report-resend");
    prime_cache(&Platform::deeplens(), &cache);
    // replica outgoing frames: HelloAck(1) LoadAck(2) InferAck(3..=6)
    // Report(7) — the truncation lands exactly on the final report
    let proc = spawn_replica(ReplicaConfig {
        name: "r0".into(),
        platform: Platform::deeplens(),
        serve: base_serve(),
        cache_dir: Some(cache.clone()),
        die_on_submit: None,
        net_faults: NetFaultPlan::parse("truncate_frame_nth:7"),
        max_resumes: 4,
    });
    let mut link = RemoteReplica::connect_with(&proc.addr, NetFaultPlan::default()).unwrap();
    link.load(MODEL).expect("load");
    for id in 0..4 {
        let (admitted, _) = link.submit(id, id as f64).expect("submit");
        assert!(admitted);
    }
    let report = link.finish().expect("the report survives its truncation");
    assert_eq!(report.completed.len(), 4);
    let net = link.net_stats();
    assert!(net.reconnects >= 1, "net: {net:?}");
    assert!(net.resumes >= 1, "net: {net:?}");
    assert!(net.replayed_frames >= 1, "net: {net:?}");
    drop(link);
    proc.handle.join().expect("replica thread").expect("clean exit after redelivery");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn a_replayed_infer_id_is_answered_from_the_dedup_window_across_connections() {
    let cache = temp_root("dedup-resume");
    prime_cache(&Platform::deeplens(), &cache);
    let proc = spawn_replica(ReplicaConfig {
        name: "r0".into(),
        platform: Platform::deeplens(),
        serve: base_serve(),
        cache_dir: Some(cache.clone()),
        die_on_submit: None,
        net_faults: NetFaultPlan::default(),
        max_resumes: 2,
    });

    // hand-rolled router: first connection establishes the session and
    // submits id 0...
    let token = Some("manual-session".to_string());
    let mut conn = Framed::new(TcpStream::connect(&proc.addr).unwrap());
    conn.send(&FleetFrame::Hello { framing: Some(FRAMING_VERSION), session: token.clone() })
        .unwrap();
    match conn.recv::<FleetFrame>().unwrap() {
        FleetFrame::HelloAck { framing, resumed, .. } => {
            assert_eq!(framing, Some(FRAMING_VERSION));
            assert!(!resumed, "a first hello cannot resume");
        }
        other => panic!("expected HelloAck, got {other:?}"),
    }
    conn.upgrade();
    conn.send(&FleetFrame::Load { model: MODEL.into() }).unwrap();
    assert!(matches!(conn.recv::<FleetFrame>().unwrap(), FleetFrame::LoadAck { .. }));
    conn.send(&FleetFrame::Infer { id: 0, arrival_ms: 0.0 }).unwrap();
    let first_admitted = match conn.recv::<FleetFrame>().unwrap() {
        FleetFrame::InferAck { admitted, .. } => admitted,
        other => panic!("expected InferAck, got {other:?}"),
    };
    assert!(first_admitted);
    // ...then the connection dies mid-work
    drop(conn);

    // the resumed connection replays id 0 — the replica must answer from
    // its dedup window, not double-submit
    let mut conn = Framed::new(TcpStream::connect(&proc.addr).unwrap());
    conn.send(&FleetFrame::Hello { framing: Some(FRAMING_VERSION), session: token }).unwrap();
    match conn.recv::<FleetFrame>().unwrap() {
        FleetFrame::HelloAck { framing, resumed, .. } => {
            assert_eq!(framing, Some(FRAMING_VERSION));
            assert!(resumed, "the session token must be recognised");
        }
        other => panic!("expected HelloAck, got {other:?}"),
    }
    conn.upgrade();
    conn.send(&FleetFrame::Infer { id: 0, arrival_ms: 0.0 }).unwrap();
    match conn.recv::<FleetFrame>().unwrap() {
        FleetFrame::InferAck { admitted, .. } => assert!(admitted, "cached ack replayed"),
        other => panic!("expected InferAck, got {other:?}"),
    }
    conn.send(&FleetFrame::Infer { id: 1, arrival_ms: 5.0 }).unwrap();
    assert!(matches!(conn.recv::<FleetFrame>().unwrap(), FleetFrame::InferAck { .. }));
    conn.send(&FleetFrame::Finish).unwrap();
    match conn.recv::<FleetFrame>().unwrap() {
        FleetFrame::Report(report) => {
            assert_eq!(report.offered, 2, "id 0 was offered three times but submitted once");
            let mut ids: Vec<usize> = report.completed.iter().map(|&(id, _)| id).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1], "each id completes exactly once");
        }
        other => panic!("expected Report, got {other:?}"),
    }
    drop(conn);
    proc.handle.join().expect("replica thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn a_v1_peer_is_served_without_an_upgrade() {
    let cache = temp_root("v1-peer");
    prime_cache(&Platform::deeplens(), &cache);
    let proc = spawn_replica(ReplicaConfig {
        name: "r0".into(),
        platform: Platform::deeplens(),
        serve: base_serve(),
        cache_dir: Some(cache.clone()),
        die_on_submit: None,
        net_faults: NetFaultPlan::default(),
        max_resumes: 0,
    });

    // a legacy router: bare hello, plain length-prefixed frames throughout
    let mut conn = TcpStream::connect(&proc.addr).unwrap();
    write_frame(&mut conn, &FleetFrame::Hello { framing: None, session: None }).unwrap();
    match read_frame(&mut conn).unwrap() {
        FleetFrame::HelloAck { framing, resumed, .. } => {
            assert_eq!(framing, None, "a v1 peer must not be acked into v2");
            assert!(!resumed);
        }
        other => panic!("expected HelloAck, got {other:?}"),
    }
    write_frame(&mut conn, &FleetFrame::Load { model: MODEL.into() }).unwrap();
    assert!(matches!(read_frame(&mut conn).unwrap(), FleetFrame::LoadAck { .. }));
    write_frame(&mut conn, &FleetFrame::Infer { id: 0, arrival_ms: 0.0 }).unwrap();
    assert!(matches!(read_frame(&mut conn).unwrap(), FleetFrame::InferAck { .. }));
    write_frame(&mut conn, &FleetFrame::Finish).unwrap();
    match read_frame(&mut conn).unwrap() {
        FleetFrame::Report(report) => assert_eq!(report.completed.len(), 1),
        other => panic!("expected Report, got {other:?}"),
    }
    drop(conn);
    proc.handle.join().expect("replica thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&cache);
}
