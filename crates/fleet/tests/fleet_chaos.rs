//! Fleet chaos: replica kills, breaker trips, and burn-based shedding
//! against the fleet-wide accounting invariant.
//!
//! The fleet analog of the engine's fault-tolerance suite: a
//! heterogeneous pool (DeepLens + aiSage + Jetson Nano) takes an
//! overload-ish request stream while one replica's device faults trip its
//! circuit breaker and another replica is hard-killed mid-traffic. The
//! invariant under all of it: `offered == completed + shed + expired +
//! failed` fleet-wide, every id in exactly one bucket, and two identical
//! zero-noise runs replay bit for bit.

use std::net::TcpListener;
use std::path::PathBuf;
use std::thread;

use unigpu_device::{DeviceFaultPlan, Platform};
use unigpu_engine::ServeConfig;
use unigpu_fleet::{
    build_pool, warm_remote_pool, FleetReport, ReplicaConfig, ReplicaLink, ReplicaSpec,
    RemoteReplica, RoutePolicy, Router, RouterConfig,
};
use unigpu_models::full_zoo;

fn zoo_graph(name: &str) -> unigpu_graph::Graph {
    let entry = full_zoo()
        .into_iter()
        .find(|e| e.name == name)
        .expect("model in zoo");
    (entry.build)(false)
}

fn temp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("unigpu-fleet-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One zero-noise chaos run: aiSage's device fails its first launches
/// (tripping the breaker), the Nano replica is hard-killed on its 20th
/// submit, and arrivals outpace the pool.
fn chaos_run(tag: &str) -> FleetReport {
    let model = zoo_graph("SqueezeNet1.0");
    let base = ServeConfig::builder()
        .concurrency(1)
        .max_batch(4)
        .queue_cap(16)
        .deadline_ms(2000.0)
        .breaker_threshold(3)
        .breaker_cooldown_ms(200.0)
        .build()
        .expect("valid serve config");
    let faulty = ServeConfig::builder()
        .concurrency(1)
        .max_batch(4)
        .queue_cap(16)
        .deadline_ms(2000.0)
        .breaker_threshold(3)
        .breaker_cooldown_ms(200.0)
        .faults(DeviceFaultPlan::parse("kernel_fail_first=4"))
        .build()
        .expect("valid serve config");
    let specs = vec![
        ReplicaSpec::new("intel", Platform::deeplens(), base.clone()),
        ReplicaSpec::new("mali", Platform::aisage(), faulty),
        ReplicaSpec::new("nano", Platform::jetson_nano(), base).die_on_submit(24),
    ];
    let root = temp_root(tag);
    let pool = build_pool(&model, &specs, &root);
    let min_pred = pool
        .iter()
        .map(|r| r.predicted_ms())
        .fold(f64::INFINITY, f64::min);
    let interval = min_pred * 0.2; // far denser than the pool can drain
    let mut router = Router::new(
        // burn shedding stays unit-tested; the chaos plan disables it so
        // the deterministic kill always lands on its 24th submit
        RouterConfig {
            burn_shed_threshold: f64::INFINITY,
            ..RouterConfig::default()
        },
        pool.into_iter()
            .map(|r| Box::new(r) as Box<dyn ReplicaLink>)
            .collect(),
    );
    for id in 0..160 {
        router.route(id, id as f64 * interval);
    }
    let report = router.finish();
    let _ = std::fs::remove_dir_all(&root);
    report
}

#[test]
fn chaos_loses_nothing_and_replays_bit_for_bit() {
    let report = chaos_run("a");

    // the invariant: every offered request in exactly one bucket
    assert_eq!(report.offered, 160);
    assert_eq!(report.lost(), 0, "fleet lost requests: {report:?}");
    let mut ids: Vec<usize> = report
        .completed
        .iter()
        .map(|&(id, _)| id)
        .chain(report.shed.iter().copied())
        .chain(report.expired.iter().copied())
        .chain(report.failed.iter().copied())
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..160).collect::<Vec<_>>(), "each id exactly once");

    // the Nano kill was observed and its backlog failed over
    assert_eq!(report.replica_deaths, 1);
    assert!(report.replicas[2].dead, "nano report is a recovered corpse");
    assert!(report.rerouted > 0, "the killed backlog must re-route");

    // the faulted aiSage replica tripped its breaker...
    assert!(
        report.replicas[1].breaker_trips >= 1,
        "kernel_fail_first must trip the breaker: {:?}",
        report.replicas[1]
    );
    // ...and while the router saw it open, it admitted nothing before the
    // half-open probe instant
    for d in &report.decisions {
        if d.replica == 1 && d.breaker == 1.0 {
            let until = d
                .breaker_open_until_ms
                .expect("an open breaker always advertises its probe instant");
            assert!(
                d.arrival_ms >= until,
                "id {} admitted to an open replica at {} (< {})",
                d.id,
                d.arrival_ms,
                until
            );
        }
    }

    // zero-noise determinism: an identical run replays bit for bit
    let replay = chaos_run("b");
    assert_eq!(report.digest(), replay.digest());
    assert_eq!(report.decisions, replay.decisions);
}

/// The acceptance bet of the router design: on a skewed device pool,
/// power-of-two-choices weighted by predicted cost beats round-robin on
/// p99 latency, because round-robin keeps feeding the slowest device a
/// full third of the traffic.
#[test]
fn pow2_beats_round_robin_p99_on_a_skewed_pool() {
    let model = zoo_graph("SqueezeNet1.0");
    let serve = ServeConfig::builder()
        .concurrency(1)
        .max_batch(1)
        .build()
        .expect("valid serve config");

    let run = |policy: RoutePolicy, tag: &str| -> FleetReport {
        let specs = vec![
            ReplicaSpec::new("intel", Platform::deeplens(), serve.clone()),
            ReplicaSpec::new("mali", Platform::aisage(), serve.clone()),
            ReplicaSpec::new("nano", Platform::jetson_nano(), serve.clone()),
        ];
        let root = temp_root(tag);
        let pool = build_pool(&model, &specs, &root);
        // offer at 90% of aggregate capacity: sustainable if and only if
        // load lands in proportion to device speed
        let rate: f64 = pool.iter().map(|r| 1.0 / r.predicted_ms()).sum();
        let interval = 1.0 / (0.9 * rate);
        let mut router = Router::new(
            RouterConfig { policy, ..RouterConfig::default() },
            pool.into_iter()
                .map(|r| Box::new(r) as Box<dyn ReplicaLink>)
                .collect(),
        );
        for id in 0..300 {
            router.route(id, id as f64 * interval);
        }
        let report = router.finish();
        let _ = std::fs::remove_dir_all(&root);
        report
    };

    let pow2 = run(RoutePolicy::PowerOfTwo, "pow2");
    let rr = run(RoutePolicy::RoundRobin, "rr");
    assert_eq!(pow2.lost(), 0);
    assert_eq!(rr.lost(), 0);
    assert_eq!(pow2.completed.len(), 300);
    assert_eq!(rr.completed.len(), 300);
    assert!(
        pow2.p99_latency_ms() < rr.p99_latency_ms(),
        "pow2 p99 {} must beat round-robin p99 {}",
        pow2.p99_latency_ms(),
        rr.p99_latency_ms()
    );
}

/// The full TCP path: two replica processes (threads here) behind the
/// framing protocol, warm replication over `FetchArtifact`/`PushArtifact`
/// frames, traffic, clean shutdown — no request lost.
#[test]
fn tcp_loopback_fleet_serves_and_replicates_warm() {
    let serve = ServeConfig::builder()
        .concurrency(1)
        .max_batch(2)
        .build()
        .expect("valid serve config");
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    let mut roots = Vec::new();
    for i in 0..2 {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        addrs.push(listener.local_addr().expect("local addr").to_string());
        let root = temp_root(&format!("tcp-r{i}"));
        roots.push(root.clone());
        let cfg = ReplicaConfig {
            name: format!("r{i}"),
            platform: Platform::deeplens(),
            serve: serve.clone(),
            cache_dir: Some(root),
            die_on_submit: None,
            net_faults: Default::default(),
            max_resumes: 0,
        };
        handles.push(thread::spawn(move || {
            unigpu_fleet::run_replica(&listener, &cfg)
        }));
    }

    let mut replicas: Vec<RemoteReplica> = addrs
        .iter()
        .map(|a| RemoteReplica::connect(a).expect("connect"))
        .collect();
    assert_eq!(replicas[0].device(), "Intel HD Graphics 505");
    let warm = warm_remote_pool(&mut replicas, "SqueezeNet1.0").expect("warm pool");
    assert_eq!(warm, vec![false, true], "peer must ride the pushed artifact");

    let mut router = Router::new(
        RouterConfig::default(),
        replicas
            .into_iter()
            .map(|r| Box::new(r) as Box<dyn ReplicaLink>)
            .collect(),
    );
    for id in 0..24 {
        assert!(router.route(id, id as f64 * 2.0));
    }
    let report = router.finish();
    assert_eq!(report.lost(), 0);
    assert_eq!(report.completed.len(), 24);
    assert_eq!(report.offered, 24);
    assert!(report.replicas[1].warm_start);

    for h in handles {
        h.join().expect("replica thread").expect("replica exits cleanly");
    }
    for root in roots {
        let _ = std::fs::remove_dir_all(&root);
    }
}
