//! One fleet replica: a [`Server`] wrapping a [`CompiledModel`] for a
//! single simulated device, reachable either in-process
//! ([`LocalReplica`]) or over TCP ([`run_replica`], with
//! [`RemoteReplica`](crate::router::RemoteReplica) as the router-side
//! handle).
//!
//! A replica is deliberately dumb: it admits or sheds what it is offered,
//! answers every admission with a health snapshot (queue depth, inflight,
//! breaker phase, SLO burn), and reports its final accounting on
//! `Finish`. All placement intelligence lives in the router — replicas
//! never talk to each other, which is what makes a replica kill a local
//! event the router can reason about.

use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;

use unigpu_device::{Platform, Vendor};
use unigpu_engine::{
    Admission, CompiledModel, Engine, InferenceRequest, ServeConfig, ServeReport, Server,
};
use unigpu_farm::framing::{FrameError, Framed, FRAMING_VERSION};
use unigpu_farm::netchaos::{ChaosStream, NetFaultPlan, NetStats, SharedNetFaults};
use unigpu_models::full_zoo;
use unigpu_tensor::Shape;
use unigpu_telemetry::{tel_info, tel_warn};

use crate::proto::{FleetFrame, ReplicaHealth, ReplicaReport};
use crate::replication;

/// How many `Infer` acks a replica remembers for duplicate suppression.
/// Far deeper than any reconnect can replay (the router replays at most
/// the frames of one in-flight exchange), bounded so a long-lived replica
/// cannot grow without limit.
const DEDUP_WINDOW: usize = 1024;

/// Router-side handle to one replica, local or remote. The router owns a
/// boxed set of these and never cares which transport backs them.
pub trait ReplicaLink {
    fn name(&self) -> &str;
    /// Device name (`DeviceSpec::name`); the warm-replication key.
    fn device(&self) -> &str;
    /// Predicted single-sample latency on this replica's device, ms — the
    /// static weight in the router's cost-aware score.
    fn predicted_ms(&self) -> f64;
    /// True when this replica served from a replicated artifact instead
    /// of compiling.
    fn warm_start(&self) -> bool;
    /// Offer one request. `Ok((admitted, health))` covers replica-side
    /// shedding (`admitted == false`); `Err` means the replica is dead
    /// and will never answer again.
    fn submit(&mut self, id: usize, arrival_ms: f64) -> io::Result<(bool, ReplicaHealth)>;
    /// What a dead replica can hand back: the requests that were queued
    /// but unformed when it died, and its recovered final report. A
    /// remote crash returns `(None, None)` — nothing is recoverable, so
    /// the router re-routes everything unconfirmed.
    fn orphans(&mut self) -> (Option<Vec<(usize, f64)>>, Option<ReplicaReport>);
    /// Drain, shut down, and collect the final report.
    fn finish(&mut self) -> io::Result<ReplicaReport>;
    /// Transport-level counters for this link. In-process replicas have
    /// no wire, so the default is all zeros.
    fn net_stats(&self) -> NetStats {
        NetStats::default()
    }
}

/// Fold a finished [`ServeReport`] into the wire-sized summary.
pub(crate) fn summarize(
    name: &str,
    device: &str,
    warm: bool,
    dead: bool,
    report: &ServeReport,
) -> ReplicaReport {
    ReplicaReport {
        name: name.to_string(),
        device: device.to_string(),
        offered: report.offered,
        completed: report
            .results
            .iter()
            .map(|r| (r.id, r.latency_ms()))
            .collect(),
        shed: report.shed.iter().map(|r| r.id).collect(),
        expired: report.expired.iter().map(|r| r.id).collect(),
        failed: report.failed.iter().map(|r| r.id).collect(),
        batches: report.batches,
        makespan_ms: report.makespan_ms,
        degraded_batches: report.degraded_batches,
        breaker_trips: report.breaker_trips,
        breaker_recoveries: report.breaker_recoveries,
        digest: report.digest(),
        warm_start: warm,
        dead,
    }
}

/// An in-process replica: the building block of [`build_pool`] and the
/// state behind one [`run_replica`] connection.
///
/// [`build_pool`]: crate::pool::build_pool
pub struct LocalReplica {
    name: String,
    device: String,
    predicted_ms: f64,
    shape: Shape,
    warm: bool,
    compiled: CompiledModel,
    server: Option<Server>,
    /// Deterministic chaos: hard-kill on the Nth submit (1-based).
    die_on_submit: Option<usize>,
    submits: usize,
    orphaned: Option<Vec<(usize, f64)>>,
    recovered: Option<ReplicaReport>,
}

impl LocalReplica {
    pub fn new(name: impl Into<String>, compiled: &CompiledModel, cfg: &ServeConfig) -> Self {
        LocalReplica {
            name: name.into(),
            device: compiled.key().device.clone(),
            predicted_ms: compiled.estimate_batch_ms(1),
            shape: compiled.input_shape(),
            warm: compiled.from_cache(),
            compiled: compiled.clone(),
            server: Some(compiled.server(cfg)),
            die_on_submit: None,
            submits: 0,
            orphaned: None,
            recovered: None,
        }
    }

    /// Arm the deterministic kill switch: the `nth` submit (1-based)
    /// finds the replica dead. The kill is a hard one — [`Server::kill`]
    /// evicts the queue — but in-process the evicted backlog and the
    /// final report are recoverable, modeling a supervised crash.
    pub fn die_on_submit(mut self, nth: usize) -> Self {
        self.die_on_submit = Some(nth.max(1));
        self
    }

    /// The compiled model this replica serves (the replication donor).
    pub fn compiled(&self) -> &CompiledModel {
        &self.compiled
    }

    fn down() -> io::Error {
        io::Error::new(ErrorKind::BrokenPipe, "replica is down")
    }
}

impl ReplicaLink for LocalReplica {
    fn name(&self) -> &str {
        &self.name
    }

    fn device(&self) -> &str {
        &self.device
    }

    fn predicted_ms(&self) -> f64 {
        self.predicted_ms
    }

    fn warm_start(&self) -> bool {
        self.warm
    }

    fn submit(&mut self, id: usize, arrival_ms: f64) -> io::Result<(bool, ReplicaHealth)> {
        if self.server.is_none() {
            return Err(Self::down());
        }
        self.submits += 1;
        if self.die_on_submit.is_some_and(|nth| self.submits >= nth) {
            let server = self.server.take().expect("server checked above");
            let (evicted, report) = server.kill();
            self.orphaned = Some(evicted.iter().map(|r| (r.id, r.arrival_ms)).collect());
            self.recovered = Some(summarize(&self.name, &self.device, self.warm, true, &report));
            return Err(io::Error::new(ErrorKind::BrokenPipe, "injected replica death"));
        }
        let server = self.server.as_mut().expect("server checked above");
        let admitted = matches!(
            server.submit(InferenceRequest {
                id,
                shape: self.shape.clone(),
                arrival_ms,
                trace: None,
            }),
            Admission::Accepted
        );
        Ok((
            admitted,
            ReplicaHealth {
                queue_depth: server.queue_depth(),
                inflight: server.inflight(),
                breaker: server.breaker_gauge(),
                breaker_open_until_ms: server.breaker_open_until_ms(),
                burn_rate: server.slo_burn_rate(),
            },
        ))
    }

    fn orphans(&mut self) -> (Option<Vec<(usize, f64)>>, Option<ReplicaReport>) {
        (self.orphaned.take(), self.recovered.take())
    }

    fn finish(&mut self) -> io::Result<ReplicaReport> {
        if let Some(report) = self.recovered.take() {
            return Ok(report);
        }
        let server = self.server.take().ok_or_else(Self::down)?;
        let report = server.shutdown();
        Ok(summarize(&self.name, &self.device, self.warm, false, &report))
    }
}

/// Everything one replica process needs to serve.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    pub name: String,
    /// The platform this replica simulates ([`Platform::by_name`]).
    pub platform: Platform,
    pub serve: ServeConfig,
    /// Artifact-cache directory (the warm-replication landing zone).
    /// `None` uses the engine default (`$UNIGPU_DB_DIR/artifacts`) —
    /// fleet processes on one host should each get their own.
    pub cache_dir: Option<PathBuf>,
    /// Deterministic chaos for process-level replicas: hard-kill on the
    /// Nth submit (1-based), exactly like [`LocalReplica::die_on_submit`].
    /// The CI fleet gate uses this so the mid-traffic kill lands on the
    /// same request every run.
    pub die_on_submit: Option<usize>,
    /// Deterministic wire-fault injection (`UNIGPU_NET_FAULTS`) on this
    /// replica's side of every router connection.
    pub net_faults: NetFaultPlan,
    /// How many reconnects (session resumes) the replica accepts after
    /// its first connection before giving up on the router.
    pub max_resumes: usize,
}

/// Serve one router *session* on `listener`, then return. The replica
/// protocol is single-tenant by design: one router drives one replica —
/// but a session may span several TCP connections: when a connection
/// drops mid-work the replica keeps its state (loaded model, dedup
/// window, cached final report) and waits for the router to re-dial with
/// its session token, up to `max_resumes` times. The process exits when
/// the final report is delivered (or the router hangs up with nothing
/// outstanding).
pub fn run_replica(listener: &TcpListener, cfg: &ReplicaConfig) -> io::Result<()> {
    let net = SharedNetFaults::new(cfg.net_faults);
    let mut session = ReplicaSession::default();
    let mut conns = 0usize;
    loop {
        let (stream, _peer) = listener.accept()?;
        let _ = stream.set_nodelay(true);
        conns += 1;
        let mut framed = Framed::new(ChaosStream::new(stream, net.clone()));
        match serve_session(&mut framed, cfg, &mut session)? {
            SessionEnd::Exit => return Ok(()),
            SessionEnd::Dropped => {
                // resumes used so far = conns - 1; the next accept spends
                // one more, so stop when the budget is already gone
                if conns > cfg.max_resumes {
                    return Err(io::Error::new(
                        ErrorKind::ConnectionAborted,
                        format!("resume budget exhausted after {conns} connection(s)"),
                    ));
                }
                tel_info!(
                    "fleet::replica",
                    "{}: connection dropped mid-session; awaiting resume ({} of {} used)",
                    cfg.name,
                    conns - 1,
                    cfg.max_resumes
                );
            }
        }
    }
}

fn load_model(cfg: &ReplicaConfig, model: &str) -> Result<LocalReplica, String> {
    let entry = full_zoo()
        .into_iter()
        .find(|e| e.name == model)
        .ok_or_else(|| format!("unknown model '{model}'"))?;
    let graph = (entry.build)(cfg.platform.gpu.vendor == Vendor::Arm);
    let mut builder = Engine::builder().platform(cfg.platform.clone());
    if let Some(dir) = &cfg.cache_dir {
        builder = builder.cache_dir(dir);
    }
    let compiled = builder.build().compile(&graph);
    let mut replica = LocalReplica::new(cfg.name.clone(), &compiled, &cfg.serve);
    if let Some(nth) = cfg.die_on_submit {
        replica = replica.die_on_submit(nth);
    }
    Ok(replica)
}

/// How one connection of a replica session ended.
enum SessionEnd {
    /// The session is complete (final report delivered, or the router
    /// hung up with nothing outstanding): the replica process is done.
    Exit,
    /// The connection died mid-session: keep state and await a resume.
    Dropped,
}

/// Replica-side state that outlives one TCP connection: the loaded
/// server, the session token, the bounded `Infer`-ack dedup window, and
/// the cached final reply. This is what makes the protocol effectively
/// exactly-once — a router replaying frames after a reconnect gets the
/// cached answers instead of double-submitting work.
#[derive(Default)]
struct ReplicaSession {
    replica: Option<LocalReplica>,
    token: Option<String>,
    /// Cached `(admitted, health)` per request id, insertion-ordered for
    /// bounded eviction.
    acks: HashMap<usize, (bool, ReplicaHealth)>,
    ack_order: VecDeque<usize>,
    dedup_hits: u64,
    /// The `Finish` reply, computed once and re-sent verbatim for every
    /// duplicate `Finish` (a report lost to the wire is re-deliverable).
    final_reply: Option<FleetFrame>,
    /// True once the final reply left this side intact at least once.
    final_sent: bool,
}

impl ReplicaSession {
    fn cache_ack(&mut self, id: usize, admitted: bool, health: ReplicaHealth) {
        if self.acks.insert(id, (admitted, health)).is_none() {
            self.ack_order.push_back(id);
            if self.ack_order.len() > DEDUP_WINDOW {
                if let Some(old) = self.ack_order.pop_front() {
                    self.acks.remove(&old);
                }
            }
        }
    }
}

/// The replica side of the fleet protocol: a strict request/response
/// loop over one stream. Compatibility wrapper over one session
/// connection — returns `Ok(())` on `Finish` or any router hangup;
/// protocol errors answer [`FleetFrame::Error`] and surface the
/// underlying error to the caller.
pub fn serve_conn<S: Read + Write>(stream: &mut S, cfg: &ReplicaConfig) -> io::Result<()> {
    let mut session = ReplicaSession::default();
    let mut framed = Framed::new(stream);
    serve_session(&mut framed, cfg, &mut session).map(|_| ())
}

/// Serve one connection of a (possibly multi-connection) session.
fn serve_session<S: Read + Write>(
    framed: &mut Framed<S>,
    cfg: &ReplicaConfig,
    sess: &mut ReplicaSession,
) -> io::Result<SessionEnd> {
    loop {
        let frame = match framed.recv::<FleetFrame>() {
            Ok(f) => f,
            Err(FrameError::Io(e)) => {
                // A hangup after the final report (or before any work) is
                // the clean end of the session; mid-work it is a drop the
                // router will resume from.
                let never_started = sess.replica.is_none() && sess.final_reply.is_none();
                return if sess.final_sent || never_started {
                    Ok(SessionEnd::Exit)
                } else {
                    tel_warn!("fleet::replica", "{}: connection lost mid-work: {e}", cfg.name);
                    Ok(SessionEnd::Dropped)
                };
            }
            Err(
                e @ (FrameError::ChecksumMismatch { .. }
                | FrameError::SequenceGap { .. }
                | FrameError::Malformed(_)),
            ) => {
                // Wire damage, not router insanity — a corrupted v1
                // handshake frame parses as garbage rather than failing
                // its (nonexistent) checksum: tell the router (best
                // effort) and let it reconnect-and-resume.
                tel_warn!("fleet::replica", "{}: {e}; dropping connection for resume", cfg.name);
                let _ = framed.send(&FleetFrame::Error { message: e.to_string(), fatal: false });
                return Ok(SessionEnd::Dropped);
            }
            Err(e) => {
                let _ = framed.send(&FleetFrame::Error { message: e.to_string(), fatal: true });
                return Err(io::Error::from(e));
            }
        };
        match frame {
            FleetFrame::Hello { framing, session } => {
                let resumed = sess.token.is_some() && sess.token == session;
                if sess.token.is_none() {
                    sess.token = session;
                }
                let accept =
                    framing.filter(|&v| v >= FRAMING_VERSION).map(|_| FRAMING_VERSION);
                let ack = FleetFrame::HelloAck {
                    name: cfg.name.clone(),
                    device: cfg.platform.gpu.name.clone(),
                    framing: accept,
                    resumed,
                };
                if framed.send(&ack).is_err() {
                    return Ok(SessionEnd::Dropped);
                }
                if accept.is_some() {
                    // Both peers switch codecs right after the ack.
                    framed.upgrade();
                }
                if resumed {
                    tel_info!("fleet::replica", "{}: session resumed by router", cfg.name);
                }
            }
            FleetFrame::PushArtifact { jsonl } => {
                let dir = cfg
                    .cache_dir
                    .clone()
                    .unwrap_or_else(unigpu_engine::default_artifact_dir);
                let stored = replication::store_jsonl_in_dir(&dir, &jsonl);
                if framed.send(&FleetFrame::PushAck { stored }).is_err() {
                    return Ok(SessionEnd::Dropped);
                }
            }
            FleetFrame::Load { model } => {
                let reply = if sess.replica.is_some() {
                    // A duplicate Load after a resume: the model is already
                    // up; answer from the live server instead of rebuilding.
                    let r = sess.replica.as_ref().expect("checked above");
                    FleetFrame::LoadAck { warm: r.warm_start(), predicted_ms: r.predicted_ms() }
                } else {
                    match load_model(cfg, &model) {
                        Ok(loaded) => {
                            let ack = FleetFrame::LoadAck {
                                warm: loaded.warm_start(),
                                predicted_ms: loaded.predicted_ms(),
                            };
                            sess.replica = Some(loaded);
                            ack
                        }
                        Err(message) => FleetFrame::Error { message, fatal: true },
                    }
                };
                if framed.send(&reply).is_err() {
                    return Ok(SessionEnd::Dropped);
                }
            }
            FleetFrame::FetchArtifact => {
                let reply = match &sess.replica {
                    Some(r) => {
                        let jsonl = replication::artifact_of(r.compiled()).to_jsonl();
                        FleetFrame::ArtifactBlob { jsonl }
                    }
                    None => {
                        FleetFrame::Error { message: "no model loaded".into(), fatal: true }
                    }
                };
                if framed.send(&reply).is_err() {
                    return Ok(SessionEnd::Dropped);
                }
            }
            FleetFrame::Infer { id, arrival_ms } => {
                // Idempotency: a request id seen before is answered from
                // the dedup window without touching the server, so a
                // router replay cannot double-submit work.
                if let Some(&(admitted, health)) = sess.acks.get(&id) {
                    sess.dedup_hits += 1;
                    if framed.send(&FleetFrame::InferAck { admitted, health }).is_err() {
                        return Ok(SessionEnd::Dropped);
                    }
                    continue;
                }
                match sess.replica.as_mut() {
                    Some(r) => match r.submit(id, arrival_ms) {
                        Ok((admitted, health)) => {
                            sess.cache_ack(id, admitted, health);
                            if framed.send(&FleetFrame::InferAck { admitted, health }).is_err()
                            {
                                return Ok(SessionEnd::Dropped);
                            }
                        }
                        Err(e) => {
                            // Injected death or a wedged server: fatal by
                            // definition — the router must not resume.
                            let _ = framed.send(&FleetFrame::Error {
                                message: e.to_string(),
                                fatal: true,
                            });
                            return Err(e);
                        }
                    },
                    None => {
                        let reply =
                            FleetFrame::Error { message: "no model loaded".into(), fatal: true };
                        if framed.send(&reply).is_err() {
                            return Ok(SessionEnd::Dropped);
                        }
                    }
                }
            }
            FleetFrame::Finish => {
                if sess.final_reply.is_none() {
                    let reply = match sess.replica.take() {
                        Some(mut r) => match r.finish() {
                            Ok(report) => FleetFrame::Report(Box::new(report)),
                            Err(e) => {
                                FleetFrame::Error { message: e.to_string(), fatal: true }
                            }
                        },
                        None => {
                            FleetFrame::Error { message: "no model loaded".into(), fatal: true }
                        }
                    };
                    sess.final_reply = Some(reply);
                }
                if sess.dedup_hits > 0 {
                    tel_info!(
                        "fleet::replica",
                        "{}: suppressed {} duplicate infer(s) this session",
                        cfg.name,
                        sess.dedup_hits
                    );
                }
                let reply = sess.final_reply.clone().expect("just cached");
                match framed.send(&reply) {
                    Ok(()) => {
                        // Delivered from this side; the router closing the
                        // connection is now a clean exit. A corrupted
                        // report instead comes back as a resumed Finish,
                        // answered from the cache above.
                        sess.final_sent = true;
                    }
                    Err(_) => return Ok(SessionEnd::Dropped),
                }
            }
            // a replica only ever *answers*; receiving a reply frame means
            // the peer is confused — say so and hang up
            other => {
                let message = format!("unexpected frame from router: {other:?}");
                let _ =
                    framed.send(&FleetFrame::Error { message: message.clone(), fatal: true });
                return Err(io::Error::new(ErrorKind::InvalidData, message));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{read_frame, write_frame};
    use std::time::Duration;

    fn compiled_deeplens() -> CompiledModel {
        let entry = full_zoo()
            .into_iter()
            .find(|e| e.name == "MobileNet1.0")
            .expect("zoo has MobileNet1.0");
        let graph = (entry.build)(false);
        Engine::builder()
            .platform(Platform::deeplens())
            .persist(false)
            .build()
            .compile(&graph)
    }

    fn serve_cfg() -> ServeConfig {
        ServeConfig::builder()
            .concurrency(1)
            .max_batch(2)
            .build()
            .expect("valid serve config")
    }

    #[test]
    fn local_replica_admits_and_reports() {
        let compiled = compiled_deeplens();
        let mut r = LocalReplica::new("r0", &compiled, &serve_cfg());
        assert_eq!(r.device(), "Intel HD Graphics 505");
        assert!(r.predicted_ms() > 0.0);
        for id in 0..4 {
            let (admitted, health) = r.submit(id, id as f64 * 2.0).unwrap();
            assert!(admitted);
            assert_eq!(health.breaker, 0.0);
        }
        let report = r.finish().unwrap();
        assert_eq!(report.offered, 4);
        assert_eq!(report.completed.len(), 4);
        assert!(!report.dead);
        // a finished replica is dead to further traffic
        assert!(r.submit(99, 1000.0).is_err());
    }

    #[test]
    fn killed_replica_hands_back_its_backlog_and_report() {
        let compiled = compiled_deeplens();
        // concurrency 1 + a long batch window keep the queue populated
        let cfg = ServeConfig::builder()
            .concurrency(1)
            .max_batch(4)
            .batch_window(Duration::from_millis(50))
            .build()
            .expect("valid serve config");
        let mut r = LocalReplica::new("r0", &compiled, &cfg).die_on_submit(4);
        for id in 0..3 {
            assert!(r.submit(id, 0.1).unwrap().0);
        }
        let err = r.submit(3, 0.2).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::BrokenPipe);
        let (orphans, report) = r.orphans();
        let orphans = orphans.expect("in-process kill recovers the backlog");
        let report = report.expect("in-process kill recovers the report");
        assert!(report.dead);
        // every admitted id is either in the recovered report or orphaned
        let mut seen: Vec<usize> = report
            .completed
            .iter()
            .map(|&(id, _)| id)
            .chain(report.expired.iter().copied())
            .chain(report.failed.iter().copied())
            .chain(orphans.iter().map(|&(id, _)| id))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(report.offered + orphans.len(), 3);
    }

    #[test]
    fn serve_conn_speaks_the_protocol_end_to_end() {
        use std::io::Cursor;

        let cache_dir = std::env::temp_dir().join(format!(
            "unigpu-fleet-serve-conn-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let cfg = ReplicaConfig {
            name: "r0".into(),
            platform: Platform::deeplens(),
            serve: serve_cfg(),
            cache_dir: Some(cache_dir.clone()),
            die_on_submit: None,
            net_faults: NetFaultPlan::default(),
            max_resumes: 0,
        };
        // script the router side of the conversation into a buffer — a v1
        // router: no framing negotiation, no session token
        let mut inbox = Vec::new();
        write_frame(&mut inbox, &FleetFrame::Hello { framing: None, session: None }).unwrap();
        write_frame(&mut inbox, &FleetFrame::Load { model: "MobileNet1.0".into() }).unwrap();
        write_frame(&mut inbox, &FleetFrame::Infer { id: 0, arrival_ms: 0.0 }).unwrap();
        write_frame(&mut inbox, &FleetFrame::Infer { id: 1, arrival_ms: 1.0 }).unwrap();
        write_frame(&mut inbox, &FleetFrame::Finish).unwrap();

        struct Duplex {
            rx: Cursor<Vec<u8>>,
            tx: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.rx.read(buf)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.tx.write(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut wire = Duplex { rx: Cursor::new(inbox), tx: Vec::new() };
        serve_conn(&mut wire, &cfg).unwrap();

        let mut replies = Cursor::new(wire.tx);
        match read_frame(&mut replies).unwrap() {
            FleetFrame::HelloAck { name, device, framing, resumed } => {
                assert_eq!(name, "r0");
                assert_eq!(device, "Intel HD Graphics 505");
                assert_eq!(framing, None, "a v1 hello must not negotiate v2");
                assert!(!resumed);
            }
            other => panic!("expected HelloAck, got {other:?}"),
        }
        match read_frame(&mut replies).unwrap() {
            FleetFrame::LoadAck { predicted_ms, .. } => assert!(predicted_ms > 0.0),
            other => panic!("expected LoadAck, got {other:?}"),
        }
        for _ in 0..2 {
            match read_frame(&mut replies).unwrap() {
                FleetFrame::InferAck { admitted, .. } => assert!(admitted),
                other => panic!("expected InferAck, got {other:?}"),
            }
        }
        match read_frame(&mut replies).unwrap() {
            FleetFrame::Report(report) => {
                assert_eq!(report.offered, 2);
                assert_eq!(report.completed.len(), 2);
            }
            other => panic!("expected Report, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    #[test]
    fn duplicate_infer_ids_are_answered_from_the_dedup_window() {
        use std::io::Cursor;

        let cache_dir = std::env::temp_dir().join(format!(
            "unigpu-fleet-dedup-window-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let cfg = ReplicaConfig {
            name: "r0".into(),
            platform: Platform::deeplens(),
            serve: serve_cfg(),
            cache_dir: Some(cache_dir.clone()),
            die_on_submit: None,
            net_faults: NetFaultPlan::default(),
            max_resumes: 0,
        };
        // id 0 is offered three times (a router replay after lost acks);
        // the replica must submit it once and answer the rest from cache
        let mut inbox = Vec::new();
        write_frame(&mut inbox, &FleetFrame::Hello { framing: None, session: None }).unwrap();
        write_frame(&mut inbox, &FleetFrame::Load { model: "MobileNet1.0".into() }).unwrap();
        for _ in 0..3 {
            write_frame(&mut inbox, &FleetFrame::Infer { id: 0, arrival_ms: 0.0 }).unwrap();
        }
        write_frame(&mut inbox, &FleetFrame::Infer { id: 1, arrival_ms: 1.0 }).unwrap();
        write_frame(&mut inbox, &FleetFrame::Finish).unwrap();

        struct Duplex {
            rx: Cursor<Vec<u8>>,
            tx: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.rx.read(buf)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.tx.write(buf)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut wire = Duplex { rx: Cursor::new(inbox), tx: Vec::new() };
        serve_conn(&mut wire, &cfg).unwrap();

        let mut replies = Cursor::new(wire.tx);
        let _hello = read_frame(&mut replies).unwrap();
        let _load = read_frame(&mut replies).unwrap();
        for _ in 0..4 {
            match read_frame(&mut replies).unwrap() {
                FleetFrame::InferAck { admitted, .. } => assert!(admitted),
                other => panic!("expected InferAck, got {other:?}"),
            }
        }
        match read_frame(&mut replies).unwrap() {
            FleetFrame::Report(report) => {
                assert_eq!(report.offered, 2, "duplicates must not reach the server");
                assert_eq!(report.completed.len(), 2);
                let ids: Vec<usize> = report.completed.iter().map(|&(id, _)| id).collect();
                assert_eq!(ids, vec![0, 1], "each id completes exactly once");
            }
            other => panic!("expected Report, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
}
