//! In-process replica pools.
//!
//! Builds a heterogeneous set of [`LocalReplica`]s from platform specs,
//! with the warm-replication flow inlined: the first replica of each
//! device class compiles cold, its artifact is pushed into the cache
//! directories of every later same-device replica *before* they compile,
//! and those replicas come up warm (`from_cache() == true`). This is the
//! same flow the TCP path performs with `FetchArtifact`/`PushArtifact`
//! frames, minus the sockets — which makes it the deterministic substrate
//! for the fleet chaos tests and the fleet bench.

use std::collections::HashMap;
use std::path::Path;

use unigpu_device::Platform;
use unigpu_engine::{Artifact, Engine, ServeConfig};
use unigpu_graph::Graph;

use crate::replica::LocalReplica;
use crate::replication;

/// One replica's blueprint.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    pub name: String,
    pub platform: Platform,
    pub serve: ServeConfig,
    /// Deterministic chaos: hard-kill this replica on its Nth submit
    /// (1-based; `None` = immortal).
    pub die_on_submit: Option<usize>,
}

impl ReplicaSpec {
    pub fn new(name: impl Into<String>, platform: Platform, serve: ServeConfig) -> Self {
        ReplicaSpec {
            name: name.into(),
            platform,
            serve,
            die_on_submit: None,
        }
    }

    pub fn die_on_submit(mut self, nth: usize) -> Self {
        self.die_on_submit = Some(nth);
        self
    }
}

/// Build the pool. Each replica gets its own artifact-cache directory
/// under `cache_root` (`r0`, `r1`, ... in spec order), so warm starts are
/// attributable per replica instead of leaking through a shared cache.
/// Returns the replicas in spec order.
pub fn build_pool(model: &Graph, specs: &[ReplicaSpec], cache_root: &Path) -> Vec<LocalReplica> {
    let mut donor_by_device: HashMap<String, Artifact> = HashMap::new();
    let mut out = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let dir = cache_root.join(format!("r{i}"));
        if let Some(artifact) = donor_by_device.get(&spec.platform.gpu.name) {
            replication::store_in_dir(&dir, artifact);
        }
        let engine = Engine::builder()
            .platform(spec.platform.clone())
            .cache_dir(&dir)
            .build();
        let compiled = engine.compile(model);
        donor_by_device
            .entry(spec.platform.gpu.name.clone())
            .or_insert_with(|| replication::artifact_of(&compiled));
        let mut replica = LocalReplica::new(spec.name.clone(), &compiled, &spec.serve);
        if let Some(nth) = spec.die_on_submit {
            replica = replica.die_on_submit(nth);
        }
        out.push(replica);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::ReplicaLink;
    use unigpu_models::full_zoo;

    fn zoo_graph(name: &str) -> Graph {
        let entry = full_zoo()
            .into_iter()
            .find(|e| e.name == name)
            .expect("model in zoo");
        (entry.build)(false)
    }

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "unigpu-fleet-pool-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn same_device_peers_start_warm_and_cross_device_peers_do_not() {
        let model = zoo_graph("SqueezeNet1.0");
        let serve = ServeConfig::builder().build().unwrap();
        let specs = vec![
            ReplicaSpec::new("intel-0", Platform::deeplens(), serve.clone()),
            ReplicaSpec::new("intel-1", Platform::deeplens(), serve.clone()),
            ReplicaSpec::new("nano-0", Platform::jetson_nano(), serve.clone()),
            ReplicaSpec::new("nano-1", Platform::jetson_nano(), serve),
        ];
        let root = temp_root("warm");
        let pool = build_pool(&model, &specs, &root);
        assert_eq!(pool.len(), 4);
        // first of each device class compiles cold; later peers ride the
        // replicated artifact
        assert!(!pool[0].warm_start(), "intel-0 is the intel donor");
        assert!(pool[1].warm_start(), "intel-1 must start warm");
        assert!(!pool[2].warm_start(), "nano-0 is the nano donor");
        assert!(pool[3].warm_start(), "nano-1 must start warm");
        // heterogeneous pool: predicted cost differs across device classes
        assert_ne!(pool[0].predicted_ms(), pool[2].predicted_ms());
        // warm peers predict identically to their donor: same cost table
        assert_eq!(pool[0].predicted_ms(), pool[1].predicted_ms());
        let _ = std::fs::remove_dir_all(&root);
    }
}
