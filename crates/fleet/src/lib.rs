//! # unigpu-fleet
//!
//! Fleet-scale serving: a heterogeneous pool of simulated devices behind
//! a device-aware router. The paper tunes one model for one integrated
//! GPU at a time; a deployment serves that model from *many* such boards
//! at once — DeepLens alongside aiSage alongside Jetson Nano — and the
//! per-device cost model the compiler already built is exactly the
//! information a load balancer needs to use them well.
//!
//! * [`proto`] — the router⇄replica wire protocol, over the same
//!   length-prefixed JSON codec as the tuning farm
//!   ([`unigpu_farm::framing`]).
//! * [`replica`] — one replica: a [`Server`] wrapping a
//!   [`CompiledModel`] for one simulated device, in-process
//!   ([`LocalReplica`]) or behind TCP ([`run_replica`]).
//! * [`router`] — the [`Router`]: power-of-two-choices weighted by
//!   predicted cost, breaker/SLO-aware health gating, and lossless
//!   failover of dead replicas' backlogs
//!   (`offered == completed + shed + expired + failed`, fleet-wide).
//! * [`replication`] — warm artifact replication: one compile per device
//!   class, pushed to peers so cold replicas skip recompilation.
//! * [`pool`] — in-process heterogeneous pools for tests and benches.
//!
//! Everything runs on the simulated clock with counter-based fault
//! injection — device-level (`UNIGPU_FAULTS`) *and* wire-level
//! (`UNIGPU_NET_FAULTS`, [`unigpu_farm::netchaos`]); a zero-noise fleet
//! run replays bit for bit ([`FleetReport::digest`]), and under any
//! fault composition the accounting balances with zero duplicate
//! completions ([`FleetReport::duplicate_completions`]).
//!
//! [`Server`]: unigpu_engine::Server
//! [`CompiledModel`]: unigpu_engine::CompiledModel

pub mod pool;
pub mod proto;
pub mod replica;
pub mod replication;
pub mod router;

pub use pool::{build_pool, ReplicaSpec};
pub use proto::{FleetFrame, ReplicaHealth, ReplicaReport};
pub use replica::{run_replica, serve_conn, LocalReplica, ReplicaConfig, ReplicaLink};
pub use replication::{artifact_of, warm_remote_pool};
pub use router::{FleetReport, RemoteReplica, RouteDecision, RoutePolicy, Router, RouterConfig};
pub use unigpu_farm::netchaos::{NetFaultPlan, NetStats};

/// Chrome-trace lane for fleet control events (replica deaths, failover).
/// Sits above the farm's worker lanes (64+) so a merged trace never
/// collides.
pub const LANE_FLEET_CONTROL: u32 = 96;
/// First Chrome-trace lane for per-replica routing spans; replica `i`
/// records on `LANE_FLEET_REPLICA_BASE + i`.
pub const LANE_FLEET_REPLICA_BASE: u32 = 97;
