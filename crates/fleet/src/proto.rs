//! Fleet wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message is one [`framing`] frame — the same 4-byte big-endian
//! length + JSON codec the tuning farm speaks, reused verbatim so the
//! length prefix, the 16 MiB cap, and the protocol-error taxonomy live in
//! exactly one place. The conversation is strictly router-driven
//! request/response: the router sends one frame, the replica answers with
//! one frame, in order. No frame is ever unsolicited, which keeps the
//! exchange deterministic and trivially replayable.
//!
//! [`framing`]: unigpu_farm::framing

use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use unigpu_farm::framing;

pub use unigpu_farm::framing::MAX_FRAME_BYTES;

/// Health snapshot a replica attaches to every admission ack. The router
/// keeps the latest snapshot per replica and routes on it; the view is
/// only as stale as the last request sent there, which is exactly the
/// information a power-of-two-choices router needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicaHealth {
    /// Requests admitted but not yet formed into a batch.
    pub queue_depth: usize,
    /// Batches currently executing on device lanes.
    pub inflight: usize,
    /// Circuit-breaker gauge: `0` closed, `1` open, `2` half-open.
    pub breaker: f64,
    /// When the breaker is open, the simulated-clock instant it half-opens.
    /// The router uses this to withhold traffic until a probe is due.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub breaker_open_until_ms: Option<f64>,
    /// SLO error-budget burn rate over the replica's trailing window.
    pub burn_rate: f64,
}

impl Default for ReplicaHealth {
    fn default() -> Self {
        ReplicaHealth {
            queue_depth: 0,
            inflight: 0,
            breaker: 0.0,
            breaker_open_until_ms: None,
            burn_rate: 0.0,
        }
    }
}

/// One replica's final accounting, summarized from its [`ServeReport`]
/// so it fits a frame without dragging every per-request record across
/// the wire.
///
/// [`ServeReport`]: unigpu_engine::ServeReport
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaReport {
    pub name: String,
    /// Device name (e.g. `"Intel HD Graphics 505"`), the warm-replication
    /// compatibility key.
    pub device: String,
    /// Requests this replica was offered (admitted or locally shed).
    pub offered: usize,
    /// `(request id, end-to-end latency ms)` per completed request,
    /// sorted by id.
    pub completed: Vec<(usize, f64)>,
    /// Ids shed by this replica's admission control. Non-terminal at
    /// fleet level: the router re-offers them elsewhere.
    pub shed: Vec<usize>,
    /// Ids expired against their deadline on this replica (terminal).
    pub expired: Vec<usize>,
    /// Ids that exhausted the panic ladder on this replica (terminal).
    pub failed: Vec<usize>,
    pub batches: usize,
    pub makespan_ms: f64,
    pub degraded_batches: usize,
    pub breaker_trips: usize,
    pub breaker_recoveries: usize,
    /// The underlying [`ServeReport::digest`], folding per-request
    /// outcomes into the fleet digest without shipping them all.
    ///
    /// [`ServeReport::digest`]: unigpu_engine::ServeReport::digest
    pub digest: u64,
    /// True when this replica skipped compilation because a peer's
    /// artifact was already in its cache (warm replication).
    pub warm_start: bool,
    /// True when this report was recovered from a killed replica.
    pub dead: bool,
}

/// Every message of the fleet protocol.
///
/// Router → replica: `Hello`, `Load`, `FetchArtifact`, `PushArtifact`,
/// `Infer`, `Finish`. Replica → router: the matching `*Ack`,
/// `ArtifactBlob`, `Report`, `Error`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum FleetFrame {
    /// The router introduces itself and asks who is listening. The new
    /// fields ride in an old-shape frame: with both unset, the JSON is
    /// byte-identical to the historical unit variant (`{"type":"hello"}`),
    /// and old replicas ignore unknown keys when they are present.
    Hello {
        /// Highest framing version the router speaks
        /// ([`framing::FRAMING_VERSION`]). Absent means v1-only.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        framing: Option<u8>,
        /// Session token from a previous connection to resume: the replica
        /// keeps serving the same session (dedup window, cached report)
        /// instead of treating the reconnect as a new router.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        session: Option<String>,
    },
    /// Handshake reply: the replica's name and simulated device.
    HelloAck {
        name: String,
        device: String,
        /// Framing version the replica accepted; both sides upgrade their
        /// codec right after this frame when it is `Some(2)`.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        framing: Option<u8>,
        /// True when `session` named a session this replica still holds.
        #[serde(default, skip_serializing_if = "std::ops::Not::not")]
        resumed: bool,
    },
    /// Compile (or cache-load) a zoo model and stand up the serve loop.
    Load { model: String },
    /// Load reply. `warm` is [`CompiledModel::from_cache`]; `predicted_ms`
    /// is the single-sample batch estimate the router weighs routing by.
    ///
    /// [`CompiledModel::from_cache`]: unigpu_engine::CompiledModel::from_cache
    LoadAck { warm: bool, predicted_ms: f64 },
    /// Ask for the loaded model's artifact in JSONL wire form, so the
    /// router can replicate it to same-device peers.
    FetchArtifact,
    /// The artifact, as [`Artifact::to_jsonl`] emits it.
    ///
    /// [`Artifact::to_jsonl`]: unigpu_engine::Artifact::to_jsonl
    ArtifactBlob { jsonl: String },
    /// Seed this replica's artifact cache before its `Load`, so a cold
    /// peer skips recompilation.
    PushArtifact { jsonl: String },
    /// Push reply; `stored == false` names a parse/IO refusal in `Infer`
    /// position would have been an `Error` frame.
    PushAck { stored: bool },
    /// Offer one request at a simulated-clock arrival instant.
    Infer { id: usize, arrival_ms: f64 },
    /// Admission verdict plus the health snapshot routing feeds on.
    InferAck { admitted: bool, health: ReplicaHealth },
    /// Drain, shut down, and report.
    Finish,
    /// The replica's final accounting. Boxed: it dwarfs every other
    /// variant.
    Report(Box<ReplicaReport>),
    /// Protocol-level failure; the sender closes the connection after
    /// this. `fatal` distinguishes unrecoverable conditions (an injected
    /// death, protocol insanity) from transient ones (a checksum mismatch)
    /// the router should answer with reconnect-and-resume.
    Error {
        message: String,
        #[serde(default, skip_serializing_if = "std::ops::Not::not")]
        fatal: bool,
    },
}

/// Serialize `frame` as one length-prefixed JSON message.
pub fn write_frame(w: &mut dyn Write, frame: &FleetFrame) -> io::Result<()> {
    framing::write_frame(w, frame)
}

/// Read one frame. A clean peer close surfaces as `UnexpectedEof`; an
/// oversized length prefix or unparseable body surfaces as `InvalidData`
/// (the caller should answer [`FleetFrame::Error`] and drop the
/// connection).
pub fn read_frame(r: &mut dyn Read) -> io::Result<FleetFrame> {
    framing::read_frame(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn fleet_frames_round_trip() {
        let frames = vec![
            FleetFrame::Hello { framing: Some(2), session: Some("router-0".into()) },
            FleetFrame::HelloAck {
                name: "r0".into(),
                device: "Intel HD Graphics 505".into(),
                framing: Some(2),
                resumed: true,
            },
            FleetFrame::Load { model: "ResNet-18".into() },
            FleetFrame::LoadAck { warm: true, predicted_ms: 3.25 },
            FleetFrame::FetchArtifact,
            FleetFrame::ArtifactBlob { jsonl: "{}\n".into() },
            FleetFrame::PushArtifact { jsonl: "{}\n".into() },
            FleetFrame::PushAck { stored: true },
            FleetFrame::Infer { id: 41, arrival_ms: 82.0 },
            FleetFrame::InferAck {
                admitted: true,
                health: ReplicaHealth {
                    queue_depth: 3,
                    inflight: 2,
                    breaker: 1.0,
                    breaker_open_until_ms: Some(250.0),
                    burn_rate: 4.5,
                },
            },
            FleetFrame::Finish,
            FleetFrame::Report(Box::new(ReplicaReport {
                name: "r0".into(),
                device: "Mali-T860".into(),
                offered: 10,
                completed: vec![(0, 5.0), (2, 7.5)],
                shed: vec![3],
                expired: vec![4],
                failed: vec![],
                batches: 6,
                makespan_ms: 44.0,
                degraded_batches: 1,
                breaker_trips: 1,
                breaker_recoveries: 1,
                digest: 0xdead_beef,
                warm_start: false,
                dead: true,
            })),
            FleetFrame::Error { message: "nope".into(), fatal: true },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for f in &frames {
            assert_eq!(&read_frame(&mut cur).unwrap(), f);
        }
    }

    #[test]
    fn closed_breaker_ack_omits_the_open_until_key() {
        // None must not serialize a key old peers would reject
        let f = FleetFrame::InferAck {
            admitted: true,
            health: ReplicaHealth::default(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &f).unwrap();
        assert!(!String::from_utf8_lossy(&buf).contains("breaker_open_until_ms"));
        assert_eq!(read_frame(&mut Cursor::new(buf)).unwrap(), f);
    }

    #[test]
    fn bare_hello_serializes_exactly_like_the_old_unit_variant() {
        // A v1-only router's Hello and this build's field-less Hello must
        // be the same bytes, or old digest-pinned handshakes would change.
        let bare = FleetFrame::Hello { framing: None, session: None };
        assert_eq!(serde_json::to_string(&bare).unwrap(), r#"{"type":"hello"}"#);
        let ack = FleetFrame::HelloAck {
            name: "r0".into(),
            device: "cpu".into(),
            framing: None,
            resumed: false,
        };
        let body = serde_json::to_string(&ack).unwrap();
        assert!(!body.contains("framing") && !body.contains("resumed"), "got {body}");
        let err = FleetFrame::Error { message: "m".into(), fatal: false };
        assert!(!serde_json::to_string(&err).unwrap().contains("fatal"));
    }

    #[test]
    fn old_peer_frames_without_the_new_keys_still_parse() {
        for (raw, check) in [
            (
                r#"{"type":"hello"}"#,
                FleetFrame::Hello { framing: None, session: None },
            ),
            (
                r#"{"type":"hello_ack","name":"r1","device":"gpu"}"#,
                FleetFrame::HelloAck {
                    name: "r1".into(),
                    device: "gpu".into(),
                    framing: None,
                    resumed: false,
                },
            ),
            (
                r#"{"type":"error","message":"boom"}"#,
                FleetFrame::Error { message: "boom".into(), fatal: false },
            ),
        ] {
            let body = raw.as_bytes();
            let mut buf = (body.len() as u32).to_be_bytes().to_vec();
            buf.extend_from_slice(body);
            assert_eq!(read_frame(&mut Cursor::new(buf)).unwrap(), check, "for {raw}");
        }
    }

    #[test]
    fn new_hello_parses_in_an_old_peer_frame_shape() {
        // The historical FleetFrame declared Hello as a unit variant.
        // serde's internally-tagged unit variants ignore extra keys, so an
        // old replica must still parse a v2 router's Hello.
        #[derive(Debug, PartialEq, serde::Deserialize)]
        #[serde(tag = "type", rename_all = "snake_case")]
        enum OldFrame {
            Hello,
            Error { message: String },
        }
        let new_hello = serde_json::to_string(&FleetFrame::Hello {
            framing: Some(2),
            session: Some("router-0".into()),
        })
        .unwrap();
        assert_eq!(serde_json::from_str::<OldFrame>(&new_hello).unwrap(), OldFrame::Hello);
        // and an old struct variant ignores the new fatal flag
        let new_err = serde_json::to_string(&FleetFrame::Error {
            message: "boom".into(),
            fatal: true,
        })
        .unwrap();
        assert_eq!(
            serde_json::from_str::<OldFrame>(&new_err).unwrap(),
            OldFrame::Error { message: "boom".into() }
        );
    }

    #[test]
    fn truncated_and_malformed_frames_keep_the_shared_error_taxonomy() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &FleetFrame::Hello { framing: None, session: None }).unwrap();
        buf.truncate(buf.len() - 1);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let body = b"{ not json";
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(body);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
