//! The device-aware fleet router.
//!
//! Shards a request stream across a heterogeneous replica pool with
//! power-of-two-choices weighted by predicted cost: two candidate
//! replicas are drawn per request (deterministically, by hashing the
//! request id), and the one with the lower `(queue_depth + inflight + 1)
//! × predicted_ms` wins. The predicted term comes from each replica's
//! compile-time cost model, so a Jetson Nano naturally absorbs more load
//! than a Mali — the paper's cost model, promoted from a compiler
//! heuristic to a load balancer.
//!
//! Health signals fold into routing, not just placement: a replica whose
//! circuit breaker is open receives *zero* new admissions until its
//! half-open probe instant, and a replica burning its SLO error budget
//! past a threshold sheds to healthy peers. A dead replica's backlog
//! fails over: whatever the corpse hands back (an in-process kill
//! recovers the evicted queue and the final report) is re-routed, and
//! whatever it cannot hand back (a remote crash) is re-routed wholesale
//! from the router's own assignment ledger — at-least-once, never lost.
//!
//! The wire is a failure domain too: [`RemoteReplica`] runs every
//! request/response through a reconnect-with-resume loop (session token
//! in `Hello`, deterministic backoff, frame replay), and the replica's
//! dedup window makes replays idempotent — at-least-once retransmission
//! composing into exactly-once effects. Transport counters fold into
//! [`FleetReport::net`] and the `net.*` metrics;
//! [`FleetReport::duplicate_completions`] is the exactly-once check.
//!
//! Everything is counter-based and clock-free, so a zero-noise fleet run
//! is bit-for-bit reproducible: [`FleetReport::digest`] is the replay
//! check.

use std::io::{self, ErrorKind};
use std::net::TcpStream;

use unigpu_farm::backoff::Backoff;
use unigpu_farm::framing::{FrameError, Framed, FRAMING_VERSION};
use unigpu_farm::netchaos::{ChaosStream, NetFaultPlan, NetStats, SharedNetFaults};
use unigpu_telemetry::{MetricsRegistry, SpanRecord, SpanRecorder};

use crate::proto::{FleetFrame, ReplicaHealth, ReplicaReport};
use crate::replica::ReplicaLink;
use crate::{LANE_FLEET_CONTROL, LANE_FLEET_REPLICA_BASE};

/// How the router picks a replica for each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Rotate over healthy replicas, blind to queue state and device
    /// speed. The baseline the fleet bench compares against.
    RoundRobin,
    /// Power-of-two-choices weighted by predicted cost (the default).
    PowerOfTwo,
}

/// Router knobs.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    pub policy: RoutePolicy,
    /// Seed mixed into the per-request candidate hash; two runs with the
    /// same seed and request stream route identically.
    pub seed: u64,
    /// SLO burn rate at or above which a replica is treated as unhealthy
    /// and sheds to peers. `f64::INFINITY` disables burn-based shedding.
    pub burn_shed_threshold: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            policy: RoutePolicy::PowerOfTwo,
            seed: 0x5eed_0f1e_e7,
            burn_shed_threshold: 25.0,
        }
    }
}

/// One routing decision, logged for auditability: tests assert from this
/// that an open breaker received zero admissions before its probe
/// instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteDecision {
    pub id: usize,
    /// Index of the chosen replica.
    pub replica: usize,
    pub arrival_ms: f64,
    /// The chosen replica's breaker gauge as the router saw it.
    pub breaker: f64,
    /// The chosen replica's open-until instant as the router saw it; a
    /// decision with `breaker == 1.0` is legal only when
    /// `arrival_ms >= breaker_open_until_ms` (the half-open probe).
    pub breaker_open_until_ms: Option<f64>,
    /// True when this submission re-routed an orphaned request after a
    /// replica death.
    pub rerouted: bool,
}

/// Fleet-wide accounting. Every request offered to [`Router::route`]
/// lands in exactly one bucket; [`FleetReport::lost`] is the invariant
/// check and must be zero across any kill/throttle plan.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Requests offered to the fleet (each counted once, however many
    /// replicas it was retried on).
    pub offered: usize,
    /// `(request id, end-to-end latency ms)`, sorted by id.
    pub completed: Vec<(usize, f64)>,
    /// Ids no healthy replica would admit (fleet-level admission control).
    pub shed: Vec<usize>,
    /// Ids that expired against their deadline on some replica.
    pub expired: Vec<usize>,
    /// Ids that exhausted a replica's panic ladder.
    pub failed: Vec<usize>,
    /// Failover re-submissions performed after replica deaths.
    pub rerouted: usize,
    pub replica_deaths: usize,
    /// Per-replica summaries, in pool order. A crashed remote replica
    /// that could not deliver a report appears as a zeroed stub with
    /// `dead == true`.
    pub replicas: Vec<ReplicaReport>,
    /// The full decision log, in offer order.
    pub decisions: Vec<RouteDecision>,
    /// Transport counters merged across every replica link. Deliberately
    /// *not* folded into [`FleetReport::digest`]: the digest certifies
    /// outcomes, and a fault plan must be able to shake the wire without
    /// changing what the fleet computed.
    pub net: NetStats,
}

impl FleetReport {
    /// Requests unaccounted for — must always be zero.
    pub fn lost(&self) -> usize {
        self.offered.saturating_sub(
            self.completed.len() + self.shed.len() + self.expired.len() + self.failed.len(),
        )
    }

    /// Completed ids that appear more than once — the exactly-once
    /// check. Must be zero under any composition of fault plans: the
    /// dedup window turns every replayed request into a cached ack, so
    /// a duplicate completion means a replica did work twice.
    pub fn duplicate_completions(&self) -> usize {
        let mut ids: Vec<usize> = self.completed.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.windows(2).filter(|w| w[0] == w[1]).count()
    }

    /// p99 end-to-end latency over completed requests, ms.
    pub fn p99_latency_ms(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        let mut lat: Vec<f64> = self.completed.iter().map(|&(_, ms)| ms).collect();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let idx = ((lat.len() as f64) * 0.99).ceil() as usize;
        lat[idx.clamp(1, lat.len()) - 1]
    }

    /// FNV-1a over every externally observable outcome. Two zero-noise
    /// runs of the same request stream against the same pool must agree
    /// bit for bit.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |h: &mut u64, v: u64| {
            *h = (*h ^ v).wrapping_mul(0x100_0000_01b3);
        };
        mix(&mut h, self.offered as u64);
        mix(&mut h, self.rerouted as u64);
        mix(&mut h, self.replica_deaths as u64);
        for &(id, ms) in &self.completed {
            mix(&mut h, id as u64);
            mix(&mut h, ms.to_bits());
        }
        for bucket in [&self.shed, &self.expired, &self.failed] {
            mix(&mut h, bucket.len() as u64);
            for &id in bucket {
                mix(&mut h, id as u64);
            }
        }
        for r in &self.replicas {
            for b in r.name.bytes().chain(r.device.bytes()) {
                mix(&mut h, b as u64);
            }
            mix(&mut h, r.offered as u64);
            mix(&mut h, r.batches as u64);
            mix(&mut h, r.makespan_ms.to_bits());
            mix(&mut h, r.degraded_batches as u64);
            mix(&mut h, r.breaker_trips as u64);
            mix(&mut h, r.breaker_recoveries as u64);
            mix(&mut h, r.digest);
            mix(&mut h, u64::from(r.warm_start));
            mix(&mut h, u64::from(r.dead));
        }
        h
    }
}

struct Slot {
    link: Box<dyn ReplicaLink>,
    name: String,
    device: String,
    predicted_ms: f64,
    /// Latest health snapshot, as stale as the last ack from this
    /// replica.
    health: ReplicaHealth,
    dead: bool,
    finished: bool,
    /// Admitted-but-unconfirmed requests: the failover ledger.
    assigned: Vec<(usize, f64)>,
    report: Option<ReplicaReport>,
}

/// SplitMix64 finalizer: the candidate hash behind power-of-two-choices.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The fleet router. Owns the replica handles; consume with
/// [`Router::finish`] to collect the fleet report.
pub struct Router {
    slots: Vec<Slot>,
    cfg: RouterConfig,
    metrics: MetricsRegistry,
    spans: SpanRecorder,
    rr_next: usize,
    offered: usize,
    fleet_shed: Vec<usize>,
    rerouted: usize,
    deaths: usize,
    decisions: Vec<RouteDecision>,
}

impl Router {
    pub fn new(cfg: RouterConfig, replicas: Vec<Box<dyn ReplicaLink>>) -> Router {
        Router::with_telemetry(cfg, replicas, SpanRecorder::new(), MetricsRegistry::new())
    }

    /// A router recording into caller-owned telemetry.
    pub fn with_telemetry(
        cfg: RouterConfig,
        replicas: Vec<Box<dyn ReplicaLink>>,
        spans: SpanRecorder,
        metrics: MetricsRegistry,
    ) -> Router {
        let slots = replicas
            .into_iter()
            .map(|link| Slot {
                name: link.name().to_string(),
                device: link.device().to_string(),
                predicted_ms: link.predicted_ms().max(f64::MIN_POSITIVE),
                health: ReplicaHealth::default(),
                dead: false,
                finished: false,
                assigned: Vec::new(),
                report: None,
                link,
            })
            .collect();
        Router {
            slots,
            cfg,
            metrics,
            spans,
            rr_next: 0,
            offered: 0,
            fleet_shed: Vec::new(),
            rerouted: 0,
            deaths: 0,
            decisions: Vec::new(),
        }
    }

    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    pub fn replica_count(&self) -> usize {
        self.slots.len()
    }

    /// A replica takes traffic when it is alive, not finished, not
    /// burning its error budget, and its breaker is not open — except
    /// that an open breaker past its cooldown instant takes exactly the
    /// probe traffic the half-open phase is for.
    fn healthy(&self, i: usize, arrival_ms: f64) -> bool {
        let s = &self.slots[i];
        if s.dead || s.finished {
            return false;
        }
        if s.health.burn_rate >= self.cfg.burn_shed_threshold {
            return false;
        }
        if s.health.breaker == 1.0 {
            return match s.health.breaker_open_until_ms {
                Some(until_ms) => arrival_ms >= until_ms,
                None => false,
            };
        }
        true
    }

    /// Cost-aware load score: expected work queued ahead of a new
    /// arrival, in predicted device-ms. The `+ 1` prices the arrival
    /// itself, so an idle slow device still costs more than an idle fast
    /// one.
    fn score(&self, i: usize) -> f64 {
        let s = &self.slots[i];
        (s.health.queue_depth + s.health.inflight + 1) as f64 * s.predicted_ms
    }

    fn pick(&mut self, id: usize, arrival_ms: f64, excluded: &[usize]) -> Option<usize> {
        let candidates: Vec<usize> = (0..self.slots.len())
            .filter(|&i| !excluded.contains(&i) && self.healthy(i, arrival_ms))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match self.cfg.policy {
            RoutePolicy::RoundRobin => {
                let i = candidates[self.rr_next % candidates.len()];
                self.rr_next = self.rr_next.wrapping_add(1);
                Some(i)
            }
            RoutePolicy::PowerOfTwo => {
                let h = splitmix64(self.cfg.seed ^ (id as u64));
                let a = candidates[(h as usize) % candidates.len()];
                let b = candidates[((h >> 32) as usize) % candidates.len()];
                // strict less-than: ties go to the first draw, keeping the
                // choice independent of evaluation order
                Some(if self.score(b) < self.score(a) { b } else { a })
            }
        }
    }

    /// Offer one request to the fleet. Returns `true` when some replica
    /// admitted it; `false` means it landed in the fleet shed bucket.
    /// Arrivals must be non-decreasing (one simulated clock for the whole
    /// fleet).
    pub fn route(&mut self, id: usize, arrival_ms: f64) -> bool {
        self.offered += 1;
        self.metrics.inc("fleet.offered");
        self.route_inner(id, arrival_ms, false)
    }

    fn route_inner(&mut self, id: usize, arrival_ms: f64, rerouted: bool) -> bool {
        let mut tried: Vec<usize> = Vec::new();
        loop {
            let Some(i) = self.pick(id, arrival_ms, &tried) else {
                self.metrics.inc("fleet.shed");
                self.fleet_shed.push(id);
                return false;
            };
            self.decisions.push(RouteDecision {
                id,
                replica: i,
                arrival_ms,
                breaker: self.slots[i].health.breaker,
                breaker_open_until_ms: self.slots[i].health.breaker_open_until_ms,
                rerouted,
            });
            match self.slots[i].link.submit(id, arrival_ms) {
                Ok((admitted, health)) => {
                    self.slots[i].health = health;
                    self.publish_gauges(i);
                    if admitted {
                        self.slots[i].assigned.push((id, arrival_ms));
                        self.metrics.inc(&format!("fleet.routed.{i}"));
                        self.spans.record(SpanRecord {
                            name: format!("req {id}"),
                            category: "fleet.route".into(),
                            start_us: arrival_ms * 1000.0,
                            dur_us: 0.0,
                            lane: LANE_FLEET_REPLICA_BASE + i as u32,
                            attrs: vec![
                                ("replica".into(), self.slots[i].name.clone()),
                                ("rerouted".into(), rerouted.to_string()),
                            ],
                            trace: None,
                        });
                        return true;
                    }
                    // replica-side shed: not terminal — try the next-best
                    // candidate
                    self.metrics.inc(&format!("fleet.replica_shed.{i}"));
                    tried.push(i);
                }
                Err(err) => {
                    self.on_death(i, arrival_ms, &err);
                    tried.push(i);
                }
            }
        }
    }

    /// Handle a replica death discovered at `arrival_ms`: recover what
    /// the corpse hands back, then fail its backlog over to the
    /// survivors. With a recovered report only the evicted queue
    /// re-routes (everything else is accounted by the report); without
    /// one, every assigned-but-unconfirmed request re-routes —
    /// at-least-once delivery instead of a loss.
    fn on_death(&mut self, i: usize, arrival_ms: f64, err: &io::Error) {
        if self.slots[i].dead {
            return;
        }
        self.slots[i].dead = true;
        self.deaths += 1;
        self.metrics.inc("fleet.replica_deaths");
        self.metrics.set_gauge(&format!("fleet.up.{i}"), 0.0);
        let (orphans, report) = self.slots[i].link.orphans();
        let assigned = std::mem::take(&mut self.slots[i].assigned);
        let recovered_report = report.is_some();
        self.slots[i].report = report;
        let backlog = match orphans {
            Some(evicted) if recovered_report => evicted,
            _ => assigned,
        };
        self.spans.record(SpanRecord {
            name: format!("replica {} died", self.slots[i].name),
            category: "fleet.death".into(),
            start_us: arrival_ms * 1000.0,
            dur_us: 0.0,
            lane: LANE_FLEET_CONTROL,
            attrs: vec![
                ("error".into(), err.to_string()),
                ("failover".into(), backlog.len().to_string()),
                ("report_recovered".into(), recovered_report.to_string()),
            ],
            trace: None,
        });
        for (id, orig_arrival) in backlog {
            self.rerouted += 1;
            self.metrics.inc("fleet.rerouted");
            // failover preserves the fleet clock: re-offers happen *now*,
            // not back at the original arrival instant
            self.route_inner(id, orig_arrival.max(arrival_ms), true);
        }
    }

    fn publish_gauges(&self, i: usize) {
        let h = &self.slots[i].health;
        self.metrics
            .set_gauge(&format!("fleet.queue_depth.{i}"), h.queue_depth as f64);
        self.metrics
            .set_gauge(&format!("fleet.inflight.{i}"), h.inflight as f64);
        self.metrics
            .set_gauge(&format!("fleet.breaker_state.{i}"), h.breaker);
        self.metrics
            .set_gauge(&format!("fleet.burn_rate.{i}"), h.burn_rate);
    }

    /// Drain every replica and fold the fleet report. Replicas finish in
    /// pool order; one that dies *during* shutdown fails its backlog over
    /// to replicas not yet drained (or, if none remain, the fleet shed
    /// bucket — accounted either way).
    pub fn finish(mut self) -> FleetReport {
        for i in 0..self.slots.len() {
            if self.slots[i].dead {
                // the death path may already have recovered its report
                continue;
            }
            match self.slots[i].link.finish() {
                Ok(report) => {
                    self.slots[i].finished = true;
                    self.slots[i].assigned.clear();
                    self.slots[i].report = Some(report);
                }
                Err(err) => {
                    let last_arrival = self.slots[i]
                        .assigned
                        .last()
                        .map(|&(_, ms)| ms)
                        .unwrap_or(0.0);
                    self.on_death(i, last_arrival, &err);
                }
            }
        }

        let mut completed: Vec<(usize, f64)> = Vec::new();
        let mut expired: Vec<usize> = Vec::new();
        let mut failed: Vec<usize> = Vec::new();
        let mut replicas: Vec<ReplicaReport> = Vec::new();
        for slot in &mut self.slots {
            match slot.report.take() {
                Some(report) => {
                    completed.extend(report.completed.iter().copied());
                    expired.extend(report.expired.iter().copied());
                    failed.extend(report.failed.iter().copied());
                    replicas.push(report);
                }
                // a crashed remote replica delivered nothing; remember it
                // as a zeroed stub so pool order stays meaningful
                None => replicas.push(ReplicaReport {
                    name: slot.name.clone(),
                    device: slot.device.clone(),
                    offered: 0,
                    completed: vec![],
                    shed: vec![],
                    expired: vec![],
                    failed: vec![],
                    batches: 0,
                    makespan_ms: 0.0,
                    degraded_batches: 0,
                    breaker_trips: 0,
                    breaker_recoveries: 0,
                    digest: 0,
                    warm_start: slot.link.warm_start(),
                    dead: true,
                }),
            }
        }
        completed.sort_by(|a, b| a.0.cmp(&b.0));
        expired.sort_unstable();
        failed.sort_unstable();
        let mut shed = self.fleet_shed;
        shed.sort_unstable();

        self.metrics.add("fleet.completed", completed.len() as u64);
        self.metrics.add("fleet.expired", expired.len() as u64);
        self.metrics.add("fleet.failed", failed.len() as u64);

        let mut net = NetStats::default();
        for slot in &self.slots {
            net.merge(&slot.link.net_stats());
        }
        if net.any() {
            self.metrics.add("net.reconnects", net.reconnects);
            self.metrics.add("net.resumes", net.resumes);
            self.metrics.add("net.replayed_frames", net.replayed_frames);
            self.metrics.add("net.checksum_errors", net.checksum_errors);
            self.metrics.add("net.dup_frames_skipped", net.dup_frames_skipped);
            self.metrics.add("net.backoff_ms", net.backoff_ms);
            self.metrics.add("net.conns_dropped", net.conns_dropped);
            self.metrics.add("net.bytes_corrupted", net.bytes_corrupted);
            self.metrics.add("net.frames_truncated", net.frames_truncated);
            self.metrics.add("net.frames_duplicated", net.frames_duplicated);
            self.metrics.add("net.frames_delayed", net.frames_delayed);
        }

        FleetReport {
            offered: self.offered,
            completed,
            shed,
            expired,
            failed,
            rerouted: self.rerouted,
            replica_deaths: self.deaths,
            replicas,
            decisions: self.decisions,
            net,
        }
    }
}

/// Router-side handle to a replica across TCP, hardened for lossy wires.
///
/// Every request/response pair runs through [`RemoteReplica::exchange`]:
/// a transport failure — a dropped connection, a truncated frame, a CRC
/// mismatch — triggers reconnect-with-resume. The handle re-dials,
/// presents its session token in `Hello`, and replays the in-flight
/// frame; the replica's dedup window makes the replay idempotent, so
/// at-least-once retransmission composes into exactly-once effects.
/// Only a *fatal* `Error` frame (an injected death, a wedged server), a
/// lost session, or an exhausted reconnect budget surfaces as `Err` —
/// which the router treats as a death; nothing is recoverable from a
/// remote corpse, so [`ReplicaLink::orphans`] returns `(None, None)`
/// and the router fails the whole assignment ledger over.
pub struct RemoteReplica {
    addr: String,
    conn: Option<Framed<ChaosStream<TcpStream>>>,
    /// Stable session token presented in every `Hello`; the replica
    /// replays cached acks for a token it recognises.
    session: String,
    name: String,
    device: String,
    predicted_ms: f64,
    warm: bool,
    faults: SharedNetFaults,
    backoff: Backoff,
    stats: NetStats,
}

fn unexpected(frame: &FleetFrame) -> io::Error {
    io::Error::new(
        ErrorKind::InvalidData,
        format!("unexpected frame from replica: {frame:?}"),
    )
}

/// Reconnect budget per outage: attempts backing off 10 → 160 ms on the
/// accounting clock. The delays are *accounted*, never slept —
/// determinism over realism.
const RECONNECT_BASE_MS: u64 = 10;
const RECONNECT_MAX_MS: u64 = 160;
const RECONNECT_ATTEMPTS: u32 = 6;

impl RemoteReplica {
    /// Connect and handshake, injecting the `UNIGPU_NET_FAULTS` plan (if
    /// any) on this link's outgoing frames.
    pub fn connect(addr: &str) -> io::Result<RemoteReplica> {
        RemoteReplica::connect_with(addr, NetFaultPlan::from_env())
    }

    /// Connect and handshake with an explicit fault plan for this link's
    /// outgoing frames (the replica injects its own side via its config).
    pub fn connect_with(addr: &str, plan: NetFaultPlan) -> io::Result<RemoteReplica> {
        let mut link = RemoteReplica {
            addr: addr.to_string(),
            conn: None,
            session: format!("unigpu-router-{addr}"),
            name: String::new(),
            device: String::new(),
            predicted_ms: 0.0,
            warm: false,
            faults: SharedNetFaults::new(plan),
            backoff: Backoff::new(RECONNECT_BASE_MS, RECONNECT_MAX_MS, RECONNECT_ATTEMPTS),
            stats: NetStats::default(),
        };
        link.dial(false)?;
        Ok(link)
    }

    /// Retire the live connection, folding its receive-side dedup count
    /// into the link's stats.
    fn drop_conn(&mut self) {
        if let Some(conn) = self.conn.take() {
            self.stats.dup_frames_skipped += conn.dup_frames_skipped();
        }
    }

    /// One connection attempt. Drops the old connection *first* (its
    /// codec state must not leak into the fresh one), then handshakes at
    /// v1 and upgrades if the replica acks v2. On `resume`, a replica
    /// that does not recognise the session token has lost its state:
    /// that is `InvalidData`, which [`RemoteReplica::reconnect`] treats
    /// as terminal rather than retrying into a void. Handshake wire
    /// damage, by contrast, maps to `ConnectionReset` so the retry loop
    /// keeps going.
    fn dial(&mut self, resume: bool) -> io::Result<()> {
        fn wire_err(e: FrameError) -> io::Error {
            match e {
                FrameError::Io(e) => e,
                other => io::Error::new(ErrorKind::ConnectionReset, other.to_string()),
            }
        }
        self.drop_conn();
        let stream = TcpStream::connect(&self.addr)?;
        let _ = stream.set_nodelay(true);
        let mut framed = Framed::new(ChaosStream::new(stream, self.faults.clone()));
        framed
            .send(&FleetFrame::Hello {
                framing: Some(FRAMING_VERSION),
                session: Some(self.session.clone()),
            })
            .map_err(wire_err)?;
        match framed.recv::<FleetFrame>().map_err(wire_err)? {
            FleetFrame::HelloAck {
                name,
                device,
                framing,
                resumed,
            } => {
                if resume && !resumed {
                    return Err(io::Error::new(
                        ErrorKind::InvalidData,
                        format!("replica {name} no longer knows session {}", self.session),
                    ));
                }
                if framing == Some(FRAMING_VERSION) {
                    framed.upgrade();
                }
                self.name = name;
                self.device = device;
                if resume {
                    self.stats.resumes += 1;
                }
                self.conn = Some(framed);
                Ok(())
            }
            // a replica that got our Hello corrupted answers a non-fatal
            // Error and waits for a fresh connection — retryable
            FleetFrame::Error { message, fatal } => Err(io::Error::new(
                if fatal {
                    ErrorKind::InvalidData
                } else {
                    ErrorKind::ConnectionReset
                },
                message,
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// Burn backoff budget re-dialing with resume until a connection
    /// sticks. `InvalidData` — a lost session or protocol insanity — is
    /// terminal; anything else retries until the budget runs out.
    fn reconnect(&mut self) -> io::Result<()> {
        loop {
            let Some(delay_ms) = self.backoff.next_delay_ms() else {
                return Err(io::Error::new(
                    ErrorKind::ConnectionAborted,
                    format!("replica {}: reconnect budget exhausted", self.name),
                ));
            };
            self.stats.backoff_ms += delay_ms;
            self.stats.reconnects += 1;
            match self.dial(true) {
                Ok(()) => {
                    self.backoff.reset();
                    return Ok(());
                }
                Err(e) if e.kind() == ErrorKind::InvalidData => return Err(e),
                Err(_) => continue,
            }
        }
    }

    /// One request/response over the hardened link: send, await, and on
    /// any recoverable transport failure reconnect-with-resume and
    /// replay the same frame. A `fatal` Error frame or an unexpected
    /// reply is the replica telling us it is beyond saving — surface
    /// `Err` and let the router run its death path.
    fn exchange(&mut self, frame: &FleetFrame) -> io::Result<FleetFrame> {
        loop {
            if self.conn.is_none() {
                self.reconnect()?;
                self.stats.replayed_frames += 1;
            }
            let conn = self.conn.as_mut().expect("just reconnected");
            let round = conn.send(frame).and_then(|()| conn.recv::<FleetFrame>());
            match round {
                Ok(FleetFrame::Error { message, fatal }) => {
                    if fatal {
                        return Err(io::Error::new(ErrorKind::BrokenPipe, message));
                    }
                    // the replica rejected a damaged frame and is waiting
                    // for a fresh connection: resume and replay
                    self.drop_conn();
                }
                Ok(reply) => return Ok(reply),
                Err(e) => match e {
                    FrameError::ChecksumMismatch { .. } => {
                        self.stats.checksum_errors += 1;
                        self.drop_conn();
                    }
                    FrameError::Io(_) | FrameError::SequenceGap { .. } => self.drop_conn(),
                    // Malformed / TooLarge replies are not wire noise on
                    // an upgraded connection; retrying cannot fix a
                    // confused peer
                    other => return Err(io::Error::from(other)),
                },
            }
        }
    }

    /// Load a zoo model on the replica. Returns `(warm, predicted_ms)`;
    /// both are also retained on the handle for routing.
    pub fn load(&mut self, model: &str) -> io::Result<(bool, f64)> {
        match self.exchange(&FleetFrame::Load {
            model: model.into(),
        })? {
            FleetFrame::LoadAck { warm, predicted_ms } => {
                self.warm = warm;
                self.predicted_ms = predicted_ms;
                Ok((warm, predicted_ms))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the loaded model's artifact in JSONL wire form.
    pub fn fetch_artifact(&mut self) -> io::Result<String> {
        match self.exchange(&FleetFrame::FetchArtifact)? {
            FleetFrame::ArtifactBlob { jsonl } => Ok(jsonl),
            other => Err(unexpected(&other)),
        }
    }

    /// Seed the replica's artifact cache ahead of its `load`.
    pub fn push_artifact(&mut self, jsonl: &str) -> io::Result<bool> {
        match self.exchange(&FleetFrame::PushArtifact {
            jsonl: jsonl.into(),
        })? {
            FleetFrame::PushAck { stored } => Ok(stored),
            other => Err(unexpected(&other)),
        }
    }
}

impl ReplicaLink for RemoteReplica {
    fn name(&self) -> &str {
        &self.name
    }

    fn device(&self) -> &str {
        &self.device
    }

    fn predicted_ms(&self) -> f64 {
        self.predicted_ms
    }

    fn warm_start(&self) -> bool {
        self.warm
    }

    fn submit(&mut self, id: usize, arrival_ms: f64) -> io::Result<(bool, ReplicaHealth)> {
        match self.exchange(&FleetFrame::Infer { id, arrival_ms })? {
            FleetFrame::InferAck { admitted, health } => Ok((admitted, health)),
            other => Err(unexpected(&other)),
        }
    }

    fn orphans(&mut self) -> (Option<Vec<(usize, f64)>>, Option<ReplicaReport>) {
        (None, None)
    }

    fn finish(&mut self) -> io::Result<ReplicaReport> {
        match self.exchange(&FleetFrame::Finish)? {
            FleetFrame::Report(report) => Ok(*report),
            other => Err(unexpected(&other)),
        }
    }

    fn net_stats(&self) -> NetStats {
        let mut stats = self.stats;
        // injected-fault counters live in the shared plan state; the
        // live connection's dedup count has not been harvested yet
        stats.merge(&self.faults.stats());
        if let Some(conn) = &self.conn {
            stats.dup_frames_skipped += conn.dup_frames_skipped();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scriptable fake replica: admits everything until `die_at`,
    /// reporting a fixed health snapshot.
    struct FakeReplica {
        name: String,
        predicted_ms: f64,
        health: ReplicaHealth,
        admitted: Vec<(usize, f64)>,
        shed_all: bool,
        die_on_submit: Option<usize>,
        die_on_finish: bool,
        submits: usize,
        dead: bool,
    }

    impl FakeReplica {
        fn new(name: &str, predicted_ms: f64) -> Self {
            FakeReplica {
                name: name.into(),
                predicted_ms,
                health: ReplicaHealth::default(),
                admitted: Vec::new(),
                shed_all: false,
                die_on_submit: None,
                die_on_finish: false,
                submits: 0,
                dead: false,
            }
        }
    }

    impl ReplicaLink for FakeReplica {
        fn name(&self) -> &str {
            &self.name
        }
        fn device(&self) -> &str {
            "fake"
        }
        fn predicted_ms(&self) -> f64 {
            self.predicted_ms
        }
        fn warm_start(&self) -> bool {
            false
        }
        fn submit(&mut self, id: usize, arrival_ms: f64) -> io::Result<(bool, ReplicaHealth)> {
            if self.dead {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "dead"));
            }
            self.submits += 1;
            if self.die_on_submit.is_some_and(|nth| self.submits >= nth) {
                self.dead = true;
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "died"));
            }
            if self.shed_all {
                return Ok((false, self.health));
            }
            self.admitted.push((id, arrival_ms));
            Ok((true, self.health))
        }
        fn orphans(&mut self) -> (Option<Vec<(usize, f64)>>, Option<ReplicaReport>) {
            // behaves like a remote crash: nothing recoverable
            (None, None)
        }
        fn finish(&mut self) -> io::Result<ReplicaReport> {
            if self.dead {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "dead"));
            }
            if self.die_on_finish {
                self.dead = true;
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "died during drain"));
            }
            Ok(ReplicaReport {
                name: self.name.clone(),
                device: "fake".into(),
                offered: self.admitted.len(),
                completed: self
                    .admitted
                    .iter()
                    .map(|&(id, _)| (id, self.predicted_ms))
                    .collect(),
                shed: vec![],
                expired: vec![],
                failed: vec![],
                batches: self.admitted.len(),
                makespan_ms: 0.0,
                degraded_batches: 0,
                breaker_trips: 0,
                breaker_recoveries: 0,
                digest: 7,
                warm_start: false,
                dead: false,
            })
        }
    }

    fn pool(replicas: Vec<FakeReplica>) -> Vec<Box<dyn ReplicaLink>> {
        replicas
            .into_iter()
            .map(|r| Box::new(r) as Box<dyn ReplicaLink>)
            .collect()
    }

    #[test]
    fn pow2_prefers_the_lighter_faster_replica() {
        // one fast idle replica vs one slow replica with a deep queue:
        // every two-candidate draw that sees both must pick the fast one
        let fast = FakeReplica::new("fast", 1.0);
        let mut slow = FakeReplica::new("slow", 10.0);
        slow.health.queue_depth = 8;
        let mut router = Router::new(RouterConfig::default(), pool(vec![fast, slow]));
        for id in 0..64 {
            assert!(router.route(id, id as f64));
        }
        let report = router.finish();
        assert_eq!(report.lost(), 0);
        let fast_share = report.replicas[0].offered;
        let slow_share = report.replicas[1].offered;
        assert!(
            fast_share > slow_share,
            "fast {fast_share} vs slow {slow_share}"
        );
    }

    #[test]
    fn round_robin_ignores_load() {
        let fast = FakeReplica::new("fast", 1.0);
        let mut slow = FakeReplica::new("slow", 50.0);
        slow.health.queue_depth = 100;
        let cfg = RouterConfig {
            policy: RoutePolicy::RoundRobin,
            ..RouterConfig::default()
        };
        let mut router = Router::new(cfg, pool(vec![fast, slow]));
        for id in 0..10 {
            router.route(id, id as f64);
        }
        let report = router.finish();
        assert_eq!(report.replicas[0].offered, 5);
        assert_eq!(report.replicas[1].offered, 5);
    }

    #[test]
    fn open_breaker_gets_zero_admissions_until_its_probe_instant() {
        let mut tripped = FakeReplica::new("tripped", 1.0);
        tripped.health.breaker = 1.0;
        tripped.health.breaker_open_until_ms = Some(100.0);
        let healthy = FakeReplica::new("healthy", 5.0);
        let mut router = Router::new(RouterConfig::default(), pool(vec![tripped, healthy]));
        for id in 0..20 {
            assert!(router.route(id, id as f64 * 4.0)); // arrivals 0..76
        }
        // arrivals past 100 may probe the tripped replica again
        assert!(router.route(20, 120.0));
        let report = router.finish();
        assert_eq!(report.lost(), 0);
        for d in &report.decisions {
            if d.replica == 0 && d.breaker == 1.0 {
                assert!(
                    d.arrival_ms >= 100.0,
                    "open replica admitted id {} at {}",
                    d.id,
                    d.arrival_ms
                );
            }
        }
        // before the probe instant, everything went to the healthy peer
        assert!(report.replicas[1].offered >= 20);
    }

    #[test]
    fn burning_replica_sheds_to_peers() {
        let mut burning = FakeReplica::new("burning", 1.0);
        burning.health.burn_rate = 100.0;
        let calm = FakeReplica::new("calm", 5.0);
        let mut router = Router::new(RouterConfig::default(), pool(vec![burning, calm]));
        for id in 0..12 {
            assert!(router.route(id, id as f64));
        }
        let report = router.finish();
        assert_eq!(report.replicas[0].offered, 0);
        assert_eq!(report.replicas[1].offered, 12);
    }

    #[test]
    fn remote_death_fails_the_backlog_over_without_loss() {
        let mut doomed = FakeReplica::new("doomed", 1.0);
        doomed.die_on_submit = Some(5);
        let survivor = FakeReplica::new("survivor", 1.0);
        let mut router = Router::new(RouterConfig::default(), pool(vec![doomed, survivor]));
        for id in 0..30 {
            assert!(router.route(id, id as f64));
        }
        let report = router.finish();
        assert_eq!(report.replica_deaths, 1);
        assert!(report.rerouted > 0, "the doomed backlog must re-route");
        assert_eq!(report.lost(), 0);
        assert_eq!(report.completed.len(), 30);
        assert!(report.replicas[0].dead);
        // every id completed exactly once
        let ids: Vec<usize> = report.completed.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn a_fully_unhealthy_fleet_sheds_instead_of_losing() {
        let mut a = FakeReplica::new("a", 1.0);
        a.shed_all = true;
        let mut b = FakeReplica::new("b", 1.0);
        b.shed_all = true;
        let mut router = Router::new(RouterConfig::default(), pool(vec![a, b]));
        for id in 0..5 {
            assert!(!router.route(id, id as f64));
        }
        let report = router.finish();
        assert_eq!(report.shed, vec![0, 1, 2, 3, 4]);
        assert_eq!(report.lost(), 0);
    }

    #[test]
    fn identical_runs_route_and_digest_identically() {
        let run = || {
            let mut doomed = FakeReplica::new("doomed", 2.0);
            doomed.die_on_submit = Some(7);
            let steady = FakeReplica::new("steady", 1.0);
            let slow = FakeReplica::new("slow", 8.0);
            let mut router =
                Router::new(RouterConfig::default(), pool(vec![doomed, steady, slow]));
            for id in 0..50 {
                router.route(id, id as f64 * 0.5);
            }
            router.finish()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.lost(), 0);
    }

    #[test]
    fn round_robin_skips_dead_replicas() {
        let mut doomed = FakeReplica::new("doomed", 1.0);
        doomed.die_on_submit = Some(3);
        let survivor = FakeReplica::new("survivor", 1.0);
        let cfg = RouterConfig {
            policy: RoutePolicy::RoundRobin,
            ..RouterConfig::default()
        };
        let mut router = Router::new(cfg, pool(vec![doomed, survivor]));
        for id in 0..20 {
            assert!(router.route(id, id as f64));
        }
        let report = router.finish();
        assert_eq!(report.replica_deaths, 1);
        assert_eq!(report.lost(), 0);
        assert_eq!(report.duplicate_completions(), 0);
        assert!(report.replicas[0].dead);
        // after the dying submit, the rotation must never land on the
        // corpse again
        let death_idx = report
            .decisions
            .iter()
            .rposition(|d| d.replica == 0)
            .expect("replica 0 took traffic before dying");
        assert!(
            report.decisions[death_idx + 1..].iter().all(|d| d.replica != 0),
            "round-robin kept offering to a dead replica"
        );
        let ids: Vec<usize> = report.completed.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn round_robin_gives_an_open_breaker_zero_admissions_before_its_probe() {
        let mut tripped = FakeReplica::new("tripped", 1.0);
        tripped.health.breaker = 1.0;
        tripped.health.breaker_open_until_ms = Some(100.0);
        let healthy = FakeReplica::new("healthy", 1.0);
        let cfg = RouterConfig {
            policy: RoutePolicy::RoundRobin,
            ..RouterConfig::default()
        };
        let mut router = Router::new(cfg, pool(vec![tripped, healthy]));
        for id in 0..10 {
            assert!(router.route(id, id as f64)); // arrivals 0..9, all pre-probe
        }
        assert!(router.route(10, 150.0)); // past the probe instant
        let report = router.finish();
        assert_eq!(report.lost(), 0);
        for d in &report.decisions {
            if d.replica == 0 {
                assert!(
                    d.arrival_ms >= 100.0,
                    "open replica admitted id {} at {}",
                    d.id,
                    d.arrival_ms
                );
            }
        }
        // everything pre-probe went to the healthy peer
        assert_eq!(report.replicas[1].offered, 10);
    }

    #[test]
    fn a_death_during_shutdown_fails_over_to_undrained_replicas_only() {
        // pool order [steady, doomed]: steady drains first and is already
        // finished when doomed dies on its own finish, so doomed's
        // backlog has nowhere to go but the shed bucket — accounted, not
        // lost, and never offered to a finished replica.
        let steady = FakeReplica::new("steady", 1.0);
        let mut doomed = FakeReplica::new("doomed", 1.0);
        doomed.die_on_finish = true;
        let mut router = Router::new(RouterConfig::default(), pool(vec![steady, doomed]));
        for id in 0..16 {
            assert!(router.route(id, id as f64));
        }
        let report = router.finish();
        assert_eq!(report.replica_deaths, 1);
        assert_eq!(report.lost(), 0);
        assert!(report.replicas[1].dead);
        assert!(!report.shed.is_empty(), "the doomed backlog must be shed");
        assert_eq!(report.completed.len() + report.shed.len(), 16);
        assert_eq!(report.completed.len(), report.replicas[0].completed.len());
        for d in report.decisions.iter().filter(|d| d.rerouted) {
            assert_ne!(d.replica, 0, "failover targeted a finished replica");
        }
    }
}
