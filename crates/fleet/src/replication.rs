//! Warm artifact replication.
//!
//! Compiling (let alone tuning) a model once per replica wastes exactly
//! the work the artifact cache exists to save: schedules depend on the
//! *device*, not the replica, so every replica simulating the same GPU can
//! serve from one compile. This module rebuilds the on-wire [`Artifact`]
//! from a [`CompiledModel`] and seeds peer caches with it — over a
//! directory for in-process pools, or as a JSONL frame payload for remote
//! replicas (see [`FleetFrame::PushArtifact`]) — so a cold peer's
//! `Engine::compile` becomes a disk hit (`from_cache() == true`).
//!
//! [`FleetFrame::PushArtifact`]: crate::proto::FleetFrame::PushArtifact

use std::collections::HashMap;
use std::io;
use std::path::Path;
use unigpu_engine::{Artifact, ArtifactCache, ArtifactMeta, CompiledModel};

use crate::replica::ReplicaLink;

/// Reconstruct the artifact `Engine::compile` persisted for `compiled` —
/// same key, same cost table, same schedule records — without touching
/// the engine's cache. This is what replication ships to peers.
pub fn artifact_of(compiled: &CompiledModel) -> Artifact {
    let key = compiled.key();
    Artifact {
        meta: ArtifactMeta {
            kind: unigpu_engine::ARTIFACT_KIND.into(),
            version: unigpu_engine::ARTIFACT_VERSION,
            model: key.model.clone(),
            fingerprint: key.fingerprint,
            device: key.device.clone(),
            tuning: key.tuning.clone(),
            nodes: compiled.placement().graph.nodes.len(),
            total_ms: compiled.estimate().total_ms,
            cost_table: compiled.cost_table().to_vec(),
        },
        records: compiled.schedule_records(),
    }
}

/// Seed a replica's artifact-cache directory with `artifact`, so the
/// replica's next compile of the same (model, device, tuning) key is a
/// disk hit instead of a recompilation.
pub fn store_in_dir(dir: &Path, artifact: &Artifact) {
    let mut cache = ArtifactCache::with_dir(1, dir);
    cache.put(artifact.key(), artifact.clone());
}

/// Parse a pushed JSONL payload and store it in `dir`. Returns `false`
/// (not an IO error) on a malformed payload: a bad push must never take
/// the replica down, only leave it cold.
pub fn store_jsonl_in_dir(dir: &Path, jsonl: &str) -> bool {
    match Artifact::from_jsonl(jsonl) {
        Ok(artifact) => {
            store_in_dir(dir, &artifact);
            true
        }
        Err(_) => false,
    }
}

/// Warm a remote pool, then load the model everywhere. The first replica
/// of each device class loads cold (compiling if its cache is empty) and
/// donates its artifact; every later same-device replica receives a
/// `PushArtifact` *before* its `Load`, so it comes up warm. Returns each
/// replica's warm flag, in pool order.
pub fn warm_remote_pool(
    replicas: &mut [crate::router::RemoteReplica],
    model: &str,
) -> io::Result<Vec<bool>> {
    let mut donor_jsonl: HashMap<String, String> = HashMap::new();
    let mut warm = Vec::with_capacity(replicas.len());
    for replica in replicas.iter_mut() {
        let device = replica.device().to_string();
        if let Some(jsonl) = donor_jsonl.get(&device) {
            replica.push_artifact(jsonl)?;
        }
        let (is_warm, _predicted_ms) = replica.load(model)?;
        if !donor_jsonl.contains_key(&device) {
            donor_jsonl.insert(device, replica.fetch_artifact()?);
        }
        warm.push(is_warm);
    }
    Ok(warm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigpu_device::Platform;
    use unigpu_engine::Engine;
    use unigpu_graph::{Activation, Graph, OpKind};
    use unigpu_ops::ConvWorkload;
    use unigpu_tensor::{Shape, Tensor};

    fn tiny_graph() -> Graph {
        let mut g = Graph::new("replication-test");
        let w = ConvWorkload::square(1, 3, 8, 8, 3, 1, 1);
        let x = g.add(
            OpKind::Input {
                shape: Shape::from(w.input_shape()),
            },
            vec![],
            "data",
        );
        let wt = g.add(
            OpKind::Constant(Tensor::zeros(w.weight_shape())),
            vec![],
            "w0",
        );
        let conv = g.add(
            OpKind::Conv2d {
                w,
                bias: false,
                act: Activation::Relu,
            },
            vec![x, wt],
            "conv0",
        );
        g.mark_output(conv);
        g
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "unigpu-fleet-replication-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn rebuilt_artifact_matches_the_compile() {
        let engine = Engine::builder()
            .platform(Platform::deeplens())
            .persist(false)
            .build();
        let compiled = engine.compile(&tiny_graph());
        let artifact = artifact_of(&compiled);
        assert_eq!(&artifact.key(), compiled.key());
        assert_eq!(artifact.meta.cost_table, compiled.cost_table());
        assert_eq!(artifact.meta.nodes, compiled.placement().graph.nodes.len());
        // survives the wire form round trip intact
        let back = Artifact::from_jsonl(&artifact.to_jsonl()).unwrap();
        assert_eq!(back.key(), artifact.key());
        assert_eq!(back.records.len(), artifact.records.len());
    }

    #[test]
    fn pushed_artifact_turns_a_cold_peer_warm() {
        let g = tiny_graph();
        let donor = Engine::builder()
            .platform(Platform::deeplens())
            .persist(false)
            .build();
        let compiled = donor.compile(&g);
        assert!(!compiled.from_cache());

        let peer_dir = temp_dir("warm");
        assert!(store_jsonl_in_dir(&peer_dir, &artifact_of(&compiled).to_jsonl()));
        let peer = Engine::builder()
            .platform(Platform::deeplens())
            .cache_dir(&peer_dir)
            .build();
        let warm = peer.compile(&g);
        assert!(warm.from_cache(), "peer must hit the replicated artifact");
        assert_eq!(warm.cost_table(), compiled.cost_table());
        let _ = std::fs::remove_dir_all(&peer_dir);
    }

    #[test]
    fn malformed_push_is_refused_not_fatal() {
        let dir = temp_dir("bad");
        assert!(!store_jsonl_in_dir(&dir, "{ not an artifact"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replication_does_not_cross_device_classes() {
        let g = tiny_graph();
        let donor = Engine::builder()
            .platform(Platform::deeplens())
            .persist(false)
            .build();
        let artifact = artifact_of(&donor.compile(&g));

        // a Mali replica seeded with an Intel artifact stays cold: the key
        // embeds the device name, so the lookup misses
        let dir = temp_dir("cross");
        store_in_dir(&dir, &artifact);
        let peer = Engine::builder()
            .platform(Platform::aisage())
            .cache_dir(&dir)
            .build();
        assert!(!peer.compile(&g).from_cache());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
