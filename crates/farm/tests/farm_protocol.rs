//! Farm protocol and fault-tolerance tests: loopback parity with the serial
//! dispatcher, malformed-frame rejection, lease re-queue on worker death,
//! and duplicate-result idempotency.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;
use unigpu_device::DeviceSpec;
use unigpu_farm::{
    read_frame, run_worker, write_frame, FarmClient, FaultPlan, Frame, Tracker, TrackerConfig,
    TrackerHandle, WorkerConfig, WorkerExit,
};
use unigpu_ops::ConvWorkload;
use unigpu_tuner::{tune_one, DispatchError, Dispatcher, SerialDispatcher, TuneJob, TuningBudget};

fn spec() -> DeviceSpec {
    DeviceSpec::intel_hd505()
}

fn budget() -> TuningBudget {
    TuningBudget { trials_per_workload: 8, ..Default::default() }
}

fn test_jobs() -> Vec<TuneJob> {
    [
        ConvWorkload::square(1, 32, 32, 14, 3, 1, 1),
        ConvWorkload::square(1, 32, 64, 14, 1, 1, 0),
    ]
    .iter()
    .enumerate()
    .map(|(index, &workload)| TuneJob { index, workload })
    .collect()
}

fn spawn_tracker(cfg: TrackerConfig) -> TrackerHandle {
    Tracker::spawn("127.0.0.1:0", cfg).expect("tracker binds an ephemeral port")
}

fn spawn_worker(
    addr: String,
    name: &str,
    faults: FaultPlan,
) -> std::thread::JoinHandle<std::io::Result<WorkerExit>> {
    let cfg = WorkerConfig {
        name: name.into(),
        poll: Duration::from_millis(5),
        max_idle_polls: Some(2000),
        reconnects: 0,
        faults,
        net_faults: Default::default(),
    };
    std::thread::spawn(move || run_worker(&addr, spec(), cfg))
}

#[test]
fn farm_loopback_matches_serial_dispatch() {
    let handle = spawn_tracker(TrackerConfig::default());
    let addr = handle.addr().to_string();
    let _w1 = spawn_worker(addr.clone(), "w1", FaultPlan::default());
    let _w2 = spawn_worker(addr.clone(), "w2", FaultPlan::default());

    let jobs = test_jobs();
    let client = FarmClient::new(addr).poll_interval(Duration::from_millis(10));
    let farm = client.dispatch(&jobs, &spec(), &budget()).expect("farm dispatch succeeds");
    let serial = SerialDispatcher.dispatch(&jobs, &spec(), &budget()).unwrap();

    assert_eq!(farm.len(), serial.len());
    for (f, s) in farm.iter().zip(&serial) {
        assert_eq!(f.index, s.index);
        assert_eq!(f.record, s.record, "farm results must be bit-identical at zero noise");
        assert_eq!(f.candidates, s.candidates);
    }
    let m = handle.metrics();
    assert_eq!(m.counter("farm.results"), jobs.len() as u64);
    assert_eq!(m.counter("farm.jobs_failed"), 0);
    // every result ships a measured-vs-predicted sample, and at zero noise
    // the measurement agrees with the cost model exactly
    assert_eq!(m.counter("farm.drift.samples"), jobs.len() as u64);
    assert_eq!(m.gauge("farm.drift.max_abs_rel_err"), Some(0.0));
    assert!(!handle.spans().is_empty(), "each lease records a span");
    handle.stop();
}

#[test]
fn lease_spans_stitch_into_the_submitters_trace() {
    use unigpu_telemetry::TraceContext;
    let handle = spawn_tracker(TrackerConfig::default());
    let addr = handle.addr().to_string();
    let _w = spawn_worker(addr.clone(), "traced", FaultPlan::default());

    let jobs = test_jobs();
    let root = TraceContext::from_seed(0xfeed);
    let client = FarmClient::new(addr)
        .poll_interval(Duration::from_millis(10))
        .with_trace(root);
    client.dispatch(&jobs, &spec(), &budget()).expect("traced dispatch succeeds");

    let spans = handle.spans().spans();
    let lease_spans: Vec<_> = spans.iter().filter(|s| s.category == "farm.lease").collect();
    assert_eq!(lease_spans.len(), jobs.len(), "one lease span per job");
    for s in &lease_spans {
        let ctx = s.trace.expect("lease span carries the trace");
        assert_eq!(
            ctx.trace_id, root.trace_id,
            "remote lease spans share the submitting compile's trace id"
        );
        assert_ne!(ctx.span_id, root.span_id, "each lease is its own hop");
    }
    // span ids are the deterministic per-job children of the root
    let expected: std::collections::HashSet<u64> =
        (0..jobs.len()).map(|i| root.child(i as u64).span_id).collect();
    let got: std::collections::HashSet<u64> =
        lease_spans.iter().map(|s| s.trace.unwrap().span_id).collect();
    assert_eq!(got, expected);
    handle.stop();
}

#[test]
fn malformed_frames_do_not_kill_the_tracker() {
    let handle = spawn_tracker(TrackerConfig::default());
    let addr = handle.addr();

    // Garbage JSON behind a valid length prefix: answered with an Error
    // frame, connection dropped, tracker alive.
    let mut garbage = TcpStream::connect(addr).unwrap();
    let body = b"{ not json";
    garbage.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
    garbage.write_all(body).unwrap();
    match read_frame(&mut garbage) {
        Ok(Frame::Error { .. }) => {}
        other => panic!("expected an Error frame for garbage JSON, got {other:?}"),
    }

    // Oversized length prefix: rejected before allocating.
    let mut oversized = TcpStream::connect(addr).unwrap();
    oversized.write_all(&u32::MAX.to_be_bytes()).unwrap();
    match read_frame(&mut oversized) {
        Ok(Frame::Error { .. }) => {}
        other => panic!("expected an Error frame for an oversized prefix, got {other:?}"),
    }

    // Truncated frame: the length prefix promises more bytes than ever
    // arrive. Closing the socket must read as a dead peer, nothing worse.
    let mut truncated = TcpStream::connect(addr).unwrap();
    truncated.write_all(&1024u32.to_be_bytes()).unwrap();
    truncated.write_all(b"short").unwrap();
    drop(truncated);

    // The tracker still serves a healthy client afterwards.
    let mut probe = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut probe,
        &Frame::Register {
            name: "probe".into(),
            device: spec().name.clone(),
            framing: None,
            resume: None,
        },
    )
    .unwrap();
    match read_frame(&mut probe).unwrap() {
        Frame::RegisterAck { .. } => {}
        other => panic!("tracker no longer registers workers: {other:?}"),
    }
    assert!(handle.metrics().counter("farm.protocol_errors") >= 2);
    handle.stop();
}

#[test]
fn killed_worker_lease_is_requeued_and_finished_by_a_healthy_worker() {
    let cfg = TrackerConfig {
        lease: Duration::from_millis(500),
        reap_every: Duration::from_millis(10),
        ..Default::default()
    };
    let handle = spawn_tracker(cfg);
    let addr = handle.addr().to_string();
    // The doomed worker dies the moment its first lease is granted, holding
    // the job; its disconnect must re-queue the lease exactly once. It is
    // the only worker until it dies, so it deterministically leases job 0.
    let doomed = spawn_worker(
        addr.clone(),
        "doomed",
        FaultPlan { kill_after_leases: Some(1), ..Default::default() },
    );

    let jobs = test_jobs();
    let client_thread = {
        let addr = addr.clone();
        let jobs = jobs.clone();
        std::thread::spawn(move || {
            FarmClient::new(addr)
                .poll_interval(Duration::from_millis(10))
                .dispatch(&jobs, &spec(), &budget())
        })
    };
    assert_eq!(doomed.join().unwrap().unwrap(), WorkerExit::Killed);

    // Only now does a healthy worker join and drain the batch.
    let _healthy = spawn_worker(addr, "healthy", FaultPlan::default());
    let farm =
        client_thread.join().unwrap().expect("batch survives the killed worker");
    let serial = SerialDispatcher.dispatch(&jobs, &spec(), &budget()).unwrap();
    for (f, s) in farm.iter().zip(&serial) {
        assert_eq!(f.record, s.record, "re-queued jobs still reproduce the serial result");
    }
    let m = handle.metrics();
    assert_eq!(m.counter("farm.requeues"), 1, "exactly one re-queue for the one dropped lease");
    assert_eq!(m.counter("farm.jobs_failed"), 0);
    handle.stop();
}

#[test]
fn exhausted_retry_budget_fails_the_job() {
    let cfg = TrackerConfig {
        max_retries: 0,
        lease: Duration::from_millis(500),
        reap_every: Duration::from_millis(10),
        ..Default::default()
    };
    let handle = spawn_tracker(cfg);
    let addr = handle.addr().to_string();
    // The only worker dies on its first lease and never comes back; with a
    // zero retry budget the job must fail rather than hang the batch.
    let _doomed = spawn_worker(
        addr.clone(),
        "doomed",
        FaultPlan { kill_after_leases: Some(1), ..Default::default() },
    );

    let jobs = vec![test_jobs()[0]];
    let client = FarmClient::new(addr).poll_interval(Duration::from_millis(10));
    let err = client.dispatch(&jobs, &spec(), &budget()).expect_err("the job must fail");
    match err {
        DispatchError::JobsFailed { failed, first_error } => {
            assert_eq!(failed, 1);
            assert!(first_error.contains("retry budget exhausted"), "got: {first_error}");
        }
        other => panic!("expected JobsFailed, got: {other}"),
    }
    assert_eq!(handle.metrics().counter("farm.jobs_failed"), 1);
    handle.stop();
}

#[test]
fn duplicate_result_frames_are_idempotent() {
    let handle = spawn_tracker(TrackerConfig::default());
    let addr = handle.addr();

    // Hand-rolled client and worker speaking raw frames.
    let mut client = TcpStream::connect(addr).unwrap();
    let jobs = vec![test_jobs()[0]];
    write_frame(
        &mut client,
        &Frame::Submit {
            device: spec().name.clone(),
            budget: budget(),
            jobs: jobs.clone(),
            trace: None,
        },
    )
    .unwrap();
    let batch_id = match read_frame(&mut client).unwrap() {
        Frame::SubmitAck { batch_id } => batch_id,
        other => panic!("expected SubmitAck, got {other:?}"),
    };

    let mut worker = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut worker,
        &Frame::Register {
            name: "raw".into(),
            device: spec().name.clone(),
            framing: None,
            resume: None,
        },
    )
    .unwrap();
    let worker_id = match read_frame(&mut worker).unwrap() {
        Frame::RegisterAck { worker_id, .. } => worker_id,
        other => panic!("expected RegisterAck, got {other:?}"),
    };
    write_frame(&mut worker, &Frame::RequestJob { worker_id }).unwrap();
    let (lease_id, job) = match read_frame(&mut worker).unwrap() {
        Frame::Lease { lease_id, job, .. } => (lease_id, job),
        other => panic!("expected Lease, got {other:?}"),
    };

    let outcome = tune_one(&job, &spec(), &budget());
    let result =
        Frame::Result { worker_id, lease_id, batch_id, outcome: Box::new(outcome), drift: None };
    // First result: accepted.
    write_frame(&mut worker, &result).unwrap();
    match read_frame(&mut worker).unwrap() {
        Frame::ResultAck { duplicate } => assert!(!duplicate),
        other => panic!("expected ResultAck, got {other:?}"),
    }
    // Identical retransmission: acknowledged as a duplicate, not recounted.
    write_frame(&mut worker, &result).unwrap();
    match read_frame(&mut worker).unwrap() {
        Frame::ResultAck { duplicate } => assert!(duplicate, "retransmission must read as duplicate"),
        other => panic!("expected ResultAck, got {other:?}"),
    }
    let m = handle.metrics();
    assert_eq!(m.counter("farm.results"), 1);
    assert_eq!(m.counter("farm.duplicate_results"), 1);

    // The batch still completes with exactly one outcome.
    write_frame(&mut client, &Frame::Poll { batch_id }).unwrap();
    match read_frame(&mut client).unwrap() {
        Frame::Status { done, failed, outcomes, .. } => {
            assert_eq!(done, 1);
            assert_eq!(failed, 0);
            assert_eq!(outcomes.len(), 1);
            assert_eq!(outcomes[0].index, 0);
        }
        other => panic!("expected Status, got {other:?}"),
    }
    handle.stop();
}
