//! Framing edge cases and v1↔v2 interop: segmented reads, the exact
//! MAX_FRAME_BYTES boundary from both sides, and mixed-version peers over
//! the live farm protocol.

use std::io::{self, Cursor, Read, Write};
use std::net::TcpStream;

use serde::{Deserialize, Serialize};
use unigpu_farm::framing::FrameError;
use unigpu_farm::{
    read_frame, write_frame, Frame, Framed, Tracker, TrackerConfig, FRAMING_VERSION,
    MAX_FRAME_BYTES,
};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Blob {
    data: String,
}

/// A blob whose serialized JSON body is exactly `body_len` bytes.
fn blob_of_body_len(body_len: usize) -> Blob {
    let overhead = serde_json::to_vec(&Blob { data: String::new() })
        .expect("empty blob serializes")
        .len();
    Blob { data: "z".repeat(body_len - overhead) }
}

/// A transport that hands back at most one byte per `read` call — the
/// worst-case TCP segmentation a frame reader must survive.
struct OneByteAtATime<S>(S);

impl<S: Read> Read for OneByteAtATime<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.0.read(&mut buf[..1])
    }
}

impl<S: Write> Write for OneByteAtATime<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

#[test]
fn both_formats_survive_a_byte_at_a_time_reader() {
    let frames = vec![
        Blob { data: "first".into() },
        Blob { data: "x".repeat(70_000) }, // bigger than any buffer a reader might use
        Blob { data: String::new() },
    ];
    for v2 in [false, true] {
        let mut tx = Framed::new(Cursor::new(Vec::new()));
        if v2 {
            tx.upgrade();
        }
        for f in &frames {
            tx.send(f).expect("send succeeds");
        }
        let wire = tx.get_ref().get_ref().clone();
        let mut rx = Framed::new(OneByteAtATime(Cursor::new(wire)));
        if v2 {
            rx.upgrade();
        }
        for f in &frames {
            assert_eq!(&rx.recv::<Blob>().expect("recv succeeds"), f, "v2={v2}");
        }
    }
}

#[test]
fn a_body_of_exactly_max_frame_bytes_round_trips() {
    let blob = blob_of_body_len(MAX_FRAME_BYTES);
    for v2 in [false, true] {
        let mut tx = Framed::new(Cursor::new(Vec::new()));
        if v2 {
            tx.upgrade();
        }
        tx.send(&blob).expect("a frame at the cap is legal");
        let wire = tx.get_ref().get_ref().clone();
        let mut rx = Framed::new(Cursor::new(wire));
        if v2 {
            rx.upgrade();
        }
        assert_eq!(rx.recv::<Blob>().expect("recv at the cap"), blob, "v2={v2}");
    }
}

#[test]
fn one_byte_over_the_cap_is_rejected_on_the_write_side() {
    let blob = blob_of_body_len(MAX_FRAME_BYTES + 1);
    for v2 in [false, true] {
        let mut tx = Framed::new(Cursor::new(Vec::new()));
        if v2 {
            tx.upgrade();
        }
        match tx.send(&blob) {
            Err(FrameError::TooLarge(n)) => assert_eq!(n, MAX_FRAME_BYTES + 1),
            other => panic!("expected TooLarge, got {other:?} (v2={v2})"),
        }
        assert!(
            tx.get_ref().get_ref().is_empty(),
            "an oversized frame must not touch the wire (v2={v2})"
        );
    }
}

#[test]
fn one_byte_over_the_cap_is_rejected_on_the_read_side() {
    let prefix = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
    for v2 in [false, true] {
        let mut rx = Framed::new(Cursor::new(prefix.clone()));
        if v2 {
            rx.upgrade();
        }
        match rx.recv::<Blob>() {
            Err(FrameError::TooLarge(n)) => assert_eq!(n, MAX_FRAME_BYTES + 1),
            other => panic!("expected TooLarge, got {other:?} (v2={v2})"),
        }
    }
}

#[test]
fn v1_and_v2_peers_interoperate_over_the_farm_protocol() {
    let handle = Tracker::spawn("127.0.0.1:0", TrackerConfig::default())
        .expect("tracker binds an ephemeral port");
    let addr = handle.addr().to_string();

    // A legacy peer registers without advertising a framing version; the
    // tracker must keep the whole connection in v1.
    let mut old = TcpStream::connect(&addr).unwrap();
    write_frame(
        &mut old,
        &Frame::Register {
            name: "old".into(),
            device: "legacy-dev".into(),
            framing: None,
            resume: None,
        },
    )
    .unwrap();
    let old_worker_id = match read_frame(&mut old).unwrap() {
        Frame::RegisterAck { worker_id, framing, .. } => {
            assert_eq!(framing, None, "a v1 peer must not be acked into v2");
            worker_id
        }
        other => panic!("expected RegisterAck, got {other:?}"),
    };
    // the connection still speaks plain v1 after the ack
    write_frame(&mut old, &Frame::RequestJob { worker_id: old_worker_id }).unwrap();
    match read_frame(&mut old).unwrap() {
        Frame::NoWork => {}
        other => panic!("v1 conn broken after ack: {other:?}"),
    }

    // A current peer negotiates v2 in the same hello exchange and both
    // sides switch immediately after the ack.
    let mut new = Framed::new(TcpStream::connect(&addr).unwrap());
    new.send(&Frame::Register {
        name: "new".into(),
        device: "modern-dev".into(),
        framing: Some(FRAMING_VERSION),
        resume: None,
    })
    .unwrap();
    let new_worker_id = match new.recv::<Frame>().unwrap() {
        Frame::RegisterAck { worker_id, framing, .. } => {
            assert_eq!(framing, Some(FRAMING_VERSION));
            worker_id
        }
        other => panic!("expected RegisterAck, got {other:?}"),
    };
    new.upgrade();
    new.send(&Frame::RequestJob { worker_id: new_worker_id }).unwrap();
    match new.recv::<Frame>().unwrap() {
        Frame::NoWork => {}
        other => panic!("v2 conn broken after upgrade: {other:?}"),
    }

    // both dialects served by the same tracker, interleaved
    write_frame(&mut old, &Frame::RequestJob { worker_id: old_worker_id }).unwrap();
    assert!(matches!(read_frame(&mut old).unwrap(), Frame::NoWork));
    handle.stop();
}
