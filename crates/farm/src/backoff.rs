//! Deterministic bounded exponential backoff, shared by the farm worker's
//! reconnect loop and the fleet router's reconnect-with-resume path.
//!
//! No RNG, no jitter, no wall-clock reads: the schedule is a pure function
//! of the attempt count (`min(base << used, max)`), so two replays of the
//! same fault plan wait the same simulated (or real) milliseconds in the
//! same order. Callers decide what a "delay" means — the worker sleeps for
//! real, the router just accounts the milliseconds on its simulated clock.

/// Bounded deterministic exponential backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base_ms: u64,
    max_ms: u64,
    attempts: u32,
    used: u32,
}

impl Backoff {
    /// A schedule of at most `attempts` delays starting at `base_ms` and
    /// doubling up to `max_ms`.
    pub fn new(base_ms: u64, max_ms: u64, attempts: u32) -> Backoff {
        Backoff { base_ms, max_ms, attempts, used: 0 }
    }

    /// The next delay in milliseconds, or `None` once the attempt budget
    /// is spent (the caller should give up and escalate).
    pub fn next_delay_ms(&mut self) -> Option<u64> {
        if self.used >= self.attempts {
            return None;
        }
        let shift = self.used.min(63);
        let delay = self.base_ms.saturating_shl(shift).min(self.max_ms);
        self.used += 1;
        Some(delay)
    }

    /// Forget past failures — call after a successful exchange so the next
    /// disconnect starts from the base delay with a full budget again.
    pub fn reset(&mut self) {
        self.used = 0;
    }

    /// Delays handed out since the last [`reset`](Backoff::reset).
    pub fn used(&self) -> u32 {
        self.used
    }

    pub fn attempts(&self) -> u32 {
        self.attempts
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_up_to_the_cap_then_exhausts() {
        let mut b = Backoff::new(10, 100, 6);
        let delays: Vec<u64> = std::iter::from_fn(|| b.next_delay_ms()).collect();
        assert_eq!(delays, vec![10, 20, 40, 80, 100, 100]);
        assert_eq!(b.next_delay_ms(), None);
        assert_eq!(b.used(), 6);
    }

    #[test]
    fn reset_restores_the_full_budget() {
        let mut b = Backoff::new(5, 1000, 3);
        assert_eq!(b.next_delay_ms(), Some(5));
        assert_eq!(b.next_delay_ms(), Some(10));
        b.reset();
        assert_eq!(b.next_delay_ms(), Some(5));
        assert_eq!(b.used(), 1);
    }

    #[test]
    fn zero_attempts_never_delays() {
        let mut b = Backoff::new(10, 100, 0);
        assert_eq!(b.next_delay_ms(), None);
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let mut b = Backoff::new(u64::MAX / 2, u64::MAX, 80);
        for _ in 0..80 {
            assert!(b.next_delay_ms().is_some());
        }
        assert_eq!(b.next_delay_ms(), None);
    }
}
