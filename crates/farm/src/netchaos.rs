//! Deterministic *wire-level* fault injection: the network itself as a
//! failure domain.
//!
//! `UNIGPU_NET_FAULTS` is a `/`-separated list of `key:value` knobs applied
//! to a [`ChaosStream`] wrapped around any `Read + Write` transport:
//!
//! * `drop_conn_nth:K` — every Kth outgoing frame kills the connection
//!   before a byte hits the wire (the peer sees EOF);
//! * `corrupt_byte_nth:K` — every Kth outgoing frame has one body byte
//!   flipped (a v2 peer answers `ChecksumMismatch`, a v1 peer a JSON parse
//!   error);
//! * `truncate_frame_nth:K` — every Kth outgoing frame is cut in half
//!   mid-write and the connection dies (the peer sees a short body + EOF);
//! * `dup_frame_nth:K` — every Kth outgoing frame is written twice
//!   (a v2 peer drops the replay by sequence number);
//! * `delay_frame_nth:K:MS` — every Kth outgoing frame is held MS
//!   milliseconds before sending.
//!
//! Everything is counter-based — no RNG, no wall-clock reads — so a faulty
//! run is exactly reproducible, and an empty plan is bit-identical to no
//! wrapper at all. Frame boundaries are inferred from `flush`: every codec
//! in this workspace writes one frame then flushes, so the chaos layer
//! buffers between flushes and injects per frame, not per syscall.

use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

/// Parsed `UNIGPU_NET_FAULTS` knobs. Default is no faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// Kill the connection on every Kth outgoing frame (1-based).
    pub drop_conn_nth: Option<u64>,
    /// Flip one byte in every Kth outgoing frame.
    pub corrupt_byte_nth: Option<u64>,
    /// Cut every Kth outgoing frame in half and kill the connection.
    pub truncate_frame_nth: Option<u64>,
    /// Send every Kth outgoing frame twice.
    pub dup_frame_nth: Option<u64>,
    /// `(K, MS)`: hold every Kth outgoing frame MS ms before sending.
    pub delay_frame_nth: Option<(u64, u64)>,
}

impl NetFaultPlan {
    /// Parse a `UNIGPU_NET_FAULTS` spec such as
    /// `drop_conn_nth:13/corrupt_byte_nth:9/delay_frame_nth:5:20`.
    /// Unknown keys and unparseable values are ignored — fault injection
    /// must never break a real run.
    pub fn parse(spec: &str) -> NetFaultPlan {
        let mut plan = NetFaultPlan::default();
        for part in spec.split('/').map(str::trim).filter(|p| !p.is_empty()) {
            let mut kv = part.splitn(3, ':');
            let key = kv.next().unwrap_or("");
            let first: Option<u64> = kv.next().and_then(|v| v.trim().parse().ok());
            let second: Option<u64> = kv.next().and_then(|v| v.trim().parse().ok());
            match (key, first) {
                ("drop_conn_nth", Some(k)) if k > 0 => plan.drop_conn_nth = Some(k),
                ("corrupt_byte_nth", Some(k)) if k > 0 => plan.corrupt_byte_nth = Some(k),
                ("truncate_frame_nth", Some(k)) if k > 0 => plan.truncate_frame_nth = Some(k),
                ("dup_frame_nth", Some(k)) if k > 0 => plan.dup_frame_nth = Some(k),
                ("delay_frame_nth", Some(k)) if k > 0 => {
                    plan.delay_frame_nth = Some((k, second.unwrap_or(0)))
                }
                _ => {}
            }
        }
        plan
    }

    /// Read the plan from `UNIGPU_NET_FAULTS` (empty plan when unset).
    pub fn from_env() -> NetFaultPlan {
        match std::env::var("UNIGPU_NET_FAULTS") {
            Ok(s) => NetFaultPlan::parse(&s),
            Err(_) => NetFaultPlan::default(),
        }
    }

    pub fn is_noop(&self) -> bool {
        *self == NetFaultPlan::default()
    }
}

/// What the counters decided to do with one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameFault {
    None,
    DropConn,
    Truncate,
    Corrupt,
    Dup,
    Delay(u64),
}

/// Transport-level counters: what the chaos layer injected, and what the
/// recovery machinery above it (reconnect/resume/dedup) had to do about
/// it. Folded fleet-wide into the router's `net.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections re-dialed after a transport failure.
    pub reconnects: u64,
    /// Reconnects that resumed an existing session (token accepted).
    pub resumes: u64,
    /// Request frames retransmitted after a reconnect.
    pub replayed_frames: u64,
    /// Frames rejected by the v2 CRC trailer (ours or the peer's).
    pub checksum_errors: u64,
    /// Duplicate frames silently skipped by sequence number.
    pub dup_frames_skipped: u64,
    /// Simulated-clock milliseconds spent in reconnect backoff.
    pub backoff_ms: u64,
    /// Injected: connections dropped by `drop_conn_nth`.
    pub conns_dropped: u64,
    /// Injected: bytes flipped by `corrupt_byte_nth`.
    pub bytes_corrupted: u64,
    /// Injected: frames cut short by `truncate_frame_nth`.
    pub frames_truncated: u64,
    /// Injected: frames doubled by `dup_frame_nth`.
    pub frames_duplicated: u64,
    /// Injected: frames held back by `delay_frame_nth`.
    pub frames_delayed: u64,
}

impl NetStats {
    pub fn merge(&mut self, other: &NetStats) {
        self.reconnects += other.reconnects;
        self.resumes += other.resumes;
        self.replayed_frames += other.replayed_frames;
        self.checksum_errors += other.checksum_errors;
        self.dup_frames_skipped += other.dup_frames_skipped;
        self.backoff_ms += other.backoff_ms;
        self.conns_dropped += other.conns_dropped;
        self.bytes_corrupted += other.bytes_corrupted;
        self.frames_truncated += other.frames_truncated;
        self.frames_duplicated += other.frames_duplicated;
        self.frames_delayed += other.frames_delayed;
    }

    /// True when any injection or recovery counter moved.
    pub fn any(&self) -> bool {
        *self != NetStats::default()
    }
}

struct NetFaultState {
    plan: NetFaultPlan,
    frames: u64,
    stats: NetStats,
}

impl NetFaultState {
    /// Advance the frame counter and decide this frame's fate. Precedence
    /// when several counters land on the same frame:
    /// drop > truncate > corrupt > dup > delay.
    fn on_frame(&mut self) -> FrameFault {
        self.frames += 1;
        let nth = |k: Option<u64>| k.is_some_and(|k| self.frames % k == 0);
        if nth(self.plan.drop_conn_nth) {
            self.stats.conns_dropped += 1;
            return FrameFault::DropConn;
        }
        if nth(self.plan.truncate_frame_nth) {
            self.stats.frames_truncated += 1;
            return FrameFault::Truncate;
        }
        if nth(self.plan.corrupt_byte_nth) {
            self.stats.bytes_corrupted += 1;
            return FrameFault::Corrupt;
        }
        if nth(self.plan.dup_frame_nth) {
            self.stats.frames_duplicated += 1;
            return FrameFault::Dup;
        }
        if let Some((k, ms)) = self.plan.delay_frame_nth {
            if self.frames % k == 0 {
                self.stats.frames_delayed += 1;
                return FrameFault::Delay(ms);
            }
        }
        FrameFault::None
    }
}

/// One fault-plan instance shared across every connection of a link (the
/// counters must survive reconnects, or `drop_conn_nth` would re-fire on
/// the same frame of every fresh connection forever).
#[derive(Clone)]
pub struct SharedNetFaults(Arc<Mutex<NetFaultState>>);

impl SharedNetFaults {
    pub fn new(plan: NetFaultPlan) -> SharedNetFaults {
        SharedNetFaults(Arc::new(Mutex::new(NetFaultState {
            plan,
            frames: 0,
            stats: NetStats::default(),
        })))
    }

    pub fn from_env() -> SharedNetFaults {
        SharedNetFaults::new(NetFaultPlan::from_env())
    }

    pub fn plan(&self) -> NetFaultPlan {
        self.0.lock().expect("net fault state poisoned").plan
    }

    /// Injection counters so far (the `conns_dropped`/`bytes_corrupted`/…
    /// half of [`NetStats`]).
    pub fn stats(&self) -> NetStats {
        self.0.lock().expect("net fault state poisoned").stats
    }

    fn on_frame(&self) -> FrameFault {
        self.0.lock().expect("net fault state poisoned").on_frame()
    }
}

impl std::fmt::Debug for SharedNetFaults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SharedNetFaults").field(&self.plan()).finish()
    }
}

fn conn_killed(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, format!("netchaos: {what}"))
}

/// A `Read + Write` wrapper that injects the shared plan's faults on the
/// outgoing frame stream. With an empty plan every call passes straight
/// through — bit-identical to the bare transport.
///
/// Writes are buffered until `flush`, which this workspace's codecs call
/// exactly once per frame; the buffered frame is then dropped, truncated,
/// corrupted, duplicated, delayed, or written verbatim. Once a fault kills
/// the connection, every later call fails with `ConnectionReset` until the
/// stream is dropped and the link re-dials.
pub struct ChaosStream<S> {
    inner: S,
    faults: SharedNetFaults,
    noop: bool,
    buf: Vec<u8>,
    dead: bool,
}

impl<S: Read + Write> ChaosStream<S> {
    pub fn new(inner: S, faults: SharedNetFaults) -> ChaosStream<S> {
        let noop = faults.plan().is_noop();
        ChaosStream { inner, faults, noop, buf: Vec::new(), dead: false }
    }

    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    pub fn faults(&self) -> &SharedNetFaults {
        &self.faults
    }
}

impl<S: Read + Write> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(conn_killed("connection already dropped"));
        }
        self.inner.read(buf)
    }
}

impl<S: Read + Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(conn_killed("connection already dropped"));
        }
        if self.noop {
            return self.inner.write(buf);
        }
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(conn_killed("connection already dropped"));
        }
        if self.noop {
            return self.inner.flush();
        }
        if self.buf.is_empty() {
            return self.inner.flush();
        }
        let mut frame = std::mem::take(&mut self.buf);
        match self.faults.on_frame() {
            FrameFault::DropConn => {
                self.dead = true;
                return Err(conn_killed("injected connection drop"));
            }
            FrameFault::Truncate => {
                let half = frame.len() / 2;
                self.inner.write_all(&frame[..half])?;
                let _ = self.inner.flush();
                self.dead = true;
                return Err(conn_killed("injected mid-frame truncation"));
            }
            FrameFault::Corrupt => {
                // Flip a byte past the length prefix so the peer reads a
                // complete frame and detects the damage, instead of
                // desyncing on a garbled length.
                let idx = (frame.len() / 2).clamp(4.min(frame.len() - 1), frame.len() - 1);
                frame[idx] ^= 0x55;
            }
            FrameFault::Dup => {
                self.inner.write_all(&frame)?;
            }
            FrameFault::Delay(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            FrameFault::None => {}
        }
        self.inner.write_all(&frame)?;
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = NetFaultPlan::parse(
            "drop_conn_nth:13/ corrupt_byte_nth:9 /truncate_frame_nth:6/dup_frame_nth:7/delay_frame_nth:5:20",
        );
        assert_eq!(p.drop_conn_nth, Some(13));
        assert_eq!(p.corrupt_byte_nth, Some(9));
        assert_eq!(p.truncate_frame_nth, Some(6));
        assert_eq!(p.dup_frame_nth, Some(7));
        assert_eq!(p.delay_frame_nth, Some((5, 20)));
        assert!(!p.is_noop());
    }

    #[test]
    fn junk_is_ignored() {
        let p = NetFaultPlan::parse("bogus:1/drop_conn_nth:zero/drop_conn_nth:0//:/:3/dup_frame_nth");
        assert!(p.is_noop());
    }

    /// One "frame" through a chaos stream: write then flush, like the codec.
    fn send(cs: &mut ChaosStream<std::io::Cursor<Vec<u8>>>, bytes: &[u8]) -> io::Result<()> {
        cs.write_all(bytes)?;
        cs.flush()
    }

    #[test]
    fn empty_plan_passes_bytes_through_untouched() {
        let mut cs = ChaosStream::new(
            std::io::Cursor::new(Vec::new()),
            SharedNetFaults::new(NetFaultPlan::default()),
        );
        send(&mut cs, b"hello frame one").unwrap();
        send(&mut cs, b"hello frame two").unwrap();
        assert_eq!(cs.get_ref().get_ref().as_slice(), b"hello frame onehello frame two");
        assert!(!cs.faults().stats().any());
    }

    #[test]
    fn drop_conn_kills_the_nth_frame_and_everything_after() {
        let faults = SharedNetFaults::new(NetFaultPlan::parse("drop_conn_nth:2"));
        let mut cs = ChaosStream::new(std::io::Cursor::new(Vec::new()), faults.clone());
        send(&mut cs, b"frame-1-ok").unwrap();
        let err = send(&mut cs, b"frame-2-dropped").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // the stream is dead: no write, no read, until re-dialed
        let err = send(&mut cs, b"frame-3").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(cs.get_ref().get_ref().as_slice(), b"frame-1-ok");
        assert_eq!(faults.stats().conns_dropped, 1);
        // counters live in the shared state: a fresh stream continues them,
        // so frame 4 (2nd of the new conn) is the next casualty
        let mut cs2 = ChaosStream::new(std::io::Cursor::new(Vec::new()), faults.clone());
        send(&mut cs2, b"frame-3-ok").unwrap();
        assert!(send(&mut cs2, b"frame-4-dropped").is_err());
        assert_eq!(faults.stats().conns_dropped, 2);
    }

    #[test]
    fn corrupt_flips_exactly_one_byte_in_the_nth_frame() {
        let faults = SharedNetFaults::new(NetFaultPlan::parse("corrupt_byte_nth:2"));
        let mut cs = ChaosStream::new(std::io::Cursor::new(Vec::new()), faults.clone());
        let frame = b"0123456789abcdef";
        send(&mut cs, frame).unwrap();
        send(&mut cs, frame).unwrap();
        let wire = cs.get_ref().get_ref();
        assert_eq!(&wire[..frame.len()], frame, "frame 1 untouched");
        let diffs: Vec<usize> = (0..frame.len())
            .filter(|&i| wire[frame.len() + i] != frame[i])
            .collect();
        assert_eq!(diffs.len(), 1, "exactly one corrupted byte");
        assert!(diffs[0] >= 4, "length prefix stays intact");
        assert_eq!(faults.stats().bytes_corrupted, 1);
    }

    #[test]
    fn truncate_writes_half_then_dies() {
        let faults = SharedNetFaults::new(NetFaultPlan::parse("truncate_frame_nth:1"));
        let mut cs = ChaosStream::new(std::io::Cursor::new(Vec::new()), faults.clone());
        let err = send(&mut cs, b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(cs.get_ref().get_ref().as_slice(), b"01234");
        assert_eq!(faults.stats().frames_truncated, 1);
    }

    #[test]
    fn dup_writes_the_nth_frame_twice() {
        let faults = SharedNetFaults::new(NetFaultPlan::parse("dup_frame_nth:2"));
        let mut cs = ChaosStream::new(std::io::Cursor::new(Vec::new()), faults.clone());
        send(&mut cs, b"aa").unwrap();
        send(&mut cs, b"bb").unwrap();
        send(&mut cs, b"cc").unwrap();
        assert_eq!(cs.get_ref().get_ref().as_slice(), b"aabbbbcc");
        assert_eq!(faults.stats().frames_duplicated, 1);
    }

    #[test]
    fn fault_precedence_is_deterministic() {
        // every counter lands on frame 6: drop wins
        let faults = SharedNetFaults::new(NetFaultPlan::parse(
            "drop_conn_nth:6/truncate_frame_nth:3/corrupt_byte_nth:2/dup_frame_nth:6",
        ));
        let mut cs = ChaosStream::new(std::io::Cursor::new(Vec::new()), faults.clone());
        let mut outcomes = Vec::new();
        for i in 0..6u8 {
            outcomes.push(send(&mut cs, &[b'f', b'0' + i, b'x', b'y', b'z', b'w']).is_ok());
            if !outcomes.last().unwrap() {
                break;
            }
        }
        // frame 1 ok, frame 2 corrupt (still ok), frame 3 truncates+dies
        assert_eq!(outcomes, vec![true, true, false]);
        let s = faults.stats();
        assert_eq!((s.bytes_corrupted, s.frames_truncated, s.conns_dropped), (1, 1, 0));
    }
}
