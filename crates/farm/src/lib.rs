//! # unigpu-farm
//!
//! A distributed measurement service for the auto-tuner, mirroring
//! AutoTVM's RPC tracker / measurement-worker architecture. The paper's
//! schedule search "took up to tens of hours ... for one device" (§3.2.3);
//! in production TVM amortizes that across a farm of devices. This crate
//! reproduces the coordination layer over plain TCP with length-prefixed
//! JSON frames — std networking only:
//!
//! * [`tracker`] — the coordination service: registers workers, leases
//!   jobs with deadlines and heartbeats, re-queues leases on worker death
//!   or timeout with bounded retries, accumulates per-batch results.
//! * [`worker`] — serves one simulated [`DeviceSpec`], running leased jobs
//!   through `unigpu_tuner::tune_one` (bit-identical to the serial path).
//! * [`client`] — [`FarmClient`], the `Dispatcher` impl that
//!   `tune_graph_with` uses to fan a model's workloads out to the farm.
//! * [`proto`] — the frame format shared by all three.
//! * [`framing`] — the protocol-agnostic length-prefixed JSON codec (also
//!   used by the fleet serving protocol in `unigpu-fleet`).
//! * [`fault`] — deterministic, counter-based fault injection
//!   (`UNIGPU_FARM_FAULTS`) for exercising the re-queue machinery.
//! * [`netchaos`] — deterministic *wire-level* fault injection
//!   (`UNIGPU_NET_FAULTS`): dropped connections, flipped bytes, truncated
//!   and duplicated frames, applied by a [`ChaosStream`] wrapper.
//! * [`backoff`] — the deterministic bounded reconnect schedule shared by
//!   the worker and the fleet router's resume path.
//!
//! [`DeviceSpec`]: unigpu_device::DeviceSpec

pub mod backoff;
pub mod client;
pub mod fault;
pub mod framing;
pub mod netchaos;
pub mod proto;
pub mod tracker;
pub mod worker;

pub use backoff::Backoff;
pub use client::FarmClient;
pub use fault::{FaultPlan, FaultState, SendFault};
pub use framing::{crc32, FrameError, Framed, FRAMING_VERSION};
pub use netchaos::{ChaosStream, NetFaultPlan, NetStats, SharedNetFaults};
pub use proto::{read_frame, write_frame, Frame, MAX_FRAME_BYTES};
pub use tracker::{Tracker, TrackerConfig, TrackerHandle, LANE_FARM_WORKER_BASE};
pub use worker::{run_worker, WorkerConfig, WorkerExit};
