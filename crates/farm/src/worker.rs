//! A farm worker: owns one simulated device and runs leased tuning jobs.
//!
//! The loop is deliberately simple — request a job, tune it with
//! [`tune_one_measured`] (the exact serial-pipeline body, so results are
//! bit-identical), send the result, repeat. While a job is tuning, a scoped
//! heartbeat thread keeps the lease alive; heartbeat failures are tolerated
//! because the tracker's re-queue path covers a lapsed lease anyway.
//!
//! Transport failures trigger a bounded reconnect on the shared
//! deterministic [`Backoff`] schedule. A reconnect *resumes*: the worker
//! offers its previous id in `Register { resume }`, re-attaches if the
//! tracker still knows it, and replays an unacked `Result` frame so a
//! connection dropped mid-ack cannot lose finished work (the tracker's
//! duplicate-result dedup absorbs the replay if the ack merely got lost).
//! Fault injection ([`FaultState`] for device faults, [`SharedNetFaults`]
//! for wire faults) lives worker-side and survives reconnects, so neither
//! a `kill_after_leases` budget nor a `drop_conn_nth` counter can be reset
//! by a dropped frame.

use crate::backoff::Backoff;
use crate::fault::{FaultPlan, FaultState, SendFault};
use crate::framing::{Framed, FRAMING_VERSION};
use crate::netchaos::{ChaosStream, NetFaultPlan, SharedNetFaults};
use crate::proto::Frame;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;
use unigpu_device::DeviceSpec;
use unigpu_telemetry::{tel_debug, tel_info, tel_warn};
use unigpu_tuner::{tune_one_measured, MeasuredDrift, TuneJob, TuneOutcome, TuningBudget};

/// How often the heartbeat thread checks whether tuning has finished.
const HEARTBEAT_TICK: Duration = Duration::from_millis(20);

/// Worker behaviour knobs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Display name reported to the tracker.
    pub name: String,
    /// Idle poll interval when the tracker has no work.
    pub poll: Duration,
    /// Exit cleanly after this many consecutive empty polls (`None` = serve
    /// forever; tests and the CI smoke test set a bound).
    pub max_idle_polls: Option<usize>,
    /// Reconnect attempts after transport failures before giving up (a
    /// lifetime budget, spent on the deterministic [`Backoff`] schedule).
    pub reconnects: usize,
    /// Deterministic fault injection (`UNIGPU_FARM_FAULTS`).
    pub faults: FaultPlan,
    /// Deterministic wire-fault injection (`UNIGPU_NET_FAULTS`).
    pub net_faults: NetFaultPlan,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            name: "worker".into(),
            poll: Duration::from_millis(25),
            max_idle_polls: None,
            reconnects: 5,
            faults: FaultPlan::default(),
            net_faults: NetFaultPlan::default(),
        }
    }
}

/// Why a worker's loop ended without a transport error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// Hit `max_idle_polls` consecutive empty polls.
    Idle,
    /// Fault injection spent its `kill_after_leases` budget mid-lease.
    Killed,
}

struct Conn {
    framed: Framed<ChaosStream<TcpStream>>,
    faults: FaultState,
}

impl Conn {
    /// One request/response exchange. The caller holds the connection lock
    /// for the whole exchange, so replies cannot interleave between the
    /// main loop and the heartbeat thread.
    fn rpc(&mut self, frame: &Frame) -> io::Result<Frame> {
        match self.faults.on_send() {
            SendFault::Drop => {
                tel_warn!("farm::worker", "fault injection: dropping outgoing frame");
                // No write: the read below times out and the session ends.
            }
            SendFault::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.framed.send(frame).map_err(io::Error::from)?;
            }
            SendFault::None => self.framed.send(frame).map_err(io::Error::from)?,
        }
        self.framed.recv().map_err(io::Error::from)
    }
}

fn lock(conn: &Mutex<Conn>) -> MutexGuard<'_, Conn> {
    conn.lock().expect("worker connection poisoned")
}

/// Cross-session worker state: identity to resume, and a finished result
/// whose ack never arrived, to replay on the next connection.
#[derive(Default)]
struct SessionState {
    resume: Option<u64>,
    pending: Option<Frame>,
}

/// Serve `tracker` with one simulated device until told to die (fault
/// injection), idled out (`max_idle_polls`), or out of reconnect attempts.
pub fn run_worker(tracker: &str, spec: DeviceSpec, cfg: WorkerConfig) -> io::Result<WorkerExit> {
    let mut faults = FaultState::new(cfg.faults);
    let net = SharedNetFaults::new(cfg.net_faults);
    let poll_ms = (cfg.poll.as_millis() as u64).max(1);
    let mut backoff = Backoff::new(poll_ms, poll_ms * 8, cfg.reconnects as u32);
    let mut state = SessionState::default();
    loop {
        match run_session(tracker, &spec, &cfg, &mut faults, &net, &mut state) {
            Ok(exit) => return Ok(exit),
            Err(e) => match backoff.next_delay_ms() {
                None => {
                    tel_warn!(
                        "farm::worker",
                        "{}: giving up after {} reconnect attempt(s): {e}",
                        cfg.name,
                        cfg.reconnects
                    );
                    return Err(e);
                }
                Some(delay_ms) => {
                    tel_info!(
                        "farm::worker",
                        "{}: transport error ({e}); reconnecting to {tracker} in {delay_ms}ms ({} attempt(s) left)",
                        cfg.name,
                        backoff.attempts() - backoff.used()
                    );
                    std::thread::sleep(Duration::from_millis(delay_ms));
                }
            },
        }
    }
}

/// One connection's lifetime: register (resuming a previous identity when
/// possible), replay any unacked result, serve, and on any error copy the
/// fault counters back out so the next session continues where it left off.
fn run_session(
    tracker: &str,
    spec: &DeviceSpec,
    cfg: &WorkerConfig,
    faults: &mut FaultState,
    net: &SharedNetFaults,
    state: &mut SessionState,
) -> io::Result<WorkerExit> {
    let stream = TcpStream::connect(tracker)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut conn0 =
        Conn { framed: Framed::new(ChaosStream::new(stream, net.clone())), faults: *faults };
    let register = Frame::Register {
        name: cfg.name.clone(),
        device: spec.name.clone(),
        framing: Some(FRAMING_VERSION),
        resume: state.resume,
    };
    let (worker_id, lease_ms) = match conn0.rpc(&register) {
        Ok(Frame::RegisterAck { worker_id, lease_ms, framing, resumed }) => {
            if framing == Some(FRAMING_VERSION) {
                conn0.framed.upgrade();
            }
            if resumed {
                tel_info!(
                    "farm::worker",
                    "{}: resumed as worker {worker_id} after reconnect",
                    cfg.name
                );
            }
            (worker_id, lease_ms)
        }
        Ok(other) => {
            *faults = conn0.faults;
            return Err(protocol_error(&other));
        }
        Err(e) => {
            *faults = conn0.faults;
            return Err(e);
        }
    };
    state.resume = Some(worker_id);
    tel_info!(
        "farm::worker",
        "{}: registered as worker {worker_id} for {} at {tracker} (framing v{})",
        cfg.name,
        spec.name,
        if conn0.framed.is_v2() { 2 } else { 1 }
    );
    let conn = Mutex::new(conn0);
    let result = replay_pending(&conn, cfg, state)
        .and_then(|()| session_loop(&conn, worker_id, lease_ms, spec, cfg, &mut state.pending));
    *faults = conn.into_inner().expect("worker connection poisoned").faults;
    result
}

/// Re-send a result whose ack was lost to a dropped connection. The
/// tracker's outcome dedup makes this idempotent: if the original frame
/// did land, the replay is acked `duplicate: true` and costs nothing.
fn replay_pending(conn: &Mutex<Conn>, cfg: &WorkerConfig, state: &mut SessionState) -> io::Result<()> {
    let Some(frame) = state.pending.clone() else { return Ok(()) };
    tel_info!("farm::worker", "{}: replaying unacked result after reconnect", cfg.name);
    match lock(conn).rpc(&frame)? {
        Frame::ResultAck { duplicate } => {
            if duplicate {
                tel_debug!(
                    "farm::worker",
                    "{}: replayed result was already recorded",
                    cfg.name
                );
            }
            state.pending = None;
            Ok(())
        }
        other => Err(protocol_error(&other)),
    }
}

fn session_loop(
    conn: &Mutex<Conn>,
    worker_id: u64,
    lease_ms: u64,
    spec: &DeviceSpec,
    cfg: &WorkerConfig,
    pending: &mut Option<Frame>,
) -> io::Result<WorkerExit> {
    let mut idle = 0usize;
    loop {
        let reply = lock(conn).rpc(&Frame::RequestJob { worker_id })?;
        match reply {
            Frame::Lease { lease_id, batch_id, budget, job, .. } => {
                idle = 0;
                if lock(conn).faults.lease_started() {
                    tel_warn!(
                        "farm::worker",
                        "{}: fault injection: dying mid-lease {lease_id}",
                        cfg.name
                    );
                    return Ok(WorkerExit::Killed);
                }
                tel_debug!(
                    "farm::worker",
                    "{}: lease {lease_id}: tuning job {} ({})",
                    cfg.name,
                    job.index,
                    job.workload.key()
                );
                let (outcome, drift) =
                    tune_leased(conn, worker_id, lease_id, &job, spec, &budget, lease_ms);
                let result = Frame::Result {
                    worker_id,
                    lease_id,
                    batch_id,
                    outcome: Box::new(outcome),
                    drift: Some(drift),
                };
                match lock(conn).rpc(&result) {
                    Ok(Frame::ResultAck { duplicate }) => {
                        if duplicate {
                            tel_debug!(
                                "farm::worker",
                                "{}: lease {lease_id}: result was a duplicate",
                                cfg.name
                            );
                        }
                    }
                    Ok(other) => return Err(protocol_error(&other)),
                    Err(e) => {
                        // The tuned outcome is real work: stash the frame so
                        // the next session replays it instead of losing it.
                        *pending = Some(result);
                        return Err(e);
                    }
                }
            }
            Frame::NoWork => {
                idle += 1;
                if let Some(max) = cfg.max_idle_polls {
                    if idle >= max {
                        tel_info!("farm::worker", "{}: idle for {idle} poll(s), exiting", cfg.name);
                        return Ok(WorkerExit::Idle);
                    }
                }
                std::thread::sleep(cfg.poll);
            }
            Frame::Error { message } => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, message));
            }
            other => return Err(protocol_error(&other)),
        }
    }
}

/// Run [`tune_one_measured`] while a scoped sibling thread heartbeats the
/// lease at a third of its duration. Heartbeat send errors are swallowed:
/// the worst case is a lease expiry, which the tracker's re-queue path
/// already covers. Returns the outcome plus the measured-vs-predicted drift
/// sample shipped back with the result frame.
fn tune_leased(
    conn: &Mutex<Conn>,
    worker_id: u64,
    lease_id: u64,
    job: &TuneJob,
    spec: &DeviceSpec,
    budget: &TuningBudget,
    lease_ms: u64,
) -> (TuneOutcome, MeasuredDrift) {
    let stop = AtomicBool::new(false);
    let interval = Duration::from_millis((lease_ms / 3).max(20));
    std::thread::scope(|s| {
        s.spawn(|| loop {
            let mut waited = Duration::ZERO;
            while waited < interval {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(HEARTBEAT_TICK);
                waited += HEARTBEAT_TICK;
            }
            let _ = lock(conn).rpc(&Frame::Heartbeat { worker_id, lease_id });
        });
        let out = tune_one_measured(job, spec, budget);
        stop.store(true, Ordering::Relaxed);
        out
    })
}

fn protocol_error(frame: &Frame) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("unexpected reply: {frame:?}"))
}
