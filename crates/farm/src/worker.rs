//! A farm worker: owns one simulated device and runs leased tuning jobs.
//!
//! The loop is deliberately simple — request a job, tune it with
//! [`tune_one_measured`] (the exact serial-pipeline body, so results are
//! bit-identical), send the result, repeat. While a job is tuning, a scoped
//! heartbeat thread keeps the lease alive; heartbeat failures are tolerated
//! because the tracker's re-queue path covers a lapsed lease anyway.
//!
//! Transport failures trigger a bounded reconnect (a fresh registration —
//! the tracker releases the old connection's leases on disconnect). Fault
//! injection ([`FaultState`]) lives worker-side and survives reconnects, so
//! a `kill_after_leases` budget cannot be reset by a dropped frame.

use crate::fault::{FaultPlan, FaultState, SendFault};
use crate::proto::{read_frame, write_frame, Frame};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;
use unigpu_device::DeviceSpec;
use unigpu_telemetry::{tel_debug, tel_info, tel_warn};
use unigpu_tuner::{tune_one_measured, MeasuredDrift, TuneJob, TuneOutcome, TuningBudget};

/// How often the heartbeat thread checks whether tuning has finished.
const HEARTBEAT_TICK: Duration = Duration::from_millis(20);

/// Worker behaviour knobs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Display name reported to the tracker.
    pub name: String,
    /// Idle poll interval when the tracker has no work.
    pub poll: Duration,
    /// Exit cleanly after this many consecutive empty polls (`None` = serve
    /// forever; tests and the CI smoke test set a bound).
    pub max_idle_polls: Option<usize>,
    /// Reconnect attempts after a transport failure before giving up.
    pub reconnects: usize,
    /// Deterministic fault injection (`UNIGPU_FARM_FAULTS`).
    pub faults: FaultPlan,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            name: "worker".into(),
            poll: Duration::from_millis(25),
            max_idle_polls: None,
            reconnects: 5,
            faults: FaultPlan::default(),
        }
    }
}

/// Why a worker's loop ended without a transport error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// Hit `max_idle_polls` consecutive empty polls.
    Idle,
    /// Fault injection spent its `kill_after_leases` budget mid-lease.
    Killed,
}

struct Conn {
    stream: TcpStream,
    faults: FaultState,
}

impl Conn {
    /// One request/response exchange. The caller holds the connection lock
    /// for the whole exchange, so replies cannot interleave between the
    /// main loop and the heartbeat thread.
    fn rpc(&mut self, frame: &Frame) -> io::Result<Frame> {
        match self.faults.on_send() {
            SendFault::Drop => {
                tel_warn!("farm::worker", "fault injection: dropping outgoing frame");
                // No write: the read below times out and the session ends.
            }
            SendFault::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                write_frame(&mut self.stream, frame)?;
            }
            SendFault::None => write_frame(&mut self.stream, frame)?,
        }
        read_frame(&mut self.stream)
    }
}

fn lock(conn: &Mutex<Conn>) -> MutexGuard<'_, Conn> {
    conn.lock().expect("worker connection poisoned")
}

/// Serve `tracker` with one simulated device until told to die (fault
/// injection), idled out (`max_idle_polls`), or out of reconnect attempts.
pub fn run_worker(tracker: &str, spec: DeviceSpec, cfg: WorkerConfig) -> io::Result<WorkerExit> {
    let mut faults = FaultState::new(cfg.faults);
    let mut attempts_left = cfg.reconnects;
    loop {
        match run_session(tracker, &spec, &cfg, &mut faults) {
            Ok(exit) => return Ok(exit),
            Err(e) => {
                if attempts_left == 0 {
                    tel_warn!(
                        "farm::worker",
                        "{}: giving up after {} reconnect attempt(s): {e}",
                        cfg.name,
                        cfg.reconnects
                    );
                    return Err(e);
                }
                attempts_left -= 1;
                tel_info!(
                    "farm::worker",
                    "{}: transport error ({e}); reconnecting to {tracker} ({attempts_left} attempt(s) left)",
                    cfg.name
                );
                std::thread::sleep(cfg.poll);
            }
        }
    }
}

/// One connection's lifetime: register, serve, and on any error copy the
/// fault counters back out so the next session continues where it left off.
fn run_session(
    tracker: &str,
    spec: &DeviceSpec,
    cfg: &WorkerConfig,
    faults: &mut FaultState,
) -> io::Result<WorkerExit> {
    let stream = TcpStream::connect(tracker)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut conn0 = Conn { stream, faults: *faults };
    let register = Frame::Register { name: cfg.name.clone(), device: spec.name.clone() };
    let (worker_id, lease_ms) = match conn0.rpc(&register) {
        Ok(Frame::RegisterAck { worker_id, lease_ms }) => (worker_id, lease_ms),
        Ok(other) => {
            *faults = conn0.faults;
            return Err(protocol_error(&other));
        }
        Err(e) => {
            *faults = conn0.faults;
            return Err(e);
        }
    };
    tel_info!(
        "farm::worker",
        "{}: registered as worker {worker_id} for {} at {tracker}",
        cfg.name,
        spec.name
    );
    let conn = Mutex::new(conn0);
    let result = session_loop(&conn, worker_id, lease_ms, spec, cfg);
    *faults = conn.into_inner().expect("worker connection poisoned").faults;
    result
}

fn session_loop(
    conn: &Mutex<Conn>,
    worker_id: u64,
    lease_ms: u64,
    spec: &DeviceSpec,
    cfg: &WorkerConfig,
) -> io::Result<WorkerExit> {
    let mut idle = 0usize;
    loop {
        let reply = lock(conn).rpc(&Frame::RequestJob { worker_id })?;
        match reply {
            Frame::Lease { lease_id, batch_id, budget, job, .. } => {
                idle = 0;
                if lock(conn).faults.lease_started() {
                    tel_warn!(
                        "farm::worker",
                        "{}: fault injection: dying mid-lease {lease_id}",
                        cfg.name
                    );
                    return Ok(WorkerExit::Killed);
                }
                tel_debug!(
                    "farm::worker",
                    "{}: lease {lease_id}: tuning job {} ({})",
                    cfg.name,
                    job.index,
                    job.workload.key()
                );
                let (outcome, drift) =
                    tune_leased(conn, worker_id, lease_id, &job, spec, &budget, lease_ms);
                let result = Frame::Result {
                    worker_id,
                    lease_id,
                    batch_id,
                    outcome: Box::new(outcome),
                    drift: Some(drift),
                };
                match lock(conn).rpc(&result)? {
                    Frame::ResultAck { duplicate } => {
                        if duplicate {
                            tel_debug!(
                                "farm::worker",
                                "{}: lease {lease_id}: result was a duplicate",
                                cfg.name
                            );
                        }
                    }
                    other => return Err(protocol_error(&other)),
                }
            }
            Frame::NoWork => {
                idle += 1;
                if let Some(max) = cfg.max_idle_polls {
                    if idle >= max {
                        tel_info!("farm::worker", "{}: idle for {idle} poll(s), exiting", cfg.name);
                        return Ok(WorkerExit::Idle);
                    }
                }
                std::thread::sleep(cfg.poll);
            }
            Frame::Error { message } => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, message));
            }
            other => return Err(protocol_error(&other)),
        }
    }
}

/// Run [`tune_one_measured`] while a scoped sibling thread heartbeats the
/// lease at a third of its duration. Heartbeat send errors are swallowed:
/// the worst case is a lease expiry, which the tracker's re-queue path
/// already covers. Returns the outcome plus the measured-vs-predicted drift
/// sample shipped back with the result frame.
fn tune_leased(
    conn: &Mutex<Conn>,
    worker_id: u64,
    lease_id: u64,
    job: &TuneJob,
    spec: &DeviceSpec,
    budget: &TuningBudget,
    lease_ms: u64,
) -> (TuneOutcome, MeasuredDrift) {
    let stop = AtomicBool::new(false);
    let interval = Duration::from_millis((lease_ms / 3).max(20));
    std::thread::scope(|s| {
        s.spawn(|| loop {
            let mut waited = Duration::ZERO;
            while waited < interval {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(HEARTBEAT_TICK);
                waited += HEARTBEAT_TICK;
            }
            let _ = lock(conn).rpc(&Frame::Heartbeat { worker_id, lease_id });
        });
        let out = tune_one_measured(job, spec, budget);
        stop.store(true, Ordering::Relaxed);
        out
    })
}

fn protocol_error(frame: &Frame) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("unexpected reply: {frame:?}"))
}
