//! The farm-side [`Dispatcher`]: `tune_graph_with` plugs this in to run
//! tensor-level search on a remote tracker's worker pool instead of
//! in-process. Submit the whole batch, poll until done, return the outcomes
//! in job order. Because every job is self-seeded by its index, the farm's
//! databases are bit-identical to the serial dispatcher's at zero noise.

use crate::proto::{read_frame, write_frame, Frame};
use std::net::TcpStream;
use std::time::Duration;
use unigpu_device::DeviceSpec;
use unigpu_telemetry::{tel_debug, tel_info, TraceContext};
use unigpu_tuner::{DispatchError, Dispatcher, TuneJob, TuneOutcome, TuningBudget};

/// Client half of the farm protocol; implements [`Dispatcher`].
#[derive(Debug, Clone)]
pub struct FarmClient {
    addr: String,
    poll: Duration,
    trace: Option<TraceContext>,
}

impl FarmClient {
    pub fn new(addr: impl Into<String>) -> Self {
        FarmClient { addr: addr.into(), poll: Duration::from_millis(50), trace: None }
    }

    /// Override the batch-status poll interval (tests shorten it).
    pub fn poll_interval(mut self, poll: Duration) -> Self {
        self.poll = poll;
        self
    }

    /// Attach the originating operation's trace context: every submit
    /// carries it, and the tracker's lease spans become children of it.
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }

    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Dispatcher for FarmClient {
    fn name(&self) -> String {
        format!("farm({})", self.addr)
    }

    fn dispatch(
        &self,
        jobs: &[TuneJob],
        spec: &DeviceSpec,
        budget: &TuningBudget,
    ) -> Result<Vec<TuneOutcome>, DispatchError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        let _ = stream.set_nodelay(true);
        let submit = Frame::Submit {
            device: spec.name.clone(),
            budget: *budget,
            jobs: jobs.to_vec(),
            trace: self.trace.map(|t| t.encode()),
        };
        write_frame(&mut stream, &submit)?;
        let batch_id = match read_frame(&mut stream)? {
            Frame::SubmitAck { batch_id } => batch_id,
            Frame::Error { message } => return Err(DispatchError::Protocol(message)),
            other => {
                return Err(DispatchError::Protocol(format!("unexpected submit reply: {other:?}")))
            }
        };
        tel_info!(
            "farm::client",
            "batch {batch_id}: {} job(s) submitted to {}",
            jobs.len(),
            self.addr
        );
        loop {
            std::thread::sleep(self.poll);
            write_frame(&mut stream, &Frame::Poll { batch_id })?;
            match read_frame(&mut stream)? {
                Frame::Status { total, done, failed, outcomes, failures, .. } => {
                    tel_debug!(
                        "farm::client",
                        "batch {batch_id}: {done} done, {failed} failed of {total}"
                    );
                    if done + failed < total {
                        continue;
                    }
                    if failed > 0 {
                        return Err(DispatchError::JobsFailed {
                            failed,
                            first_error: failures
                                .into_iter()
                                .next()
                                .unwrap_or_else(|| "unknown failure".into()),
                        });
                    }
                    let mut outcomes = outcomes;
                    outcomes.sort_by_key(|o| o.index);
                    return Ok(outcomes);
                }
                Frame::Error { message } => return Err(DispatchError::Protocol(message)),
                other => {
                    return Err(DispatchError::Protocol(format!(
                        "unexpected poll reply: {other:?}"
                    )))
                }
            }
        }
    }
}
