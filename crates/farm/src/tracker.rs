//! The farm tracker: the coordination point of distributed tuning.
//!
//! Mirrors AutoTVM's RPC tracker. Clients submit batches of [`TuneJob`]s
//! for one device; workers register, request work, and stream results back.
//! Each granted job is a *lease* with a deadline: heartbeats extend it, and
//! a reaper thread re-queues leases whose worker died or went silent, up to
//! a bounded retry budget per job.
//!
//! Lease state machine (per job):
//!
//! ```text
//!   queued --grant--> leased --result--> done
//!     ^                 |
//!     |  expiry / worker death, retries left
//!     +-----------------+
//!                       |  expiry / worker death, retries exhausted
//!                       +--> failed
//! ```
//!
//! Duplicate results (a retransmission, or a re-queued copy finishing after
//! the original) are acknowledged and dropped: the first outcome per job
//! index wins, which keeps the protocol idempotent.

use crate::framing::{FrameError, Framed, FRAMING_VERSION};
use crate::proto::Frame;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use unigpu_telemetry::{
    tel_debug, tel_info, tel_warn, ChromeTrace, MetricsRegistry, SpanRecord, SpanRecorder,
    TraceContext,
};
use unigpu_tuner::{MeasuredDrift, TuneJob, TuneOutcome, TuningBudget};

/// Chrome-trace lane of the first farm worker; worker `i` draws on lane
/// `LANE_FARM_WORKER_BASE + i`, well clear of the engine's executor lanes.
pub const LANE_FARM_WORKER_BASE: u32 = 64;

/// Tracker tuning knobs.
#[derive(Debug, Clone)]
pub struct TrackerConfig {
    /// How long a lease stays valid without a heartbeat.
    pub lease: Duration,
    /// Re-queue budget per job: a job may be re-leased this many times after
    /// its first grant before it is failed.
    pub max_retries: usize,
    /// Reaper scan interval.
    pub reap_every: Duration,
    /// If set, a Chrome trace (one lane per worker) is rewritten here every
    /// couple of seconds.
    pub trace_path: Option<PathBuf>,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            lease: Duration::from_secs(10),
            max_retries: 2,
            reap_every: Duration::from_millis(50),
            trace_path: None,
        }
    }
}

struct QueuedJob {
    batch_id: u64,
    job: TuneJob,
    /// How many times this job has already been re-queued.
    retries: usize,
}

struct LeaseInfo {
    batch_id: u64,
    job: TuneJob,
    worker_id: u64,
    deadline: Instant,
    retries: usize,
    granted_us: f64,
    /// Child of the submitting batch's trace, derived per job index at
    /// grant time — lease spans stitch into the submitter's trace.
    trace: Option<TraceContext>,
}

struct BatchInfo {
    device: String,
    budget: TuningBudget,
    total: usize,
    /// First outcome per job index wins; later copies are duplicates.
    outcomes: HashMap<usize, TuneOutcome>,
    failures: Vec<String>,
    /// Trace context the submitting client sent (parsed from the wire
    /// form; a malformed value degrades to `None`, never an error).
    trace: Option<TraceContext>,
}

struct WorkerInfo {
    name: String,
    device: String,
    lane: u32,
}

#[derive(Default)]
struct State {
    next_worker: u64,
    next_lease: u64,
    next_batch: u64,
    connected: usize,
    /// Pending jobs per device name.
    queues: HashMap<String, VecDeque<QueuedJob>>,
    leases: HashMap<u64, LeaseInfo>,
    batches: HashMap<u64, BatchInfo>,
    /// Append-only worker registry (disconnects keep the entry so trace
    /// lanes stay named).
    workers: HashMap<u64, WorkerInfo>,
}

struct Shared {
    cfg: TrackerConfig,
    metrics: MetricsRegistry,
    spans: SpanRecorder,
    state: Mutex<State>,
    stop: AtomicBool,
}

/// The tracker service. [`Tracker::spawn`] binds a listener and returns a
/// handle; all work happens on background threads.
pub struct Tracker;

impl Tracker {
    pub fn spawn(addr: impl ToSocketAddrs, cfg: TrackerConfig) -> io::Result<TrackerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            metrics: MetricsRegistry::new(),
            spans: SpanRecorder::new(),
            state: Mutex::new(State::default()),
            stop: AtomicBool::new(false),
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&accept_shared, listener));

        let reap_shared = Arc::clone(&shared);
        let reaper = std::thread::spawn(move || reaper_loop(&reap_shared));

        tel_info!("farm::tracker", "listening on {local}");
        Ok(TrackerHandle { addr: local, shared, accept: Some(accept), reaper: Some(reaper) })
    }
}

/// Owner handle for a running tracker.
pub struct TrackerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

impl TrackerHandle {
    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live view of the tracker's `farm.*` metrics.
    pub fn metrics(&self) -> MetricsRegistry {
        self.shared.metrics.clone()
    }

    /// Live view of the per-lease spans (one Chrome-trace lane per worker).
    pub fn spans(&self) -> SpanRecorder {
        self.shared.spans.clone()
    }

    /// Block until the tracker is externally terminated (CLI foreground
    /// mode: the accept loop only exits on [`TrackerHandle::stop`]).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.reaper.take() {
            let _ = h.join();
        }
    }

    /// Stop accepting and reaping, then join both loops. Connections already
    /// open are left to die with their peers.
    pub fn stop(mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.reaper.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let conn_shared = Arc::clone(shared);
                std::thread::spawn(move || handle_conn(&conn_shared, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                tel_warn!("farm::tracker", "accept failed: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn reaper_loop(shared: &Arc<Shared>) {
    let mut last_trace = Instant::now();
    while !shared.stop.load(Ordering::Relaxed) {
        std::thread::sleep(shared.cfg.reap_every);
        reap_expired(shared);
        if let Some(path) = shared.cfg.trace_path.clone() {
            if last_trace.elapsed() >= Duration::from_secs(2) {
                last_trace = Instant::now();
                if let Err(e) = write_trace(shared, &path) {
                    tel_warn!("farm::tracker", "trace export to {} failed: {e}", path.display());
                }
            }
        }
    }
}

fn reap_expired(shared: &Shared) {
    let now = Instant::now();
    let mut guard = shared.state.lock().expect("tracker state poisoned");
    let st = &mut *guard;
    let expired: Vec<u64> =
        st.leases.iter().filter(|(_, l)| l.deadline <= now).map(|(&id, _)| id).collect();
    for id in expired {
        shared.metrics.inc("farm.leases_expired");
        shared.release_lease(st, id, "lease expired");
    }
}

fn write_trace(shared: &Shared, path: &Path) -> io::Result<()> {
    let mut trace = ChromeTrace::new();
    trace.name_lane(0, "tracker");
    {
        let st = shared.state.lock().expect("tracker state poisoned");
        for (id, w) in &st.workers {
            trace.name_lane(w.lane, format!("farm worker {id} ({})", w.name));
        }
    }
    trace.add_spans(&shared.spans.spans());
    trace.add_metrics(&shared.metrics.snapshot(), shared.spans.now_us());
    trace.write(path)
}

/// One connection, one thread: read a frame, answer it, repeat. Workers and
/// clients share this loop — frame types distinguish them. Any read error
/// ends the connection; if a worker had registered on it, its outstanding
/// leases are released.
fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
    let mut conn_worker: Option<u64> = None;
    let mut framed = Framed::new(stream);
    loop {
        let frame = match framed.recv::<Frame>() {
            Ok(f) => f,
            Err(FrameError::Io(e)) if e.kind() != io::ErrorKind::InvalidData => {
                tel_debug!("farm::tracker", "connection from {peer} closed: {e}");
                break;
            }
            Err(e) => {
                if matches!(e, FrameError::ChecksumMismatch { .. }) {
                    shared.metrics.inc("farm.checksum_errors");
                }
                shared.metrics.inc("farm.protocol_errors");
                tel_warn!("farm::tracker", "protocol error from {peer}: {e}");
                let _ = framed.send(&Frame::Error { message: e.to_string() });
                break;
            }
        };
        let reply = shared.handle_frame(frame, &mut conn_worker);
        let upgrade = matches!(reply, Frame::RegisterAck { framing: Some(v), .. } if v >= 2);
        if framed.send(&reply).is_err() {
            break;
        }
        if upgrade && !framed.is_v2() {
            // Both peers switch codecs right after the ack exchange.
            framed.upgrade();
        }
    }
    if let Some(worker_id) = conn_worker {
        shared.on_worker_disconnect(worker_id);
    }
}

impl Shared {
    fn handle_frame(&self, frame: Frame, conn_worker: &mut Option<u64>) -> Frame {
        match frame {
            Frame::Register { name, device, framing, resume } => {
                self.on_register(name, device, framing, resume, conn_worker)
            }
            Frame::RequestJob { worker_id } => self.on_request_job(worker_id),
            Frame::Heartbeat { worker_id, lease_id } => self.on_heartbeat(worker_id, lease_id),
            Frame::Result { worker_id, lease_id, batch_id, outcome, drift } => {
                self.on_result(worker_id, lease_id, batch_id, *outcome, drift)
            }
            Frame::Submit { device, budget, jobs, trace } => {
                self.on_submit(device, budget, jobs, trace)
            }
            Frame::Poll { batch_id } => self.on_poll(batch_id),
            other => {
                self.metrics.inc("farm.protocol_errors");
                Frame::Error { message: format!("unexpected frame: {other:?}") }
            }
        }
    }

    fn on_register(
        &self,
        name: String,
        device: String,
        framing: Option<u8>,
        resume: Option<u64>,
        conn_worker: &mut Option<u64>,
    ) -> Frame {
        let mut st = self.state.lock().expect("tracker state poisoned");
        // Resume only re-attaches an identity the tracker still remembers;
        // an unknown token degrades to a fresh registration.
        let resumed_id = resume.filter(|id| st.workers.contains_key(id));
        let resumed = resumed_id.is_some();
        let worker_id = match resumed_id {
            Some(id) => id,
            None => {
                let id = st.next_worker;
                st.next_worker += 1;
                id
            }
        };
        let lane = LANE_FARM_WORKER_BASE + worker_id as u32;
        st.workers.insert(worker_id, WorkerInfo { name: name.clone(), device: device.clone(), lane });
        st.connected += 1;
        if resumed {
            self.metrics.inc("farm.worker_resumes");
        } else {
            self.metrics.inc("farm.workers_registered");
        }
        self.metrics.set_gauge("farm.workers_connected", st.connected as f64);
        *conn_worker = Some(worker_id);
        tel_info!(
            "farm::tracker",
            "worker {worker_id} ({name}) {} for {device}",
            if resumed { "resumed" } else { "registered" }
        );
        Frame::RegisterAck {
            worker_id,
            lease_ms: self.cfg.lease.as_millis() as u64,
            framing: framing.filter(|&v| v >= FRAMING_VERSION).map(|_| FRAMING_VERSION),
            resumed,
        }
    }

    fn on_request_job(&self, worker_id: u64) -> Frame {
        let mut guard = self.state.lock().expect("tracker state poisoned");
        let st = &mut *guard;
        let Some(device) = st.workers.get(&worker_id).map(|w| w.device.clone()) else {
            return Frame::Error { message: format!("unknown worker {worker_id}") };
        };
        loop {
            let Some(queued) = st.queues.get_mut(&device).and_then(|q| q.pop_front()) else {
                return Frame::NoWork;
            };
            // Stale entries: the batch was already collected, or a late
            // result beat this re-queued copy. Skip them.
            let Some(batch) = st.batches.get(&queued.batch_id) else { continue };
            if batch.outcomes.contains_key(&queued.job.index) {
                continue;
            }
            let budget = batch.budget;
            let lease_trace = batch.trace.map(|t| t.child(queued.job.index as u64));
            let lease_id = st.next_lease;
            st.next_lease += 1;
            let deadline = Instant::now() + self.cfg.lease;
            st.leases.insert(
                lease_id,
                LeaseInfo {
                    batch_id: queued.batch_id,
                    job: queued.job,
                    worker_id,
                    deadline,
                    retries: queued.retries,
                    granted_us: self.spans.now_us(),
                    trace: lease_trace,
                },
            );
            self.metrics.inc("farm.leases_granted");
            tel_debug!(
                "farm::tracker",
                "lease {lease_id}: job {} ({}) -> worker {worker_id}",
                queued.job.index,
                queued.job.workload.key()
            );
            return Frame::Lease {
                lease_id,
                batch_id: queued.batch_id,
                budget,
                job: queued.job,
                trace: lease_trace.map(|t| t.encode()),
            };
        }
    }

    fn on_heartbeat(&self, worker_id: u64, lease_id: u64) -> Frame {
        let mut st = self.state.lock().expect("tracker state poisoned");
        let known = match st.leases.get_mut(&lease_id) {
            Some(l) if l.worker_id == worker_id => {
                l.deadline = Instant::now() + self.cfg.lease;
                true
            }
            _ => false,
        };
        self.metrics.inc("farm.heartbeats");
        Frame::HeartbeatAck { known }
    }

    fn on_result(
        &self,
        worker_id: u64,
        lease_id: u64,
        batch_id: u64,
        outcome: TuneOutcome,
        drift: Option<MeasuredDrift>,
    ) -> Frame {
        let mut guard = self.state.lock().expect("tracker state poisoned");
        let st = &mut *guard;
        let lease = st.leases.remove(&lease_id);
        let lane = st.workers.get(&worker_id).map(|w| w.lane).unwrap_or(LANE_FARM_WORKER_BASE);
        let index = outcome.index;
        let key = outcome.record.workload.clone();
        let duplicate = match st.batches.get_mut(&batch_id) {
            // Batch already collected and forgotten: a very late duplicate.
            None => true,
            Some(batch) => {
                if batch.outcomes.contains_key(&index) {
                    true
                } else {
                    batch.outcomes.insert(index, outcome);
                    if lease.is_none() {
                        // A late result (its lease expired) raced its own
                        // re-queued copy: drop the copy so it isn't re-tuned.
                        self.metrics.inc("farm.late_results");
                        let device = batch.device.clone();
                        if let Some(q) = st.queues.get_mut(&device) {
                            q.retain(|j| !(j.batch_id == batch_id && j.job.index == index));
                        }
                    }
                    false
                }
            }
        };
        if duplicate {
            self.metrics.inc("farm.duplicate_results");
            tel_debug!(
                "farm::tracker",
                "duplicate result for job {index} ({key}) from worker {worker_id}"
            );
        } else {
            self.metrics.inc("farm.results");
            // Fleet-wide cost-model calibration: every first result carries
            // its measured-vs-predicted sample (absent from old workers).
            if let Some(d) = drift {
                let abs = d.rel_err().abs();
                self.metrics.inc("farm.drift.samples");
                self.metrics.observe("farm.drift.abs_rel_err", abs);
                if self.metrics.gauge("farm.drift.max_abs_rel_err").is_none_or(|m| abs > m) {
                    self.metrics.set_gauge("farm.drift.max_abs_rel_err", abs);
                }
            }
        }
        if let Some(lease) = lease {
            let now = self.spans.now_us();
            let dur_us = (now - lease.granted_us).max(0.0);
            self.metrics.observe("farm.lease_ms", dur_us / 1000.0);
            self.spans.record(SpanRecord {
                name: key,
                category: "farm.lease".into(),
                start_us: lease.granted_us,
                dur_us,
                lane,
                attrs: vec![
                    ("batch".into(), batch_id.to_string()),
                    ("status".into(), if duplicate { "duplicate".into() } else { "ok".into() }),
                    ("retries".into(), lease.retries.to_string()),
                ],
                trace: lease.trace,
            });
        }
        Frame::ResultAck { duplicate }
    }

    fn on_submit(
        &self,
        device: String,
        budget: TuningBudget,
        jobs: Vec<TuneJob>,
        trace: Option<String>,
    ) -> Frame {
        let mut st = self.state.lock().expect("tracker state poisoned");
        let batch_id = st.next_batch;
        st.next_batch += 1;
        let total = jobs.len();
        st.batches.insert(
            batch_id,
            BatchInfo {
                device: device.clone(),
                budget,
                total,
                outcomes: HashMap::new(),
                failures: Vec::new(),
                trace: trace.as_deref().and_then(TraceContext::parse),
            },
        );
        let q = st.queues.entry(device.clone()).or_default();
        for job in jobs {
            q.push_back(QueuedJob { batch_id, job, retries: 0 });
        }
        self.metrics.add("farm.jobs_submitted", total as u64);
        tel_info!("farm::tracker", "batch {batch_id}: {total} job(s) queued for {device}");
        Frame::SubmitAck { batch_id }
    }

    fn on_poll(&self, batch_id: u64) -> Frame {
        let mut st = self.state.lock().expect("tracker state poisoned");
        let Some((total, done, failed)) =
            st.batches.get(&batch_id).map(|b| (b.total, b.outcomes.len(), b.failures.len()))
        else {
            return Frame::Error { message: format!("unknown batch {batch_id}") };
        };
        if done + failed < total {
            return Frame::Status {
                batch_id,
                total,
                done,
                failed,
                outcomes: Vec::new(),
                failures: Vec::new(),
            };
        }
        // Complete: hand the outcomes over and forget the batch.
        let batch = st.batches.remove(&batch_id).expect("batch present");
        let mut outcomes: Vec<TuneOutcome> = batch.outcomes.into_values().collect();
        outcomes.sort_by_key(|o| o.index);
        tel_info!(
            "farm::tracker",
            "batch {batch_id}: complete ({done} done, {failed} failed of {total})"
        );
        Frame::Status { batch_id, total, done, failed, outcomes, failures: batch.failures }
    }

    fn on_worker_disconnect(&self, worker_id: u64) {
        let mut guard = self.state.lock().expect("tracker state poisoned");
        let st = &mut *guard;
        let held: Vec<u64> = st
            .leases
            .iter()
            .filter(|(_, l)| l.worker_id == worker_id)
            .map(|(&id, _)| id)
            .collect();
        if !held.is_empty() {
            tel_warn!(
                "farm::tracker",
                "worker {worker_id} disconnected holding {} lease(s)",
                held.len()
            );
        }
        for id in held {
            self.release_lease(st, id, "worker disconnected");
        }
        st.connected = st.connected.saturating_sub(1);
        self.metrics.set_gauge("farm.workers_connected", st.connected as f64);
    }

    /// Tear down a lease whose worker died or went silent: re-queue the job
    /// if it has retries left, fail it otherwise. No-op if the job's result
    /// already arrived through another path.
    fn release_lease(&self, st: &mut State, lease_id: u64, reason: &str) {
        let Some(lease) = st.leases.remove(&lease_id) else { return };
        let key = lease.job.workload.key();
        let lane = st.workers.get(&lease.worker_id).map(|w| w.lane).unwrap_or(LANE_FARM_WORKER_BASE);
        let now = self.spans.now_us();
        self.spans.record(SpanRecord {
            name: key.clone(),
            category: "farm.lease".into(),
            start_us: lease.granted_us,
            dur_us: (now - lease.granted_us).max(0.0),
            lane,
            attrs: vec![
                ("batch".into(), lease.batch_id.to_string()),
                ("status".into(), reason.to_string()),
                ("retries".into(), lease.retries.to_string()),
            ],
            trace: lease.trace,
        });
        let Some(batch) = st.batches.get_mut(&lease.batch_id) else { return };
        if batch.outcomes.contains_key(&lease.job.index) {
            return;
        }
        if lease.retries < self.cfg.max_retries {
            self.metrics.inc("farm.requeues");
            tel_info!(
                "farm::tracker",
                "lease {lease_id} ({key}): {reason}; re-queueing (attempt {} of {})",
                lease.retries + 2,
                self.cfg.max_retries + 1
            );
            let device = batch.device.clone();
            st.queues.entry(device).or_default().push_back(QueuedJob {
                batch_id: lease.batch_id,
                job: lease.job,
                retries: lease.retries + 1,
            });
        } else {
            self.metrics.inc("farm.jobs_failed");
            tel_warn!(
                "farm::tracker",
                "lease {lease_id} ({key}): {reason}; retry budget exhausted, failing job {}",
                lease.job.index
            );
            batch
                .failures
                .push(format!("job {} ({key}): {reason} with retry budget exhausted", lease.job.index));
        }
    }
}
