//! Wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message is one [`framing`] frame — a 4-byte big-endian length
//! followed by one JSON-encoded [`Frame`]. JSON keeps the frames greppable
//! in packet dumps and reuses the serde derives the tuning records already
//! carry; the shared codec owns the length prefix, the 16 MiB cap, and the
//! protocol-error taxonomy. A frame that fails to parse is a protocol
//! error: the connection is dropped, the tracker survives.
//!
//! [`framing`]: crate::framing

use crate::framing;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use unigpu_tuner::{MeasuredDrift, TuneJob, TuneOutcome, TuningBudget};

pub use crate::framing::MAX_FRAME_BYTES;

/// Every message of the farm protocol.
///
/// Worker → tracker: `Register`, `RequestJob`, `Heartbeat`, `Result`.
/// Client → tracker: `Submit`, `Poll`.
/// Tracker → either: the matching `*Ack`, `Lease`, `NoWork`, `Status`,
/// `Error`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Frame {
    /// A worker joins, naming itself and the device it simulates.
    Register {
        name: String,
        device: String,
        /// Highest framing version the worker speaks
        /// ([`framing::FRAMING_VERSION`]). Absent / `None` means v1-only:
        /// old peers interoperate untouched.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        framing: Option<u8>,
        /// A previous `worker_id` to resume after a dropped connection, so
        /// the tracker re-attaches identity instead of minting a new one.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        resume: Option<u64>,
    },
    /// Registration reply: the worker's id and the lease duration it must
    /// heartbeat within.
    RegisterAck {
        worker_id: u64,
        lease_ms: u64,
        /// Framing version the tracker accepted; both sides upgrade their
        /// codec right after this frame when it is `Some(2)`.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        framing: Option<u8>,
        /// True when `resume` named a worker the tracker still knows.
        #[serde(default, skip_serializing_if = "std::ops::Not::not")]
        resumed: bool,
    },
    /// A registered worker asks for work.
    RequestJob { worker_id: u64 },
    /// One job leased to one worker, with the batch's budget attached so the
    /// worker needs no side channel.
    Lease {
        lease_id: u64,
        batch_id: u64,
        budget: TuningBudget,
        job: TuneJob,
        /// Per-lease trace context in [`TraceContext::encode`] wire form
        /// (a child of the submitting batch's trace). Optional so old
        /// peers interoperate; malformed values are ignored, never fatal.
        ///
        /// [`TraceContext::encode`]: unigpu_telemetry::TraceContext::encode
        #[serde(default, skip_serializing_if = "Option::is_none")]
        trace: Option<String>,
    },
    /// Nothing queued for this worker's device right now.
    NoWork,
    /// Keep a lease alive while its job is still tuning.
    Heartbeat { worker_id: u64, lease_id: u64 },
    /// `known == false` means the lease already expired or was never granted
    /// — the worker's result will be treated as late.
    HeartbeatAck { known: bool },
    /// A finished job. Boxed: the outcome dwarfs every other variant.
    Result {
        worker_id: u64,
        lease_id: u64,
        batch_id: u64,
        outcome: Box<TuneOutcome>,
        /// Measured-vs-predicted cost sample for the leased job, so the
        /// tracker can watch cost-model calibration fleet-wide
        /// (`farm.drift.*`). Optional so old peers interoperate.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        drift: Option<MeasuredDrift>,
    },
    /// Result reply; `duplicate` when this job's outcome was already
    /// recorded (retransmission or a re-queued copy finishing twice).
    ResultAck { duplicate: bool },
    /// A client submits a batch of jobs for one device.
    Submit {
        device: String,
        budget: TuningBudget,
        jobs: Vec<TuneJob>,
        /// Trace context of the originating compile/tune, in
        /// [`TraceContext::encode`] wire form. The tracker derives one
        /// child context per leased job from it, so remote lease spans
        /// stitch into the submitter's trace.
        ///
        /// [`TraceContext::encode`]: unigpu_telemetry::TraceContext::encode
        #[serde(default, skip_serializing_if = "Option::is_none")]
        trace: Option<String>,
    },
    SubmitAck { batch_id: u64 },
    /// A client asks how its batch is doing.
    Poll { batch_id: u64 },
    /// Batch progress. `outcomes` is only populated on the completing poll
    /// (when `done + failed == total`), after which the batch is forgotten.
    Status {
        batch_id: u64,
        total: usize,
        done: usize,
        failed: usize,
        outcomes: Vec<TuneOutcome>,
        failures: Vec<String>,
    },
    /// Protocol-level failure; the sender closes the connection after this.
    Error { message: String },
}

/// Serialize `frame` as one length-prefixed JSON message.
pub fn write_frame(w: &mut dyn Write, frame: &Frame) -> io::Result<()> {
    framing::write_frame(w, frame)
}

/// Read one frame. A clean peer close surfaces as `UnexpectedEof`; an
/// oversized length prefix or unparseable body surfaces as `InvalidData`
/// (the caller should answer with [`Frame::Error`] and drop the connection).
pub fn read_frame(r: &mut dyn Read) -> io::Result<Frame> {
    framing::read_frame(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Register {
                name: "w0".into(),
                device: "Intel HD Graphics 505".into(),
                framing: Some(2),
                resume: None,
            },
            Frame::RegisterAck { worker_id: 7, lease_ms: 10_000, framing: Some(2), resumed: true },
            Frame::RequestJob { worker_id: 7 },
            Frame::NoWork,
            Frame::Heartbeat { worker_id: 7, lease_id: 3 },
            Frame::HeartbeatAck { known: true },
            Frame::ResultAck { duplicate: false },
            Frame::SubmitAck { batch_id: 1 },
            Frame::Poll { batch_id: 1 },
            Frame::Error { message: "nope".into() },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for f in &frames {
            assert_eq!(&read_frame(&mut cur).unwrap(), f);
        }
    }

    #[test]
    fn old_register_frames_without_framing_fields_still_parse() {
        // an old worker's Register has no "framing"/"resume" keys, and an
        // old tracker's RegisterAck has no "framing"/"resumed" keys
        let body = br#"{"type":"register","name":"w0","device":"cpu"}"#;
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(body);
        match read_frame(&mut Cursor::new(buf)) {
            Ok(Frame::Register { framing, resume, name, .. }) => {
                assert_eq!(framing, None);
                assert_eq!(resume, None);
                assert_eq!(name, "w0");
            }
            other => panic!("expected Register, got {other:?}"),
        }
        let body = br#"{"type":"register_ack","worker_id":3,"lease_ms":1000}"#;
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(body);
        match read_frame(&mut Cursor::new(buf)) {
            Ok(Frame::RegisterAck { framing, resumed, worker_id, .. }) => {
                assert_eq!(framing, None);
                assert!(!resumed);
                assert_eq!(worker_id, 3);
            }
            other => panic!("expected RegisterAck, got {other:?}"),
        }
        // and the v1-shaped serialization omits the new keys entirely
        let bare = Frame::RegisterAck { worker_id: 3, lease_ms: 1000, framing: None, resumed: false };
        let body = serde_json::to_string(&bare).unwrap();
        assert!(!body.contains("framing") && !body.contains("resumed"), "got {body}");
    }

    #[test]
    fn frames_without_a_trace_field_still_parse() {
        // an old peer's Submit/Lease has no "trace" key; serde(default)
        // must fill None instead of rejecting the frame
        let body = br#"{"type":"submit","device":"cpu","budget":{"trials_per_workload":1,"noise":0.0,"seed":1,"graph_candidates":1},"jobs":[]}"#;
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(body);
        match read_frame(&mut Cursor::new(buf)) {
            Ok(Frame::Submit { trace, device, .. }) => {
                assert_eq!(trace, None);
                assert_eq!(device, "cpu");
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn trace_field_round_trips_and_is_omitted_when_none() {
        let ctx = unigpu_telemetry::TraceContext::from_seed(11);
        let f = Frame::Submit {
            device: "gpu".into(),
            budget: TuningBudget::default(),
            jobs: vec![],
            trace: Some(ctx.encode()),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &f).unwrap();
        assert_eq!(read_frame(&mut Cursor::new(&buf[..])).unwrap(), f);
        assert!(String::from_utf8_lossy(&buf).contains(&ctx.encode()));

        let bare = Frame::Submit {
            device: "gpu".into(),
            budget: TuningBudget::default(),
            jobs: vec![],
            trace: None,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &bare).unwrap();
        assert!(
            !String::from_utf8_lossy(&buf).contains("trace"),
            "None must not serialize a key old peers would reject"
        );
    }

    #[test]
    fn result_frame_without_a_drift_field_still_parses() {
        // an old worker's Result has no "drift" key; serde(default) must
        // fill None instead of rejecting the frame
        let outcome = unigpu_tuner::tune_one(
            &TuneJob {
                index: 0,
                workload: unigpu_ops::ConvWorkload::square(1, 8, 8, 8, 3, 1, 1),
            },
            &unigpu_device::DeviceSpec::intel_hd505(),
            &TuningBudget { trials_per_workload: 1, ..Default::default() },
        );
        let with = Frame::Result {
            worker_id: 1,
            lease_id: 2,
            batch_id: 3,
            outcome: Box::new(outcome),
            drift: None,
        };
        let body = serde_json::to_vec(&with).unwrap();
        assert!(
            !String::from_utf8_lossy(&body).contains("drift"),
            "None must not serialize a key old peers would reject"
        );
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&body);
        match read_frame(&mut Cursor::new(buf)) {
            Ok(Frame::Result { drift, .. }) => assert_eq!(drift, None),
            other => panic!("expected Result, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_an_eof_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::NoWork).unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_invalid_data() {
        let buf = u32::MAX.to_be_bytes().to_vec();
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn malformed_json_is_invalid_data() {
        let body = b"{ not json";
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(body);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
