//! Shared length-prefixed JSON frame codec.
//!
//! Every control-plane message in this workspace — the farm's tuning
//! protocol and the fleet's serving protocol — is a 4-byte big-endian
//! length followed by one JSON-encoded body. This module is the single
//! place where that framing, the 16 MiB body cap, and the protocol-error
//! taxonomy live; protocols supply their own frame enum via serde.
//!
//! Error contract (shared by every protocol built on this codec):
//! - a clean peer close or truncated body surfaces as `UnexpectedEof`;
//! - an oversized length prefix or unparseable body surfaces as
//!   `InvalidData` — the caller should answer with its protocol's error
//!   frame and drop the connection.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{self, Read, Write};

/// Upper bound on one frame body. Generous — a farm `Submit` for every conv
/// in a large CNN or a fleet artifact push is a few hundred KiB — but small
/// enough that a corrupt length prefix cannot drive a multi-GiB allocation.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Serialize `frame` as one length-prefixed JSON message.
pub fn write_frame<F: Serialize>(w: &mut dyn Write, frame: &F) -> io::Result<()> {
    let body = serde_json::to_vec(frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {} bytes exceeds MAX_FRAME_BYTES", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Read one frame of any serde-decodable type.
pub fn read_frame<F: DeserializeOwned>(r: &mut dyn Read) -> io::Result<F> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length prefix of {len} bytes exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    serde_json::from_slice(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("malformed frame: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;
    use std::io::Cursor;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    #[serde(tag = "type", rename_all = "snake_case")]
    enum Probe {
        Ping { n: u64 },
        Blob { data: String },
    }

    #[test]
    fn generic_frames_round_trip() {
        let frames = vec![Probe::Ping { n: 7 }, Probe::Blob { data: "x".repeat(1000) }];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for f in &frames {
            assert_eq!(&read_frame::<Probe>(&mut cur).unwrap(), f);
        }
    }

    #[test]
    fn oversized_write_is_rejected_before_hitting_the_wire() {
        let mut buf = Vec::new();
        let huge = Probe::Blob { data: "y".repeat(MAX_FRAME_BYTES + 1) };
        let err = write_frame(&mut buf, &huge).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(buf.is_empty(), "nothing may be written for an oversized frame");
    }

    #[test]
    fn oversized_length_prefix_is_invalid_data_without_allocating() {
        let buf = u32::MAX.to_be_bytes().to_vec();
        let err = read_frame::<Probe>(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_is_an_eof_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Probe::Ping { n: 1 }).unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame::<Probe>(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn malformed_json_is_invalid_data() {
        let body = b"{ not json";
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(body);
        let err = read_frame::<Probe>(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
