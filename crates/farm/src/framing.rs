//! Shared length-prefixed JSON frame codec.
//!
//! Every control-plane message in this workspace — the farm's tuning
//! protocol and the fleet's serving protocol — is a 4-byte big-endian
//! length followed by one JSON-encoded body. This module is the single
//! place where that framing, the 16 MiB body cap, and the protocol-error
//! taxonomy live; protocols supply their own frame enum via serde.
//!
//! Two wire formats coexist:
//!
//! * **v1** (the free functions [`write_frame`]/[`read_frame`]):
//!   `len:u32be | body` — what every peer speaks at connect time.
//! * **v2** ([`Framed`] after [`Framed::upgrade`]):
//!   `len:u32be | seq:u64be | body | crc32(seq‖body):u32be` — negotiated
//!   in each protocol's hello exchange. The CRC turns wire corruption
//!   into a typed [`FrameError::ChecksumMismatch`] instead of a JSON
//!   parse failure; the monotonic sequence number lets a receiver drop
//!   duplicated frames silently and flag gaps.
//!
//! Error contract (shared by every protocol built on this codec):
//! - a clean peer close or truncated body surfaces as `UnexpectedEof`;
//! - an oversized length prefix, unparseable body, bad checksum, or
//!   sequence gap surfaces as `InvalidData` once converted to
//!   `io::Error` — the caller should answer with its protocol's error
//!   frame and drop the connection.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{self, Read, Write};

/// Upper bound on one frame body. Generous — a farm `Submit` for every conv
/// in a large CNN or a fleet artifact push is a few hundred KiB — but small
/// enough that a corrupt length prefix cannot drive a multi-GiB allocation.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// The framing format this build can speak; advertised in hello frames.
pub const FRAMING_VERSION: u8 = 2;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) — table built at compile
// time so the codec stays dependency-free.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

struct Crc32(u32);

impl Crc32 {
    fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.0 = CRC32_TABLE[((self.0 ^ b as u32) & 0xFF) as usize] ^ (self.0 >> 8);
        }
    }

    fn finish(self) -> u32 {
        !self.0
    }
}

/// CRC32 of one buffer (IEEE polynomial; `crc32(b"123456789") == 0xCBF43926`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

// ---------------------------------------------------------------------------
// Typed errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong reading or writing one frame.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (including `UnexpectedEof` on clean close).
    Io(io::Error),
    /// Body or length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge(usize),
    /// Body is not valid JSON for the expected frame type.
    Malformed(String),
    /// The v2 CRC trailer does not match the received bytes.
    ChecksumMismatch { wire: u32, computed: u32 },
    /// The sender skipped ahead: frames were lost between the peers.
    SequenceGap { expected: u64, got: u64 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})")
            }
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
            FrameError::ChecksumMismatch { wire, computed } => write!(
                f,
                "frame checksum mismatch: wire says {wire:08x}, bytes hash to {computed:08x}"
            ),
            FrameError::SequenceGap { expected, got } => {
                write!(f, "frame sequence gap: expected seq {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        match e {
            FrameError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

impl FrameError {
    /// True when the failure is a disconnect rather than a protocol
    /// violation — the cue for reconnect-and-resume instead of giving up.
    pub fn is_disconnect(&self) -> bool {
        matches!(self, FrameError::Io(_))
    }
}

// ---------------------------------------------------------------------------
// Body reader — never trusts the length prefix with an allocation
// ---------------------------------------------------------------------------

/// Read exactly `len` body bytes via `Read::take` into a growing buffer,
/// so a corrupt-but-under-cap prefix on a short connection costs a short
/// read, not a 16 MiB up-front allocation.
fn read_body<R: Read + ?Sized>(r: &mut R, len: usize) -> io::Result<Vec<u8>> {
    let mut body = Vec::with_capacity(len.min(64 * 1024));
    let got = (&mut *r).take(len as u64).read_to_end(&mut body)?;
    if got < len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("frame body truncated: got {got} of {len} bytes"),
        ));
    }
    Ok(body)
}

// ---------------------------------------------------------------------------
// v1 free functions (the connect-time dialect everyone speaks)
// ---------------------------------------------------------------------------

/// Serialize `frame` as one length-prefixed JSON message.
pub fn write_frame<F: Serialize>(w: &mut dyn Write, frame: &F) -> io::Result<()> {
    let body = serde_json::to_vec(frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {} bytes exceeds MAX_FRAME_BYTES", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Read one frame of any serde-decodable type.
pub fn read_frame<F: DeserializeOwned>(r: &mut dyn Read) -> io::Result<F> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length prefix of {len} bytes exceeds MAX_FRAME_BYTES"),
        ));
    }
    let body = read_body(r, len)?;
    serde_json::from_slice(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("malformed frame: {e}")))
}

// ---------------------------------------------------------------------------
// Framed — stateful codec that can upgrade from v1 to v2 mid-connection
// ---------------------------------------------------------------------------

/// A stateful frame codec over one connection. Starts in v1 (plain
/// length-prefixed) mode; after both peers agree in their hello exchange,
/// [`upgrade`](Framed::upgrade) switches to v2 with fresh sequence
/// counters on both sides.
pub struct Framed<S> {
    stream: S,
    v2: bool,
    next_send_seq: u64,
    next_recv_seq: u64,
    dup_skipped: u64,
}

impl<S: Read + Write> Framed<S> {
    /// Wrap a transport in v1 mode.
    pub fn new(stream: S) -> Framed<S> {
        Framed { stream, v2: false, next_send_seq: 0, next_recv_seq: 0, dup_skipped: 0 }
    }

    /// Switch this side to the v2 format, resetting both sequence spaces.
    /// Call at the same protocol point on both peers (after the hello
    /// exchange that negotiated it).
    pub fn upgrade(&mut self) {
        self.v2 = true;
        self.next_send_seq = 0;
        self.next_recv_seq = 0;
    }

    pub fn is_v2(&self) -> bool {
        self.v2
    }

    /// Duplicate frames this receiver has silently discarded by sequence
    /// number (e.g. a `dup_frame_nth` injection or a replay overlap).
    pub fn dup_frames_skipped(&self) -> u64 {
        self.dup_skipped
    }

    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    pub fn get_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Serialize and send one frame (exactly one `flush` per frame — the
    /// boundary the chaos layer keys on).
    pub fn send<F: Serialize>(&mut self, frame: &F) -> Result<(), FrameError> {
        let body =
            serde_json::to_vec(frame).map_err(|e| FrameError::Malformed(e.to_string()))?;
        if body.len() > MAX_FRAME_BYTES {
            return Err(FrameError::TooLarge(body.len()));
        }
        if !self.v2 {
            self.stream.write_all(&(body.len() as u32).to_be_bytes())?;
            self.stream.write_all(&body)?;
            self.stream.flush()?;
            return Ok(());
        }
        let seq = self.next_send_seq;
        self.next_send_seq += 1;
        let mut h = Crc32::new();
        h.update(&seq.to_be_bytes());
        h.update(&body);
        let crc = h.finish();
        let mut wire = Vec::with_capacity(16 + body.len());
        wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
        wire.extend_from_slice(&seq.to_be_bytes());
        wire.extend_from_slice(&body);
        wire.extend_from_slice(&crc.to_be_bytes());
        self.stream.write_all(&wire)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Receive the next frame, silently skipping v2 duplicates (sequence
    /// numbers already seen) and verifying the CRC trailer.
    pub fn recv<F: DeserializeOwned>(&mut self) -> Result<F, FrameError> {
        loop {
            let mut prefix = [0u8; 4];
            self.stream.read_exact(&mut prefix)?;
            let len = u32::from_be_bytes(prefix) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(FrameError::TooLarge(len));
            }
            if !self.v2 {
                let body = read_body(&mut self.stream, len)?;
                return serde_json::from_slice(&body)
                    .map_err(|e| FrameError::Malformed(e.to_string()));
            }
            let mut seq_bytes = [0u8; 8];
            self.stream.read_exact(&mut seq_bytes)?;
            let body = read_body(&mut self.stream, len)?;
            let mut crc_bytes = [0u8; 4];
            self.stream.read_exact(&mut crc_bytes)?;
            let mut h = Crc32::new();
            h.update(&seq_bytes);
            h.update(&body);
            let computed = h.finish();
            let wire = u32::from_be_bytes(crc_bytes);
            if wire != computed {
                return Err(FrameError::ChecksumMismatch { wire, computed });
            }
            let seq = u64::from_be_bytes(seq_bytes);
            if seq < self.next_recv_seq {
                self.dup_skipped += 1;
                continue;
            }
            if seq > self.next_recv_seq {
                return Err(FrameError::SequenceGap { expected: self.next_recv_seq, got: seq });
            }
            self.next_recv_seq += 1;
            return serde_json::from_slice(&body)
                .map_err(|e| FrameError::Malformed(e.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;
    use std::io::Cursor;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    #[serde(tag = "type", rename_all = "snake_case")]
    enum Probe {
        Ping { n: u64 },
        Blob { data: String },
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn generic_frames_round_trip() {
        let frames = vec![Probe::Ping { n: 7 }, Probe::Blob { data: "x".repeat(1000) }];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for f in &frames {
            assert_eq!(&read_frame::<Probe>(&mut cur).unwrap(), f);
        }
    }

    #[test]
    fn oversized_write_is_rejected_before_hitting_the_wire() {
        let mut buf = Vec::new();
        let huge = Probe::Blob { data: "y".repeat(MAX_FRAME_BYTES + 1) };
        let err = write_frame(&mut buf, &huge).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(buf.is_empty(), "nothing may be written for an oversized frame");
    }

    #[test]
    fn oversized_length_prefix_is_invalid_data_without_allocating() {
        let buf = u32::MAX.to_be_bytes().to_vec();
        let err = read_frame::<Probe>(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn lying_length_prefix_costs_a_short_read_not_an_allocation() {
        // prefix claims 1 MiB but only 3 bytes follow: must surface as
        // UnexpectedEof without ever allocating the full claimed size
        let mut buf = (1_048_576u32).to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        let err = read_frame::<Probe>(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_body_is_an_eof_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Probe::Ping { n: 1 }).unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame::<Probe>(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn malformed_json_is_invalid_data() {
        let body = b"{ not json";
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(body);
        let err = read_frame::<Probe>(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// Run `frames` against a fresh in-memory sender, return the wire bytes.
    fn pipe(v2: bool, frames: impl FnOnce(&mut Framed<Cursor<Vec<u8>>>)) -> Vec<u8> {
        let mut tx = Framed::new(Cursor::new(Vec::new()));
        if v2 {
            tx.upgrade();
        }
        frames(&mut tx);
        tx.get_ref().get_ref().clone()
    }

    #[test]
    fn v2_frames_round_trip_with_sequence_and_crc() {
        let wire = pipe(true, |tx| {
            tx.send(&Probe::Ping { n: 1 }).unwrap();
            tx.send(&Probe::Blob { data: "abc".into() }).unwrap();
        });
        let mut rx = Framed::new(Cursor::new(wire));
        rx.upgrade();
        assert_eq!(rx.recv::<Probe>().unwrap(), Probe::Ping { n: 1 });
        assert_eq!(rx.recv::<Probe>().unwrap(), Probe::Blob { data: "abc".into() });
        assert_eq!(rx.dup_frames_skipped(), 0);
    }

    #[test]
    fn v2_receiver_skips_duplicated_frames_by_sequence() {
        let frame0 = pipe(true, |tx| tx.send(&Probe::Ping { n: 1 }).unwrap());
        let frame1 = pipe(true, |tx| {
            tx.next_send_seq = 1;
            tx.send(&Probe::Ping { n: 2 }).unwrap();
        });
        // frame 0 twice on the wire (dup injection), then frame 1
        let mut wire = frame0.clone();
        wire.extend_from_slice(&frame0);
        wire.extend_from_slice(&frame1);
        let mut rx = Framed::new(Cursor::new(wire));
        rx.upgrade();
        assert_eq!(rx.recv::<Probe>().unwrap(), Probe::Ping { n: 1 });
        assert_eq!(rx.recv::<Probe>().unwrap(), Probe::Ping { n: 2 });
        assert_eq!(rx.dup_frames_skipped(), 1);
    }

    #[test]
    fn v2_detects_a_flipped_body_byte_as_checksum_mismatch() {
        let mut wire = pipe(true, |tx| {
            tx.send(&Probe::Blob { data: "payload".into() }).unwrap();
        });
        let mid = wire.len() / 2;
        wire[mid] ^= 0x55;
        let mut rx = Framed::new(Cursor::new(wire));
        rx.upgrade();
        let err = rx.recv::<Probe>().unwrap_err();
        assert!(matches!(err, FrameError::ChecksumMismatch { .. }), "got {err}");
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn v2_detects_a_sequence_gap() {
        let wire = pipe(true, |tx| {
            tx.next_send_seq = 3; // frames 0..3 went missing
            tx.send(&Probe::Ping { n: 9 }).unwrap();
        });
        let mut rx = Framed::new(Cursor::new(wire));
        rx.upgrade();
        let err = rx.recv::<Probe>().unwrap_err();
        assert!(matches!(err, FrameError::SequenceGap { expected: 0, got: 3 }), "got {err}");
    }

    #[test]
    fn v1_mode_of_framed_matches_the_free_functions_byte_for_byte() {
        let frame = Probe::Blob { data: "interop".into() };
        let mut via_free = Vec::new();
        write_frame(&mut via_free, &frame).unwrap();
        let via_framed = pipe(false, |tx| tx.send(&frame).unwrap());
        assert_eq!(via_free, via_framed);
    }
}
