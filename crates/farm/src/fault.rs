//! Deterministic fault injection for farm testing.
//!
//! `UNIGPU_FARM_FAULTS` is a comma-separated `key=value` list applied on the
//! *worker* side:
//!
//! * `drop_nth=N` — silently drop every Nth outgoing frame (the worker then
//!   hits its read timeout and reconnects);
//! * `delay_ms=M` — sleep M ms before every outgoing frame;
//! * `kill_after_leases=K` — exit the worker process loop the moment its
//!   Kth lease is granted, i.e. die mid-lease holding work.
//!
//! Everything is counter-based — no RNG — so a faulty run is exactly
//! reproducible.

/// Parsed fault-injection knobs. Default is no faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Drop every Nth outgoing frame (1-based; `None` = never).
    pub drop_nth: Option<u64>,
    /// Delay before every outgoing frame, milliseconds.
    pub delay_ms: Option<u64>,
    /// Die when the Kth lease is granted, before returning its result.
    pub kill_after_leases: Option<u64>,
}

impl FaultPlan {
    /// Parse a `UNIGPU_FARM_FAULTS` spec. Unknown keys and unparseable
    /// values are ignored — fault injection must never break a real run.
    pub fn parse(spec: &str) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let mut kv = part.splitn(2, '=');
            let key = kv.next().unwrap_or("");
            let value: Option<u64> = kv.next().and_then(|v| v.trim().parse().ok());
            match (key, value) {
                ("drop_nth", Some(v)) if v > 0 => plan.drop_nth = Some(v),
                ("delay_ms", Some(v)) => plan.delay_ms = Some(v),
                ("kill_after_leases", Some(v)) if v > 0 => plan.kill_after_leases = Some(v),
                _ => {}
            }
        }
        plan
    }

    /// Read the plan from `UNIGPU_FARM_FAULTS` (empty plan when unset).
    pub fn from_env() -> FaultPlan {
        match std::env::var("UNIGPU_FARM_FAULTS") {
            Ok(s) => FaultPlan::parse(&s),
            Err(_) => FaultPlan::default(),
        }
    }

    pub fn is_noop(&self) -> bool {
        *self == FaultPlan::default()
    }
}

/// What to do with the outgoing frame the counters landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFault {
    None,
    /// Skip the write entirely (simulated packet loss).
    Drop,
    /// Sleep this many ms, then send.
    Delay(u64),
}

/// Per-worker fault counters. `Copy` so a worker can carry its counters
/// across reconnects (a kill budget must not reset with the session).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultState {
    plan: FaultPlan,
    frames_sent: u64,
    leases_started: u64,
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> Self {
        FaultState { plan, frames_sent: 0, leases_started: 0 }
    }

    /// Advance the frame counter and say what to do with this send.
    pub fn on_send(&mut self) -> SendFault {
        self.frames_sent += 1;
        if let Some(n) = self.plan.drop_nth {
            if self.frames_sent % n == 0 {
                return SendFault::Drop;
            }
        }
        match self.plan.delay_ms {
            Some(ms) => SendFault::Delay(ms),
            None => SendFault::None,
        }
    }

    /// Advance the lease counter; `true` means the kill budget is spent and
    /// the worker must die now, mid-lease.
    pub fn lease_started(&mut self) -> bool {
        self.leases_started += 1;
        matches!(self.plan.kill_after_leases, Some(k) if self.leases_started >= k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("drop_nth=3, delay_ms=5 ,kill_after_leases=2");
        assert_eq!(p.drop_nth, Some(3));
        assert_eq!(p.delay_ms, Some(5));
        assert_eq!(p.kill_after_leases, Some(2));
        assert!(!p.is_noop());
    }

    #[test]
    fn junk_is_ignored() {
        let p = FaultPlan::parse("bogus=1,drop_nth=zero,drop_nth=0,,=,kill_after_leases");
        assert!(p.is_noop());
    }

    #[test]
    fn drop_nth_counts_frames() {
        let mut s = FaultState::new(FaultPlan::parse("drop_nth=3"));
        let faults: Vec<SendFault> = (0..6).map(|_| s.on_send()).collect();
        assert_eq!(
            faults,
            vec![
                SendFault::None,
                SendFault::None,
                SendFault::Drop,
                SendFault::None,
                SendFault::None,
                SendFault::Drop,
            ]
        );
    }

    #[test]
    fn kill_budget_fires_once_reached() {
        let mut s = FaultState::new(FaultPlan::parse("kill_after_leases=2"));
        assert!(!s.lease_started());
        assert!(s.lease_started());
        assert!(s.lease_started(), "stays dead past the threshold");
    }
}
