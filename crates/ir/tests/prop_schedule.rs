//! Property test: arbitrary legal schedule transformations never change what
//! a compute evaluates to — the unified IR's core safety claim.

use proptest::prelude::*;
use unigpu_ir::compute::{Axis, Compute};
use unigpu_ir::eval::Machine;
use unigpu_ir::simplify::simplify_stmt;
use unigpu_ir::{lower, Expr, LoopTag, Schedule};

fn matmul(m: usize, n: usize, k: usize) -> Compute {
    Compute::reduce_sum(
        "c",
        vec![Axis::new("i", m), Axis::new("j", n)],
        vec![Axis::new("k", k)],
        Expr::load("a", Expr::var("i") * Expr::from(k) + Expr::var("k"))
            * Expr::load("b", Expr::var("k") * Expr::from(n) + Expr::var("j")),
        Expr::var("i") * Expr::from(n) + Expr::var("j"),
    )
}

fn run(c: &Compute, s: &Schedule, m: usize, n: usize, k: usize, simplify: bool) -> Vec<f64> {
    let mut stmt = lower(c, s);
    if simplify {
        stmt = simplify_stmt(&stmt);
    }
    let a: Vec<f64> = (0..m * k).map(|x| ((x * 7) % 13) as f64 - 6.0).collect();
    let b: Vec<f64> = (0..k * n).map(|x| ((x * 5) % 11) as f64 * 0.25).collect();
    let mut mach = Machine::new()
        .with_buffer("a", a)
        .with_buffer("b", b)
        .with_buffer("c", vec![0.0; m * n]);
    mach.run(&stmt);
    mach.buffer("c").to_vec()
}

/// A random sequence of schedule transformations applied to the matmul.
#[derive(Debug, Clone)]
enum Xform {
    Split { axis: usize, factor: usize },
    Unroll { axis: usize },
    Vectorize { axis: usize },
    BindThread { axis: usize },
    SwapFirstTwo,
}

fn arb_xforms() -> impl Strategy<Value = Vec<Xform>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..3, 2usize..5).prop_map(|(axis, factor)| Xform::Split { axis, factor }),
            (0usize..3).prop_map(|axis| Xform::Unroll { axis }),
            (0usize..3).prop_map(|axis| Xform::Vectorize { axis }),
            (0usize..2).prop_map(|axis| Xform::BindThread { axis }),
            Just(Xform::SwapFirstTwo),
        ],
        0..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_schedules_preserve_matmul(
        (m, n, k) in (2usize..7, 2usize..7, 1usize..6),
        xforms in arb_xforms(),
        simplify in any::<bool>(),
    ) {
        let c = matmul(m, n, k);
        let base = run(&c, &Schedule::default_for(&c), m, n, k, false);

        let mut s = Schedule::default_for(&c);
        let mut bound_thread = false;
        for x in xforms {
            // Transforms may legitimately fail (unknown axis after renames,
            // binding reductions); failures must leave the schedule usable.
            match x {
                Xform::Split { axis, factor } => {
                    let name = s.loops().get(axis).map(|l| l.var.clone());
                    if let Some(name) = name {
                        let _ = s.split(&name, factor);
                    }
                }
                Xform::Unroll { axis } => {
                    let name = s.loops().get(axis).map(|l| l.var.clone());
                    if let Some(name) = name {
                        let _ = s.unroll(&name);
                    }
                }
                Xform::Vectorize { axis } => {
                    let name = s.loops().get(axis).map(|l| l.var.clone());
                    if let Some(name) = name {
                        let _ = s.vectorize(&name);
                    }
                }
                Xform::BindThread { axis } => {
                    if !bound_thread {
                        let name = s.loops().get(axis).map(|l| l.var.clone());
                        if let Some(name) = name {
                            if s.bind(&name, LoopTag::ThreadIdx(0)).is_ok() {
                                bound_thread = true;
                            }
                        }
                    }
                }
                Xform::SwapFirstTwo => {
                    let names: Vec<String> =
                        s.loops().iter().take(2).map(|l| l.var.clone()).collect();
                    if names.len() == 2 {
                        let _ = s.reorder(&[&names[1], &names[0]]);
                    }
                }
            }
        }
        let got = run(&c, &s, m, n, k, simplify);
        prop_assert_eq!(got, base, "schedule {:?} diverged", s.loops());
    }
}
