//! Source generation: the same lowered IR prints as OpenCL (Intel, ARM Mali)
//! or CUDA (Nvidia) — Figure 1's final stage.
//!
//! These kernels are what *would* be handed to the vendor driver on real
//! hardware. In this reproduction they are exercised for structural checks
//! (both targets emit from one IR; IR conciseness vs raw CUDA, §3.1.1) while
//! execution goes through [`crate::eval`] and the native kernels in
//! `unigpu-ops`.

use crate::expr::{BinOp, Expr};
use crate::stmt::{LoopKind, MemScope, Stmt};
use std::fmt::Write;

/// Target language for code generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    OpenCl,
    Cuda,
}

impl Target {
    fn kernel_qualifier(self) -> &'static str {
        match self {
            Target::OpenCl => "__kernel",
            Target::Cuda => "__global__",
        }
    }

    fn global_ptr(self) -> &'static str {
        match self {
            Target::OpenCl => "__global float* restrict",
            Target::Cuda => "float* __restrict__",
        }
    }

    fn shared_decl(self) -> &'static str {
        match self {
            Target::OpenCl => "__local",
            Target::Cuda => "__shared__",
        }
    }

    fn barrier(self) -> &'static str {
        match self {
            Target::OpenCl => "barrier(CLK_LOCAL_MEM_FENCE);",
            Target::Cuda => "__syncthreads();",
        }
    }

    fn block_idx(self, dim: usize) -> String {
        let d = ["x", "y", "z"][dim.min(2)];
        match self {
            Target::OpenCl => format!("get_group_id({})", dim.min(2)),
            Target::Cuda => format!("blockIdx.{d}"),
        }
    }

    fn thread_idx(self, dim: usize) -> String {
        let d = ["x", "y", "z"][dim.min(2)];
        match self {
            Target::OpenCl => format!("get_local_id({})", dim.min(2)),
            Target::Cuda => format!("threadIdx.{d}"),
        }
    }
}

fn print_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Float(v) => {
            if *v == f64::NEG_INFINITY {
                out.push_str("-INFINITY");
            } else if *v == f64::INFINITY {
                out.push_str("INFINITY");
            } else {
                let _ = write!(out, "{v:?}f");
            }
        }
        Expr::Var(n) => out.push_str(&c_ident(n)),
        Expr::Load { buf, index } => {
            out.push_str(&c_ident(buf));
            out.push('[');
            print_expr(index, out);
            out.push(']');
        }
        Expr::Bin { op, a, b } => match op.c_infix() {
            Some(sym) => {
                out.push('(');
                print_expr(a, out);
                let _ = write!(out, " {sym} ");
                print_expr(b, out);
                out.push(')');
            }
            None => {
                let f = if *op == BinOp::Min { "fmin" } else { "fmax" };
                let _ = write!(out, "{f}(");
                print_expr(a, out);
                out.push_str(", ");
                print_expr(b, out);
                out.push(')');
            }
        },
        Expr::Select { cond, t, f } => {
            out.push('(');
            print_expr(cond, out);
            out.push_str(" ? ");
            print_expr(t, out);
            out.push_str(" : ");
            print_expr(f, out);
            out.push(')');
        }
        Expr::Call { name, args } => {
            // `sigmoid` has no C stdlib spelling; expand inline.
            if name == "sigmoid" && args.len() == 1 {
                out.push_str("(1.0f / (1.0f + exp(-");
                print_expr(&args[0], out);
                out.push_str(")))");
                return;
            }
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(a, out);
            }
            out.push(')');
        }
    }
}

/// Mangle IR names (which may contain `.` from splits) into C identifiers.
fn c_ident(n: &str) -> String {
    n.replace(['.', '-'], "_")
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_stmt(s: &Stmt, t: Target, out: &mut String, level: usize) {
    match s {
        Stmt::Seq(v) => v.iter().for_each(|s| print_stmt(s, t, out, level)),
        Stmt::Nop => {}
        Stmt::Barrier => {
            indent(out, level);
            out.push_str(t.barrier());
            out.push('\n');
        }
        Stmt::For { var, extent, kind, body } => {
            let v = c_ident(var);
            match kind {
                LoopKind::BlockIdx(d) => {
                    indent(out, level);
                    let _ = writeln!(out, "const int {v} = {};  // extent {:?}", t.block_idx(*d), extent);
                    print_stmt(body, t, out, level);
                }
                LoopKind::ThreadIdx(d) => {
                    indent(out, level);
                    let _ = writeln!(out, "const int {v} = {};  // extent {:?}", t.thread_idx(*d), extent);
                    print_stmt(body, t, out, level);
                }
                LoopKind::Unrolled | LoopKind::Serial | LoopKind::Vectorized => {
                    if *kind == LoopKind::Unrolled {
                        indent(out, level);
                        out.push_str("#pragma unroll\n");
                    }
                    indent(out, level);
                    let mut ext = String::new();
                    print_expr(extent, &mut ext);
                    let note = if *kind == LoopKind::Vectorized { "  // vectorize" } else { "" };
                    let _ = writeln!(out, "for (int {v} = 0; {v} < {ext}; ++{v}) {{{note}");
                    print_stmt(body, t, out, level + 1);
                    indent(out, level);
                    out.push_str("}\n");
                }
            }
        }
        Stmt::Store { buf, index, value } => {
            indent(out, level);
            out.push_str(&c_ident(buf));
            out.push('[');
            print_expr(index, out);
            out.push_str("] = ");
            print_expr(value, out);
            out.push_str(";\n");
        }
        Stmt::If { cond, then, els } => {
            indent(out, level);
            out.push_str("if (");
            print_expr(cond, out);
            out.push_str(") {\n");
            print_stmt(then, t, out, level + 1);
            indent(out, level);
            out.push_str("}\n");
            if let Some(e) = els {
                indent(out, level);
                out.push_str("else {\n");
                print_stmt(e, t, out, level + 1);
                indent(out, level);
                out.push_str("}\n");
            }
        }
        Stmt::Alloc { buf, size, scope, body } => {
            indent(out, level);
            let mut sz = String::new();
            print_expr(size, &mut sz);
            match scope {
                MemScope::Register => {
                    let _ = writeln!(out, "float {}[{sz}];", c_ident(buf));
                }
                MemScope::Shared => {
                    let _ = writeln!(out, "{} float {}[{sz}];", t.shared_decl(), c_ident(buf));
                }
                MemScope::Global => {
                    let _ = writeln!(out, "/* global alloc */ float {}[{sz}];", c_ident(buf));
                }
            }
            print_stmt(body, t, out, level);
        }
    }
}

/// Collect buffer names referenced by the statement: `(written, read)`.
pub fn referenced_buffers(s: &Stmt) -> (Vec<String>, Vec<String>) {
    let mut written = Vec::new();
    let mut read = Vec::new();
    let mut allocd = Vec::new();
    fn expr_bufs(e: &Expr, read: &mut Vec<String>) {
        match e {
            Expr::Load { buf, index } => {
                if !read.contains(buf) {
                    read.push(buf.clone());
                }
                expr_bufs(index, read);
            }
            Expr::Bin { a, b, .. } => {
                expr_bufs(a, read);
                expr_bufs(b, read);
            }
            Expr::Select { cond, t, f } => {
                expr_bufs(cond, read);
                expr_bufs(t, read);
                expr_bufs(f, read);
            }
            Expr::Call { args, .. } => args.iter().for_each(|a| expr_bufs(a, read)),
            _ => {}
        }
    }
    s.visit(&mut |st| match st {
        Stmt::Store { buf, index, value } => {
            if !written.contains(buf) {
                written.push(buf.clone());
            }
            expr_bufs(index, &mut read);
            expr_bufs(value, &mut read);
        }
        Stmt::If { cond, .. } => expr_bufs(cond, &mut read),
        Stmt::For { extent, .. } => expr_bufs(extent, &mut read),
        Stmt::Alloc { buf, .. } => allocd.push(buf.clone()),
        _ => {}
    });
    written.retain(|b| !allocd.contains(b));
    read.retain(|b| !allocd.contains(b) && !written.contains(b));
    (written, read)
}

/// Generate a complete kernel function from a lowered statement.
pub fn generate(name: &str, body: &Stmt, target: Target) -> String {
    let (written, read) = referenced_buffers(body);
    let mut src = String::new();
    match target {
        Target::OpenCl => src.push_str("// OpenCL kernel generated by unigpu unified IR\n"),
        Target::Cuda => src.push_str("// CUDA kernel generated by unigpu unified IR\n"),
    }
    let _ = write!(src, "{} void {}(", target.kernel_qualifier(), c_ident(name));
    let mut first = true;
    for b in &written {
        if !first {
            src.push_str(", ");
        }
        let _ = write!(src, "{} {}", target.global_ptr(), c_ident(b));
        first = false;
    }
    for b in &read {
        if !first {
            src.push_str(", ");
        }
        let _ = write!(src, "const {} {}", target.global_ptr(), c_ident(b));
        first = false;
    }
    src.push_str(") {\n");
    print_stmt(body, target, &mut src, 1);
    src.push_str("}\n");
    src
}

/// Non-empty source line count — used to report IR/codegen conciseness.
pub fn line_count(src: &str) -> usize {
    src.lines().filter(|l| !l.trim().is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{Axis, Compute};
    use crate::lower::lower;
    use crate::schedule::Schedule;

    fn lowered_matmul() -> Stmt {
        let c = Compute::reduce_sum(
            "c",
            vec![Axis::new("i", 8), Axis::new("j", 8)],
            vec![Axis::new("k", 8)],
            Expr::load("a", Expr::var("i") * Expr::Int(8) + Expr::var("k"))
                * Expr::load("b", Expr::var("k") * Expr::Int(8) + Expr::var("j")),
            Expr::var("i") * Expr::Int(8) + Expr::var("j"),
        );
        let mut s = Schedule::default_for(&c);
        s.split_bind("i", 4, 0).unwrap();
        s.split("j", 4).unwrap();
        s.vectorize("j.i").unwrap();
        s.unroll("k").unwrap();
        lower(&c, &s)
    }

    #[test]
    fn opencl_and_cuda_from_same_ir() {
        let stmt = lowered_matmul();
        let ocl = generate("matmul", &stmt, Target::OpenCl);
        let cu = generate("matmul", &stmt, Target::Cuda);
        assert!(ocl.contains("__kernel void matmul"));
        assert!(ocl.contains("get_group_id(0)"));
        assert!(ocl.contains("get_local_id(0)"));
        assert!(ocl.contains("barrier") || !ocl.contains("__syncthreads"));
        assert!(cu.contains("__global__ void matmul"));
        assert!(cu.contains("blockIdx.x"));
        assert!(cu.contains("threadIdx.x"));
        assert!(cu.contains("#pragma unroll"));
    }

    #[test]
    fn params_are_outputs_then_inputs() {
        let stmt = lowered_matmul();
        let (w, r) = referenced_buffers(&stmt);
        assert_eq!(w, vec!["c".to_string()]);
        assert!(r.contains(&"a".to_string()) && r.contains(&"b".to_string()));
        // the register accumulator is not a kernel parameter
        assert!(!r.iter().any(|b| b.contains("acc")));
        let src = generate("m", &stmt, Target::OpenCl);
        let sig_end = src.find(") {").unwrap();
        let sig = &src[..sig_end];
        assert!(sig.find("c").is_some());
    }

    #[test]
    fn float_literals_have_suffix() {
        let s = Stmt::store("o", Expr::Int(0), Expr::Float(1.5));
        let src = generate("k", &s, Target::OpenCl);
        assert!(src.contains("1.5f"), "{src}");
    }

    #[test]
    fn min_max_use_fmin_fmax() {
        let s = Stmt::store("o", Expr::Int(0), Expr::max(Expr::Float(0.0), Expr::var("x")));
        let src = generate("relu", &s, Target::Cuda);
        assert!(src.contains("fmax(0.0f, x)"), "{src}");
    }

    #[test]
    fn sigmoid_expands_inline() {
        let s = Stmt::store(
            "o",
            Expr::Int(0),
            Expr::call("sigmoid", vec![Expr::load("x", Expr::Int(0))]),
        );
        let src = generate("k", &s, Target::OpenCl);
        assert!(src.contains("1.0f / (1.0f + exp("), "{src}");
    }

    #[test]
    fn split_names_are_c_safe() {
        let stmt = lowered_matmul();
        let src = generate("m", &stmt, Target::OpenCl);
        assert!(!src.contains("i.o"), "dots must be mangled: {src}");
        assert!(src.contains("i_o"));
    }

    #[test]
    fn line_count_skips_blank_lines() {
        assert_eq!(line_count("a\n\n  \nb\n"), 2);
    }

    #[test]
    fn ir_is_more_concise_than_generated_code() {
        // the §3.1.1 claim, structurally: IR node count < generated lines x N
        let stmt = lowered_matmul();
        let src = generate("m", &stmt, Target::Cuda);
        assert!(line_count(&src) > 10);
    }
}
