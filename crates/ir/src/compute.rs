//! Declarative compute definitions (the "what").

use crate::expr::{BinOp, Expr};
use serde::{Deserialize, Serialize};

/// A named iteration axis with a compile-time extent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Axis {
    pub name: String,
    pub extent: usize,
}

impl Axis {
    pub fn new(name: impl Into<String>, extent: usize) -> Self {
        Axis { name: name.into(), extent }
    }

    /// The axis variable as an expression.
    pub fn var(&self) -> Expr {
        Expr::var(self.name.clone())
    }
}

/// A tensor compute: for every point of the spatial axes, reduce `expr` over
/// the reduction axes with `combine`, starting from `init`, and store at
/// `out_index` of buffer `name`.
///
/// Example — `conv2d` declares spatial axes `(n, oc, oh, ow)`, reduction axes
/// `(ic, kh, kw)`, `combine = Add`, and
/// `expr = data[n,ic,oh+kh,ow+kw] * weight[oc,ic,kh,kw]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Compute {
    /// Output buffer name.
    pub name: String,
    /// Spatial (parallelizable) axes.
    pub axes: Vec<Axis>,
    /// Reduction axes (empty for elementwise computes).
    pub reduce_axes: Vec<Axis>,
    /// Reduction identity (`0.0` for sum, `-inf` for max-pool).
    pub init: Expr,
    /// Combination operator applied per reduction step.
    pub combine: BinOp,
    /// Per-point value in terms of the axis variables.
    pub expr: Expr,
    /// Flat output offset in terms of the spatial axis variables.
    pub out_index: Expr,
}

impl Compute {
    /// Elementwise/spatial-only compute (no reduction).
    pub fn spatial(
        name: impl Into<String>,
        axes: Vec<Axis>,
        expr: Expr,
        out_index: Expr,
    ) -> Self {
        Compute {
            name: name.into(),
            axes,
            reduce_axes: vec![],
            init: Expr::Float(0.0),
            combine: BinOp::Add,
            expr,
            out_index,
        }
    }

    /// Sum-reduction compute.
    pub fn reduce_sum(
        name: impl Into<String>,
        axes: Vec<Axis>,
        reduce_axes: Vec<Axis>,
        expr: Expr,
        out_index: Expr,
    ) -> Self {
        Compute {
            name: name.into(),
            axes,
            reduce_axes,
            init: Expr::Float(0.0),
            combine: BinOp::Add,
            expr,
            out_index,
        }
    }

    /// Total number of output points.
    pub fn out_numel(&self) -> usize {
        self.axes.iter().map(|a| a.extent).product()
    }

    /// Total reduction length per output point.
    pub fn reduce_numel(&self) -> usize {
        self.reduce_axes.iter().map(|a| a.extent).product()
    }

    /// FLOPs for the whole compute (2 ops per reduce step: mul + combine;
    /// 1 op per point for pure spatial computes).
    pub fn flops(&self) -> f64 {
        if self.reduce_axes.is_empty() {
            self.out_numel() as f64
        } else {
            2.0 * self.out_numel() as f64 * self.reduce_numel() as f64
        }
    }

    /// Find an axis (spatial or reduce) by name.
    pub fn find_axis(&self, name: &str) -> Option<&Axis> {
        self.axes
            .iter()
            .chain(self.reduce_axes.iter())
            .find(|a| a.name == name)
    }
}

/// Build a flat row-major index expression from `(var, extent)` pairs,
/// outermost first: `((v0*e1 + v1)*e2 + v2)...`.
pub fn row_major_index(parts: &[(Expr, usize)]) -> Expr {
    assert!(!parts.is_empty(), "row_major_index needs at least one part");
    let mut it = parts.iter();
    let mut acc = it.next().unwrap().0.clone();
    for (v, e) in it {
        acc = acc * Expr::Int(*e as i64) + v.clone();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_matches_manual() {
        // index of [n][c][h] in shape [_,C=3,H=5]
        let e = row_major_index(&[
            (Expr::var("n"), 0),
            (Expr::var("c"), 3),
            (Expr::var("h"), 5),
        ]);
        // ((n*3 + c)*5 + h)
        let mut vars = vec![];
        e.free_vars(&mut vars);
        assert_eq!(vars.len(), 3);
    }

    #[test]
    fn flops_of_reduction() {
        let c = Compute::reduce_sum(
            "out",
            vec![Axis::new("i", 4)],
            vec![Axis::new("k", 8)],
            Expr::Float(1.0),
            Expr::var("i"),
        );
        assert_eq!(c.out_numel(), 4);
        assert_eq!(c.reduce_numel(), 8);
        assert_eq!(c.flops(), 64.0);
    }

    #[test]
    fn spatial_flops() {
        let c = Compute::spatial(
            "out",
            vec![Axis::new("i", 10)],
            Expr::Float(0.0),
            Expr::var("i"),
        );
        assert_eq!(c.flops(), 10.0);
        assert_eq!(c.reduce_numel(), 1);
    }

    #[test]
    fn find_axis_searches_both_kinds() {
        let c = Compute::reduce_sum(
            "o",
            vec![Axis::new("i", 2)],
            vec![Axis::new("k", 3)],
            Expr::Float(0.0),
            Expr::var("i"),
        );
        assert_eq!(c.find_axis("k").unwrap().extent, 3);
        assert!(c.find_axis("zz").is_none());
    }
}
