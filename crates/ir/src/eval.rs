//! A reference interpreter for lowered IR.
//!
//! This is the stack's functional ground truth: every schedule variant of a
//! compute must evaluate to the same tensor as the default schedule (the
//! "schedules never change results" invariant, property-tested in the `ops`
//! crate). GPU-bound loops run sequentially — binding only changes *where*
//! iterations run, never *what* they compute.

use crate::expr::{BinOp, Expr};
use crate::stmt::Stmt;
use std::collections::HashMap;

/// Interpreter state: named f64 buffers + a loop-variable environment.
#[derive(Debug, Default)]
pub struct Machine {
    bufs: HashMap<String, Vec<f64>>,
    env: HashMap<String, i64>,
}

impl Machine {
    pub fn new() -> Self {
        Machine::default()
    }

    /// Register an input/output buffer.
    pub fn with_buffer(mut self, name: impl Into<String>, data: Vec<f64>) -> Self {
        self.bufs.insert(name.into(), data);
        self
    }

    /// Register an f32 buffer (converted to the interpreter's f64 storage).
    pub fn with_buffer_f32(self, name: impl Into<String>, data: &[f32]) -> Self {
        self.with_buffer(name, data.iter().map(|&x| x as f64).collect())
    }

    /// Read back a buffer.
    pub fn buffer(&self, name: &str) -> &[f64] {
        &self.bufs[name]
    }

    /// Read back a buffer as f32.
    pub fn buffer_f32(&self, name: &str) -> Vec<f32> {
        self.bufs[name].iter().map(|&x| x as f32).collect()
    }

    /// Evaluate an expression in *index* context: integer division/modulo
    /// semantics, loop variables only.
    fn eval_i(&self, e: &Expr) -> i64 {
        match e {
            Expr::Int(v) => *v,
            Expr::Float(v) => *v as i64,
            Expr::Var(n) => *self
                .env
                .get(n)
                .unwrap_or_else(|| panic!("unbound loop var `{n}`")),
            Expr::Bin { op, a, b } => {
                let (x, y) = (self.eval_i(a), self.eval_i(b));
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x.div_euclid(y),
                    BinOp::Mod => x.rem_euclid(y),
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    BinOp::Lt => (x < y) as i64,
                    BinOp::Le => (x <= y) as i64,
                    BinOp::Gt => (x > y) as i64,
                    BinOp::Ge => (x >= y) as i64,
                    BinOp::Eq => (x == y) as i64,
                    BinOp::And => ((x != 0) && (y != 0)) as i64,
                    BinOp::Or => ((x != 0) || (y != 0)) as i64,
                }
            }
            Expr::Select { cond, t, f } => {
                if self.eval_i(cond) != 0 {
                    self.eval_i(t)
                } else {
                    self.eval_i(f)
                }
            }
            Expr::Load { .. } | Expr::Call { .. } => {
                panic!("loads/calls are not valid in index context: {e:?}")
            }
        }
    }

    /// Evaluate an expression in *data* context (f64 arithmetic).
    fn eval_f(&self, e: &Expr) -> f64 {
        match e {
            Expr::Int(v) => *v as f64,
            Expr::Float(v) => *v,
            Expr::Var(n) => *self
                .env
                .get(n)
                .unwrap_or_else(|| panic!("unbound loop var `{n}`")) as f64,
            Expr::Load { buf, index } => {
                let i = self.eval_i(index);
                let b = self
                    .bufs
                    .get(buf)
                    .unwrap_or_else(|| panic!("unknown buffer `{buf}`"));
                assert!(
                    (0..b.len() as i64).contains(&i),
                    "OOB load {buf}[{i}] (len {})",
                    b.len()
                );
                b[i as usize]
            }
            Expr::Bin { op, a, b } => {
                let (x, y) = (self.eval_f(a), self.eval_f(b));
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Mod => x.rem_euclid(y),
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    BinOp::Lt => (x < y) as i64 as f64,
                    BinOp::Le => (x <= y) as i64 as f64,
                    BinOp::Gt => (x > y) as i64 as f64,
                    BinOp::Ge => (x >= y) as i64 as f64,
                    BinOp::Eq => (x == y) as i64 as f64,
                    BinOp::And => ((x != 0.0) && (y != 0.0)) as i64 as f64,
                    BinOp::Or => ((x != 0.0) || (y != 0.0)) as i64 as f64,
                }
            }
            Expr::Select { cond, t, f } => {
                if self.eval_f(cond) != 0.0 {
                    self.eval_f(t)
                } else {
                    self.eval_f(f)
                }
            }
            Expr::Call { name, args } => {
                let a: Vec<f64> = args.iter().map(|x| self.eval_f(x)).collect();
                match (name.as_str(), a.as_slice()) {
                    ("exp", [x]) => x.exp(),
                    ("log", [x]) => x.ln(),
                    ("sqrt", [x]) => x.sqrt(),
                    ("abs", [x]) => x.abs(),
                    ("floor", [x]) => x.floor(),
                    ("sigmoid", [x]) => 1.0 / (1.0 + (-x).exp()),
                    ("tanh", [x]) => x.tanh(),
                    ("pow", [x, y]) => x.powf(*y),
                    _ => panic!("unknown intrinsic `{name}`/{}", a.len()),
                }
            }
        }
    }

    /// Execute a statement tree.
    pub fn run(&mut self, s: &Stmt) {
        match s {
            Stmt::Seq(v) => v.iter().for_each(|s| self.run(s)),
            Stmt::Nop | Stmt::Barrier => {}
            Stmt::For { var, extent, body, .. } => {
                let n = self.eval_i(extent);
                let saved = self.env.get(var).copied();
                for i in 0..n {
                    self.env.insert(var.clone(), i);
                    self.run(body);
                }
                match saved {
                    Some(v) => {
                        self.env.insert(var.clone(), v);
                    }
                    None => {
                        self.env.remove(var);
                    }
                }
            }
            Stmt::Store { buf, index, value } => {
                let i = self.eval_i(index);
                let v = self.eval_f(value);
                let b = self
                    .bufs
                    .get_mut(buf)
                    .unwrap_or_else(|| panic!("unknown buffer `{buf}`"));
                assert!(
                    (0..b.len() as i64).contains(&i),
                    "OOB store {buf}[{i}] (len {})",
                    b.len()
                );
                b[i as usize] = v;
            }
            Stmt::If { cond, then, els } => {
                if self.eval_i(cond) != 0 {
                    self.run(then);
                } else if let Some(e) = els {
                    self.run(e);
                }
            }
            Stmt::Alloc { buf, size, body, .. } => {
                let n = self.eval_i(size).max(0) as usize;
                let saved = self.bufs.insert(buf.clone(), vec![0.0; n]);
                self.run(body);
                match saved {
                    Some(old) => {
                        self.bufs.insert(buf.clone(), old);
                    }
                    None => {
                        self.bufs.remove(buf);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{Axis, Compute};
    use crate::lower::lower;
    use crate::schedule::{LoopTag, Schedule};

    fn matmul_compute(m: usize, n: usize, k: usize) -> Compute {
        Compute::reduce_sum(
            "c",
            vec![Axis::new("i", m), Axis::new("j", n)],
            vec![Axis::new("k", k)],
            Expr::load("a", Expr::var("i") * Expr::Int(k as i64) + Expr::var("k"))
                * Expr::load("b", Expr::var("k") * Expr::Int(n as i64) + Expr::var("j")),
            Expr::var("i") * Expr::Int(n as i64) + Expr::var("j"),
        )
    }

    fn reference_matmul(a: &[f64], b: &[f64], m: usize, n: usize, k: usize) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn run_matmul(m: usize, n: usize, k: usize, s: &Schedule) -> Vec<f64> {
        let c = matmul_compute(m, n, k);
        let stmt = lower(&c, s);
        let a: Vec<f64> = (0..m * k).map(|x| (x % 7) as f64 - 3.0).collect();
        let b: Vec<f64> = (0..k * n).map(|x| (x % 5) as f64 * 0.5).collect();
        let mut mach = Machine::new()
            .with_buffer("a", a)
            .with_buffer("b", b)
            .with_buffer("c", vec![0.0; m * n]);
        mach.run(&stmt);
        mach.buffer("c").to_vec()
    }

    #[test]
    fn default_schedule_matches_reference() {
        let (m, n, k) = (4, 6, 5);
        let c = matmul_compute(m, n, k);
        let s = Schedule::default_for(&c);
        let got = run_matmul(m, n, k, &s);
        let a: Vec<f64> = (0..m * k).map(|x| (x % 7) as f64 - 3.0).collect();
        let b: Vec<f64> = (0..k * n).map(|x| (x % 5) as f64 * 0.5).collect();
        assert_eq!(got, reference_matmul(&a, &b, m, n, k));
    }

    #[test]
    fn split_reorder_schedule_is_equivalent() {
        let (m, n, k) = (8, 8, 8);
        let c = matmul_compute(m, n, k);
        let base = run_matmul(m, n, k, &Schedule::default_for(&c));

        let mut s = Schedule::default_for(&c);
        let (_jo, ji) = s.split("j", 4).unwrap();
        s.split("k", 2).unwrap();
        s.reorder(&["k.o", "i"]).unwrap();
        s.vectorize(&ji).unwrap();
        s.unroll("k.i").unwrap();
        assert_eq!(run_matmul(m, n, k, &s), base);
    }

    #[test]
    fn imperfect_split_is_equivalent() {
        let (m, n, k) = (5, 7, 3);
        let c = matmul_compute(m, n, k);
        let base = run_matmul(m, n, k, &Schedule::default_for(&c));
        let mut s = Schedule::default_for(&c);
        s.split("i", 2).unwrap();
        s.split("j", 4).unwrap();
        assert_eq!(run_matmul(m, n, k, &s), base);
    }

    #[test]
    fn gpu_bound_schedule_is_equivalent() {
        let (m, n, k) = (8, 16, 4);
        let c = matmul_compute(m, n, k);
        let base = run_matmul(m, n, k, &Schedule::default_for(&c));
        let mut s = Schedule::default_for(&c);
        s.split_bind("i", 4, 0).unwrap();
        s.bind("j", LoopTag::ThreadIdx(1)).unwrap();
        assert_eq!(run_matmul(m, n, k, &s), base);
    }

    #[test]
    fn register_tile_inside_reduction() {
        // j.i inside k: classic spatial-pack shape.
        let (m, n, k) = (4, 8, 6);
        let c = matmul_compute(m, n, k);
        let base = run_matmul(m, n, k, &Schedule::default_for(&c));
        let mut s = Schedule::default_for(&c);
        s.split("j", 4).unwrap();
        // order: i, j.o, k, j.i  → j.i is a register tile inside reduction
        s.reorder(&["i", "j.o", "k", "j.i"]).unwrap();
        assert_eq!(run_matmul(m, n, k, &s), base);
    }

    #[test]
    fn elementwise_with_intrinsics() {
        let c = Compute::spatial(
            "y",
            vec![Axis::new("i", 4)],
            Expr::call("sigmoid", vec![Expr::load("x", Expr::var("i"))]),
            Expr::var("i"),
        );
        let stmt = lower(&c, &Schedule::default_for(&c));
        let mut m = Machine::new()
            .with_buffer("x", vec![0.0, 1.0, -1.0, 10.0])
            .with_buffer("y", vec![0.0; 4]);
        m.run(&stmt);
        let y = m.buffer("y");
        assert!((y[0] - 0.5).abs() < 1e-12);
        assert!((y[1] - 1.0 / (1.0 + (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "OOB")]
    fn oob_store_is_caught() {
        let s = Stmt::store("o", Expr::Int(5), Expr::Float(1.0));
        let mut m = Machine::new().with_buffer("o", vec![0.0; 4]);
        m.run(&s);
    }

    #[test]
    fn fuse_evaluates_correctly() {
        let (m, n, k) = (6, 4, 3);
        let c = matmul_compute(m, n, k);
        let base = run_matmul(m, n, k, &Schedule::default_for(&c));
        let mut s = Schedule::default_for(&c);
        s.fuse("i", "j").unwrap();
        assert_eq!(run_matmul(m, n, k, &s), base);
    }
}
