//! Imperative statements — the lowered form of a scheduled compute.

use crate::expr::Expr;
use serde::{Deserialize, Serialize};

/// How a loop executes after scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopKind {
    /// Plain sequential loop.
    Serial,
    /// Fully unrolled (§3.2.2: "unrolling the nested loops of a convolution
    /// kernel ... reduced control overhead, increased ILP").
    Unrolled,
    /// SIMD-vectorized innermost loop.
    Vectorized,
    /// Bound to the GPU grid: `get_group_id(dim)` / `blockIdx.{x,y,z}`.
    BlockIdx(usize),
    /// Bound to the work-group: `get_local_id(dim)` / `threadIdx.{x,y,z}`.
    ThreadIdx(usize),
}

impl LoopKind {
    /// True for loops that become GPU index bindings (no host loop emitted).
    pub fn is_gpu_bound(self) -> bool {
        matches!(self, LoopKind::BlockIdx(_) | LoopKind::ThreadIdx(_))
    }
}

/// Memory scope of an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemScope {
    /// Off-chip DRAM, visible to all work-items.
    Global,
    /// Work-group shared local memory (`__local` / `__shared__`). On Mali
    /// this is emulated in DRAM — the cost model charges for that.
    Shared,
    /// Per-thread registers (Intel GRF; §3.2.1).
    Register,
}

/// A statement tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `for var in 0..extent { body }` with an execution annotation.
    For { var: String, extent: Expr, kind: LoopKind, body: Box<Stmt> },
    /// `buf[index] = value`.
    Store { buf: String, index: Expr, value: Expr },
    /// Statement sequence.
    Seq(Vec<Stmt>),
    /// `if cond { then } else { els }`.
    If { cond: Expr, then: Box<Stmt>, els: Option<Box<Stmt>> },
    /// Scoped allocation: `buf` of `size` f32 elements live within `body`.
    Alloc { buf: String, size: Expr, scope: MemScope, body: Box<Stmt> },
    /// Work-group barrier.
    Barrier,
    /// No-op (useful as an `If` else-arm placeholder).
    Nop,
}

impl Stmt {
    pub fn seq(stmts: Vec<Stmt>) -> Stmt {
        Stmt::Seq(stmts)
    }

    pub fn store(buf: impl Into<String>, index: Expr, value: Expr) -> Stmt {
        Stmt::Store { buf: buf.into(), index, value }
    }

    pub fn for_(var: impl Into<String>, extent: impl Into<Expr>, kind: LoopKind, body: Stmt) -> Stmt {
        Stmt::For { var: var.into(), extent: extent.into(), kind, body: Box::new(body) }
    }

    pub fn if_(cond: Expr, then: Stmt) -> Stmt {
        Stmt::If { cond, then: Box::new(then), els: None }
    }

    /// Total AST node count (statements + expressions).
    pub fn node_count(&self) -> usize {
        match self {
            Stmt::For { extent, body, .. } => 1 + extent.node_count() + body.node_count(),
            Stmt::Store { index, value, .. } => 1 + index.node_count() + value.node_count(),
            Stmt::Seq(v) => 1 + v.iter().map(Stmt::node_count).sum::<usize>(),
            Stmt::If { cond, then, els } => {
                1 + cond.node_count()
                    + then.node_count()
                    + els.as_ref().map_or(0, |e| e.node_count())
            }
            Stmt::Alloc { size, body, .. } => 1 + size.node_count() + body.node_count(),
            Stmt::Barrier | Stmt::Nop => 1,
        }
    }

    /// Visit every statement node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::For { body, .. } | Stmt::Alloc { body, .. } => body.visit(f),
            Stmt::Seq(v) => v.iter().for_each(|s| s.visit(f)),
            Stmt::If { then, els, .. } => {
                then.visit(f);
                if let Some(e) = els {
                    e.visit(f);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_bound_loops() {
        assert!(LoopKind::BlockIdx(0).is_gpu_bound());
        assert!(LoopKind::ThreadIdx(2).is_gpu_bound());
        assert!(!LoopKind::Serial.is_gpu_bound());
        assert!(!LoopKind::Vectorized.is_gpu_bound());
    }

    #[test]
    fn visit_reaches_all_nodes() {
        let s = Stmt::for_(
            "i",
            4usize,
            LoopKind::Serial,
            Stmt::seq(vec![
                Stmt::store("out", Expr::var("i"), Expr::Float(0.0)),
                Stmt::Barrier,
            ]),
        );
        let mut count = 0;
        s.visit(&mut |_| count += 1);
        assert_eq!(count, 4); // For, Seq, Store, Barrier
    }

    #[test]
    fn node_count() {
        let s = Stmt::store("o", Expr::Int(0), Expr::Float(1.0));
        assert_eq!(s.node_count(), 3);
    }
}
