//! Loop-structure feature extraction for the machine-learning cost model.
//!
//! AutoTVM's XGBoost ranker consumes features of the lowered loop program
//! ("knob features + curve features"). This reproduction extracts a compact
//! fixed-width vector capturing the same signal: problem size, launch
//! geometry, vectorization/unrolling, register-tile footprint, and guard
//! presence. `unigpu-tuner`'s gradient-boosted trees are trained on these.

use crate::compute::Compute;
use crate::schedule::{LoopTag, Schedule};

/// Width of the feature vector produced by [`extract_features`].
pub const FEATURE_DIM: usize = 12;

fn log2p1(x: f64) -> f64 {
    (x + 1.0).log2()
}

/// Extract the feature vector for a (compute, schedule) pair.
pub fn extract_features(compute: &Compute, schedule: &Schedule) -> [f64; FEATURE_DIM] {
    let loops = schedule.loops();
    let first_reduce = loops.iter().position(|l| l.is_reduce);
    // Register-tile size: spatial loops nested inside the reduction.
    let tile: usize = match first_reduce {
        Some(fr) => loops[fr..]
            .iter()
            .filter(|l| !l.is_reduce)
            .map(|l| l.extent)
            .product::<usize>()
            .max(1),
        None => 1,
    };
    let innermost = loops.last().map_or(1, |l| l.extent);
    let threads: usize = schedule.workgroup_size().max(1);
    let grid: usize = schedule.grid_size().max(1);
    let n_bound = loops
        .iter()
        .filter(|l| matches!(l.tag, LoopTag::BlockIdx(_) | LoopTag::ThreadIdx(_)))
        .count();

    [
        log2p1(compute.out_numel() as f64),
        log2p1(compute.reduce_numel() as f64),
        log2p1(grid as f64),
        log2p1(threads as f64),
        schedule.vector_len() as f64,
        log2p1(schedule.unroll_len() as f64),
        loops.len() as f64,
        if schedule.guards().is_empty() { 0.0 } else { 1.0 },
        log2p1(tile as f64),
        log2p1(innermost as f64),
        log2p1(compute.flops()),
        n_bound as f64,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{Axis, Compute};
    use crate::expr::Expr;

    fn mk() -> Compute {
        Compute::reduce_sum(
            "o",
            vec![Axis::new("i", 64), Axis::new("j", 64)],
            vec![Axis::new("k", 32)],
            Expr::Float(1.0),
            Expr::var("i") * Expr::Int(64) + Expr::var("j"),
        )
    }

    #[test]
    fn dimension_is_stable() {
        let c = mk();
        let s = Schedule::default_for(&c);
        assert_eq!(extract_features(&c, &s).len(), FEATURE_DIM);
    }

    #[test]
    fn features_respond_to_schedule_changes() {
        let c = mk();
        let base = extract_features(&c, &Schedule::default_for(&c));
        let mut s = Schedule::default_for(&c);
        let (_, ji) = s.split("j", 8).unwrap();
        s.vectorize(&ji).unwrap();
        s.split_bind("i", 16, 0).unwrap();
        let tuned = extract_features(&c, &s);
        assert_ne!(base, tuned);
        assert_eq!(tuned[4], 8.0); // vector_len
        assert!(tuned[3] > base[3]); // workgroup grew
    }

    #[test]
    fn guard_feature_flips_on_imperfect_split() {
        let c = mk();
        let mut s = Schedule::default_for(&c);
        s.split("i", 48).unwrap(); // 64 % 48 != 0
        let f = extract_features(&c, &s);
        assert_eq!(f[7], 1.0);
    }

    #[test]
    fn tile_feature_counts_inner_spatial_loops() {
        let c = mk();
        let mut s = Schedule::default_for(&c);
        let (_, ji) = s.split("j", 4).unwrap();
        s.reorder(&["i", "j.o", "k", &ji]).unwrap();
        let f = extract_features(&c, &s);
        assert_eq!(f[8], (4.0f64 + 1.0).log2());
    }
}
