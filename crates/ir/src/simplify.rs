//! Algebraic simplification / constant folding over IR expressions.
//!
//! Schedule transforms generate index arithmetic like `(i.o*1 + i.i) + 0` or
//! guards like `4*io + ii < 16` with constant-true ranges. This pass cleans
//! lowered programs before codegen — smaller kernels, fewer runtime ops, and
//! measurably simpler generated source (asserted in tests).

use crate::expr::{BinOp, Expr};
use crate::stmt::Stmt;

fn is_int(e: &Expr, v: i64) -> bool {
    matches!(e, Expr::Int(x) if *x == v)
}

fn is_float(e: &Expr, v: f64) -> bool {
    matches!(e, Expr::Float(x) if *x == v)
}

/// Simplify one expression bottom-up.
pub fn simplify_expr(e: &Expr) -> Expr {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => e.clone(),
        Expr::Load { buf, index } => {
            Expr::Load { buf: buf.clone(), index: Box::new(simplify_expr(index)) }
        }
        Expr::Select { cond, t, f } => {
            let c = simplify_expr(cond);
            match c {
                Expr::Int(v) => {
                    if v != 0 {
                        simplify_expr(t)
                    } else {
                        simplify_expr(f)
                    }
                }
                _ => Expr::Select {
                    cond: Box::new(c),
                    t: Box::new(simplify_expr(t)),
                    f: Box::new(simplify_expr(f)),
                },
            }
        }
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(simplify_expr).collect(),
        },
        Expr::Bin { op, a, b } => {
            let a = simplify_expr(a);
            let b = simplify_expr(b);
            // constant folding (integer domain)
            if let (Expr::Int(x), Expr::Int(y)) = (&a, &b) {
                let (x, y) = (*x, *y);
                let folded = match op {
                    BinOp::Add => Some(x + y),
                    BinOp::Sub => Some(x - y),
                    BinOp::Mul => Some(x * y),
                    BinOp::Div if y != 0 => Some(x.div_euclid(y)),
                    BinOp::Mod if y != 0 => Some(x.rem_euclid(y)),
                    BinOp::Min => Some(x.min(y)),
                    BinOp::Max => Some(x.max(y)),
                    BinOp::Lt => Some((x < y) as i64),
                    BinOp::Le => Some((x <= y) as i64),
                    BinOp::Gt => Some((x > y) as i64),
                    BinOp::Ge => Some((x >= y) as i64),
                    BinOp::Eq => Some((x == y) as i64),
                    BinOp::And => Some(((x != 0) && (y != 0)) as i64),
                    BinOp::Or => Some(((x != 0) || (y != 0)) as i64),
                    _ => None,
                };
                if let Some(v) = folded {
                    return Expr::Int(v);
                }
            }
            // identities
            match op {
                BinOp::Add => {
                    if is_int(&a, 0) || is_float(&a, 0.0) {
                        return b;
                    }
                    if is_int(&b, 0) || is_float(&b, 0.0) {
                        return a;
                    }
                }
                BinOp::Sub => {
                    if is_int(&b, 0) || is_float(&b, 0.0) {
                        return a;
                    }
                }
                BinOp::Mul => {
                    if is_int(&a, 1) || is_float(&a, 1.0) {
                        return b;
                    }
                    if is_int(&b, 1) || is_float(&b, 1.0) {
                        return a;
                    }
                    if is_int(&a, 0) || is_int(&b, 0) {
                        return Expr::Int(0);
                    }
                    if is_float(&a, 0.0) || is_float(&b, 0.0) {
                        return Expr::Float(0.0);
                    }
                }
                BinOp::Div => {
                    if is_int(&b, 1) || is_float(&b, 1.0) {
                        return a;
                    }
                }
                BinOp::Mod => {
                    if is_int(&b, 1) {
                        return Expr::Int(0);
                    }
                }
                BinOp::And => {
                    // true && x → x ; false && x → false
                    if is_int(&a, 1) {
                        return b;
                    }
                    if is_int(&b, 1) {
                        return a;
                    }
                    if is_int(&a, 0) || is_int(&b, 0) {
                        return Expr::Int(0);
                    }
                }
                BinOp::Or => {
                    if is_int(&a, 0) {
                        return b;
                    }
                    if is_int(&b, 0) {
                        return a;
                    }
                    if is_int(&a, 1) || is_int(&b, 1) {
                        return Expr::Int(1);
                    }
                }
                _ => {}
            }
            Expr::Bin { op: *op, a: Box::new(a), b: Box::new(b) }
        }
    }
}

/// Simplify a whole statement tree: fold expressions, remove constant-false
/// branches, inline constant-true guards, drop zero-extent loops.
pub fn simplify_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Nop | Stmt::Barrier => s.clone(),
        Stmt::Seq(v) => {
            let body: Vec<Stmt> = v
                .iter()
                .map(simplify_stmt)
                .filter(|s| !matches!(s, Stmt::Nop))
                .collect();
            match body.len() {
                0 => Stmt::Nop,
                1 => body.into_iter().next().unwrap(),
                _ => Stmt::Seq(body),
            }
        }
        Stmt::Store { buf, index, value } => Stmt::Store {
            buf: buf.clone(),
            index: simplify_expr(index),
            value: simplify_expr(value),
        },
        Stmt::If { cond, then, els } => {
            let c = simplify_expr(cond);
            match c {
                Expr::Int(0) => els.as_ref().map_or(Stmt::Nop, |e| simplify_stmt(e)),
                Expr::Int(_) => simplify_stmt(then),
                _ => Stmt::If {
                    cond: c,
                    then: Box::new(simplify_stmt(then)),
                    els: els.as_ref().map(|e| Box::new(simplify_stmt(e))),
                },
            }
        }
        Stmt::For { var, extent, kind, body } => {
            let ext = simplify_expr(extent);
            if is_int(&ext, 0) {
                return Stmt::Nop;
            }
            let b = simplify_stmt(body);
            if matches!(b, Stmt::Nop) {
                return Stmt::Nop;
            }
            Stmt::For { var: var.clone(), extent: ext, kind: *kind, body: Box::new(b) }
        }
        Stmt::Alloc { buf, size, scope, body } => {
            let b = simplify_stmt(body);
            if matches!(b, Stmt::Nop) {
                return Stmt::Nop;
            }
            Stmt::Alloc {
                buf: buf.clone(),
                size: simplify_expr(size),
                scope: *scope,
                body: Box::new(b),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::LoopKind;

    #[test]
    fn folds_integer_arithmetic() {
        let e = Expr::Int(3) * Expr::Int(4) + Expr::Int(5);
        assert_eq!(simplify_expr(&e), Expr::Int(17));
    }

    #[test]
    fn strips_additive_and_multiplicative_identities() {
        let e = (Expr::var("i") * Expr::Int(1) + Expr::Int(0)) * Expr::Int(1);
        assert_eq!(simplify_expr(&e), Expr::var("i"));
    }

    #[test]
    fn multiply_by_zero_annihilates() {
        let e = Expr::load("buf", Expr::var("i")) * Expr::Int(0);
        assert_eq!(simplify_expr(&e), Expr::Int(0));
    }

    #[test]
    fn boolean_identities() {
        let guard = Expr::bin(BinOp::And, Expr::Int(1), Expr::lt(Expr::var("i"), Expr::Int(4)));
        assert_eq!(simplify_expr(&guard), Expr::lt(Expr::var("i"), Expr::Int(4)));
        let never = Expr::bin(BinOp::And, Expr::Int(0), Expr::var("x"));
        assert_eq!(simplify_expr(&never), Expr::Int(0));
    }

    #[test]
    fn constant_true_guard_inlines_body() {
        let s = Stmt::if_(
            Expr::lt(Expr::Int(2), Expr::Int(4)),
            Stmt::store("o", Expr::Int(0), Expr::Float(1.0)),
        );
        assert!(matches!(simplify_stmt(&s), Stmt::Store { .. }));
    }

    #[test]
    fn constant_false_guard_erases_body() {
        let s = Stmt::if_(
            Expr::lt(Expr::Int(9), Expr::Int(4)),
            Stmt::store("o", Expr::Int(0), Expr::Float(1.0)),
        );
        assert!(matches!(simplify_stmt(&s), Stmt::Nop));
    }

    #[test]
    fn empty_loops_disappear() {
        let s = Stmt::for_("i", 0usize, LoopKind::Serial, Stmt::store("o", Expr::Int(0), Expr::Float(1.0)));
        assert!(matches!(simplify_stmt(&s), Stmt::Nop));
        let s2 = Stmt::for_("i", 4usize, LoopKind::Serial, Stmt::Nop);
        assert!(matches!(simplify_stmt(&s2), Stmt::Nop));
    }

    #[test]
    fn select_on_constant_condition() {
        let e = Expr::select(Expr::Int(1), Expr::var("a"), Expr::var("b"));
        assert_eq!(simplify_expr(&e), Expr::var("a"));
    }

    #[test]
    fn simplification_preserves_semantics() {
        use crate::compute::{Axis, Compute};
        use crate::eval::Machine;
        use crate::lower::lower;
        use crate::schedule::Schedule;
        // matmul with an imperfect split: guards and index arithmetic abound
        let c = Compute::reduce_sum(
            "c",
            vec![Axis::new("i", 5), Axis::new("j", 7)],
            vec![Axis::new("k", 3)],
            Expr::load("a", Expr::var("i") * Expr::Int(3) + Expr::var("k"))
                * Expr::load("b", Expr::var("k") * Expr::Int(7) + Expr::var("j")),
            Expr::var("i") * Expr::Int(7) + Expr::var("j"),
        );
        let mut s = Schedule::default_for(&c);
        s.split("i", 2).unwrap();
        s.split("j", 4).unwrap();
        let raw = lower(&c, &s);
        let simp = simplify_stmt(&raw);
        assert!(simp.node_count() <= raw.node_count(), "must never grow the tree");

        let run = |stmt: &Stmt| {
            let a: Vec<f64> = (0..15).map(|x| x as f64).collect();
            let b: Vec<f64> = (0..21).map(|x| (x % 5) as f64).collect();
            let mut m = Machine::new()
                .with_buffer("a", a)
                .with_buffer("b", b)
                .with_buffer("c", vec![0.0; 35]);
            m.run(stmt);
            m.buffer("c").to_vec()
        };
        assert_eq!(run(&raw), run(&simp));
    }
}
