//! Schedule primitives (the "how").
//!
//! A [`Schedule`] is an ordered list of loops derived from a compute's axes
//! by `split` / `fuse` / `reorder`, with per-loop execution tags applied by
//! `unroll` / `vectorize` / `bind`. These are precisely the knobs the paper's
//! convolution template exposes to AutoTVM (§3.2.2): output-channel blocking,
//! feature-map height splitting, unrolling, vectorizing, and work-group
//! binding.

use crate::compute::Compute;
use crate::expr::Expr;
use crate::stmt::LoopKind;
use serde::{Deserialize, Serialize};

/// Execution tag attached to a scheduled loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopTag {
    Serial,
    Unroll,
    Vectorize,
    BlockIdx(usize),
    ThreadIdx(usize),
}

impl LoopTag {
    pub fn to_kind(self) -> LoopKind {
        match self {
            LoopTag::Serial => LoopKind::Serial,
            LoopTag::Unroll => LoopKind::Unrolled,
            LoopTag::Vectorize => LoopKind::Vectorized,
            LoopTag::BlockIdx(d) => LoopKind::BlockIdx(d),
            LoopTag::ThreadIdx(d) => LoopKind::ThreadIdx(d),
        }
    }
}

/// One loop of the scheduled nest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopDef {
    pub var: String,
    pub extent: usize,
    pub tag: LoopTag,
    /// True if this loop iterates (part of) a reduction axis.
    pub is_reduce: bool,
}

/// Errors raised by illegal schedule transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    UnknownLoop(String),
    /// Binding a reduction loop to the GPU grid would require cross-thread
    /// reduction support, which this stack (like the paper's template)
    /// performs via rfactor-free serial reduction per thread.
    BindReduceLoop(String),
    DuplicateName(String),
    FuseNotAdjacent(String, String),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::UnknownLoop(n) => write!(f, "unknown loop `{n}`"),
            ScheduleError::BindReduceLoop(n) => {
                write!(f, "cannot bind reduction loop `{n}` to the GPU grid")
            }
            ScheduleError::DuplicateName(n) => write!(f, "loop name `{n}` already exists"),
            ScheduleError::FuseNotAdjacent(a, b) => {
                write!(f, "loops `{a}` and `{b}` are not adjacent; reorder first")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A schedule over one compute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    loops: Vec<LoopDef>,
    /// Variable substitutions accumulated by split/fuse, applied to the
    /// compute body at lowering time, in application order.
    substs: Vec<(String, Expr)>,
    /// Guard predicates for imperfect splits (`i_o*f + i_i < extent`).
    guards: Vec<Expr>,
}

impl Schedule {
    /// The default schedule: spatial axes outermost (in declaration order),
    /// then reduction axes, all serial.
    pub fn default_for(c: &Compute) -> Self {
        let mut loops = Vec::new();
        for a in &c.axes {
            loops.push(LoopDef {
                var: a.name.clone(),
                extent: a.extent,
                tag: LoopTag::Serial,
                is_reduce: false,
            });
        }
        for a in &c.reduce_axes {
            loops.push(LoopDef {
                var: a.name.clone(),
                extent: a.extent,
                tag: LoopTag::Serial,
                is_reduce: true,
            });
        }
        Schedule { loops, substs: Vec::new(), guards: Vec::new() }
    }

    /// Current loop order (outermost first).
    pub fn loops(&self) -> &[LoopDef] {
        &self.loops
    }

    /// Accumulated substitutions (oldest first).
    pub fn substs(&self) -> &[(String, Expr)] {
        &self.substs
    }

    /// Accumulated guard predicates.
    pub fn guards(&self) -> &[Expr] {
        &self.guards
    }

    fn position(&self, name: &str) -> Result<usize, ScheduleError> {
        self.loops
            .iter()
            .position(|l| l.var == name)
            .ok_or_else(|| ScheduleError::UnknownLoop(name.to_string()))
    }

    /// Split loop `name` by `factor` into `{name}.o` (outer) and `{name}.i`
    /// (inner, extent = factor). Imperfect splits get a lowering guard.
    /// Returns the new (outer, inner) names.
    pub fn split(&mut self, name: &str, factor: usize) -> Result<(String, String), ScheduleError> {
        assert!(factor > 0, "split factor must be positive");
        let pos = self.position(name)?;
        let outer_name = format!("{name}.o");
        let inner_name = format!("{name}.i");
        for n in [&outer_name, &inner_name] {
            if self.loops.iter().any(|l| &l.var == n) {
                return Err(ScheduleError::DuplicateName(n.clone()));
            }
        }
        let old = self.loops[pos].clone();
        let outer_extent = old.extent.div_ceil(factor);
        let outer = LoopDef {
            var: outer_name.clone(),
            extent: outer_extent,
            tag: LoopTag::Serial,
            is_reduce: old.is_reduce,
        };
        let inner = LoopDef {
            var: inner_name.clone(),
            extent: factor,
            tag: LoopTag::Serial,
            is_reduce: old.is_reduce,
        };
        self.loops.splice(pos..=pos, [outer, inner]);
        let recon = Expr::var(outer_name.clone()) * Expr::Int(factor as i64)
            + Expr::var(inner_name.clone());
        if outer_extent * factor != old.extent {
            self.guards.push(Expr::lt(recon.clone(), Expr::Int(old.extent as i64)));
        }
        self.substs.push((name.to_string(), recon));
        Ok((outer_name, inner_name))
    }

    /// Fuse two *adjacent* loops `a` (outer) and `b` (inner) into `{a}.{b}f`.
    /// Returns the fused loop name.
    pub fn fuse(&mut self, a: &str, b: &str) -> Result<String, ScheduleError> {
        let pa = self.position(a)?;
        let pb = self.position(b)?;
        if pb != pa + 1 {
            return Err(ScheduleError::FuseNotAdjacent(a.to_string(), b.to_string()));
        }
        let la = self.loops[pa].clone();
        let lb = self.loops[pb].clone();
        let fused_name = format!("{a}.{b}f");
        let fused = LoopDef {
            var: fused_name.clone(),
            extent: la.extent * lb.extent,
            tag: LoopTag::Serial,
            is_reduce: la.is_reduce || lb.is_reduce,
        };
        self.loops.splice(pa..=pb, [fused]);
        let f = Expr::var(fused_name.clone());
        let eb = Expr::Int(lb.extent as i64);
        self.substs
            .push((a.to_string(), Expr::bin(crate::expr::BinOp::Div, f.clone(), eb.clone())));
        self.substs
            .push((b.to_string(), Expr::bin(crate::expr::BinOp::Mod, f, eb)));
        Ok(fused_name)
    }

    /// Reorder the listed loops into the given relative order; loops not
    /// listed keep their positions.
    pub fn reorder(&mut self, order: &[&str]) -> Result<(), ScheduleError> {
        let mut positions = Vec::with_capacity(order.len());
        for name in order {
            positions.push(self.position(name)?);
        }
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        let reordered: Vec<LoopDef> = positions
            .iter()
            .map(|&p| self.loops[p].clone())
            .collect();
        for (slot, def) in sorted.into_iter().zip(reordered) {
            self.loops[slot] = def;
        }
        Ok(())
    }

    /// Tag a loop as fully unrolled.
    pub fn unroll(&mut self, name: &str) -> Result<(), ScheduleError> {
        let p = self.position(name)?;
        self.loops[p].tag = LoopTag::Unroll;
        Ok(())
    }

    /// Tag a loop as SIMD-vectorized.
    pub fn vectorize(&mut self, name: &str) -> Result<(), ScheduleError> {
        let p = self.position(name)?;
        self.loops[p].tag = LoopTag::Vectorize;
        Ok(())
    }

    /// Bind a spatial loop to a GPU grid dimension.
    pub fn bind(&mut self, name: &str, tag: LoopTag) -> Result<(), ScheduleError> {
        let p = self.position(name)?;
        if self.loops[p].is_reduce && matches!(tag, LoopTag::BlockIdx(_) | LoopTag::ThreadIdx(_)) {
            return Err(ScheduleError::BindReduceLoop(name.to_string()));
        }
        self.loops[p].tag = tag;
        Ok(())
    }

    /// `split` + `bind` convenience: outer→BlockIdx(dim), inner→ThreadIdx(dim).
    pub fn split_bind(
        &mut self,
        name: &str,
        factor: usize,
        dim: usize,
    ) -> Result<(String, String), ScheduleError> {
        let (o, i) = self.split(name, factor)?;
        self.bind(&o, LoopTag::BlockIdx(dim))?;
        self.bind(&i, LoopTag::ThreadIdx(dim))?;
        Ok((o, i))
    }

    /// Product of extents of loops bound to `ThreadIdx` — the work-group size.
    pub fn workgroup_size(&self) -> usize {
        self.loops
            .iter()
            .filter(|l| matches!(l.tag, LoopTag::ThreadIdx(_)))
            .map(|l| l.extent)
            .product()
    }

    /// Product of extents of loops bound to `BlockIdx` — the grid size.
    pub fn grid_size(&self) -> usize {
        self.loops
            .iter()
            .filter(|l| matches!(l.tag, LoopTag::BlockIdx(_)))
            .map(|l| l.extent)
            .product()
    }

    /// Extent of the vectorized loop (1 if none).
    pub fn vector_len(&self) -> usize {
        self.loops
            .iter()
            .filter(|l| l.tag == LoopTag::Vectorize)
            .map(|l| l.extent)
            .product::<usize>()
            .max(1)
    }

    /// Product of extents of unrolled loops (1 if none).
    pub fn unroll_len(&self) -> usize {
        self.loops
            .iter()
            .filter(|l| l.tag == LoopTag::Unroll)
            .map(|l| l.extent)
            .product::<usize>()
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::Axis;
    use crate::expr::Expr;

    fn simple_compute() -> Compute {
        Compute::reduce_sum(
            "out",
            vec![Axis::new("i", 16), Axis::new("j", 12)],
            vec![Axis::new("k", 8)],
            Expr::load("a", Expr::var("i") * Expr::Int(8) + Expr::var("k"))
                * Expr::load("b", Expr::var("k") * Expr::Int(12) + Expr::var("j")),
            Expr::var("i") * Expr::Int(12) + Expr::var("j"),
        )
    }

    #[test]
    fn default_order_spatial_then_reduce() {
        let s = Schedule::default_for(&simple_compute());
        let names: Vec<_> = s.loops().iter().map(|l| l.var.as_str()).collect();
        assert_eq!(names, ["i", "j", "k"]);
        assert!(s.loops()[2].is_reduce);
    }

    #[test]
    fn split_perfect_has_no_guard() {
        let mut s = Schedule::default_for(&simple_compute());
        let (o, i) = s.split("i", 4).unwrap();
        assert_eq!(o, "i.o");
        assert_eq!(i, "i.i");
        assert_eq!(s.loops()[0].extent, 4);
        assert_eq!(s.loops()[1].extent, 4);
        assert!(s.guards().is_empty());
        assert_eq!(s.substs().len(), 1);
    }

    #[test]
    fn split_imperfect_adds_guard() {
        let mut s = Schedule::default_for(&simple_compute());
        s.split("j", 5).unwrap(); // 12 = 3*5 - 3 → guard
        assert_eq!(s.guards().len(), 1);
        // outer extent = ceil(12/5) = 3
        let outer = s.loops().iter().find(|l| l.var == "j.o").unwrap();
        assert_eq!(outer.extent, 3);
    }

    #[test]
    fn bind_reduce_loop_rejected() {
        let mut s = Schedule::default_for(&simple_compute());
        let err = s.bind("k", LoopTag::ThreadIdx(0)).unwrap_err();
        assert_eq!(err, ScheduleError::BindReduceLoop("k".into()));
        // unroll/vectorize of reduce loops is fine
        s.unroll("k").unwrap();
    }

    #[test]
    fn reorder_permutes_listed_only() {
        let mut s = Schedule::default_for(&simple_compute());
        s.reorder(&["k", "i"]).unwrap(); // swap i and k, j untouched
        let names: Vec<_> = s.loops().iter().map(|l| l.var.as_str()).collect();
        assert_eq!(names, ["k", "j", "i"]);
    }

    #[test]
    fn fuse_requires_adjacency() {
        let mut s = Schedule::default_for(&simple_compute());
        assert!(matches!(s.fuse("i", "k"), Err(ScheduleError::FuseNotAdjacent(_, _))));
        let f = s.fuse("i", "j").unwrap();
        assert_eq!(f, "i.jf");
        assert_eq!(s.loops()[0].extent, 16 * 12);
        assert_eq!(s.substs().len(), 2);
    }

    #[test]
    fn grid_and_workgroup_sizes() {
        let mut s = Schedule::default_for(&simple_compute());
        s.split_bind("i", 4, 0).unwrap();
        s.split_bind("j", 6, 1).unwrap();
        assert_eq!(s.grid_size(), 4 * 2); // 16/4 * 12/6
        assert_eq!(s.workgroup_size(), 4 * 6);
    }

    #[test]
    fn vector_and_unroll_lengths() {
        let mut s = Schedule::default_for(&simple_compute());
        let (_, ji) = s.split("j", 4).unwrap();
        s.vectorize(&ji).unwrap();
        s.unroll("k").unwrap();
        assert_eq!(s.vector_len(), 4);
        assert_eq!(s.unroll_len(), 8);
    }

    #[test]
    fn unknown_loop_errors() {
        let mut s = Schedule::default_for(&simple_compute());
        assert!(matches!(s.split("zz", 2), Err(ScheduleError::UnknownLoop(_))));
        assert!(matches!(s.unroll("zz"), Err(ScheduleError::UnknownLoop(_))));
    }

    #[test]
    fn double_split_names_unique() {
        let mut s = Schedule::default_for(&simple_compute());
        s.split("i", 4).unwrap();
        let (oo, oi) = s.split("i.o", 2).unwrap();
        assert_eq!(oo, "i.o.o");
        assert_eq!(oi, "i.o.i");
    }
}
