//! Lowering: scheduled compute → imperative loop nest.
//!
//! The lowering performs *register tiling*, the pattern behind the paper's
//! spatial-pack convolution template (§3.2.2): spatial loops placed inside
//! the reduction nest accumulate into a per-thread register tile (`acc`),
//! which is initialized before and written back after the reduction — this is
//! what keeps the working set in the Intel GRF / Nvidia registers.

use crate::compute::{row_major_index, Compute};
use crate::expr::{BinOp, Expr};
use crate::schedule::{LoopTag, Schedule};
use crate::stmt::{LoopKind, MemScope, Stmt};

/// Apply all schedule substitutions (oldest first) to an expression.
fn apply_substs(e: &Expr, substs: &[(String, Expr)]) -> Expr {
    let mut cur = e.clone();
    for (name, with) in substs {
        cur = cur.subst(name, with);
    }
    cur
}

/// Conjunction of guard expressions (`None` when empty).
fn conjoin(guards: &[Expr]) -> Option<Expr> {
    let mut it = guards.iter();
    let first = it.next()?.clone();
    Some(it.fold(first, |acc, g| Expr::bin(BinOp::And, acc, g.clone())))
}

fn guard_wrap(body: Stmt, guard: &Option<Expr>) -> Stmt {
    match guard {
        Some(g) => Stmt::if_(g.clone(), body),
        None => body,
    }
}

/// Wrap `body` in the given loops, innermost-last.
fn nest(loops: &[(String, usize, LoopKind)], body: Stmt) -> Stmt {
    loops.iter().rev().fold(body, |acc, (var, extent, kind)| {
        Stmt::for_(var.clone(), *extent, *kind, acc)
    })
}

/// Lower a scheduled compute into a statement tree.
///
/// The result reads from the input buffers named in the compute expression
/// and writes the output buffer `compute.name`; the caller (executor or
/// codegen) supplies buffer storage.
pub fn lower(compute: &Compute, schedule: &Schedule) -> Stmt {
    let substs = schedule.substs();
    let body_expr = apply_substs(&compute.expr, substs);
    let out_index = apply_substs(&compute.out_index, substs);
    let guards: Vec<Expr> = schedule.guards().iter().map(|g| apply_substs(g, substs)).collect();

    let all_loops: Vec<_> = schedule
        .loops()
        .iter()
        .map(|l| (l.var.clone(), l.extent, l.tag.to_kind(), l.is_reduce))
        .collect();

    // Position of the first reduction loop, if any.
    let first_reduce = all_loops.iter().position(|(_, _, _, r)| *r);

    let Some(fr) = first_reduce else {
        // Pure spatial compute: one guarded store in the full nest.
        let loops: Vec<_> =
            all_loops.iter().map(|(v, e, k, _)| (v.clone(), *e, *k)).collect();
        let store = Stmt::store(compute.name.clone(), out_index, body_expr);
        return nest(&loops, guard_wrap(store, &conjoin(&guards)));
    };

    // ---- register-tiled reduction lowering ----
    let outer: Vec<_> = all_loops[..fr]
        .iter()
        .map(|(v, e, k, _)| (v.clone(), *e, *k))
        .collect();
    let inner = &all_loops[fr..];

    // Spatial loops living inside the reduction nest form the register tile.
    let tile_loops: Vec<_> = inner
        .iter()
        .filter(|(_, _, _, r)| !*r)
        .map(|(v, e, k, _)| (v.clone(), *e, *k))
        .collect();
    let tile_size: usize = tile_loops.iter().map(|(_, e, _)| *e).product::<usize>().max(1);
    let tile_index = if tile_loops.is_empty() {
        Expr::Int(0)
    } else {
        row_major_index(
            &tile_loops
                .iter()
                .map(|(v, e, _)| (Expr::var(v.clone()), *e))
                .collect::<Vec<_>>(),
        )
    };

    // Guards mentioning reduction-derived vars only apply inside the update.
    let reduce_vars: Vec<String> = inner
        .iter()
        .filter(|(_, _, _, r)| *r)
        .map(|(v, _, _, _)| v.clone())
        .collect();
    let (reduce_guards, spatial_guards): (Vec<Expr>, Vec<Expr>) = guards.into_iter().partition(|g| {
        let mut vars = vec![];
        g.free_vars(&mut vars);
        vars.iter().any(|v| reduce_vars.contains(v))
    });
    let update_guard = conjoin(
        &reduce_guards
            .iter()
            .chain(spatial_guards.iter())
            .cloned()
            .collect::<Vec<_>>(),
    );
    let writeback_guard = conjoin(&spatial_guards);

    let acc = format!("{}.acc", compute.name);

    // init: acc[tile] = init
    let init_body = Stmt::store(acc.clone(), tile_index.clone(), compute.init.clone());
    let init = nest(&tile_loops, init_body);

    // update: full inner nest, acc[tile] = combine(acc[tile], body)
    let inner_all: Vec<_> = inner.iter().map(|(v, e, k, _)| (v.clone(), *e, *k)).collect();
    let update_body = Stmt::store(
        acc.clone(),
        tile_index.clone(),
        Expr::bin(
            compute.combine,
            Expr::load(acc.clone(), tile_index.clone()),
            body_expr,
        ),
    );
    let update = nest(&inner_all, guard_wrap(update_body, &update_guard));

    // writeback: out[idx] = acc[tile]
    let wb_body = Stmt::store(
        compute.name.clone(),
        out_index,
        Expr::load(acc.clone(), tile_index),
    );
    let writeback = nest(&tile_loops, guard_wrap(wb_body, &writeback_guard));

    let kernel_body = Stmt::Alloc {
        buf: acc,
        size: Expr::Int(tile_size as i64),
        scope: MemScope::Register,
        body: Box::new(Stmt::seq(vec![init, update, writeback])),
    };

    nest(&outer, kernel_body)
}

/// Summarized launch geometry of a lowered schedule (for the cost model and
/// kernel dispatch): grid size, work-group size, vector length, unroll length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchGeometry {
    pub grid: usize,
    pub workgroup: usize,
    pub vector_len: usize,
    pub unroll_len: usize,
}

/// Extract launch geometry from a schedule.
pub fn launch_geometry(s: &Schedule) -> LaunchGeometry {
    LaunchGeometry {
        grid: s.grid_size().max(1),
        workgroup: s.workgroup_size().max(1),
        vector_len: s.vector_len(),
        unroll_len: s.unroll_len(),
    }
}

/// True if any loop is bound to the GPU grid.
pub fn is_gpu_schedule(s: &Schedule) -> bool {
    s.loops()
        .iter()
        .any(|l| matches!(l.tag, LoopTag::BlockIdx(_) | LoopTag::ThreadIdx(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::Axis;

    fn matmul(m: usize, n: usize, k: usize) -> Compute {
        Compute::reduce_sum(
            "c",
            vec![Axis::new("i", m), Axis::new("j", n)],
            vec![Axis::new("k", k)],
            Expr::load("a", Expr::var("i") * Expr::Int(k as i64) + Expr::var("k"))
                * Expr::load("b", Expr::var("k") * Expr::Int(n as i64) + Expr::var("j")),
            Expr::var("i") * Expr::Int(n as i64) + Expr::var("j"),
        )
    }

    #[test]
    fn default_schedule_lowers_to_tiled_form() {
        let c = matmul(4, 4, 4);
        let s = Schedule::default_for(&c);
        let stmt = lower(&c, &s);
        // outer i, j loops then Alloc(acc) with 3-part Seq
        let mut allocs = 0;
        stmt.visit(&mut |s| {
            if matches!(s, Stmt::Alloc { .. }) {
                allocs += 1;
            }
        });
        assert_eq!(allocs, 1);
    }

    #[test]
    fn spatial_only_lowering_has_no_alloc() {
        let c = Compute::spatial(
            "out",
            vec![Axis::new("i", 8)],
            Expr::load("x", Expr::var("i")) + Expr::Float(1.0),
            Expr::var("i"),
        );
        let s = Schedule::default_for(&c);
        let stmt = lower(&c, &s);
        let mut allocs = 0;
        stmt.visit(&mut |s| {
            if matches!(s, Stmt::Alloc { .. }) {
                allocs += 1;
            }
        });
        assert_eq!(allocs, 0);
    }

    #[test]
    fn imperfect_split_produces_guard() {
        let c = matmul(5, 4, 4);
        let mut s = Schedule::default_for(&c);
        s.split("i", 2).unwrap(); // 5 → imperfect
        let stmt = lower(&c, &s);
        let mut ifs = 0;
        stmt.visit(&mut |s| {
            if matches!(s, Stmt::If { .. }) {
                ifs += 1;
            }
        });
        // guard in update AND writeback paths
        assert!(ifs >= 2, "expected guards in update and writeback, got {ifs}");
    }

    #[test]
    fn geometry_reflects_bindings() {
        let c = matmul(16, 16, 8);
        let mut s = Schedule::default_for(&c);
        s.split_bind("i", 4, 0).unwrap();
        s.split_bind("j", 8, 1).unwrap();
        let g = launch_geometry(&s);
        assert_eq!(g.grid, 4 * 2);
        assert_eq!(g.workgroup, 32);
        assert!(is_gpu_schedule(&s));
        assert!(!is_gpu_schedule(&Schedule::default_for(&c)));
    }
}
