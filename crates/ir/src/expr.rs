//! Scalar expressions of the unified IR.

use serde::{Deserialize, Serialize};

/// Binary operators. Comparisons yield 0.0/1.0; `Min`/`Max` are first-class
/// because both OpenCL and CUDA have native `fmin`/`fmax`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Min,
    Max,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    And,
    Or,
}

impl BinOp {
    /// Infix spelling in C-family targets, or `None` for function-call style.
    pub fn c_infix(self) -> Option<&'static str> {
        Some(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Min | BinOp::Max => return None,
        })
    }
}

/// A scalar expression tree.
///
/// Variables and buffers are identified by interned-enough `String` names;
/// the IR stays small, so clarity beats an id-table here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer immediate (loop bounds, strides).
    Int(i64),
    /// Floating immediate.
    Float(f64),
    /// Loop variable or kernel parameter.
    Var(String),
    /// `buf[index]` — flat indexing; multi-dim offsets are built by the
    /// compute declaration.
    Load { buf: String, index: Box<Expr> },
    /// Binary operation.
    Bin { op: BinOp, a: Box<Expr>, b: Box<Expr> },
    /// `cond ? t : f`.
    Select { cond: Box<Expr>, t: Box<Expr>, f: Box<Expr> },
    /// Intrinsic call (e.g. `exp`, `sqrt`, `intel_sub_group_shuffle`).
    Call { name: String, args: Vec<Expr> },
}

impl Expr {
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    pub fn load(buf: impl Into<String>, index: Expr) -> Expr {
        Expr::Load { buf: buf.into(), index: Box::new(index) }
    }

    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin { op, a: Box::new(a), b: Box::new(b) }
    }

    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }

    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Min, a, b)
    }

    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Max, a, b)
    }

    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Lt, a, b)
    }

    pub fn select(cond: Expr, t: Expr, f: Expr) -> Expr {
        Expr::Select { cond: Box::new(cond), t: Box::new(t), f: Box::new(f) }
    }

    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call { name: name.into(), args }
    }

    /// Substitute every occurrence of variable `name` with `with`.
    ///
    /// This is how schedule transforms rewrite indices: splitting axis `i`
    /// by `f` substitutes `i := i_o*f + i_i` throughout the body.
    pub fn subst(&self, name: &str, with: &Expr) -> Expr {
        match self {
            Expr::Var(v) if v == name => with.clone(),
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => self.clone(),
            Expr::Load { buf, index } => {
                Expr::Load { buf: buf.clone(), index: Box::new(index.subst(name, with)) }
            }
            Expr::Bin { op, a, b } => Expr::Bin {
                op: *op,
                a: Box::new(a.subst(name, with)),
                b: Box::new(b.subst(name, with)),
            },
            Expr::Select { cond, t, f } => Expr::Select {
                cond: Box::new(cond.subst(name, with)),
                t: Box::new(t.subst(name, with)),
                f: Box::new(f.subst(name, with)),
            },
            Expr::Call { name: n, args } => Expr::Call {
                name: n.clone(),
                args: args.iter().map(|a| a.subst(name, with)).collect(),
            },
        }
    }

    /// Collect the names of all free variables into `out`.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            Expr::Int(_) | Expr::Float(_) => {}
            Expr::Load { index, .. } => index.free_vars(out),
            Expr::Bin { a, b, .. } => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Expr::Select { cond, t, f } => {
                cond.free_vars(out);
                t.free_vars(out);
                f.free_vars(out);
            }
            Expr::Call { args, .. } => args.iter().for_each(|a| a.free_vars(out)),
        }
    }

    /// Number of AST nodes — the paper compares IR conciseness against raw
    /// CUDA ("around 100 lines of TVM IR vs 325 lines of CUDA", §3.1.1).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => 0,
            Expr::Load { index, .. } => index.node_count(),
            Expr::Bin { a, b, .. } => a.node_count() + b.node_count(),
            Expr::Select { cond, t, f } => cond.node_count() + t.node_count() + f.node_count(),
            Expr::Call { args, .. } => args.iter().map(Expr::node_count).sum(),
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Int(v)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Self {
        Expr::Int(v as i64)
    }
}

impl From<usize> for Expr {
    fn from(v: usize) -> Self {
        Expr::Int(v as i64)
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Self {
        Expr::Float(v)
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::add(self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::sub(self, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::mul(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subst_rewrites_nested_occurrences() {
        // (i + load(a, i*2)) with i := io*4+ii
        let e = Expr::var("i") + Expr::load("a", Expr::var("i") * 2.into());
        let with = Expr::var("io") * 4.into() + Expr::var("ii");
        let s = e.subst("i", &with);
        let mut vars = vec![];
        s.free_vars(&mut vars);
        assert!(vars.contains(&"io".to_string()) && vars.contains(&"ii".to_string()));
        assert!(!vars.contains(&"i".to_string()));
    }

    #[test]
    fn free_vars_dedup() {
        let e = Expr::var("x") + Expr::var("x") * Expr::var("y");
        let mut vars = vec![];
        e.free_vars(&mut vars);
        assert_eq!(vars, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn node_count_counts_everything() {
        let e = Expr::var("x") + Expr::Int(1); // Bin + Var + Int = 3
        assert_eq!(e.node_count(), 3);
    }

    #[test]
    fn infix_table() {
        assert_eq!(BinOp::Add.c_infix(), Some("+"));
        assert_eq!(BinOp::Min.c_infix(), None);
    }

    #[test]
    fn operator_sugar_builds_bins() {
        let e = Expr::var("a") * Expr::var("b");
        assert!(matches!(e, Expr::Bin { op: BinOp::Mul, .. }));
    }
}
