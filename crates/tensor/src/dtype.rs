//! Element data types supported by the stack.
//!
//! The paper's inference path is fp32 end-to-end (quantization is explicitly
//! listed as out of scope / future work in §5), so `F32` is the workhorse.
//! `I32` carries index-like payloads (argsort results, NMS valid counts) and
//! `U8` is provided for raw image input buffers.

use serde::{Deserialize, Serialize};

/// Scalar element type of a [`crate::Tensor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE-754 float — the inference compute type.
    F32,
    /// 32-bit signed integer — indices, counts.
    I32,
    /// 8-bit unsigned integer — raw image bytes.
    U8,
}

impl DType {
    /// Size of one element in bytes, used by the device memory model.
    pub fn size_of(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::U8 => 1,
        }
    }

    /// Short lowercase name matching TVM conventions (`float32`, ...).
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "float32",
            DType::I32 => "int32",
            DType::U8 => "uint8",
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_of(), 4);
        assert_eq!(DType::I32.size_of(), 4);
        assert_eq!(DType::U8.size_of(), 1);
    }

    #[test]
    fn names_roundtrip_display() {
        for d in [DType::F32, DType::I32, DType::U8] {
            assert_eq!(format!("{d}"), d.name());
        }
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", DType::I32), "I32");
    }
}
