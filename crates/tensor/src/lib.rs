//! # unigpu-tensor
//!
//! Dense n-dimensional tensors, data layouts, and layout transformations for the
//! `unigpu` CNN-inference stack.
//!
//! The stack follows the paper's TVM lineage: activations are 4-d `NCHW` tensors
//! by default, and the graph tuner may rewrite convolution subgraphs into blocked
//! `NCHW{c}` layouts (a.k.a. `NCHWc`) so that the innermost dimension matches a
//! device's SIMD width. Weights are `OIHW`, optionally blocked as `OIHW{o}{i}`.
//!
//! Everything here is plain host memory: the simulated devices in
//! `unigpu-device` share memory with the CPU (integrated GPUs share DRAM with
//! the CPU cores), so a "device tensor" is the same buffer plus an ownership tag
//! maintained by the runtime.

pub mod approx;
pub mod dtype;
pub mod init;
pub mod layout;
pub mod shape;
pub mod tensor;

pub use approx::{allclose, max_abs_diff};
pub use dtype::DType;
pub use init::Initializer;
pub use layout::{Layout, WeightLayout};
pub use shape::Shape;
pub use tensor::{Storage, Tensor};
