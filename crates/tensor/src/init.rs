//! Deterministic, seeded weight initializers.
//!
//! The paper pulls pre-trained GluonCV weights; this reproduction measures
//! latency (which depends only on shapes), so weights are random but
//! **deterministic**: every table regenerates bit-identically.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weight/activation initialization schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// Uniform in `[lo, hi)`.
    Uniform { lo: f32, hi: f32 },
    /// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6/(fan_in+fan_out))`.
    Xavier,
    /// All zeros.
    Zeros,
    /// All ones.
    Ones,
}

impl Initializer {
    /// Materialize a tensor of `shape` under this scheme with a fixed seed.
    pub fn init(self, shape: impl Into<crate::Shape>, seed: u64) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        match self {
            Initializer::Zeros => Tensor::new(shape, crate::Storage::F32(vec![0.0; n])),
            Initializer::Ones => Tensor::new(shape, crate::Storage::F32(vec![1.0; n])),
            Initializer::Uniform { lo, hi } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
                Tensor::new(shape, crate::Storage::F32(data))
            }
            Initializer::Xavier => {
                // fan_in/fan_out estimated from the shape: for OIHW conv weights
                // fan_in = I*kh*kw, fan_out = O*kh*kw; for matrices the two dims.
                let dims = shape.dims();
                let (fan_in, fan_out) = match dims.len() {
                    4 => {
                        let rf = dims[2] * dims[3];
                        (dims[1] * rf, dims[0] * rf)
                    }
                    2 => (dims[1], dims[0]),
                    _ => {
                        let n = shape.numel().max(1);
                        (n, n)
                    }
                };
                let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
                let mut rng = StdRng::seed_from_u64(seed);
                let data = (0..n).map(|_| rng.gen_range(-a..a)).collect();
                Tensor::new(shape, crate::Storage::F32(data))
            }
        }
    }
}

/// Convenience: uniform random tensor in `[0,1)` with a fixed seed.
pub fn random_uniform(shape: impl Into<crate::Shape>, seed: u64) -> Tensor {
    Initializer::Uniform { lo: 0.0, hi: 1.0 }.init(shape, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_init_is_deterministic() {
        let a = random_uniform([4, 4], 7);
        let b = random_uniform([4, 4], 7);
        assert_eq!(a, b);
        let c = random_uniform([4, 4], 8);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_bounds() {
        let t = Initializer::Xavier.init([16, 8, 3, 3], 1);
        let a = (6.0 / ((8 * 9 + 16 * 9) as f32)).sqrt();
        assert!(t.as_f32().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn zeros_and_ones() {
        assert!(Initializer::Zeros.init([3], 0).as_f32().iter().all(|&x| x == 0.0));
        assert!(Initializer::Ones.init([3], 0).as_f32().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn xavier_on_matrix_uses_dims() {
        let t = Initializer::Xavier.init([10, 20], 3);
        let a = (6.0 / 30.0_f32).sqrt();
        assert!(t.as_f32().iter().all(|&x| x.abs() < a));
    }
}
