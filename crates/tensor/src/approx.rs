//! Approximate floating-point comparison helpers used by tests across the
//! workspace (schedule-equivalence property tests compare tiled kernels
//! against reference kernels, which reassociate float sums).

use crate::Tensor;

/// True if `|a-b| <= atol + rtol*|b|` element-wise (NumPy `allclose` contract).
pub fn allclose(a: &Tensor, b: &Tensor, rtol: f32, atol: f32) -> bool {
    if a.shape() != b.shape() {
        return false;
    }
    a.as_f32()
        .iter()
        .zip(b.as_f32())
        .all(|(&x, &y)| (x - y).abs() <= atol + rtol * y.abs())
}

/// Largest absolute element-wise difference. Panics on shape mismatch.
pub fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in max_abs_diff");
    a.as_f32()
        .iter()
        .zip(b.as_f32())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_tensors_compare_equal() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec([3], vec![1.0 + 1e-7, 2.0, 3.0 - 1e-7]);
        assert!(allclose(&a, &b, 1e-5, 1e-6));
        assert!(max_abs_diff(&a, &b) < 2e-7);
    }

    #[test]
    fn far_tensors_compare_unequal() {
        let a = Tensor::from_vec([2], vec![1.0, 2.0]);
        let b = Tensor::from_vec([2], vec![1.0, 2.5]);
        assert!(!allclose(&a, &b, 1e-5, 1e-6));
        assert_eq!(max_abs_diff(&a, &b), 0.5);
    }

    #[test]
    fn shape_mismatch_is_not_close() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!(!allclose(&a, &b, 1e-5, 1e-6));
    }
}
