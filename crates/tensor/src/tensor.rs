//! The dense tensor container used throughout the stack.

use crate::{DType, Shape};

/// Backing storage for a tensor, tagged by element type.
///
/// A small closed enum (instead of a generic parameter) keeps the graph
/// runtime object-safe: graph nodes pass `Tensor`s around without
/// monomorphizing the whole executor per dtype.
#[derive(Debug, Clone, PartialEq)]
pub enum Storage {
    F32(Vec<f32>),
    I32(Vec<i32>),
    U8(Vec<u8>),
}

impl Storage {
    /// Number of elements held.
    pub fn len(&self) -> usize {
        match self {
            Storage::F32(v) => v.len(),
            Storage::I32(v) => v.len(),
            Storage::U8(v) => v.len(),
        }
    }

    /// True if no elements are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element type of the storage.
    pub fn dtype(&self) -> DType {
        match self {
            Storage::F32(_) => DType::F32,
            Storage::I32(_) => DType::I32,
            Storage::U8(_) => DType::U8,
        }
    }
}

/// A dense row-major tensor.
///
/// `Tensor` owns its buffer. The integrated-GPU simulator shares host memory
/// with the CPU (as real integrated GPUs share DRAM), so no separate device
/// allocation type exists; device residency is tracked by the graph runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Storage,
}

impl Tensor {
    /// Build a tensor from a shape and matching storage.
    ///
    /// # Panics
    /// Panics if `shape.numel() != data.len()`.
    pub fn new(shape: impl Into<Shape>, data: Storage) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "shape {shape} does not match buffer of {} elements",
            data.len()
        );
        Tensor { shape, data }
    }

    /// All-zero f32 tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: Storage::F32(vec![0.0; n]) }
    }

    /// All-zero i32 tensor.
    pub fn zeros_i32(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: Storage::I32(vec![0; n]) }
    }

    /// f32 tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: Storage::F32(vec![value; n]) }
    }

    /// f32 tensor from an existing buffer.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        Tensor::new(shape, Storage::F32(data))
    }

    /// i32 tensor from an existing buffer.
    pub fn from_vec_i32(shape: impl Into<Shape>, data: Vec<i32>) -> Self {
        Tensor::new(shape, Storage::I32(data))
    }

    /// Shape accessor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Element dtype.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Size of the buffer in bytes (device memory model input).
    pub fn size_bytes(&self) -> usize {
        self.numel() * self.dtype().size_of()
    }

    /// Borrow as f32 slice. Panics on dtype mismatch.
    pub fn as_f32(&self) -> &[f32] {
        match &self.data {
            Storage::F32(v) => v,
            other => panic!("expected f32 tensor, got {}", other.dtype()),
        }
    }

    /// Mutably borrow as f32 slice. Panics on dtype mismatch.
    pub fn as_f32_mut(&mut self) -> &mut [f32] {
        match &mut self.data {
            Storage::F32(v) => v,
            other => panic!("expected f32 tensor, got {}", other.dtype()),
        }
    }

    /// Borrow as i32 slice. Panics on dtype mismatch.
    pub fn as_i32(&self) -> &[i32] {
        match &self.data {
            Storage::I32(v) => v,
            other => panic!("expected i32 tensor, got {}", other.dtype()),
        }
    }

    /// Mutably borrow as i32 slice. Panics on dtype mismatch.
    pub fn as_i32_mut(&mut self) -> &mut [i32] {
        match &mut self.data {
            Storage::I32(v) => v,
            other => panic!("expected i32 tensor, got {}", other.dtype()),
        }
    }

    /// Borrow as u8 slice (quantized tensors). Panics on dtype mismatch.
    pub fn as_u8(&self) -> &[u8] {
        match &self.data {
            Storage::U8(v) => v,
            other => panic!("expected u8 tensor, got {}", other.dtype()),
        }
    }

    /// Mutably borrow as u8 slice. Panics on dtype mismatch.
    pub fn as_u8_mut(&mut self) -> &mut [u8] {
        match &mut self.data {
            Storage::U8(v) => v,
            other => panic!("expected u8 tensor, got {}", other.dtype()),
        }
    }

    /// Consume into the f32 buffer. Panics on dtype mismatch.
    pub fn into_f32(self) -> Vec<f32> {
        match self.data {
            Storage::F32(v) => v,
            other => panic!("expected f32 tensor, got {}", other.dtype()),
        }
    }

    /// f32 element at a multi-index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.as_f32()[self.shape.offset(idx)]
    }

    /// Set f32 element at a multi-index.
    pub fn set(&mut self, idx: &[usize], v: f32) {
        let off = self.shape.offset(idx);
        self.as_f32_mut()[off] = v;
    }

    /// Reinterpret the buffer under a new shape with the same element count.
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape {} -> {shape} changes element count",
            self.shape
        );
        self.shape = shape;
        self
    }

    /// Map every f32 element through `f`, in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.as_f32_mut() {
            *v = f(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_count_and_dtype() {
        let t = Tensor::zeros([2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.dtype(), DType::F32);
        assert!(t.as_f32().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros([2, 3, 4]);
        t.set(&[1, 2, 3], 7.5);
        assert_eq!(t.at(&[1, 2, 3]), 7.5);
        assert_eq!(t.as_f32()[t.shape().offset(&[1, 2, 3])], 7.5);
    }

    #[test]
    #[should_panic]
    fn mismatched_buffer_panics() {
        Tensor::from_vec([2, 2], vec![1.0; 5]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        let r = t.reshape([3, 2]);
        assert_eq!(r.at(&[2, 1]), 5.0);
    }

    #[test]
    #[should_panic]
    fn reshape_bad_count_panics() {
        Tensor::zeros([2, 3]).reshape([4, 2]);
    }

    #[test]
    fn size_bytes_uses_dtype() {
        assert_eq!(Tensor::zeros([10]).size_bytes(), 40);
        assert_eq!(Tensor::zeros_i32([10]).size_bytes(), 40);
        assert_eq!(Tensor::new([3], Storage::U8(vec![0; 3])).size_bytes(), 3);
    }

    #[test]
    #[should_panic]
    fn dtype_mismatch_panics() {
        Tensor::zeros_i32([4]).as_f32();
    }

    #[test]
    fn map_inplace() {
        let mut t = Tensor::from_vec([3], vec![1.0, -2.0, 3.0]);
        t.map_inplace(|x| x.max(0.0));
        assert_eq!(t.as_f32(), &[1.0, 0.0, 3.0]);
    }
}
