//! Tensor shapes and row-major index arithmetic.

use serde::{Deserialize, Serialize};

/// The extent of each tensor dimension, outermost first (row-major).
///
/// CNN activations are rank-4 `NCHW` (or rank-5 `NCHWc` after blocking); the
/// vision operators also use rank-2/3 tensors (box lists, score matrices), so
/// `Shape` stays rank-generic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Create a shape from dimension extents.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent of dimension `i` (panics if out of range).
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements (product of extents; 1 for rank-0).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides (in elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }

    /// Flat row-major offset of a multi-index. Panics (in debug) on
    /// out-of-range coordinates.
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut off = 0usize;
        let mut stride = 1usize;
        for i in (0..self.rank()).rev() {
            debug_assert!(idx[i] < self.0[i], "index {} out of range dim {}", idx[i], i);
            off += idx[i] * stride;
            stride *= self.0[i];
        }
        off
    }

    /// Inverse of [`Shape::offset`]: decompose a flat offset into coordinates.
    pub fn unravel(&self, mut off: usize) -> Vec<usize> {
        let mut idx = vec![0usize; self.rank()];
        for i in (0..self.rank()).rev() {
            idx[i] = off % self.0[i];
            off /= self.0[i];
        }
        idx
    }

    /// Interpret as `NCHW` activation dims. Panics unless rank is 4.
    pub fn nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.rank(), 4, "expected NCHW shape, got rank {}", self.rank());
        (self.0[0], self.0[1], self.0[2], self.0[3])
    }

    /// Interpret as blocked `NCHWc` activation dims. Panics unless rank is 5.
    pub fn nchwc(&self) -> (usize, usize, usize, usize, usize) {
        assert_eq!(self.rank(), 5, "expected NCHWc shape, got rank {}", self.rank());
        (self.0[0], self.0[1], self.0[2], self.0[3], self.0[4])
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_strides() {
        let s = Shape::from([2, 3, 4, 5]);
        assert_eq!(s.numel(), 120);
        assert_eq!(s.strides(), vec![60, 20, 5, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::from([2, 3, 4]);
        let st = s.strides();
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    let by_stride = n * st[0] + c * st[1] + h * st[2];
                    assert_eq!(s.offset(&[n, c, h]), by_stride);
                }
            }
        }
    }

    #[test]
    fn unravel_is_inverse_of_offset() {
        let s = Shape::from([3, 5, 7]);
        for off in 0..s.numel() {
            let idx = s.unravel(off);
            assert_eq!(s.offset(&idx), off);
        }
    }

    #[test]
    fn rank0_numel_is_one() {
        let s = Shape::new(Vec::<usize>::new());
        assert_eq!(s.numel(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn nchw_accessor() {
        let s = Shape::from([1, 64, 56, 56]);
        assert_eq!(s.nchw(), (1, 64, 56, 56));
    }

    #[test]
    #[should_panic]
    fn nchw_wrong_rank_panics() {
        Shape::from([1, 2, 3]).nchw();
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Shape::from([1, 3, 224, 224])), "(1, 3, 224, 224)");
    }
}
