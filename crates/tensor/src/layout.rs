//! Data layouts and layout transformations.
//!
//! §3.2.3 of the paper: "optimizing convolution kernels requires transforming
//! input and output to different data layouts which might bring extra
//! overhead; the graph tuner uses dynamic programming to examine the trade-off
//! between optimized kernels and data layout transformation overheads."
//!
//! The layouts here mirror the TVM convention:
//! * `NCHW`          — framework-default activation layout.
//! * `NCHWc(c)`      — channel-blocked activations; the innermost `c` axis is
//!   sized to the device SIMD width so a vector load grabs one channel block.
//! * `NHWC`          — channels-last (used by some vendor libraries).
//! * weights `OIHW`  — framework default.
//! * weights `OIHWoi(o,i)` — blocked for spatial-pack convolution: outer
//!   `O/o × I/i × H × W` with an `i × o` micro-panel innermost.

use crate::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// Activation layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layout {
    /// batch, channel, height, width
    NCHW,
    /// batch, channel-block, height, width, channel-in-block
    NCHWc(usize),
    /// batch, height, width, channel
    NHWC,
}

impl Layout {
    /// Channel block size (1 for unblocked layouts).
    pub fn block(self) -> usize {
        match self {
            Layout::NCHWc(c) => c,
            _ => 1,
        }
    }

    /// Short TVM-style tag, e.g. `NCHW8c`.
    pub fn tag(self) -> String {
        match self {
            Layout::NCHW => "NCHW".into(),
            Layout::NHWC => "NHWC".into(),
            Layout::NCHWc(c) => format!("NCHW{c}c"),
        }
    }
}

impl std::fmt::Display for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.tag())
    }
}

/// Convolution weight layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeightLayout {
    /// out-channel, in-channel, kernel-h, kernel-w
    OIHW,
    /// blocked: O/o, I/i, kh, kw, i, o
    OIHWoi { oc_block: usize, ic_block: usize },
}

impl std::fmt::Display for WeightLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightLayout::OIHW => f.write_str("OIHW"),
            WeightLayout::OIHWoi { oc_block, ic_block } => {
                write!(f, "OIHW{ic_block}i{oc_block}o")
            }
        }
    }
}

/// Convert `NCHW` → `NCHWc(block)`.
///
/// Channels that do not fill the last block are zero-padded, matching TVM's
/// behaviour; the inverse transform drops the padding.
///
/// # Panics
/// Panics if `t` is not rank-4 f32 or `block == 0`.
pub fn nchw_to_nchwc(t: &Tensor, block: usize) -> Tensor {
    assert!(block > 0, "block must be positive");
    let (n, c, h, w) = t.shape().nchw();
    let cb = c.div_ceil(block);
    let mut out = Tensor::zeros(Shape::from([n, cb, h, w, block]));
    let src = t.as_f32();
    let dst = out.as_f32_mut();
    for ni in 0..n {
        for ci in 0..c {
            let (co, cil) = (ci / block, ci % block);
            for hi in 0..h {
                let s_base = ((ni * c + ci) * h + hi) * w;
                let d_base = ((((ni * cb + co) * h) + hi) * w) * block + cil;
                for wi in 0..w {
                    dst[d_base + wi * block] = src[s_base + wi];
                }
            }
        }
    }
    out
}

/// Convert `NCHWc` → `NCHW`, dropping any channel padding beyond `channels`.
///
/// # Panics
/// Panics if `t` is not rank-5 f32 or `channels` exceeds the blocked capacity.
pub fn nchwc_to_nchw(t: &Tensor, channels: usize) -> Tensor {
    let (n, cb, h, w, block) = t.shape().nchwc();
    assert!(channels <= cb * block, "channels {channels} exceed blocked capacity {}", cb * block);
    let mut out = Tensor::zeros(Shape::from([n, channels, h, w]));
    let src = t.as_f32();
    let dst = out.as_f32_mut();
    for ni in 0..n {
        for ci in 0..channels {
            let (co, cil) = (ci / block, ci % block);
            for hi in 0..h {
                let d_base = ((ni * channels + ci) * h + hi) * w;
                let s_base = ((((ni * cb + co) * h) + hi) * w) * block + cil;
                for wi in 0..w {
                    dst[d_base + wi] = src[s_base + wi * block];
                }
            }
        }
    }
    out
}

/// Convert `NCHW` → `NHWC`.
pub fn nchw_to_nhwc(t: &Tensor) -> Tensor {
    let (n, c, h, w) = t.shape().nchw();
    let mut out = Tensor::zeros(Shape::from([n, h, w, c]));
    let src = t.as_f32();
    let dst = out.as_f32_mut();
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    dst[((ni * h + hi) * w + wi) * c + ci] = src[((ni * c + ci) * h + hi) * w + wi];
                }
            }
        }
    }
    out
}

/// Convert `NHWC` → `NCHW`.
pub fn nhwc_to_nchw(t: &Tensor) -> Tensor {
    let dims = t.shape().dims();
    assert_eq!(dims.len(), 4, "expected NHWC rank-4");
    let (n, h, w, c) = (dims[0], dims[1], dims[2], dims[3]);
    let mut out = Tensor::zeros(Shape::from([n, c, h, w]));
    let src = t.as_f32();
    let dst = out.as_f32_mut();
    for ni in 0..n {
        for hi in 0..h {
            for wi in 0..w {
                for ci in 0..c {
                    dst[((ni * c + ci) * h + hi) * w + wi] = src[((ni * h + hi) * w + wi) * c + ci];
                }
            }
        }
    }
    out
}

/// Transform a tensor between activation layouts, given the logical channel
/// count (needed when leaving a padded blocked layout).
pub fn convert(t: &Tensor, from: Layout, to: Layout, channels: usize) -> Tensor {
    if from == to {
        return t.clone();
    }
    // Route through NCHW as the canonical hub.
    let canonical = match from {
        Layout::NCHW => t.clone(),
        Layout::NCHWc(_) => nchwc_to_nchw(t, channels),
        Layout::NHWC => nhwc_to_nchw(t),
    };
    match to {
        Layout::NCHW => canonical,
        Layout::NCHWc(b) => nchw_to_nchwc(&canonical, b),
        Layout::NHWC => nchw_to_nhwc(&canonical),
    }
}

/// Block `OIHW` weights into `OIHWoi` micro-panels (zero-padded).
pub fn oihw_to_blocked(t: &Tensor, oc_block: usize, ic_block: usize) -> Tensor {
    let dims = t.shape().dims();
    assert_eq!(dims.len(), 4, "expected OIHW rank-4");
    let (o, i, kh, kw) = (dims[0], dims[1], dims[2], dims[3]);
    let ob = o.div_ceil(oc_block);
    let ib = i.div_ceil(ic_block);
    let mut out = Tensor::zeros(Shape::from([ob, ib, kh, kw, ic_block, oc_block]));
    let src = t.as_f32();
    let dst = out.as_f32_mut();
    for oi in 0..o {
        for ii in 0..i {
            for hi in 0..kh {
                for wi in 0..kw {
                    let d = (((((oi / oc_block) * ib + ii / ic_block) * kh + hi) * kw + wi)
                        * ic_block
                        + ii % ic_block)
                        * oc_block
                        + oi % oc_block;
                    dst[d] = src[((oi * i + ii) * kh + hi) * kw + wi];
                }
            }
        }
    }
    out
}

/// Inverse of [`oihw_to_blocked`], dropping padding.
pub fn blocked_to_oihw(t: &Tensor, o: usize, i: usize) -> Tensor {
    let dims = t.shape().dims();
    assert_eq!(dims.len(), 6, "expected OIHWoi rank-6");
    let (ob, ib, kh, kw, ic_block, oc_block) =
        (dims[0], dims[1], dims[2], dims[3], dims[4], dims[5]);
    assert!(o <= ob * oc_block && i <= ib * ic_block);
    let mut out = Tensor::zeros(Shape::from([o, i, kh, kw]));
    let src = t.as_f32();
    let dst = out.as_f32_mut();
    for oi in 0..o {
        for ii in 0..i {
            for hi in 0..kh {
                for wi in 0..kw {
                    let s = (((((oi / oc_block) * ib + ii / ic_block) * kh + hi) * kw + wi)
                        * ic_block
                        + ii % ic_block)
                        * oc_block
                        + oi % oc_block;
                    dst[((oi * i + ii) * kh + hi) * kw + wi] = src[s];
                }
            }
        }
    }
    out
}

/// Number of f32 elements moved by a layout transform — the cost-model input
/// the graph tuner charges for a transform edge.
pub fn transform_elements(shape_nchw: &Shape) -> usize {
    // Read + write of every logical element.
    2 * shape_nchw.numel()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(dims: [usize; 4]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec(dims, (0..n).map(|x| x as f32).collect())
    }

    #[test]
    fn nchwc_round_trip_exact_block() {
        let t = seq_tensor([2, 8, 3, 3]);
        let b = nchw_to_nchwc(&t, 4);
        assert_eq!(b.shape().dims(), &[2, 2, 3, 3, 4]);
        let back = nchwc_to_nchw(&b, 8);
        assert_eq!(back, t);
    }

    #[test]
    fn nchwc_round_trip_padded() {
        let t = seq_tensor([1, 6, 2, 2]);
        let b = nchw_to_nchwc(&t, 4);
        assert_eq!(b.shape().dims(), &[1, 2, 2, 2, 4]);
        let back = nchwc_to_nchw(&b, 6);
        assert_eq!(back, t);
    }

    #[test]
    fn nchwc_padding_is_zero() {
        let t = Tensor::full([1, 5, 1, 1], 1.0);
        let b = nchw_to_nchwc(&t, 4);
        // channels 5..8 in the second block must be zero
        assert_eq!(b.at(&[0, 1, 0, 0, 1]), 0.0);
        assert_eq!(b.at(&[0, 1, 0, 0, 0]), 1.0);
    }

    #[test]
    fn nhwc_round_trip() {
        let t = seq_tensor([2, 3, 4, 5]);
        let back = nhwc_to_nchw(&nchw_to_nhwc(&t));
        assert_eq!(back, t);
    }

    #[test]
    fn nhwc_places_channels_last() {
        let t = seq_tensor([1, 2, 1, 1]); // values 0,1 for channels 0,1
        let x = nchw_to_nhwc(&t);
        assert_eq!(x.as_f32(), &[0.0, 1.0]);
    }

    #[test]
    fn convert_identity_is_clone() {
        let t = seq_tensor([1, 4, 2, 2]);
        assert_eq!(convert(&t, Layout::NCHW, Layout::NCHW, 4), t);
    }

    #[test]
    fn convert_between_blocked_layouts() {
        let t = seq_tensor([1, 8, 2, 2]);
        let a = nchw_to_nchwc(&t, 4);
        let b = convert(&a, Layout::NCHWc(4), Layout::NCHWc(8), 8);
        assert_eq!(b.shape().dims(), &[1, 1, 2, 2, 8]);
        assert_eq!(nchwc_to_nchw(&b, 8), t);
    }

    #[test]
    fn weight_blocking_round_trip() {
        let n = 8 * 6 * 3 * 3;
        let w = Tensor::from_vec([8, 6, 3, 3], (0..n).map(|x| x as f32).collect());
        let b = oihw_to_blocked(&w, 4, 4);
        assert_eq!(b.shape().dims(), &[2, 2, 3, 3, 4, 4]);
        assert_eq!(blocked_to_oihw(&b, 8, 6), w);
    }

    #[test]
    fn layout_tags() {
        assert_eq!(Layout::NCHWc(8).tag(), "NCHW8c");
        assert_eq!(Layout::NCHW.tag(), "NCHW");
        assert_eq!(
            format!("{}", WeightLayout::OIHWoi { oc_block: 8, ic_block: 4 }),
            "OIHW4i8o"
        );
    }

    #[test]
    fn transform_cost_counts_read_and_write() {
        assert_eq!(transform_elements(&Shape::from([1, 3, 2, 2])), 24);
    }
}
