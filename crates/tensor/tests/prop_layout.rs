//! Property tests: layout transformations are lossless bijections on the
//! logical (unpadded) element set, for arbitrary shapes and block sizes.

use proptest::prelude::*;
use unigpu_tensor::layout::{
    blocked_to_oihw, convert, nchw_to_nchwc, nchw_to_nhwc, nchwc_to_nchw, nhwc_to_nchw,
    oihw_to_blocked,
};
use unigpu_tensor::{Layout, Shape, Tensor};

fn arb_nchw() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    (1usize..3, 1usize..17, 1usize..6, 1usize..6)
}

fn seq(dims: [usize; 4]) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec(dims, (0..n).map(|x| (x % 251) as f32).collect())
}

proptest! {
    #[test]
    fn nchwc_round_trip((n, c, h, w) in arb_nchw(), block in 1usize..9) {
        let t = seq([n, c, h, w]);
        let b = nchw_to_nchwc(&t, block);
        prop_assert_eq!(b.shape().dims()[1], c.div_ceil(block));
        prop_assert_eq!(nchwc_to_nchw(&b, c), t);
    }

    #[test]
    fn nhwc_round_trip((n, c, h, w) in arb_nchw()) {
        let t = seq([n, c, h, w]);
        prop_assert_eq!(nhwc_to_nchw(&nchw_to_nhwc(&t)), t);
    }

    #[test]
    fn convert_any_path_preserves_data(
        (n, c, h, w) in arb_nchw(),
        b1 in 1usize..9,
        b2 in 1usize..9,
    ) {
        let t = seq([n, c, h, w]);
        // NCHW -> NCHWc(b1) -> NHWC -> NCHWc(b2) -> NCHW must be identity.
        let x = convert(&t, Layout::NCHW, Layout::NCHWc(b1), c);
        let x = convert(&x, Layout::NCHWc(b1), Layout::NHWC, c);
        let x = convert(&x, Layout::NHWC, Layout::NCHWc(b2), c);
        let x = convert(&x, Layout::NCHWc(b2), Layout::NCHW, c);
        prop_assert_eq!(x, t);
    }

    #[test]
    fn weight_blocking_round_trip(
        o in 1usize..17, i in 1usize..17,
        kh in 1usize..4, kw in 1usize..4,
        ob in 1usize..9, ib in 1usize..9,
    ) {
        let t = seq([o, i, kh, kw]);
        let b = oihw_to_blocked(&t, ob, ib);
        prop_assert_eq!(blocked_to_oihw(&b, o, i), t);
    }

    #[test]
    fn offset_unravel_inverse(dims in proptest::collection::vec(1usize..7, 1..5)) {
        let s = Shape::new(dims);
        for off in 0..s.numel() {
            prop_assert_eq!(s.offset(&s.unravel(off)), off);
        }
    }

    #[test]
    fn blocked_padding_is_zero((n, c, h, w) in arb_nchw(), block in 2usize..9) {
        let t = Tensor::full([n, c, h, w], 1.0);
        let b = nchw_to_nchwc(&t, block);
        let (_, cb, _, _, blk) = b.shape().nchwc();
        let total = cb * blk;
        // every padded channel slot must be exactly zero
        for ci in c..total {
            let (co, cil) = (ci / blk, ci % blk);
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        prop_assert_eq!(b.at(&[ni, co, hi, wi, cil]), 0.0);
                    }
                }
            }
        }
    }
}
