//! Workload dispatch: how `tune_graph` fans tensor-level search out.
//!
//! The paper concedes that schedule search "took up to tens of hours ... for
//! one device" (§3.2.3); AutoTVM answers this in production with an RPC
//! tracker and a farm of measurement workers. This module is the seam that
//! makes the search distributable without changing its results: one
//! *distinct* convolution workload becomes one [`TuneJob`], a [`Dispatcher`]
//! turns jobs into [`TuneOutcome`]s, and every dispatcher derives its
//! per-job seeds from the job's position in the distinct-workload list — so
//! the serial loop, the local thread pool, and a remote farm all produce
//! bit-identical databases when measurement noise is zero.
//!
//! Implementations:
//! * [`SerialDispatcher`] — the original in-process loop;
//! * [`ThreadPoolDispatcher`] — a local rayon pool (`unigpu tune --jobs N`);
//! * `FarmClient` (in `unigpu-farm`) — the remote tracker/worker service.

use crate::measure::SimMeasurer;
use crate::pipeline::write_convergence_log;
use crate::records::TuneRecord;
use crate::tuners::{ModelBasedTuner, Tuner};
use crate::TuningBudget;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use unigpu_device::DeviceSpec;
use unigpu_ops::conv::{ConfigSpace, ConvConfig};
use unigpu_ops::ConvWorkload;
use unigpu_telemetry::{tel_debug, tel_warn};

/// One unit of tensor-level search: a distinct convolution workload.
///
/// `index` is the workload's position in the graph's distinct-workload list;
/// measurement and tuner seeds derive from it (`budget.seed ^ index` and
/// `budget.seed + index`), which is what lets any dispatcher — local or
/// remote — reproduce the serial path exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuneJob {
    pub index: usize,
    pub workload: ConvWorkload,
}

/// One schedule candidate shipped back for the graph-level layout DP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    pub config: ConvConfig,
    /// Noise-free kernel cost on the target device, ms.
    pub kernel_ms: f64,
}

/// Result of tuning one workload: the best record plus the top-k candidates
/// the graph tuner re-selects among.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneOutcome {
    pub index: usize,
    pub record: TuneRecord,
    /// Best-first candidates for the graph tuner.
    pub candidates: Vec<Candidate>,
}

/// Why a dispatch failed. Local dispatchers are infallible; the farm client
/// surfaces transport and job-retry-exhaustion failures here so callers can
/// fall back to in-process search.
#[derive(Debug)]
pub enum DispatchError {
    /// Transport-level failure talking to a remote dispatcher.
    Io(std::io::Error),
    /// The remote side replied with something outside the protocol.
    Protocol(String),
    /// Jobs exhausted their retry budget on the remote side.
    JobsFailed {
        failed: usize,
        first_error: String,
    },
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::Io(e) => write!(f, "dispatch transport error: {e}"),
            DispatchError::Protocol(m) => write!(f, "dispatch protocol error: {m}"),
            DispatchError::JobsFailed { failed, first_error } => {
                write!(f, "{failed} job(s) exhausted their retry budget (first: {first_error})")
            }
        }
    }
}

impl std::error::Error for DispatchError {}

impl From<std::io::Error> for DispatchError {
    fn from(e: std::io::Error) -> Self {
        DispatchError::Io(e)
    }
}

/// A strategy for turning tune jobs into outcomes.
pub trait Dispatcher: Send + Sync {
    /// Human-readable label for logs (`serial`, `threads(4)`, `farm(addr)`).
    fn name(&self) -> String;

    /// Tune every job for `spec`. Outcomes may arrive in any order; the
    /// pipeline re-keys them by workload.
    fn dispatch(
        &self,
        jobs: &[TuneJob],
        spec: &DeviceSpec,
        budget: &TuningBudget,
    ) -> Result<Vec<TuneOutcome>, DispatchError>;
}

/// Measured-vs-predicted drift for one tuned workload: the noisy measured
/// best cost against the analytic model's noise-free prediction for the same
/// config. Workers ship this alongside each lease result so the tracker can
/// watch calibration fleet-wide (`farm.drift.*`). At noise 0 the two agree
/// exactly and the relative error is 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredDrift {
    pub workload: String,
    pub device: String,
    /// Noise-free cost-model prediction for the best config, ms.
    pub predicted_ms: f64,
    /// Measured (noise-bearing) best cost the tuner observed, ms.
    pub measured_ms: f64,
}

impl MeasuredDrift {
    /// Relative error of the measurement against the prediction.
    pub fn rel_err(&self) -> f64 {
        unigpu_telemetry::drift::rel_err(self.predicted_ms, self.measured_ms)
    }
}

/// Tune a single job exactly as the serial pipeline always has: build the
/// config space, run the model-based tuner with index-derived seeds, write
/// the convergence log, and pick the top-k candidates by true cost.
pub fn tune_one(job: &TuneJob, spec: &DeviceSpec, budget: &TuningBudget) -> TuneOutcome {
    tune_one_measured(job, spec, budget).0
}

/// [`tune_one`] plus the [`MeasuredDrift`] sample the farm's workers report
/// with each lease result.
pub fn tune_one_measured(
    job: &TuneJob,
    spec: &DeviceSpec,
    budget: &TuningBudget,
) -> (TuneOutcome, MeasuredDrift) {
    let w = &job.workload;
    let i = job.index;
    let space = ConfigSpace::build(w, spec);
    let mut measurer = SimMeasurer::new(spec.clone(), budget.noise, budget.seed ^ (i as u64));
    let mut tuner = ModelBasedTuner::new(budget.seed.wrapping_add(i as u64));
    let result = tuner.tune(w, &space, &mut measurer, budget.trials_per_workload);
    tel_debug!(
        "tuner::dispatch",
        "workload {} on {}: best {:.4} ms after {} trials",
        w.key(),
        spec.name,
        result.best_cost_ms,
        result.trials
    );
    match write_convergence_log(&spec.name, &w.key(), &result.history) {
        Ok(path) => {
            tel_debug!("tuner::dispatch", "convergence log: {}", path.display());
        }
        Err(e) => tel_warn!("tuner::dispatch", "failed to write convergence log: {e}"),
    }

    // top-k distinct configs by true (noise-free) cost
    let mut hist = result.history.clone();
    hist.sort_by(|a, b| a.1.total_cmp(&b.1));
    hist.dedup_by_key(|h| h.0);
    let candidates: Vec<Candidate> = hist
        .iter()
        .take(budget.graph_candidates.max(1))
        .map(|&(idx, _)| {
            let config = space.get(idx);
            Candidate { config, kernel_ms: measurer.true_cost(w, &config) }
        })
        .collect();

    let predicted_ms = measurer.true_cost(w, &result.best_config);
    let drift = MeasuredDrift {
        workload: w.key(),
        device: spec.name.clone(),
        predicted_ms,
        measured_ms: result.best_cost_ms,
    };
    let outcome = TuneOutcome {
        index: i,
        record: TuneRecord {
            device: spec.name.clone(),
            workload: w.key(),
            config: result.best_config,
            cost_ms: predicted_ms,
            trials: result.trials,
        },
        candidates,
    };
    (outcome, drift)
}

/// The original in-process serial loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialDispatcher;

impl Dispatcher for SerialDispatcher {
    fn name(&self) -> String {
        "serial".into()
    }

    fn dispatch(
        &self,
        jobs: &[TuneJob],
        spec: &DeviceSpec,
        budget: &TuningBudget,
    ) -> Result<Vec<TuneOutcome>, DispatchError> {
        Ok(jobs.iter().map(|j| tune_one(j, spec, budget)).collect())
    }
}

/// Local thread-pool loopback (`unigpu tune --jobs N`): distinct workloads
/// tune concurrently on a dedicated rayon pool. Deterministic because every
/// job is self-seeded; results come back in job order.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPoolDispatcher {
    threads: usize,
}

impl ThreadPoolDispatcher {
    pub fn new(threads: usize) -> Self {
        ThreadPoolDispatcher { threads: threads.max(1) }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Dispatcher for ThreadPoolDispatcher {
    fn name(&self) -> String {
        format!("threads({})", self.threads)
    }

    fn dispatch(
        &self,
        jobs: &[TuneJob],
        spec: &DeviceSpec,
        budget: &TuningBudget,
    ) -> Result<Vec<TuneOutcome>, DispatchError> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .map_err(|e| DispatchError::Protocol(format!("thread pool: {e}")))?;
        Ok(pool.install(|| jobs.par_iter().map(|j| tune_one(j, spec, budget)).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs() -> Vec<TuneJob> {
        [
            ConvWorkload::square(1, 64, 64, 28, 3, 1, 1),
            ConvWorkload::square(1, 64, 128, 28, 1, 1, 0),
            ConvWorkload::square(1, 128, 128, 14, 3, 1, 1),
        ]
        .iter()
        .enumerate()
        .map(|(index, &workload)| TuneJob { index, workload })
        .collect()
    }

    #[test]
    fn thread_pool_matches_serial_bit_for_bit() {
        let spec = DeviceSpec::intel_hd505();
        let budget = TuningBudget { trials_per_workload: 32, ..Default::default() };
        let jobs = jobs();
        let serial = SerialDispatcher.dispatch(&jobs, &spec, &budget).unwrap();
        let pooled = ThreadPoolDispatcher::new(4).dispatch(&jobs, &spec, &budget).unwrap();
        assert_eq!(serial.len(), pooled.len());
        let mut pooled = pooled;
        pooled.sort_by_key(|o| o.index);
        for (s, p) in serial.iter().zip(&pooled) {
            assert_eq!(s.record, p.record, "records must be bit-identical at noise 0");
            assert_eq!(s.candidates, p.candidates);
        }
    }

    #[test]
    fn outcome_round_trips_through_json() {
        let spec = DeviceSpec::mali_t860();
        let budget = TuningBudget { trials_per_workload: 16, ..Default::default() };
        let out = tune_one(&jobs()[0], &spec, &budget);
        let text = serde_json::to_string(&out).unwrap();
        let back: TuneOutcome = serde_json::from_str(&text).unwrap();
        assert_eq!(out, back, "f64 costs survive the wire exactly");
    }

    #[test]
    fn seeds_derive_from_index_not_dispatch_order() {
        let spec = DeviceSpec::intel_hd505();
        let budget = TuningBudget { trials_per_workload: 24, ..Default::default() };
        let jobs = jobs();
        let forward = SerialDispatcher.dispatch(&jobs, &spec, &budget).unwrap();
        let mut reversed: Vec<TuneJob> = jobs.clone();
        reversed.reverse();
        let mut backward = SerialDispatcher.dispatch(&reversed, &spec, &budget).unwrap();
        backward.sort_by_key(|o| o.index);
        for (f, b) in forward.iter().zip(&backward) {
            assert_eq!(f.record, b.record);
        }
    }
}
