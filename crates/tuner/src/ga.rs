//! Genetic-algorithm tuner — AutoTVM ships one alongside random/GBT search;
//! useful when the surrogate's features fit a workload poorly.
//!
//! Standard generational GA over config indices: tournament selection,
//! per-knob uniform crossover (the radix decomposition makes knobs the
//! natural genes), point mutation, elitism.

use crate::measure::Measurer;
use crate::tuners::{TuneResult, Tuner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unigpu_ops::conv::ConfigSpace;
use unigpu_ops::ConvWorkload;

/// Generational genetic-algorithm tuner.
pub struct GaTuner {
    rng: StdRng,
    pub population: usize,
    pub elite: usize,
    pub mutation_prob: f64,
}

impl GaTuner {
    pub fn new(seed: u64) -> Self {
        GaTuner { rng: StdRng::seed_from_u64(seed), population: 16, elite: 4, mutation_prob: 0.15 }
    }

    fn decompose(idx: usize, radix: &[usize]) -> Vec<usize> {
        let mut digits = Vec::with_capacity(radix.len());
        let mut rest = idx;
        for &r in radix {
            digits.push(rest % r);
            rest /= r;
        }
        digits
    }

    fn compose(digits: &[usize], radix: &[usize]) -> usize {
        let mut out = 0usize;
        for (d, r) in digits.iter().zip(radix).rev() {
            out = out * r + d;
        }
        out
    }

    /// Uniform crossover + mutation over the knob digits.
    fn breed(&mut self, a: usize, b: usize, radix: &[usize]) -> usize {
        let da = Self::decompose(a, radix);
        let db = Self::decompose(b, radix);
        let mut child = Vec::with_capacity(radix.len());
        for k in 0..radix.len() {
            let gene = if self.rng.gen_bool(0.5) { da[k] } else { db[k] };
            let gene = if self.rng.gen_bool(self.mutation_prob) {
                self.rng.gen_range(0..radix[k])
            } else {
                gene
            };
            child.push(gene);
        }
        Self::compose(&child, radix)
    }

    /// Tournament-of-2 selection by fitness (lower cost wins).
    fn select(&mut self, scored: &[(usize, f64)]) -> usize {
        let a = self.rng.gen_range(0..scored.len());
        let b = self.rng.gen_range(0..scored.len());
        if scored[a].1 <= scored[b].1 {
            scored[a].0
        } else {
            scored[b].0
        }
    }
}

impl Tuner for GaTuner {
    fn tune(
        &mut self,
        w: &ConvWorkload,
        space: &ConfigSpace,
        measurer: &mut dyn Measurer,
        budget: usize,
    ) -> TuneResult {
        let radix = space.radix();
        let mut history: Vec<(usize, f64)> = Vec::with_capacity(budget);
        // Zero budget (or an empty space) measures nothing; `finish` then
        // returns the documented default-schedule fallback, matching the
        // other tuners, instead of panicking on an empty history.
        if budget == 0 || space.is_empty() {
            return crate::tuners::finish(history, space, 0);
        }
        // initial population
        let mut population: Vec<(usize, f64)> = Vec::new();
        let init = self.population.min(budget);
        for _ in 0..init {
            let idx = self.rng.gen_range(0..space.len());
            let cost = measurer.measure(w, &space.get(idx));
            population.push((idx, cost));
            history.push((idx, cost));
        }
        while history.len() < budget {
            population.sort_by(|a, b| a.1.total_cmp(&b.1));
            let mut next: Vec<(usize, f64)> =
                population.iter().take(self.elite).cloned().collect();
            while next.len() < self.population && history.len() + next.len() - self.elite < budget
            {
                let pa = self.select(&population);
                let pb = self.select(&population);
                let child = self.breed(pa, pb, &radix);
                let cost = measurer.measure(w, &space.get(child));
                history.push((child, cost));
                next.push((child, cost));
                if history.len() >= budget {
                    break;
                }
            }
            population = next;
        }
        let trials = history.len();
        crate::tuners::finish(history, space, trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::SimMeasurer;
    use crate::tuners::RandomTuner;
    use unigpu_device::DeviceSpec;
    use unigpu_ops::conv::ConvConfig;

    fn setup() -> (ConvWorkload, ConfigSpace) {
        let w = ConvWorkload::square(1, 128, 128, 28, 3, 1, 1);
        let spec = DeviceSpec::mali_t860();
        (w, ConfigSpace::build(&w, &spec))
    }

    #[test]
    fn compose_decompose_roundtrip() {
        let (_, space) = setup();
        let radix = space.radix();
        for idx in (0..space.len()).step_by(37) {
            let d = GaTuner::decompose(idx, &radix);
            assert_eq!(GaTuner::compose(&d, &radix), idx);
        }
    }

    #[test]
    fn ga_improves_over_default_schedule() {
        let (w, space) = setup();
        let mut m = SimMeasurer::new(DeviceSpec::mali_t860(), 0.0, 21);
        let r = GaTuner::new(21).tune(&w, &space, &mut m, 128);
        let default_cost = m.true_cost(&w, &ConvConfig::default_schedule());
        assert!(r.best_cost_ms < default_cost);
        assert_eq!(r.trials, 128);
    }

    #[test]
    fn ga_is_competitive_with_random() {
        let (w, space) = setup();
        let mut m1 = SimMeasurer::new(DeviceSpec::mali_t860(), 0.0, 22);
        let ga = GaTuner::new(22).tune(&w, &space, &mut m1, 96);
        let mut m2 = SimMeasurer::new(DeviceSpec::mali_t860(), 0.0, 22);
        let rnd = RandomTuner::new(22).tune(&w, &space, &mut m2, 96);
        assert!(ga.best_cost_ms <= rnd.best_cost_ms * 1.25, "{} vs {}", ga.best_cost_ms, rnd.best_cost_ms);
    }

    #[test]
    fn zero_budget_returns_fallback_instead_of_panicking() {
        let (w, space) = setup();
        let mut m = SimMeasurer::new(DeviceSpec::mali_t860(), 0.0, 3);
        let r = GaTuner::new(3).tune(&w, &space, &mut m, 0);
        assert_eq!(r.trials, 0);
        assert!(r.history.is_empty());
        assert_eq!(r.best_config, ConvConfig::default_schedule());
        assert!(r.best_cost_ms.is_infinite(), "fallback is ranked worst, not measured");
        assert_eq!(m.trials, 0, "no measurements spent");
    }

    #[test]
    fn children_stay_in_space() {
        let (_, space) = setup();
        let mut ga = GaTuner::new(5);
        let radix = space.radix();
        for _ in 0..500 {
            let a = ga.rng.gen_range(0..space.len());
            let b = ga.rng.gen_range(0..space.len());
            let c = ga.breed(a, b, &radix);
            assert!(c < space.len());
        }
    }
}
