//! End-to-end tuning pipeline: tensor-level search per workload (AutoTVM)
//! followed by graph-level layout selection (GraphTuner), producing the
//! tuning database consumed by the latency estimator.

use crate::dispatch::{DispatchError, Dispatcher, SerialDispatcher, TuneJob};
use crate::graph_tuner::{optimize_chain, ChainLayer, LayerCandidate};
use crate::records::{db_dir, Database, TuneRecord};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use unigpu_device::DeviceSpec;
use unigpu_graph::{Graph, OpKind, ScheduleProvider};
use unigpu_ops::conv::ConvConfig;
use unigpu_ops::ConvWorkload;
use unigpu_telemetry::{tel_debug, tel_info};

/// Tuning effort knobs. Serializable because the farm protocol ships the
/// budget to remote workers alongside each job batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningBudget {
    /// Measurements per distinct convolution workload.
    pub trials_per_workload: usize,
    /// Relative measurement noise (0 = deterministic).
    pub noise: f64,
    pub seed: u64,
    /// Top-k candidates per layer handed to the graph tuner.
    pub graph_candidates: usize,
}

impl Default for TuningBudget {
    fn default() -> Self {
        TuningBudget { trials_per_workload: 128, noise: 0.0, seed: 2019, graph_candidates: 4 }
    }
}

/// Collect the distinct conv workloads of a graph, in topological order
/// (with repetition order preserved for the chain view).
pub fn conv_workloads(g: &Graph) -> Vec<ConvWorkload> {
    g.nodes
        .iter()
        .filter_map(|n| match &n.op {
            OpKind::Conv2d { w, .. } => Some(*w),
            _ => None,
        })
        .collect()
}

/// Directory for per-workload tuning convergence logs: a `convergence/`
/// folder inside the tuning cache dir (`UNIGPU_DB_DIR`, defaulting to
/// `target/tuning` like the bench harness's database cache).
pub fn convergence_log_dir() -> PathBuf {
    db_dir().join("convergence")
}

fn slug(s: &str) -> String {
    crate::records::device_slug(s)
}

/// Write a per-trial convergence log (JSONL, mirroring AutoTVM's tuning
/// records): one line per measurement with the trial index, the measured
/// cost, and the best cost seen so far. Returns the file path.
pub fn write_convergence_log(
    device: &str,
    workload: &str,
    history: &[(usize, f64)],
) -> std::io::Result<PathBuf> {
    let dir = convergence_log_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{}__{}.jsonl", slug(device), slug(workload)));
    let mut out = String::with_capacity(history.len() * 96);
    let mut best = f64::INFINITY;
    for (trial, &(config, ms)) in history.iter().enumerate() {
        if ms < best {
            best = ms;
        }
        let line = serde_json::json!({
            "device": device,
            "workload": workload,
            "trial": trial,
            "config": config,
            "ms": ms,
            "best_ms": best,
        });
        out.push_str(&line.to_string());
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Tune every convolution workload of `graph` for `spec`, serially and
/// in-process — the original pipeline. See [`tune_graph_with`] for the
/// dispatcher-parameterized form this delegates to.
pub fn tune_graph(graph: &Graph, spec: &DeviceSpec, budget: &TuningBudget) -> Database {
    tune_graph_with(graph, spec, budget, &SerialDispatcher, None)
        .expect("serial dispatch is infallible")
}

/// Tune every convolution workload of `graph` for `spec` through a
/// [`Dispatcher`].
///
/// Returns the database of best-found schedules. Tensor-level search runs
/// once per *distinct* workload (the database's whole point); the graph
/// tuner then re-selects among each layer's top candidates to minimize
/// kernel + layout-transform cost over the model's conv chain.
///
/// `prior` supports `--resume`: workloads the prior database already covers
/// are not re-dispatched — their record is reused directly (and stands in as
/// the sole layer candidate for the graph DP). Job indices still count all
/// distinct workloads, so a resumed run's seeds match an uninterrupted one.
pub fn tune_graph_with(
    graph: &Graph,
    spec: &DeviceSpec,
    budget: &TuningBudget,
    dispatcher: &dyn Dispatcher,
    prior: Option<&Database>,
) -> Result<Database, DispatchError> {
    let chain_wls = conv_workloads(graph);
    let mut db = Database::new();
    // per distinct workload: (top candidates sorted by cost)
    let mut candidates: HashMap<String, Vec<LayerCandidate>> = HashMap::new();

    // HashSet-keyed dedup: large models repeat blocks, and an O(n²) scan
    // over key strings pays quadratically on ResNet-50-sized graphs.
    let mut seen: HashSet<String> = HashSet::with_capacity(chain_wls.len());
    let mut distinct: Vec<ConvWorkload> = Vec::new();
    for w in &chain_wls {
        if seen.insert(w.key()) {
            distinct.push(*w);
        }
    }

    let mut jobs: Vec<TuneJob> = Vec::new();
    let mut resumed = 0usize;
    for (i, w) in distinct.iter().enumerate() {
        match prior.and_then(|p| p.lookup(&spec.name, w)) {
            Some(rec) => {
                resumed += 1;
                candidates.insert(
                    w.key(),
                    vec![LayerCandidate { config: rec.config, kernel_ms: rec.cost_ms }],
                );
                db.insert(rec.clone());
            }
            None => jobs.push(TuneJob { index: i, workload: *w }),
        }
    }
    if resumed > 0 {
        tel_info!(
            "tuner::pipeline",
            "resuming: {} of {} workload(s) already tuned for {}",
            resumed,
            distinct.len(),
            spec.name
        );
    }

    if !jobs.is_empty() {
        tel_debug!(
            "tuner::pipeline",
            "dispatching {} workload(s) for {} via {}",
            jobs.len(),
            spec.name,
            dispatcher.name()
        );
        for outcome in dispatcher.dispatch(&jobs, spec, budget)? {
            candidates.insert(
                outcome.record.workload.clone(),
                outcome
                    .candidates
                    .iter()
                    .map(|c| LayerCandidate { config: c.config, kernel_ms: c.kernel_ms })
                    .collect(),
            );
            db.insert(outcome.record);
        }
    }

    // ---- graph-level layout DP over the conv chain ----
    if chain_wls.len() >= 2 {
        let layers: Vec<ChainLayer> = chain_wls
            .iter()
            .map(|w| ChainLayer { workload: *w, candidates: candidates[&w.key()].clone() })
            .collect();
        let plan = optimize_chain(&layers, spec);
        // Record the graph-tuned choice per workload (first occurrence wins:
        // repeated workloads overwhelmingly sit in identical neighbourhoods).
        let mut chosen: HashMap<String, (ConvConfig, f64)> = HashMap::new();
        for (layer, &c) in layers.iter().zip(&plan.choice) {
            chosen
                .entry(layer.workload.key())
                .or_insert_with(|| {
                    let cand = &layer.candidates[c];
                    (cand.config, cand.kernel_ms)
                });
        }
        for w in &distinct {
            if let Some(&(config, cost_ms)) = chosen.get(&w.key()) {
                // Replace even if marginally slower at tensor level: the
                // chain total (kernels + transforms) is what the DP minimized.
                db.insert_replace(TuneRecord {
                    device: spec.name.clone(),
                    workload: w.key(),
                    config,
                    cost_ms,
                    trials: budget.trials_per_workload,
                });
            }
        }
    }
    Ok(db)
}

/// [`ScheduleProvider`] backed by a tuning database, with fallback for
/// unknown workloads.
#[derive(Debug, Clone)]
pub struct TunedSchedules {
    db: Database,
}

impl TunedSchedules {
    pub fn new(db: Database) -> Self {
        TunedSchedules { db }
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Serialize the tuned state as sorted records — the form a compiled-
    /// model artifact embeds (schedules only; no weights, no graph).
    pub fn to_records(&self) -> Vec<TuneRecord> {
        self.db.records()
    }

    /// Rebuild the provider from artifact records.
    pub fn from_records(records: impl IntoIterator<Item = TuneRecord>) -> Self {
        TunedSchedules { db: Database::from_records(records) }
    }
}

impl ScheduleProvider for TunedSchedules {
    fn conv_config(&self, w: &ConvWorkload, spec: &DeviceSpec) -> ConvConfig {
        self.db
            .lookup(&spec.name, w)
            .map(|r| r.config)
            .unwrap_or_else(|| ConvConfig::fallback_for(w, spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigpu_graph::latency::FallbackSchedules;
    use unigpu_graph::{estimate_latency, place, Activation, LatencyOptions, PlacementPolicy};
    use unigpu_device::Platform;
    use unigpu_tensor::{Shape, Tensor};

    fn conv_chain_graph() -> Graph {
        let mut g = Graph::new("chain3");
        let wls = [
            ConvWorkload::square(1, 64, 64, 28, 3, 1, 1),
            ConvWorkload::square(1, 64, 128, 28, 1, 1, 0),
            ConvWorkload::square(1, 128, 128, 28, 3, 1, 1),
        ];
        let mut x = g.add(OpKind::Input { shape: Shape::from(wls[0].input_shape()) }, vec![], "x");
        for (i, w) in wls.iter().enumerate() {
            let k = g.add(OpKind::Constant(Tensor::zeros(w.weight_shape())), vec![], format!("w{i}"));
            x = g.add(
                OpKind::Conv2d { w: *w, bias: false, act: Activation::Relu },
                vec![x, k],
                format!("conv{i}"),
            );
        }
        g.mark_output(x);
        g
    }

    #[test]
    fn tuned_database_covers_all_workloads() {
        let g = conv_chain_graph();
        let spec = unigpu_device::DeviceSpec::mali_t860();
        let budget = TuningBudget { trials_per_workload: 48, ..Default::default() };
        let db = tune_graph(&g, &spec, &budget);
        assert_eq!(db.len(), 3);
        for w in conv_workloads(&g) {
            assert!(db.lookup(&spec.name, &w).is_some(), "missing {w}");
        }
    }

    #[test]
    fn tuned_model_is_faster_end_to_end() {
        let g = conv_chain_graph();
        for plat in Platform::all() {
            let budget = TuningBudget { trials_per_workload: 64, ..Default::default() };
            let db = tune_graph(&g, &plat.gpu, &budget);
            let tuned = TunedSchedules::new(db);
            let placed = place(&g, PlacementPolicy::AllGpu);
            let opts = LatencyOptions::default();
            let before = estimate_latency(&placed, &plat, &FallbackSchedules, &opts);
            let after = estimate_latency(&placed, &plat, &tuned, &opts);
            assert!(
                after.total_ms < before.total_ms,
                "{}: tuned {:.3} must beat fallback {:.3}",
                plat.name,
                after.total_ms,
                before.total_ms
            );
        }
    }

    #[test]
    fn convergence_log_written_under_db_dir() {
        let dir = std::env::temp_dir().join(format!("unigpu_convergence_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::env::set_var("UNIGPU_DB_DIR", &dir);

        // Workload shapes unique to this test, so no concurrently running
        // tune_graph test can touch the same log files.
        let mut g = Graph::new("convergence");
        let w = ConvWorkload::square(1, 48, 56, 14, 3, 1, 1);
        let x = g.add(OpKind::Input { shape: Shape::from(w.input_shape()) }, vec![], "x");
        let k = g.add(OpKind::Constant(Tensor::zeros(w.weight_shape())), vec![], "w");
        let c = g.add(OpKind::Conv2d { w, bias: false, act: Activation::Relu }, vec![x, k], "c");
        g.mark_output(c);

        let spec = unigpu_device::DeviceSpec::intel_hd505();
        let budget = TuningBudget { trials_per_workload: 24, ..Default::default() };
        let db = tune_graph(&g, &spec, &budget);
        std::env::remove_var("UNIGPU_DB_DIR");
        assert_eq!(db.len(), 1);

        let path = dir
            .join("convergence")
            .join(format!("{}__{}.jsonl", slug(&spec.name), slug(&w.key())));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("convergence log {} missing: {e}", path.display()));
        let mut best = f64::INFINITY;
        let mut lines = 0usize;
        for (i, line) in text.lines().enumerate() {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
            assert_eq!(v["trial"].as_u64().unwrap() as usize, i, "trial index in order");
            let ms = v["ms"].as_f64().unwrap();
            let best_ms = v["best_ms"].as_f64().unwrap();
            best = best.min(ms);
            assert_eq!(best_ms, best, "best-so-far is the running minimum");
            assert_eq!(v["workload"].as_str().unwrap(), w.key());
            assert_eq!(v["device"].as_str().unwrap(), spec.name);
            lines += 1;
        }
        assert_eq!(lines, budget.trials_per_workload, "one line per trial");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tuned_schedules_round_trip_through_records() {
        let g = conv_chain_graph();
        let spec = unigpu_device::DeviceSpec::mali_t860();
        let budget = TuningBudget { trials_per_workload: 32, ..Default::default() };
        let tuned = TunedSchedules::new(tune_graph(&g, &spec, &budget));
        let records = tuned.to_records();
        assert_eq!(records.len(), 3);
        assert!(records.windows(2).all(|p| (&p[0].device, &p[0].workload)
            <= (&p[1].device, &p[1].workload)));
        let back = TunedSchedules::from_records(records);
        for w in conv_workloads(&g) {
            assert_eq!(back.conv_config(&w, &spec), tuned.conv_config(&w, &spec));
        }
    }

    #[test]
    fn thread_pool_database_matches_serial() {
        let g = conv_chain_graph();
        let spec = unigpu_device::DeviceSpec::intel_hd505();
        let budget = TuningBudget { trials_per_workload: 32, ..Default::default() };
        let serial = tune_graph(&g, &spec, &budget);
        let pooled = tune_graph_with(
            &g,
            &spec,
            &budget,
            &crate::dispatch::ThreadPoolDispatcher::new(4),
            None,
        )
        .unwrap();
        assert_eq!(serial.records(), pooled.records(), "noise=0 ⇒ bit-identical databases");
    }

    #[test]
    fn resume_skips_prior_workloads_and_still_covers_the_graph() {
        let g = conv_chain_graph();
        let spec = unigpu_device::DeviceSpec::mali_t860();
        let budget = TuningBudget { trials_per_workload: 32, ..Default::default() };
        let full = tune_graph(&g, &spec, &budget);

        let wls = conv_workloads(&g);
        let mut prior = Database::new();
        prior.insert(full.lookup(&spec.name, &wls[0]).unwrap().clone());

        let resumed =
            tune_graph_with(&g, &spec, &budget, &SerialDispatcher, Some(&prior)).unwrap();
        assert_eq!(resumed.len(), full.len());
        for w in &wls {
            assert!(resumed.lookup(&spec.name, w).is_some(), "missing {w}");
        }
        // the resumed workload keeps the prior schedule (it was never re-searched)
        assert_eq!(
            resumed.lookup(&spec.name, &wls[0]).unwrap().config,
            prior.lookup(&spec.name, &wls[0]).unwrap().config
        );
    }

    #[test]
    fn fully_resumed_run_dispatches_nothing() {
        let g = conv_chain_graph();
        let spec = unigpu_device::DeviceSpec::mali_t860();
        let budget = TuningBudget { trials_per_workload: 24, ..Default::default() };
        let full = tune_graph(&g, &spec, &budget);

        struct NoDispatch;
        impl crate::dispatch::Dispatcher for NoDispatch {
            fn name(&self) -> String {
                "refuses".into()
            }
            fn dispatch(
                &self,
                jobs: &[crate::dispatch::TuneJob],
                _spec: &unigpu_device::DeviceSpec,
                _budget: &TuningBudget,
            ) -> Result<Vec<crate::dispatch::TuneOutcome>, crate::dispatch::DispatchError> {
                panic!("dispatched {} job(s) on a fully resumed run", jobs.len());
            }
        }
        let resumed = tune_graph_with(&g, &spec, &budget, &NoDispatch, Some(&full)).unwrap();
        assert_eq!(resumed.len(), full.len());
    }

    #[test]
    fn unknown_workloads_fall_back() {
        let provider = TunedSchedules::new(Database::new());
        let w = ConvWorkload::square(1, 16, 16, 10, 3, 1, 1);
        let spec = unigpu_device::DeviceSpec::intel_hd505();
        assert_eq!(provider.conv_config(&w, &spec), ConvConfig::fallback_for(&w, &spec));
    }
}
