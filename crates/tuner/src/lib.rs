//! # unigpu-tuner
//!
//! The machine-learning-based performance-tuning layer (§3.2.3):
//!
//! * [`measure`] — the "hardware measurement" abstraction. On real devices
//!   AutoTVM compiles and times candidate kernels; here candidates are priced
//!   by the device cost model with optional measurement noise, which
//!   exercises the full statistical machinery.
//! * [`features`] — schedule-config feature extraction for the cost model.
//! * [`gbt`] — gradient-boosted regression trees, the surrogate model that
//!   ranks unmeasured configurations (AutoTVM's XGBoost stand-in).
//! * [`tuners`] — search strategies over a [`ConfigSpace`]: random, grid,
//!   simulated annealing, and the model-based tuner (GBT + SA proposal +
//!   ε-greedy batch selection).
//! * [`records`] — the tuning database: "we maintain a database to store the
//!   results for every convolution workload on each hardware platform".
//! * [`graph_tuner`] — the graph-level layout tuner: dynamic programming
//!   over per-layer schedule candidates weighing kernel gains against data
//!   layout transformation overheads.
//! * [`dispatch`] — how the pipeline fans search out: one [`TuneJob`] per
//!   distinct workload through a [`Dispatcher`] (serial loop, local thread
//!   pool, or the `unigpu-farm` tracker/worker service), all bit-identical
//!   at zero measurement noise.
//! * [`pipeline`] — end-to-end: extract a model's conv workloads, tune each,
//!   produce a [`records::Database`] whose `TunedSchedules` plugs into the
//!   graph latency estimator.
//!
//! [`ConfigSpace`]: unigpu_ops::conv::ConfigSpace

pub mod dispatch;
pub mod features;
pub mod ga;
pub mod gbt;
pub mod graph_tuner;
pub mod measure;
pub mod pipeline;
pub mod records;
pub mod tuners;

pub use dispatch::{
    tune_one, tune_one_measured, Candidate, DispatchError, Dispatcher, MeasuredDrift,
    SerialDispatcher, ThreadPoolDispatcher, TuneJob, TuneOutcome,
};
pub use measure::{Measurer, SimMeasurer};
pub use pipeline::{
    convergence_log_dir, tune_graph, tune_graph_with, write_convergence_log, TunedSchedules,
    TuningBudget,
};
pub use records::{db_dir, device_db_path, device_slug, Database, LoadRecovery, TuneRecord};
pub use ga::GaTuner;
pub use tuners::{GridTuner, ModelBasedTuner, RandomTuner, SaTuner, TuneResult, Tuner};
