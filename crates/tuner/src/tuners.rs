//! Search strategies over the convolution config space.
//!
//! All tuners implement [`Tuner`]: given a workload, a config space and a
//! measurement budget, return the best configuration found. The flagship is
//! [`ModelBasedTuner`] — the AutoTVM loop: measure a batch → train the GBT
//! surrogate on everything seen → propose the next batch by simulated
//! annealing on the surrogate with ε-greedy exploration.

use crate::features::conv_features;
use crate::gbt::Gbt;
use crate::measure::Measurer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unigpu_ops::conv::{ConfigSpace, ConvConfig};
use unigpu_ops::ConvWorkload;

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    pub best_config: ConvConfig,
    pub best_cost_ms: f64,
    pub trials: usize,
    /// Measured (config index, cost) history in trial order.
    pub history: Vec<(usize, f64)>,
}

/// A search strategy.
pub trait Tuner {
    fn tune(
        &mut self,
        w: &ConvWorkload,
        space: &ConfigSpace,
        measurer: &mut dyn Measurer,
        budget: usize,
    ) -> TuneResult;
}

/// Fold a measurement history into a [`TuneResult`].
///
/// An empty history (zero budget, or an exhausted/empty config space) is not
/// an error: every tuner falls back to [`ConvConfig::default_schedule`] with
/// an infinite cost, so callers can rank it honestly against real results
/// instead of panicking mid-search.
pub(crate) fn finish(history: Vec<(usize, f64)>, space: &ConfigSpace, trials: usize) -> TuneResult {
    match history.iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
        Some(&(best_idx, best_cost)) => TuneResult {
            best_config: space.get(best_idx),
            best_cost_ms: best_cost,
            trials,
            history,
        },
        None => TuneResult {
            best_config: ConvConfig::default_schedule(),
            best_cost_ms: f64::INFINITY,
            trials: 0,
            history,
        },
    }
}

/// Uniform random search.
pub struct RandomTuner {
    rng: StdRng,
}

impl RandomTuner {
    pub fn new(seed: u64) -> Self {
        RandomTuner { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Tuner for RandomTuner {
    fn tune(
        &mut self,
        w: &ConvWorkload,
        space: &ConfigSpace,
        measurer: &mut dyn Measurer,
        budget: usize,
    ) -> TuneResult {
        let mut history = Vec::with_capacity(budget);
        for _ in 0..budget {
            let idx = self.rng.gen_range(0..space.len());
            history.push((idx, measurer.measure(w, &space.get(idx))));
        }
        finish(history, space, budget)
    }
}

/// Exhaustive / strided grid search.
pub struct GridTuner;

impl Tuner for GridTuner {
    fn tune(
        &mut self,
        w: &ConvWorkload,
        space: &ConfigSpace,
        measurer: &mut dyn Measurer,
        budget: usize,
    ) -> TuneResult {
        let stride = (space.len() / budget.max(1)).max(1);
        let mut history = Vec::new();
        let mut idx = 0;
        while idx < space.len() && history.len() < budget {
            history.push((idx, measurer.measure(w, &space.get(idx))));
            idx += stride;
        }
        let trials = history.len();
        finish(history, space, trials)
    }
}

/// Mutate one knob of a config index (radix neighbourhood move).
fn mutate(idx: usize, space: &ConfigSpace, rng: &mut StdRng) -> usize {
    let radix = space.radix();
    // decompose
    let mut digits = Vec::with_capacity(radix.len());
    let mut rest = idx;
    for &r in &radix {
        digits.push(rest % r);
        rest /= r;
    }
    // re-roll one knob
    let k = rng.gen_range(0..radix.len());
    digits[k] = rng.gen_range(0..radix[k]);
    // recompose
    let mut out = 0usize;
    for (d, r) in digits.iter().zip(&radix).rev() {
        out = out * r + d;
    }
    out
}

/// Simulated annealing directly on (noisy) measurements.
pub struct SaTuner {
    rng: StdRng,
    pub temperature: f64,
    pub cooling: f64,
}

impl SaTuner {
    pub fn new(seed: u64) -> Self {
        SaTuner { rng: StdRng::seed_from_u64(seed), temperature: 1.0, cooling: 0.985 }
    }
}

impl Tuner for SaTuner {
    fn tune(
        &mut self,
        w: &ConvWorkload,
        space: &ConfigSpace,
        measurer: &mut dyn Measurer,
        budget: usize,
    ) -> TuneResult {
        let mut t = self.temperature;
        let mut cur = self.rng.gen_range(0..space.len());
        let mut cur_cost = measurer.measure(w, &space.get(cur));
        let mut history = vec![(cur, cur_cost)];
        for _ in 1..budget {
            let cand = mutate(cur, space, &mut self.rng);
            let cost = measurer.measure(w, &space.get(cand));
            history.push((cand, cost));
            let accept = cost < cur_cost || {
                let p = ((cur_cost - cost) / (t * cur_cost.max(1e-12))).exp();
                self.rng.gen_range(0.0..1.0) < p
            };
            if accept {
                cur = cand;
                cur_cost = cost;
            }
            t *= self.cooling;
        }
        finish(history, space, budget)
    }
}

/// The AutoTVM-style model-based tuner: GBT surrogate + SA proposal +
/// ε-greedy batch selection.
pub struct ModelBasedTuner {
    rng: StdRng,
    /// Configs measured per outer iteration.
    pub batch: usize,
    /// Fraction of each batch drawn at random (exploration).
    pub epsilon: f64,
    /// SA steps per proposal walk on the surrogate.
    pub sa_steps: usize,
}

impl ModelBasedTuner {
    pub fn new(seed: u64) -> Self {
        ModelBasedTuner { rng: StdRng::seed_from_u64(seed), batch: 16, epsilon: 0.2, sa_steps: 128 }
    }

    /// Propose a batch of promising, unmeasured indices by annealing on the
    /// surrogate's predicted cost.
    fn propose(
        &mut self,
        space: &ConfigSpace,
        model: &Gbt,
        w: &ConvWorkload,
        spec: &unigpu_device::DeviceSpec,
        seen: &std::collections::HashSet<usize>,
        count: usize,
    ) -> Vec<usize> {
        let predict = |idx: usize, rng_model: &Gbt| -> f64 {
            let cfg = space.get(idx);
            rng_model.predict(&conv_features(w, &cfg, spec))
        };
        let mut pool: Vec<(usize, f64)> = Vec::new();
        let mut cur = self.rng.gen_range(0..space.len());
        let mut cur_score = predict(cur, model);
        let mut temp = 1.0f64;
        for _ in 0..self.sa_steps {
            let cand = mutate(cur, space, &mut self.rng);
            let score = predict(cand, model);
            if !seen.contains(&cand) {
                pool.push((cand, score));
            }
            if score < cur_score
                || self.rng.gen_range(0.0..1.0) < ((cur_score - score) / temp.max(1e-9)).exp()
            {
                cur = cand;
                cur_score = score;
            }
            temp *= 0.97;
        }
        pool.sort_by(|a, b| a.1.total_cmp(&b.1));
        pool.dedup_by_key(|p| p.0);
        let mut out: Vec<usize> = pool.into_iter().map(|p| p.0).take(count).collect();
        // top-up with random unseen
        while out.len() < count {
            let idx = self.rng.gen_range(0..space.len());
            if !seen.contains(&idx) && !out.contains(&idx) {
                out.push(idx);
            }
        }
        out
    }
}

impl Tuner for ModelBasedTuner {
    fn tune(
        &mut self,
        w: &ConvWorkload,
        space: &ConfigSpace,
        measurer: &mut dyn Measurer,
        budget: usize,
    ) -> TuneResult {
        use std::collections::HashSet;
        let spec = measurer.spec().clone();
        let mut history: Vec<(usize, f64)> = Vec::with_capacity(budget);
        let mut seen: HashSet<usize> = HashSet::new();

        // Warm-up: one random batch.
        let warm = self.batch.min(budget);
        for _ in 0..warm {
            let idx = self.rng.gen_range(0..space.len());
            seen.insert(idx);
            history.push((idx, measurer.measure(w, &space.get(idx))));
        }

        while history.len() < budget {
            // Train surrogate on log-cost (rank-robust).
            let xs: Vec<Vec<f64>> = history
                .iter()
                .map(|&(i, _)| conv_features(w, &space.get(i), &spec).to_vec())
                .collect();
            let ys: Vec<f64> = history.iter().map(|&(_, c)| c.max(1e-9).ln()).collect();
            let model = Gbt::fit(&xs, &ys, 40, 3, 0.25);

            let remaining = budget - history.len();
            let batch = self.batch.min(remaining);
            let n_explore = ((batch as f64) * self.epsilon).round() as usize;
            let n_exploit = batch - n_explore;

            let mut picks = self.propose(space, &model, w, &spec, &seen, n_exploit);
            for _ in 0..n_explore {
                let idx = self.rng.gen_range(0..space.len());
                picks.push(idx);
            }
            for idx in picks {
                if history.len() >= budget {
                    break;
                }
                seen.insert(idx);
                history.push((idx, measurer.measure(w, &space.get(idx))));
            }
        }
        let trials = history.len();
        finish(history, space, trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::SimMeasurer;
    use unigpu_device::DeviceSpec;

    fn setup() -> (ConvWorkload, ConfigSpace, SimMeasurer) {
        let w = ConvWorkload::square(1, 128, 128, 28, 3, 1, 1);
        let spec = DeviceSpec::intel_hd505();
        let space = ConfigSpace::build(&w, &spec);
        (w, space, SimMeasurer::new(spec, 0.0, 42))
    }

    /// Brute-force optimum over a strided sample for comparison.
    fn good_reference_cost(w: &ConvWorkload, space: &ConfigSpace, m: &SimMeasurer) -> f64 {
        (0..space.len())
            .step_by(7)
            .map(|i| m.true_cost(w, &space.get(i)))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn random_tuner_improves_over_default() {
        let (w, space, mut m) = setup();
        let default_cost = m.true_cost(&w, &ConvConfig::default_schedule());
        let r = RandomTuner::new(1).tune(&w, &space, &mut m, 200);
        assert!(r.best_cost_ms < default_cost, "{} vs {default_cost}", r.best_cost_ms);
        assert_eq!(r.trials, 200);
        assert_eq!(r.history.len(), 200);
    }

    #[test]
    fn model_tuner_beats_random_at_equal_budget() {
        let (w, space, mut m) = setup();
        let budget = 96;
        let rnd = RandomTuner::new(3).tune(&w, &space, &mut m, budget);
        let mut m2 = SimMeasurer::new(DeviceSpec::intel_hd505(), 0.0, 43);
        let mb = ModelBasedTuner::new(3).tune(&w, &space, &mut m2, budget);
        assert!(
            mb.best_cost_ms <= rnd.best_cost_ms * 1.05,
            "model {} should be <= random {}",
            mb.best_cost_ms,
            rnd.best_cost_ms
        );
    }

    #[test]
    fn model_tuner_approaches_strided_optimum() {
        let (w, space, mut m) = setup();
        let reference = good_reference_cost(&w, &space, &m);
        let r = ModelBasedTuner::new(7).tune(&w, &space, &mut m, 192);
        assert!(
            r.best_cost_ms <= reference * 1.3,
            "model-based best {} should approach sampled optimum {reference}",
            r.best_cost_ms
        );
    }

    #[test]
    fn sa_tuner_works_under_noise() {
        let (w, space, _) = setup();
        let mut noisy = SimMeasurer::new(DeviceSpec::intel_hd505(), 0.05, 11);
        let r = SaTuner::new(11).tune(&w, &space, &mut noisy, 150);
        let truth = noisy.true_cost(&w, &r.best_config);
        let default_truth = noisy.true_cost(&w, &ConvConfig::default_schedule());
        assert!(truth < default_truth);
    }

    #[test]
    fn grid_tuner_respects_budget() {
        let (w, space, mut m) = setup();
        let r = GridTuner.tune(&w, &space, &mut m, 50);
        assert!(r.trials <= 50);
        assert!(r.best_cost_ms.is_finite());
    }

    #[test]
    fn mutate_stays_in_space() {
        let (_, space, _) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let idx = rng.gen_range(0..space.len());
            let m = mutate(idx, &space, &mut rng);
            assert!(m < space.len());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (w, space, _) = setup();
        let run = |seed| {
            let mut m = SimMeasurer::new(DeviceSpec::intel_hd505(), 0.02, 5);
            ModelBasedTuner::new(seed).tune(&w, &space, &mut m, 64).best_cost_ms
        };
        assert_eq!(run(9), run(9));
    }
}
