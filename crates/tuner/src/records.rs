//! The tuning-record database.
//!
//! §3.2.3: "doing tensor-level search is costly particularly at the edge
//! devices ... In order to prevent replicated searching in the future, we
//! maintain a database to store the results for every convolution workload
//! on each hardware platform." Records serialize to JSON lines, mirroring
//! AutoTVM's log format.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use unigpu_ops::conv::ConvConfig;
use unigpu_ops::ConvWorkload;

/// The tuning cache directory: `UNIGPU_DB_DIR`, defaulting to
/// `target/tuning`. Shared by the bench harness's database cache, the
/// convergence logs, and `unigpu tune --resume`.
pub fn db_dir() -> PathBuf {
    let dir = std::env::var("UNIGPU_DB_DIR").unwrap_or_else(|_| "target/tuning".into());
    PathBuf::from(dir)
}

/// Filesystem-safe slug of a device name (`Intel HD Graphics 505` →
/// `intel_hd_graphics_505`).
pub fn device_slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect()
}

/// Canonical on-disk database path for a device, under [`db_dir`] — the
/// file `unigpu tune --resume` consults and the bench harness caches to.
pub fn device_db_path(device: &str) -> PathBuf {
    db_dir().join(format!("{}.jsonl", device_slug(device)))
}

/// One tuning outcome: the best schedule found for a workload on a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneRecord {
    /// Device name (`DeviceSpec::name`).
    pub device: String,
    /// Workload key (`ConvWorkload::key()`).
    pub workload: String,
    pub config: ConvConfig,
    pub cost_ms: f64,
    /// Measurements spent finding it.
    pub trials: usize,
}

/// In-memory database keyed by `(device, workload)`, with JSON persistence.
#[derive(Debug, Clone, Default)]
pub struct Database {
    records: HashMap<(String, String), TuneRecord>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Insert / overwrite-if-better a record.
    pub fn insert(&mut self, rec: TuneRecord) {
        let key = (rec.device.clone(), rec.workload.clone());
        match self.records.get(&key) {
            Some(old) if old.cost_ms <= rec.cost_ms => {}
            _ => {
                self.records.insert(key, rec);
            }
        }
    }

    /// Insert unconditionally, replacing any existing record (used by the
    /// graph tuner, whose choice may be tensor-level-slower but chain-level
    /// faster once transform costs are counted).
    pub fn insert_replace(&mut self, rec: TuneRecord) {
        self.records
            .insert((rec.device.clone(), rec.workload.clone()), rec);
    }

    /// Look up the best known config for a workload on a device.
    pub fn lookup(&self, device: &str, w: &ConvWorkload) -> Option<&TuneRecord> {
        self.records.get(&(device.to_string(), w.key()))
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in deterministic `(device, workload)` order — the
    /// serialization surface used by compiled-model artifacts.
    pub fn records(&self) -> Vec<TuneRecord> {
        let mut recs: Vec<TuneRecord> = self.records.values().cloned().collect();
        recs.sort_by(|a, b| (&a.device, &a.workload).cmp(&(&b.device, &b.workload)));
        recs
    }

    /// Rebuild a database from serialized records (keeps the best per key).
    pub fn from_records(records: impl IntoIterator<Item = TuneRecord>) -> Self {
        let mut db = Database::new();
        for r in records {
            db.insert(r);
        }
        db
    }

    /// Serialize to JSON lines (one record per line, AutoTVM-log style).
    pub fn to_json_lines(&self) -> String {
        let mut recs: Vec<&TuneRecord> = self.records.values().collect();
        recs.sort_by(|a, b| (&a.device, &a.workload).cmp(&(&b.device, &b.workload)));
        recs.iter()
            .map(|r| serde_json::to_string(r).expect("record serializes"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parse JSON lines produced by [`Database::to_json_lines`].
    pub fn from_json_lines(s: &str) -> Result<Self, serde_json::Error> {
        let mut db = Database::new();
        for line in s.lines().filter(|l| !l.trim().is_empty()) {
            db.insert(serde_json::from_str(line)?);
        }
        Ok(db)
    }

    /// Persist to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_lines())
    }

    /// Load from a file.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json_lines(&s)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Load leniently: keep every parseable record and report what was
    /// skipped, instead of discarding the whole database on one corrupt
    /// line. A missing file yields an empty database with no errors.
    pub fn load_recovering(path: &std::path::Path) -> (Self, LoadRecovery) {
        let mut db = Database::new();
        let mut recovery = LoadRecovery::default();
        let Ok(s) = std::fs::read_to_string(path) else {
            return (db, recovery);
        };
        for line in s.lines().filter(|l| !l.trim().is_empty()) {
            match serde_json::from_str(line) {
                Ok(rec) => {
                    db.insert(rec);
                    recovery.recovered += 1;
                }
                Err(e) => {
                    recovery.skipped += 1;
                    if recovery.first_error.is_none() {
                        recovery.first_error = Some(e.to_string());
                    }
                }
            }
        }
        (db, recovery)
    }
}

/// What a lenient [`Database::load_recovering`] managed to salvage.
#[derive(Debug, Clone, Default)]
pub struct LoadRecovery {
    /// Records successfully parsed and inserted.
    pub recovered: usize,
    /// Corrupt lines dropped.
    pub skipped: usize,
    /// Parse error of the first corrupt line.
    pub first_error: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(dev: &str, w: &ConvWorkload, cost: f64) -> TuneRecord {
        TuneRecord {
            device: dev.into(),
            workload: w.key(),
            config: ConvConfig::default_schedule(),
            cost_ms: cost,
            trials: 10,
        }
    }

    #[test]
    fn insert_keeps_best() {
        let w = ConvWorkload::square(1, 8, 8, 8, 3, 1, 1);
        let mut db = Database::new();
        db.insert(rec("dev", &w, 5.0));
        db.insert(rec("dev", &w, 9.0)); // worse: ignored
        assert_eq!(db.lookup("dev", &w).unwrap().cost_ms, 5.0);
        db.insert(rec("dev", &w, 2.0)); // better: replaces
        assert_eq!(db.lookup("dev", &w).unwrap().cost_ms, 2.0);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn per_device_isolation() {
        let w = ConvWorkload::square(1, 8, 8, 8, 3, 1, 1);
        let mut db = Database::new();
        db.insert(rec("intel", &w, 1.0));
        db.insert(rec("mali", &w, 2.0));
        assert_eq!(db.len(), 2);
        assert_eq!(db.lookup("mali", &w).unwrap().cost_ms, 2.0);
        assert!(db.lookup("nvidia", &w).is_none());
    }

    #[test]
    fn json_round_trip() {
        let w1 = ConvWorkload::square(1, 8, 16, 8, 3, 1, 1);
        let w2 = ConvWorkload::depthwise(1, 32, 56, 3, 1, 1);
        let mut db = Database::new();
        db.insert(rec("intel", &w1, 1.5));
        db.insert(rec("intel", &w2, 0.5));
        let text = db.to_json_lines();
        let back = Database::from_json_lines(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.lookup("intel", &w2).unwrap().cost_ms, 0.5);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("unigpu_db_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.jsonl");
        let w = ConvWorkload::square(1, 4, 4, 4, 1, 1, 0);
        let mut db = Database::new();
        db.insert(rec("nano", &w, 3.25));
        db.save(&path).unwrap();
        let back = Database::load(&path).unwrap();
        assert_eq!(back.lookup("nano", &w).unwrap().cost_ms, 3.25);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_errors() {
        assert!(Database::from_json_lines("not json").is_err());
    }

    #[test]
    fn load_recovering_salvages_good_lines() {
        let dir = std::env::temp_dir().join("unigpu_db_recover_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.jsonl");
        let w = ConvWorkload::square(1, 8, 8, 8, 3, 1, 1);
        let mut db = Database::new();
        db.insert(rec("dev", &w, 1.25));
        let mut text = db.to_json_lines();
        text.push_str("\n{ this line is corrupt\n");
        std::fs::write(&path, text).unwrap();

        assert!(Database::load(&path).is_err(), "strict load still fails");
        let (recovered, recovery) = Database::load_recovering(&path);
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovery.recovered, 1);
        assert_eq!(recovery.skipped, 1);
        assert!(recovery.first_error.is_some());
        assert_eq!(recovered.lookup("dev", &w).unwrap().cost_ms, 1.25);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_recovering_salvages_a_truncated_final_line() {
        // the crash-mid-write shape: a full record, then a record cut off
        // partway through (no trailing newline)
        let dir = std::env::temp_dir().join("unigpu_db_truncate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.jsonl");
        let w1 = ConvWorkload::square(1, 8, 8, 8, 3, 1, 1);
        let w2 = ConvWorkload::depthwise(1, 32, 56, 3, 1, 1);
        let mut db = Database::new();
        db.insert(rec("dev", &w1, 1.25));
        db.insert(rec("dev", &w2, 2.5));
        let text = db.to_json_lines();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let last = lines[1];
        let truncated = format!("{}\n{}", lines[0], &last[..last.len() / 2]);
        std::fs::write(&path, truncated).unwrap();

        assert!(Database::load(&path).is_err(), "strict load still fails");
        let (recovered, recovery) = Database::load_recovering(&path);
        assert_eq!(recovery.recovered, 1, "the intact line survives");
        assert_eq!(recovery.skipped, 1, "the truncated tail is dropped");
        assert!(recovery.first_error.is_some());
        assert_eq!(recovered.len(), 1);
        assert!(
            recovered.lookup("dev", &w1).is_some() || recovered.lookup("dev", &w2).is_some(),
            "whichever record serialized first is recovered"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_recovering_missing_file_is_empty_and_clean() {
        let (db, recovery) = Database::load_recovering(std::path::Path::new(
            "/nonexistent/unigpu/records.jsonl",
        ));
        assert!(db.is_empty());
        assert_eq!(recovery.recovered + recovery.skipped, 0);
        assert!(recovery.first_error.is_none());
    }
}
