//! Candidate measurement.
//!
//! On physical hardware AutoTVM builds each candidate kernel and times it on
//! the device (§3.2.3 notes this took "up to tens of hours ... for one
//! device"). The simulated measurer prices the candidate's
//! [`KernelProfile`] on the device cost model and adds multiplicative
//! log-normal noise, reproducing run-to-run timing jitter so the tuners'
//! statistics are exercised honestly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unigpu_device::{CostModel, DeviceSpec};
use unigpu_ops::conv::{conv_profile, ConvConfig};
use unigpu_ops::ConvWorkload;

/// Measures one configuration; lower is better (milliseconds).
pub trait Measurer {
    fn measure(&mut self, w: &ConvWorkload, cfg: &ConvConfig) -> f64;
    /// The device being tuned for.
    fn spec(&self) -> &DeviceSpec;
}

/// Cost-model-backed measurer with optional timing noise.
#[derive(Debug)]
pub struct SimMeasurer {
    model: CostModel,
    noise: f64,
    rng: StdRng,
    /// Total simulated measurements performed (for budget accounting).
    pub trials: usize,
}

impl SimMeasurer {
    /// `noise` is the relative standard deviation of the multiplicative
    /// jitter (0.0 = deterministic).
    pub fn new(spec: DeviceSpec, noise: f64, seed: u64) -> Self {
        SimMeasurer {
            model: CostModel::new(spec),
            noise,
            rng: StdRng::seed_from_u64(seed),
            trials: 0,
        }
    }

    /// Noise-free ground-truth cost (used by tests and final re-ranking).
    pub fn true_cost(&self, w: &ConvWorkload, cfg: &ConvConfig) -> f64 {
        self.model.kernel_time_ms(&conv_profile(w, cfg, self.model.spec()))
    }
}

impl Measurer for SimMeasurer {
    fn measure(&mut self, w: &ConvWorkload, cfg: &ConvConfig) -> f64 {
        self.trials += 1;
        let base = self.true_cost(w, cfg);
        if self.noise <= 0.0 {
            return base;
        }
        // Box–Muller late at night: two uniforms → one standard normal.
        let u1: f64 = self.rng.gen_range(1e-9..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        base * (1.0 + self.noise * z).max(0.05)
    }

    fn spec(&self) -> &DeviceSpec {
        self.model.spec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> ConvWorkload {
        ConvWorkload::square(1, 64, 64, 28, 3, 1, 1)
    }

    #[test]
    fn noise_free_measurement_is_deterministic() {
        let mut m = SimMeasurer::new(DeviceSpec::intel_hd505(), 0.0, 1);
        let cfg = ConvConfig::default_schedule();
        assert_eq!(m.measure(&wl(), &cfg), m.measure(&wl(), &cfg));
        assert_eq!(m.trials, 2);
    }

    #[test]
    fn noisy_measurements_jitter_around_truth() {
        let mut m = SimMeasurer::new(DeviceSpec::mali_t860(), 0.05, 7);
        let cfg = ConvConfig::default_schedule();
        let truth = m.true_cost(&wl(), &cfg);
        let n = 200;
        let mean: f64 = (0..n).map(|_| m.measure(&wl(), &cfg)).sum::<f64>() / n as f64;
        assert!((mean / truth - 1.0).abs() < 0.03, "mean {mean} vs truth {truth}");
        // and it actually jitters
        let a = m.measure(&wl(), &cfg);
        let b = m.measure(&wl(), &cfg);
        assert_ne!(a, b);
    }

    #[test]
    fn noise_never_goes_nonpositive() {
        let mut m = SimMeasurer::new(DeviceSpec::maxwell_nano(), 0.9, 3);
        let cfg = ConvConfig::default_schedule();
        for _ in 0..500 {
            assert!(m.measure(&wl(), &cfg) > 0.0);
        }
    }
}
