//! Graph-level layout tuning (§3.2.3, following Liu et al. [26]).
//!
//! The fastest kernel for each convolution may want a different blocked
//! layout (`NCHWc` with `c = tile_oc`) than its neighbours, and every layout
//! change inserts a transform with real cost. "The graph tuner uses dynamic
//! programming to examine the trade-off between optimized kernels and data
//! layout transformation overheads."
//!
//! For a chain of layers with per-layer candidate schedules, the DP is
//! `dp[i][j] = kernel[i][j] + min_k (dp[i-1][k] + transform(k → j))`,
//! which is optimal in `O(Σ candidates²)`.

use unigpu_device::{CostModel, DeviceSpec};
use unigpu_ops::conv::ConvConfig;
use unigpu_ops::nn::eltwise_profile;
use unigpu_ops::ConvWorkload;

/// One candidate schedule for a layer, with its measured kernel cost.
#[derive(Debug, Clone)]
pub struct LayerCandidate {
    pub config: ConvConfig,
    pub kernel_ms: f64,
}

impl LayerCandidate {
    /// The activation layout this schedule produces/prefers: channel block
    /// equals the schedule's output-channel tile.
    pub fn layout_block(&self) -> usize {
        self.config.tile_oc
    }
}

/// One layer of the chain: its workload plus candidate schedules.
#[derive(Debug, Clone)]
pub struct ChainLayer {
    pub workload: ConvWorkload,
    pub candidates: Vec<LayerCandidate>,
}

/// Cost of converting a layer's output tensor between two blocked layouts.
pub fn transform_ms(numel: usize, spec: &DeviceSpec) -> f64 {
    let model = CostModel::new(spec.clone());
    model.kernel_time_ms(&eltwise_profile("layout_transform", numel, 0.0))
}

/// Result of the chain DP.
#[derive(Debug, Clone)]
pub struct ChainPlan {
    /// Chosen candidate index per layer.
    pub choice: Vec<usize>,
    /// Total cost (kernels + transforms) in ms.
    pub total_ms: f64,
    /// Number of layout-transform insertions.
    pub transforms: usize,
}

/// Optimal schedule selection over a chain of layers.
///
/// # Panics
/// Panics if any layer has no candidates.
pub fn optimize_chain(layers: &[ChainLayer], spec: &DeviceSpec) -> ChainPlan {
    assert!(!layers.is_empty(), "empty chain");
    for (i, l) in layers.iter().enumerate() {
        assert!(!l.candidates.is_empty(), "layer {i} has no candidates");
    }
    // dp[j] = best cost ending at current layer with candidate j
    let mut dp: Vec<f64> = layers[0].candidates.iter().map(|c| c.kernel_ms).collect();
    // back-pointers per layer
    let mut back: Vec<Vec<usize>> = vec![vec![0; dp.len()]];

    for i in 1..layers.len() {
        let prev_out_numel = layers[i - 1].workload.out_numel();
        let t_ms = transform_ms(prev_out_numel, spec);
        let mut next = Vec::with_capacity(layers[i].candidates.len());
        let mut bp = Vec::with_capacity(layers[i].candidates.len());
        for cj in &layers[i].candidates {
            let mut best = f64::INFINITY;
            let mut arg = 0;
            for (k, ck) in layers[i - 1].candidates.iter().enumerate() {
                let trans = if ck.layout_block() == cj.layout_block() { 0.0 } else { t_ms };
                let cost = dp[k] + trans;
                if cost < best {
                    best = cost;
                    arg = k;
                }
            }
            next.push(best + cj.kernel_ms);
            bp.push(arg);
        }
        dp = next;
        back.push(bp);
    }

    // trace back
    let (mut j, &total) = dp
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    let mut choice = vec![0usize; layers.len()];
    for i in (0..layers.len()).rev() {
        choice[i] = j;
        j = back[i][j];
    }
    let transforms = choice
        .windows(2)
        .zip(layers.windows(2))
        .filter(|(c, l)| {
            l[0].candidates[c[0]].layout_block() != l[1].candidates[c[1]].layout_block()
        })
        .count();
    ChainPlan { choice, total_ms: total, transforms }
}

/// The greedy baseline (pick each layer's fastest kernel independently) —
/// what a purely tensor-level tuner would do. Used by tests and the ablation
/// bench to show the DP's advantage.
pub fn greedy_chain(layers: &[ChainLayer], spec: &DeviceSpec) -> ChainPlan {
    let choice: Vec<usize> = layers
        .iter()
        .map(|l| {
            l.candidates
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.kernel_ms.total_cmp(&b.1.kernel_ms))
                .unwrap()
                .0
        })
        .collect();
    let mut total: f64 = layers
        .iter()
        .zip(&choice)
        .map(|(l, &c)| l.candidates[c].kernel_ms)
        .sum();
    let mut transforms = 0;
    for i in 1..layers.len() {
        if layers[i - 1].candidates[choice[i - 1]].layout_block()
            != layers[i].candidates[choice[i]].layout_block()
        {
            total += transform_ms(layers[i - 1].workload.out_numel(), spec);
            transforms += 1;
        }
    }
    ChainPlan { choice, total_ms: total, transforms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigpu_device::DeviceSpec;

    fn cand(tile_oc: usize, ms: f64) -> LayerCandidate {
        LayerCandidate {
            config: ConvConfig { tile_oc, ..ConvConfig::default_schedule() },
            kernel_ms: ms,
        }
    }

    fn layer(cands: Vec<LayerCandidate>) -> ChainLayer {
        ChainLayer {
            workload: ConvWorkload::square(1, 64, 64, 56, 3, 1, 1),
            candidates: cands,
        }
    }

    #[test]
    fn dp_prefers_consistent_layouts_when_transforms_are_costly() {
        let spec = DeviceSpec::mali_t860();
        let t = transform_ms(64 * 56 * 56, &spec);
        assert!(t > 0.0);
        // layer A: block-8 slightly faster; layer B: block-4 slightly faster.
        // Mixing costs a transform worth more than the kernel gains.
        let eps = t / 10.0;
        let layers = vec![
            layer(vec![cand(8, 1.0), cand(4, 1.0 + eps)]),
            layer(vec![cand(8, 1.0 + eps), cand(4, 1.0)]),
        ];
        let plan = optimize_chain(&layers, &spec);
        assert_eq!(plan.transforms, 0, "DP should keep one layout");
        let blocks: Vec<usize> = plan
            .choice
            .iter()
            .zip(&layers)
            .map(|(&c, l)| l.candidates[c].layout_block())
            .collect();
        assert_eq!(blocks[0], blocks[1]);
        // greedy pays the transform
        let greedy = greedy_chain(&layers, &spec);
        assert_eq!(greedy.transforms, 1);
        assert!(plan.total_ms < greedy.total_ms);
    }

    #[test]
    fn dp_mixes_layouts_when_kernel_gains_dominate() {
        let spec = DeviceSpec::mali_t860();
        let t = transform_ms(64 * 56 * 56, &spec);
        // huge kernel gain from switching: DP must take the transform
        let layers = vec![
            layer(vec![cand(8, 1.0)]),
            layer(vec![cand(8, 10.0 * (t + 1.0)), cand(4, 1.0)]),
        ];
        let plan = optimize_chain(&layers, &spec);
        assert_eq!(plan.transforms, 1);
        let blocks: Vec<usize> = plan
            .choice
            .iter()
            .zip(&layers)
            .map(|(&c, l)| l.candidates[c].layout_block())
            .collect();
        assert_eq!(blocks, vec![8, 4]);
    }

    #[test]
    fn dp_matches_exhaustive_on_small_chains() {
        let spec = DeviceSpec::intel_hd505();
        let layers = vec![
            layer(vec![cand(4, 2.0), cand(8, 1.5), cand(16, 1.2)]),
            layer(vec![cand(4, 1.0), cand(8, 1.1), cand(16, 3.0)]),
            layer(vec![cand(4, 0.4), cand(8, 2.0), cand(16, 0.5)]),
        ];
        let plan = optimize_chain(&layers, &spec);
        // exhaustive
        let t01 = transform_ms(layers[0].workload.out_numel(), &spec);
        let t12 = transform_ms(layers[1].workload.out_numel(), &spec);
        let mut best = f64::INFINITY;
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    let mut cost = layers[0].candidates[a].kernel_ms
                        + layers[1].candidates[b].kernel_ms
                        + layers[2].candidates[c].kernel_ms;
                    if layers[0].candidates[a].layout_block()
                        != layers[1].candidates[b].layout_block()
                    {
                        cost += t01;
                    }
                    if layers[1].candidates[b].layout_block()
                        != layers[2].candidates[c].layout_block()
                    {
                        cost += t12;
                    }
                    best = best.min(cost);
                }
            }
        }
        assert!((plan.total_ms - best).abs() < 1e-12, "DP {} vs exhaustive {best}", plan.total_ms);
    }

    #[test]
    fn dp_never_worse_than_greedy() {
        let spec = DeviceSpec::maxwell_nano();
        for seed in 0..20u64 {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let layers: Vec<ChainLayer> = (0..6)
                .map(|_| {
                    layer(
                        (0..4)
                            .map(|_| {
                                cand(
                                    [4usize, 8, 16][rng.gen_range(0..3)],
                                    rng.gen_range(0.2..5.0),
                                )
                            })
                            .collect(),
                    )
                })
                .collect();
            let dp = optimize_chain(&layers, &spec);
            let gr = greedy_chain(&layers, &spec);
            assert!(
                dp.total_ms <= gr.total_ms + 1e-12,
                "seed {seed}: dp {} > greedy {}",
                dp.total_ms,
                gr.total_ms
            );
        }
    }

    #[test]
    fn single_layer_chain_picks_fastest() {
        let spec = DeviceSpec::intel_hd505();
        let layers = vec![layer(vec![cand(4, 3.0), cand(8, 1.0), cand(16, 2.0)])];
        let plan = optimize_chain(&layers, &spec);
        assert_eq!(plan.choice, vec![1]);
        assert_eq!(plan.transforms, 0);
    }
}
