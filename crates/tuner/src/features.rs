//! Feature extraction for the surrogate cost model.
//!
//! Encodes a (workload, config, device) triple as a fixed-width numeric
//! vector. The knobs themselves appear in log scale plus derived quantities
//! the real cost depends on (occupancy, arithmetic-intensity proxies,
//! alignment) so shallow trees can carve the space efficiently — the same
//! philosophy as AutoTVM's knob+curve features.

use unigpu_device::DeviceSpec;
use unigpu_ops::conv::ConvConfig;
use unigpu_ops::ConvWorkload;

/// Feature vector width.
pub const CONV_FEATURE_DIM: usize = 14;

fn lg(x: f64) -> f64 {
    (x + 1.0).log2()
}

/// Featurize one candidate configuration.
pub fn conv_features(w: &ConvWorkload, cfg: &ConvConfig, spec: &DeviceSpec) -> [f64; CONV_FEATURE_DIM] {
    let items = cfg.work_items(w) as f64;
    let conc = spec.max_concurrency() as f64;
    let wg = cfg.workgroup_size();
    [
        lg(cfg.tile_oc as f64),
        lg(cfg.tile_oh as f64),
        lg(cfg.tile_ow as f64),
        lg(cfg.vector_width as f64),
        lg(cfg.unroll as f64),
        lg(wg as f64),
        cfg.use_subgroup as u8 as f64,
        cfg.use_slm as u8 as f64,
        lg(items),
        (items / conc).min(8.0),                       // occupancy proxy
        (wg % spec.simd_width == 0) as u8 as f64,      // warp/SIMD alignment
        lg(cfg.tile_size() as f64),                    // register-tile footprint
        (w.out_channels % cfg.tile_oc != 0) as u8 as f64 // guard presence
            + (w.out_w() % cfg.tile_ow != 0) as u8 as f64,
        lg(w.flops()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigpu_device::DeviceSpec;

    #[test]
    fn features_have_stable_width() {
        let w = ConvWorkload::square(1, 32, 32, 14, 3, 1, 1);
        let f = conv_features(&w, &ConvConfig::default_schedule(), &DeviceSpec::mali_t860());
        assert_eq!(f.len(), CONV_FEATURE_DIM);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn different_configs_get_different_features() {
        let w = ConvWorkload::square(1, 32, 32, 14, 3, 1, 1);
        let spec = DeviceSpec::intel_hd505();
        let a = conv_features(&w, &ConvConfig::default_schedule(), &spec);
        let mut cfg = ConvConfig::default_schedule();
        cfg.tile_oc = 8;
        cfg.use_subgroup = true;
        let b = conv_features(&w, &cfg, &spec);
        assert_ne!(a, b);
    }
}
