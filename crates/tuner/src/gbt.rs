//! Gradient-boosted regression trees — the surrogate cost model.
//!
//! A compact, dependency-free stand-in for AutoTVM's XGBoost ranker:
//! least-squares gradient boosting over depth-limited CART regression
//! trees. Targets are `log(cost)` in practice (the tuner's choice), which
//! makes the ranking robust to the heavy right tail of bad schedules.

/// One node of a regression tree (indices into the arena).
#[derive(Debug, Clone)]
enum TreeNode {
    Leaf(f64),
    Split { feature: usize, thresh: f64, left: usize, right: usize },
}

/// A depth-limited CART regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<TreeNode>,
}

impl RegressionTree {
    /// Fit by greedy variance reduction.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], idx: &[usize], max_depth: usize, min_leaf: usize) -> Self {
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.build(xs, ys, idx, max_depth, min_leaf);
        tree
    }

    fn build(&mut self, xs: &[Vec<f64>], ys: &[f64], idx: &[usize], depth: usize, min_leaf: usize) -> usize {
        let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len().max(1) as f64;
        if depth == 0 || idx.len() < 2 * min_leaf {
            self.nodes.push(TreeNode::Leaf(mean));
            return self.nodes.len() - 1;
        }
        // Best split: minimize weighted child variance.
        let dim = xs[0].len();
        let total_sq: f64 = idx.iter().map(|&i| ys[i] * ys[i]).sum();
        let total_sum: f64 = idx.iter().map(|&i| ys[i]).sum();
        let n = idx.len() as f64;
        let base_sse = total_sq - total_sum * total_sum / n;
        let mut best: Option<(usize, f64, f64)> = None; // (feature, thresh, sse)
        for f in 0..dim {
            let mut vals: Vec<(f64, f64)> = idx.iter().map(|&i| (xs[i][f], ys[i])).collect();
            vals.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut lsum = 0.0;
            let mut lsq = 0.0;
            let mut lcount = 0.0;
            for k in 0..vals.len() - 1 {
                lsum += vals[k].1;
                lsq += vals[k].1 * vals[k].1;
                lcount += 1.0;
                if vals[k].0 == vals[k + 1].0 {
                    continue; // can't split between equal feature values
                }
                if (lcount as usize) < min_leaf || (vals.len() - lcount as usize) < min_leaf {
                    continue;
                }
                let rsum = total_sum - lsum;
                let rsq = total_sq - lsq;
                let rcount = n - lcount;
                let sse = (lsq - lsum * lsum / lcount) + (rsq - rsum * rsum / rcount);
                if best.map_or(sse < base_sse - 1e-12, |(_, _, b)| sse < b) {
                    best = Some((f, (vals[k].0 + vals[k + 1].0) / 2.0, sse));
                }
            }
        }
        let Some((feature, thresh, _)) = best else {
            self.nodes.push(TreeNode::Leaf(mean));
            return self.nodes.len() - 1;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| xs[i][feature] <= thresh);
        // Reserve our slot before children so the root is node 0.
        let slot = self.nodes.len();
        self.nodes.push(TreeNode::Leaf(0.0)); // placeholder
        let left = self.build(xs, ys, &li, depth - 1, min_leaf);
        let right = self.build(xs, ys, &ri, depth - 1, min_leaf);
        self.nodes[slot] = TreeNode::Split { feature, thresh, left, right };
        slot
    }

    /// Predict one sample.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut cur = if self.nodes.is_empty() { return 0.0 } else { self.root() };
        loop {
            match &self.nodes[cur] {
                TreeNode::Leaf(v) => return *v,
                TreeNode::Split { feature, thresh, left, right } => {
                    cur = if x[*feature] <= *thresh { *left } else { *right };
                }
            }
        }
    }

    fn root(&self) -> usize {
        // build() pushes the root either first (leaf) or reserves slot 0
        0
    }
}

/// Gradient-boosted ensemble.
#[derive(Debug, Clone, Default)]
pub struct Gbt {
    base: f64,
    trees: Vec<RegressionTree>,
    learning_rate: f64,
}

impl Gbt {
    /// Fit `n_trees` of depth `depth` with shrinkage `lr`.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], n_trees: usize, depth: usize, lr: f64) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "cannot fit on zero samples");
        let base = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut model = Gbt { base, trees: Vec::new(), learning_rate: lr };
        let idx: Vec<usize> = (0..xs.len()).collect();
        let mut residual: Vec<f64> = ys.iter().map(|&y| y - base).collect();
        for _ in 0..n_trees {
            let tree = RegressionTree::fit(xs, &residual, &idx, depth, 2);
            for (i, r) in residual.iter_mut().enumerate() {
                *r -= lr * tree.predict(&xs[i]);
            }
            model.trees.push(tree);
        }
        model
    }

    /// Predict one sample.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base
            + self.learning_rate
                * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Number of trees fitted.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if no trees were fitted.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_tree_fits_a_step_function() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect();
        let idx: Vec<usize> = (0..40).collect();
        let t = RegressionTree::fit(&xs, &ys, &idx, 2, 2);
        assert!((t.predict(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict(&[33.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ensemble_learns_nonlinear_surface() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * (x[1] > 0.5) as u8 as f64 + x[0] * x[1];
        let xs: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| f(x)).collect();
        let m = Gbt::fit(&xs, &ys, 80, 3, 0.2);
        // R² on training data should be high
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean).powi(2)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (y - m.predict(x)).powi(2))
            .sum();
        let r2 = 1.0 - ss_res / ss_tot;
        assert!(r2 > 0.9, "R² = {r2}");
    }

    #[test]
    fn ranking_quality_on_held_out_points() {
        let mut rng = StdRng::seed_from_u64(9);
        let f = |x: &[f64]| (x[0] - 0.5).abs() * 10.0 + x[1];
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| f(x)).collect();
        let m = Gbt::fit(&xs, &ys, 60, 3, 0.2);
        // Pairwise ranking accuracy on fresh points
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..200 {
            let a = vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
            let b = vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
            if (f(&a) - f(&b)).abs() < 0.5 {
                continue;
            }
            total += 1;
            if (m.predict(&a) < m.predict(&b)) == (f(&a) < f(&b)) {
                correct += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.8, "ranking accuracy {acc}");
    }

    #[test]
    fn constant_targets_fit_exactly() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![2.5; 10];
        let m = Gbt::fit(&xs, &ys, 5, 2, 0.3);
        assert!((m.predict(&[4.0]) - 2.5).abs() < 1e-9);
    }
}
