//! Integration tests of the tuning stack: convergence behaviour and
//! best-so-far curves across strategies and devices.

use unigpu_device::DeviceSpec;
use unigpu_ops::conv::{ConfigSpace, ConvConfig};
use unigpu_ops::ConvWorkload;
use unigpu_tuner::{GaTuner, ModelBasedTuner, RandomTuner, SimMeasurer, TuneResult, Tuner};

fn best_so_far(r: &TuneResult) -> Vec<f64> {
    let mut best = f64::INFINITY;
    r.history
        .iter()
        .map(|&(_, c)| {
            best = best.min(c);
            best
        })
        .collect()
}

#[test]
fn best_so_far_is_monotone_for_every_tuner() {
    let w = ConvWorkload::square(1, 64, 64, 56, 3, 1, 1);
    for spec in [DeviceSpec::intel_hd505(), DeviceSpec::mali_t860(), DeviceSpec::maxwell_nano()] {
        let space = ConfigSpace::build(&w, &spec);
        let tuners: Vec<Box<dyn Tuner>> = vec![
            Box::new(RandomTuner::new(1)),
            Box::new(GaTuner::new(1)),
            Box::new(ModelBasedTuner::new(1)),
        ];
        for mut t in tuners {
            let mut m = SimMeasurer::new(spec.clone(), 0.02, 31);
            let r = t.tune(&w, &space, &mut m, 64);
            let curve = best_so_far(&r);
            assert!(curve.windows(2).all(|w| w[1] <= w[0]), "curve must be monotone");
            assert!((curve.last().unwrap() - r.best_cost_ms).abs() < 1e-12);
        }
    }
}

#[test]
fn more_budget_never_hurts_the_model_tuner() {
    let w = ConvWorkload::square(1, 128, 128, 28, 3, 1, 1);
    let spec = DeviceSpec::intel_hd505();
    let space = ConfigSpace::build(&w, &spec);
    let run = |budget: usize| {
        let mut m = SimMeasurer::new(spec.clone(), 0.0, 5);
        let r = ModelBasedTuner::new(5).tune(&w, &space, &mut m, budget);
        m.true_cost(&w, &r.best_config)
    };
    let small = run(32);
    let large = run(160);
    assert!(large <= small * 1.01, "160 trials {large} should not exceed 32 trials {small}");
}

#[test]
fn tuned_configs_are_valid_space_members() {
    let w = ConvWorkload::depthwise(1, 256, 28, 3, 1, 1);
    for spec in [DeviceSpec::intel_hd505(), DeviceSpec::mali_t860()] {
        let space = ConfigSpace::build(&w, &spec);
        let mut m = SimMeasurer::new(spec.clone(), 0.0, 9);
        let r = ModelBasedTuner::new(9).tune(&w, &space, &mut m, 48);
        let c: ConvConfig = r.best_config;
        assert!(space.tile_oc.contains(&c.tile_oc));
        assert!(space.vector_width.contains(&c.vector_width));
        assert!(space.use_subgroup.contains(&c.use_subgroup));
        // the Intel depthwise template gap: no subgroup configs exist at all
        if spec.has_subgroups {
            assert!(!c.use_subgroup, "Intel depthwise space must exclude subgroups");
        }
    }
}

#[test]
fn tuners_explore_distinct_configs() {
    let w = ConvWorkload::square(1, 64, 64, 28, 3, 1, 1);
    let spec = DeviceSpec::maxwell_nano();
    let space = ConfigSpace::build(&w, &spec);
    let mut m = SimMeasurer::new(spec.clone(), 0.0, 13);
    let r = ModelBasedTuner::new(13).tune(&w, &space, &mut m, 96);
    let distinct: std::collections::HashSet<usize> = r.history.iter().map(|&(i, _)| i).collect();
    assert!(
        distinct.len() > 60,
        "model tuner should mostly measure fresh configs ({} distinct of 96)",
        distinct.len()
    );
}
