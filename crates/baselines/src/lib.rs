//! # unigpu-baselines
//!
//! Emulation of the vendor-provided baselines the paper compares against
//! (§4.1):
//!
//! * **Intel OpenVINO / clDNN** on AWS DeepLens — expert fixed schedules for
//!   Intel Graphics (including subgroup usage and a mature depthwise
//!   kernel), but *classification models only*: "OpenVINO only restricts the
//!   support of the image classification models".
//! * **ARM Compute Library v19.02** on Acer aiSage — good dense kernels and
//!   hand-written detection post-processing, wired up manually ("it required
//!   sophisticated programming skills").
//! * **MXNet + cuDNN v7** on Jetson Nano — excellent classic-shape
//!   convolutions, weaker coverage of novel shapes (depthwise, SqueezeNet
//!   towers), no cross-operator fusion, framework dispatch overhead per op.
//!
//! Each baseline is a [`ScheduleProvider`] of curated expert schedules plus
//! a coverage matrix and framework-level adjustments, priced through the
//! *same* device cost model as our stack — reproducing the structure of the
//! paper's comparison: fixed expert schedules + coverage gaps versus
//! searched schedules + full coverage.
//!
//! [`ScheduleProvider`]: unigpu_graph::ScheduleProvider

pub mod vendor;

pub use vendor::{acl, baseline_for, cudnn_mxnet, openvino, Baseline, VendorSchedules};
