//! Vendor-library schedule providers and baseline pipelines.

use unigpu_device::{DeviceSpec, Platform, Vendor};
use unigpu_graph::latency::FallbackSchedules;
use unigpu_graph::passes::optimize;
use unigpu_graph::{
    estimate_latency, place, Graph, LatencyOptions, LatencyReport, PlacementPolicy,
    ScheduleProvider,
};
use unigpu_ops::conv::{ConvConfig, FallbackClass};
use unigpu_ops::ConvWorkload;

/// Which vendor library's expert schedules to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VendorSchedules {
    /// Intel clDNN (inside OpenVINO).
    ClDnn,
    /// ARM Compute Library.
    Acl,
    /// Nvidia cuDNN.
    CuDnn,
}

impl ScheduleProvider for VendorSchedules {
    fn conv_config(&self, w: &ConvWorkload, _spec: &DeviceSpec) -> ConvConfig {
        let class = ConvConfig::fallback_class(w);
        match self {
            // clDNN: mature Intel kernels. Subgroup block reads everywhere,
            // including a well-tuned depthwise kernel — the reason OpenVINO
            // beats the paper's stack on MobileNet (Table 1, 0.62x).
            VendorSchedules::ClDnn => {
                if w.is_depthwise() {
                    ConvConfig {
                        tile_oc: 1,
                        tile_oh: 2,
                        tile_ow: 8.min(w.out_w()),
                        vector_width: 8,
                        unroll: 4,
                        workgroup: (16, 4),
                        use_subgroup: true,
                        use_slm: false,
                    }
                } else {
                    ConvConfig {
                        tile_oc: 8.min(w.out_channels),
                        tile_oh: 1,
                        tile_ow: 4.min(w.out_w()),
                        vector_width: 8,
                        unroll: 4,
                        workgroup: (16, 4),
                        use_subgroup: true,
                        use_slm: false,
                    }
                }
            }
            // ACL: solid direct kernels with vec4; generic across shapes,
            // not specialized for narrow towers.
            VendorSchedules::Acl => match class {
                FallbackClass::HandTuned | FallbackClass::Generic => ConvConfig {
                    tile_oc: 4.min(w.out_channels),
                    tile_oh: 2,
                    tile_ow: 4.min(w.out_w()),
                    vector_width: 4,
                    unroll: 4,
                    workgroup: (8, 8),
                    use_subgroup: false,
                    use_slm: false,
                },
                FallbackClass::Naive => ConvConfig {
                    tile_oc: 2.min(w.out_channels),
                    tile_oh: 1,
                    tile_ow: 4.min(w.out_w()),
                    vector_width: 4,
                    unroll: 2,
                    workgroup: (8, 8),
                    use_subgroup: false,
                    use_slm: false,
                },
            },
            // cuDNN: superb classic kernels (winograd/implicit-GEMM class),
            // noticeably weaker on depthwise and narrow novel shapes in the
            // v7 era.
            VendorSchedules::CuDnn => {
                if w.is_depthwise() {
                    ConvConfig {
                        tile_oc: 1,
                        tile_oh: 1,
                        tile_ow: 2.min(w.out_w()),
                        vector_width: 1,
                        unroll: 2,
                        workgroup: (32, 2),
                        use_subgroup: false,
                        use_slm: false,
                    }
                } else {
                    match class {
                        FallbackClass::HandTuned => ConvConfig {
                            tile_oc: 8.min(w.out_channels),
                            tile_oh: 1,
                            tile_ow: 4.min(w.out_w()),
                            vector_width: 1,
                            unroll: 8,
                            workgroup: (32, 4),
                            use_subgroup: false,
                            use_slm: true,
                        },
                        FallbackClass::Generic => ConvConfig {
                            tile_oc: 4.min(w.out_channels),
                            tile_oh: 1,
                            tile_ow: 2.min(w.out_w()),
                            vector_width: 1,
                            unroll: 4,
                            workgroup: (32, 4),
                            use_subgroup: false,
                            use_slm: true,
                        },
                        FallbackClass::Naive => ConvConfig {
                            tile_oc: 2.min(w.out_channels),
                            tile_oh: 1,
                            tile_ow: 1,
                            vector_width: 1,
                            unroll: 1,
                            workgroup: (16, 2),
                            use_subgroup: false,
                            use_slm: false,
                        },
                    }
                }
            }
        }
    }
}

/// One end-to-end vendor baseline.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Name as printed in the tables' column headers.
    pub name: &'static str,
    pub schedules: VendorSchedules,
    /// Supports object-detection models at all?
    pub covers_detection: bool,
    /// Whether the framework performs graph optimization (fusion/folding).
    pub fuses: bool,
    /// Multiplier on the vision-operator portion (hand-written vendor
    /// post-processing quality relative to ours).
    pub vision_factor: f64,
    /// Multiplier on the convolution portion of *classification* models:
    /// vendor kernels use techniques outside our template space (Winograd
    /// for the repeated 3x3 stride-1 shapes, JIT shape specialization) whose
    /// wins concentrate in the compute-bound classification workloads; the
    /// bandwidth-bound 512x512 detection backbones do not benefit.
    pub conv_factor: f64,
    /// Per-operator framework dispatch overhead, ms.
    pub dispatch_ms: f64,
}

/// Intel OpenVINO (clDNN) — classification only.
pub fn openvino() -> Baseline {
    Baseline {
        name: "OpenVINO",
        schedules: VendorSchedules::ClDnn,
        covers_detection: false,
        fuses: true,
        vision_factor: 1.0,
        conv_factor: 0.72,
        dispatch_ms: 0.02,
    }
}

/// ARM Compute Library v19.02, manually integrated.
pub fn acl() -> Baseline {
    Baseline {
        name: "ACL",
        schedules: VendorSchedules::Acl,
        covers_detection: true,
        fuses: true,
        // ACL's hand-written detection post-processing is competitive —
        // Table 2 shows the baseline slightly ahead on detection models.
        vision_factor: 0.72,
        conv_factor: 0.73,
        dispatch_ms: 0.05,
    }
}

/// MXNet v1.4 backed by cuDNN v7.
pub fn cudnn_mxnet() -> Baseline {
    Baseline {
        name: "cuDNN",
        schedules: VendorSchedules::CuDnn,
        covers_detection: true,
        fuses: false, // MXNet-era executor: no cross-op fusion
        vision_factor: 1.6, // GPU NMS existed but was not tuned for Nano
        conv_factor: 0.68,
        dispatch_ms: 0.05,
    }
}

/// The baseline used on a given platform in the paper's tables.
pub fn baseline_for(platform: &Platform) -> Baseline {
    match platform.gpu.vendor {
        Vendor::Intel => openvino(),
        Vendor::Arm => acl(),
        Vendor::Nvidia => cudnn_mxnet(),
        Vendor::Generic => panic!("no vendor baseline for a CPU platform"),
    }
}

impl Baseline {
    /// Does this library run the model at all? (`is_detection` from the zoo.)
    pub fn supports(&self, is_detection: bool) -> bool {
        !is_detection || self.covers_detection
    }

    /// End-to-end latency of the model under this baseline, or `None` when
    /// unsupported (the "—" cells of Table 1).
    pub fn latency(&self, model: &Graph, platform: &Platform, is_detection: bool) -> Option<LatencyReport> {
        if !self.supports(is_detection) {
            return None;
        }
        let g = if self.fuses { optimize(model) } else { model.clone() };
        let placed = place(&g, PlacementPolicy::AllGpu);
        let opts = LatencyOptions { vision_optimized: true };
        let mut report = estimate_latency(&placed, platform, &self.schedules, &opts);
        // vendor post-processing quality, vendor kernel tricks outside our
        // template space, and framework dispatch overhead
        report.total_ms += report.vision_ms() * (self.vision_factor - 1.0);
        if !is_detection {
            report.total_ms += report.conv_ms() * (self.conv_factor - 1.0);
        }
        report.total_ms += self.dispatch_ms * g.op_count() as f64;
        Some(report)
    }
}

/// Our stack's end-to-end latency with a given schedule provider (the "Ours"
/// columns): graph optimization, all-GPU placement, optimized vision ops.
#[deprecated(
    since = "0.1.0",
    note = "use `unigpu_engine::Engine::compile` and `CompiledModel::estimate` — \
            this free function survives as a thin shim for out-of-tree callers"
)]
pub fn ours_latency(
    model: &Graph,
    platform: &Platform,
    provider: &dyn ScheduleProvider,
) -> LatencyReport {
    let g = optimize(model);
    let placed = place(&g, PlacementPolicy::AllGpu);
    estimate_latency(&placed, platform, provider, &LatencyOptions { vision_optimized: true })
}

/// Our stack with *fallback* (untuned) schedules — Table 5's "Before".
#[deprecated(
    since = "0.1.0",
    note = "use an untuned `unigpu_engine::Engine` (the default builder) and \
            `CompiledModel::estimate` — kept as a thin shim for out-of-tree callers"
)]
#[allow(deprecated)] // the shim is allowed to call its deprecated sibling
pub fn ours_untuned_latency(model: &Graph, platform: &Platform) -> LatencyReport {
    ours_latency(model, platform, &FallbackSchedules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigpu_models::{mobilenet, squeezenet};

    #[test]
    fn openvino_rejects_detection_models() {
        let b = openvino();
        assert!(b.supports(false));
        assert!(!b.supports(true));
        let g = mobilenet(1, 64, 10);
        assert!(b.latency(&g, &Platform::deeplens(), true).is_none());
        assert!(b.latency(&g, &Platform::deeplens(), false).is_some());
    }

    #[test]
    fn acl_and_cudnn_cover_everything() {
        assert!(acl().supports(true));
        assert!(cudnn_mxnet().supports(true));
    }

    #[test]
    fn baseline_for_matches_vendor() {
        assert_eq!(baseline_for(&Platform::deeplens()).name, "OpenVINO");
        assert_eq!(baseline_for(&Platform::aisage()).name, "ACL");
        assert_eq!(baseline_for(&Platform::jetson_nano()).name, "cuDNN");
    }

    #[test]
    fn cldnn_depthwise_beats_intel_restricted_space() {
        // the Table-1 MobileNet inversion: clDNN's mature depthwise kernel
        // uses SIMD-8 subgroups our Intel depthwise template forgoes (§4.2)
        use unigpu_device::CostModel;
        use unigpu_ops::conv::{conv_profile, ConfigSpace};
        let w = ConvWorkload::depthwise(1, 256, 28, 3, 1, 1);
        let spec = DeviceSpec::intel_hd505();
        let m = CostModel::new(spec.clone());
        let cldnn = VendorSchedules::ClDnn.conv_config(&w, &spec);
        let cldnn_ms = m.kernel_time_ms(&conv_profile(&w, &cldnn, &spec));
        // best config our restricted Intel depthwise space can express
        let space = ConfigSpace::build(&w, &spec);
        let ours_best = (0..space.len())
            .map(|i| m.kernel_time_ms(&conv_profile(&w, &space.get(i), &spec)))
            .fold(f64::INFINITY, f64::min);
        assert!(
            cldnn_ms < ours_best,
            "clDNN depthwise {cldnn_ms:.4} must beat our restricted best {ours_best:.4}"
        );
    }

    #[test]
    fn mxnet_overhead_counts_per_op() {
        let g = squeezenet(1, 64, 10);
        let b = cudnn_mxnet();
        let plat = Platform::jetson_nano();
        let with = b.latency(&g, &plat, false).unwrap().total_ms;
        let mut b0 = b.clone();
        b0.dispatch_ms = 0.0;
        let without = b0.latency(&g, &plat, false).unwrap().total_ms;
        assert!(with > without + 1.0, "per-op dispatch must be visible: {with} vs {without}");
    }

    #[test]
    #[allow(deprecated)] // exercising the legacy shim's contract
    fn ours_pipeline_runs_on_all_platforms() {
        let g = mobilenet(1, 64, 10);
        for plat in Platform::all() {
            let r = ours_untuned_latency(&g, &plat);
            assert!(r.total_ms > 0.0);
            assert_eq!(r.cpu_ms, 0.0, "classification runs fully on GPU");
        }
    }
}
