//! Post-training int8 quantization — the paper's §5 future-work direction
//! ("another way to enable and expedite the deep learning model inference at
//! the edge ... quantizes the model to reduce size ... trades off some model
//! inference accuracy").
//!
//! Implements the standard affine scheme: `real ≈ scale · (q − zero_point)`
//! with per-tensor calibration, an int8 convolution that accumulates in i32,
//! and the cost-model profile showing the 4× traffic reduction that makes
//! quantization attractive on bandwidth-starved integrated GPUs.

use crate::workload::ConvWorkload;
use unigpu_device::KernelProfile;
use unigpu_tensor::{Storage, Tensor};

/// Affine quantization parameters for one tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    pub scale: f32,
    pub zero_point: i32,
}

impl QuantParams {
    /// Calibrate symmetric-range parameters from data (max-abs calibration).
    pub fn calibrate(data: &[f32]) -> Self {
        let max_abs = data.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-8);
        QuantParams { scale: max_abs / 127.0, zero_point: 0 }
    }

    /// Calibrate asymmetric-range parameters (min/max calibration).
    pub fn calibrate_asymmetric(data: &[f32]) -> Self {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return QuantParams { scale: 1.0, zero_point: 0 };
        }
        let lo = lo.min(0.0);
        let hi = hi.max(0.0);
        let scale = (hi - lo) / 255.0;
        let zero_point = (-128.0 - lo / scale).round().clamp(-128.0, 127.0) as i32;
        QuantParams { scale, zero_point }
    }

    pub fn quantize_one(&self, v: f32) -> i8 {
        ((v / self.scale).round() as i32 + self.zero_point).clamp(-128, 127) as i8
    }

    pub fn dequantize_one(&self, q: i8) -> f32 {
        (q as i32 - self.zero_point) as f32 * self.scale
    }
}

/// Quantize an f32 tensor to int8 (stored in a `U8` buffer, two's complement).
pub fn quantize(t: &Tensor, p: &QuantParams) -> Tensor {
    let data: Vec<u8> = t.as_f32().iter().map(|&v| p.quantize_one(v) as u8).collect();
    Tensor::new(t.shape().clone(), Storage::U8(data))
}

/// Dequantize back to f32.
pub fn dequantize(t: &Tensor, p: &QuantParams) -> Tensor {
    let data: Vec<f32> = t
        .as_u8()
        .iter()
        .map(|&q| p.dequantize_one(q as i8))
        .collect();
    Tensor::from_vec(t.shape().clone(), data)
}

fn u8_at(t: &Tensor, i: usize) -> u8 {
    t.as_u8()[i]
}

/// Int8 convolution: i8 inputs/weights, i32 accumulation, f32 requantized
/// output — the standard integer inference kernel.
pub fn conv2d_int8(
    data_q: &Tensor,
    dp: &QuantParams,
    weight_q: &Tensor,
    wp: &QuantParams,
    w: &ConvWorkload,
) -> Tensor {
    assert_eq!(data_q.shape().dims(), w.input_shape());
    assert_eq!(weight_q.shape().dims(), w.weight_shape());
    assert_eq!(dp.zero_point, 0, "int8 conv assumes symmetric activation quant");
    assert_eq!(wp.zero_point, 0, "int8 conv assumes symmetric weight quant");
    let (oh, ow) = (w.out_h(), w.out_w());
    let (ih, iw) = (w.height, w.width);
    let icg = w.in_ch_per_group();
    let ocg = w.out_ch_per_group();
    let mut out = Tensor::zeros(w.output_shape());
    let o = out.as_f32_mut();
    let rescale = dp.scale * wp.scale;
    for n in 0..w.batch {
        for oc in 0..w.out_channels {
            let g = oc / ocg;
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut acc: i32 = 0;
                    for ic in 0..icg {
                        let c = g * icg + ic;
                        for kh in 0..w.kernel_h {
                            let hi = (ohi * w.stride_h + kh) as isize - w.pad_h as isize;
                            if hi < 0 || hi >= ih as isize {
                                continue;
                            }
                            for kw in 0..w.kernel_w {
                                let wi = (owi * w.stride_w + kw) as isize - w.pad_w as isize;
                                if wi < 0 || wi >= iw as isize {
                                    continue;
                                }
                                let x = u8_at(
                                    data_q,
                                    ((n * w.in_channels + c) * ih + hi as usize) * iw
                                        + wi as usize,
                                ) as i8 as i32;
                                let k = u8_at(
                                    weight_q,
                                    ((oc * icg + ic) * w.kernel_h + kh) * w.kernel_w + kw,
                                ) as i8 as i32;
                                acc += x * k;
                            }
                        }
                    }
                    o[((n * w.out_channels + oc) * oh + ohi) * ow + owi] =
                        acc as f32 * rescale;
                }
            }
        }
    }
    out
}

/// Cost profile of the int8 kernel: ¼ the DRAM traffic and (on devices with
/// dp4a-style instructions, which we model as doubled effective issue) up to
/// 2× the arithmetic throughput of the f32 kernel.
pub fn int8_conv_profile(w: &ConvWorkload) -> KernelProfile {
    let icg = w.in_ch_per_group() as f64;
    let red = icg * (w.kernel_h * w.kernel_w) as f64;
    KernelProfile::new(format!("conv2d_int8[{}]", w.key()), w.out_numel())
        .workgroup(64)
        .flops(2.0 * red / 2.0) // dp4a packs 4 MACs per lane-op; model as 2x
        .reads(red * 1.0 / 2.0) // 1 byte per element, halved by reuse
        .writes(1.0)
        .coalesce(0.9)
        .ilp(0.9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::reference::conv2d_ref;
    use unigpu_tensor::init::random_uniform;

    #[test]
    fn u8_round_trip_via_public_accessor() {
        let p = QuantParams { scale: 0.5, zero_point: 0 };
        let t = Tensor::from_vec([3], vec![1.0, -1.5, 0.0]);
        let q = quantize(&t, &p);
        assert_eq!(q.as_u8().len(), 3);
        assert_eq!(q.as_u8()[0] as i8, 2);
        assert_eq!(q.as_u8()[1] as i8, -3);
    }

    #[test]
    fn quantize_round_trip_error_is_bounded() {
        let t = random_uniform([1000], 71);
        let p = QuantParams::calibrate(t.as_f32());
        let q = quantize(&t, &p);
        let back = dequantize(&q, &p);
        for (a, b) in t.as_f32().iter().zip(back.as_f32()) {
            assert!((a - b).abs() <= p.scale / 2.0 + 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn symmetric_calibration_covers_max() {
        let p = QuantParams::calibrate(&[-3.0, 1.0, 2.54]);
        assert_eq!(p.zero_point, 0);
        assert!((p.scale - 3.0 / 127.0).abs() < 1e-7);
        assert_eq!(p.quantize_one(3.0), 127);
        assert_eq!(p.quantize_one(-3.0), -127);
    }

    #[test]
    fn asymmetric_calibration_handles_relu_ranges() {
        let p = QuantParams::calibrate_asymmetric(&[0.0, 0.5, 6.0]);
        // zero must be exactly representable
        let z = p.quantize_one(0.0);
        assert!((p.dequantize_one(z)).abs() < 1e-6);
    }

    #[test]
    fn int8_conv_tracks_f32_conv() {
        let w = ConvWorkload::square(1, 4, 6, 8, 3, 1, 1);
        let mut data = random_uniform(w.input_shape(), 73);
        data.map_inplace(|v| v - 0.5);
        let mut wt = random_uniform(w.weight_shape(), 74);
        wt.map_inplace(|v| (v - 0.5) * 0.2);

        let dp = QuantParams::calibrate(data.as_f32());
        let wp = QuantParams::calibrate(wt.as_f32());
        let f32_out = conv2d_ref(&data, &wt, &w);
        let q_out = conv2d_int8(&quantize(&data, &dp), &dp, &quantize(&wt, &wp), &wp, &w);

        // relative error bounded by the quantization noise of the operands
        let denom = f32_out
            .as_f32()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(1e-3);
        let max_rel = f32_out
            .as_f32()
            .iter()
            .zip(q_out.as_f32())
            .map(|(a, b)| (a - b).abs() / denom)
            .fold(0.0f32, f32::max);
        assert!(max_rel < 0.05, "int8 conv off by {max_rel}");
    }

    #[test]
    fn int8_profile_cuts_traffic_4x() {
        let w = ConvWorkload::square(1, 64, 64, 28, 3, 1, 1);
        let q = int8_conv_profile(&w);
        let f = crate::conv::conv_profile(
            &w,
            &crate::conv::ConvConfig::default_schedule(),
            &unigpu_device::DeviceSpec::mali_t860(),
        );
        assert!(q.total_bytes() < f.total_bytes(), "int8 must move fewer bytes");
    }
}
