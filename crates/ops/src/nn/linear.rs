//! Dense (fully connected) layers and bias addition.

use rayon::prelude::*;
use unigpu_tensor::Tensor;

/// `y[n, m] = Σ_k x[n, k] · w[m, k] (+ bias[m])` — weights stored row-major
/// per output (`MK`), the framework-default layout.
///
/// # Panics
/// Panics on shape mismatch.
pub fn dense(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> Tensor {
    let (n, k) = {
        let d = x.shape().dims();
        assert_eq!(d.len(), 2, "dense input must be rank-2, got {}", x.shape());
        (d[0], d[1])
    };
    let (m, k2) = {
        let d = w.shape().dims();
        assert_eq!(d.len(), 2, "dense weight must be rank-2");
        (d[0], d[1])
    };
    assert_eq!(k, k2, "dense reduction mismatch: {k} vs {k2}");
    if let Some(b) = bias {
        assert_eq!(b.numel(), m, "bias length {} != out features {m}", b.numel());
    }
    let xs = x.as_f32();
    let ws = w.as_f32();
    let mut out = Tensor::zeros([n, m]);
    out.as_f32_mut()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(ni, row)| {
            for (mi, slot) in row.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for ki in 0..k {
                    acc += xs[ni * k + ki] * ws[mi * k + ki];
                }
                if let Some(b) = bias {
                    acc += b.as_f32()[mi];
                }
                *slot = acc;
            }
        });
    out
}

/// Add a per-channel bias to an `NCHW` tensor.
pub fn bias_add(x: &Tensor, bias: &Tensor) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    assert_eq!(bias.numel(), c, "bias length {} != channels {c}", bias.numel());
    let mut out = x.clone();
    let b = bias.as_f32().to_vec();
    let plane = h * w;
    out.as_f32_mut()
        .par_chunks_mut(plane)
        .enumerate()
        .for_each(|(p, chunk)| {
            let ci = p % c;
            let _ = n;
            for v in chunk {
                *v += b[ci];
            }
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigpu_tensor::init::random_uniform;

    #[test]
    fn dense_matches_manual() {
        let x = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let w = Tensor::from_vec([2, 3], vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]);
        let y = dense(&x, &w, None);
        assert_eq!(y.shape().dims(), &[2, 2]);
        assert_eq!(y.at(&[0, 0]), 1.0 - 3.0);
        assert_eq!(y.at(&[0, 1]), 0.5 * 6.0);
        assert_eq!(y.at(&[1, 0]), 4.0 - 6.0);
    }

    #[test]
    fn dense_bias_applies_per_output() {
        let x = Tensor::from_vec([1, 2], vec![1.0, 1.0]);
        let w = Tensor::from_vec([3, 2], vec![0.0; 6]);
        let b = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let y = dense(&x, &w, Some(&b));
        assert_eq!(y.as_f32(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "reduction mismatch")]
    fn dense_shape_mismatch_panics() {
        let x = random_uniform([1, 3], 1);
        let w = random_uniform([2, 4], 2);
        dense(&x, &w, None);
    }

    #[test]
    fn bias_add_per_channel() {
        let x = Tensor::zeros([1, 2, 2, 2]);
        let b = Tensor::from_vec([2], vec![1.0, -1.0]);
        let y = bias_add(&x, &b);
        assert_eq!(y.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(y.at(&[0, 1, 0, 0]), -1.0);
    }

    #[test]
    fn bias_add_multibatch() {
        let x = Tensor::zeros([2, 3, 1, 1]);
        let b = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let y = bias_add(&x, &b);
        assert_eq!(y.at(&[1, 2, 0, 0]), 3.0);
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.0);
    }
}
