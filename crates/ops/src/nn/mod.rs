//! Dense network operators: linear algebra, pooling, normalization,
//! activations and tensor plumbing.
//!
//! These are the non-convolution operators CNN models are assembled from.
//! Each is a plain tensor function; the matching cost-model profiles live in
//! [`profiles`].

pub mod eltwise;
pub mod gemm;
pub mod linear;
pub mod norm;
pub mod pool;
pub mod profiles;

pub use eltwise::{add, concat_channels, flatten, leaky_relu, relu, sigmoid, upsample_nearest};
pub use gemm::{gemm_ref, gemm_tiled, GemmConfig};
pub use linear::{bias_add, dense};
pub use norm::{batch_norm, fold_batch_norm, softmax};
pub use pool::{avg_pool2d, global_avg_pool, max_pool2d};
pub use profiles::{eltwise_profile, pool_profile, reduction_profile};
