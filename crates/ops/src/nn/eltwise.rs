//! Elementwise operators and tensor plumbing (concat, upsample, flatten).

use unigpu_tensor::{Shape, Tensor};

/// Rectified linear unit.
pub fn relu(x: &Tensor) -> Tensor {
    let mut y = x.clone();
    y.map_inplace(|v| v.max(0.0));
    y
}

/// Leaky ReLU (`alpha·x` for `x < 0`) — used by YOLOv3's Darknet backbone.
pub fn leaky_relu(x: &Tensor, alpha: f32) -> Tensor {
    let mut y = x.clone();
    y.map_inplace(|v| if v >= 0.0 { v } else { alpha * v });
    y
}

/// Logistic sigmoid.
pub fn sigmoid(x: &Tensor) -> Tensor {
    let mut y = x.clone();
    y.map_inplace(|v| 1.0 / (1.0 + (-v).exp()));
    y
}

/// Elementwise sum of two same-shape tensors (residual connections).
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "elementwise add shape mismatch");
    let mut y = a.clone();
    for (o, v) in y.as_f32_mut().iter_mut().zip(b.as_f32()) {
        *o += v;
    }
    y
}

/// Concatenate `NCHW` tensors along the channel axis (Fire modules, SSD and
/// YOLO heads, DenseNet-style junctions).
pub fn concat_channels(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat of zero tensors");
    let (n, _, h, w) = parts[0].shape().nchw();
    let mut c_total = 0;
    for p in parts {
        let (pn, pc, ph, pw) = p.shape().nchw();
        assert_eq!((pn, ph, pw), (n, h, w), "concat non-channel dims must match");
        c_total += pc;
    }
    let mut out = Tensor::zeros(Shape::from([n, c_total, h, w]));
    let plane = h * w;
    let o = out.as_f32_mut();
    for ni in 0..n {
        let mut c_off = 0;
        for p in parts {
            let pc = p.shape().dim(1);
            let src = p.as_f32();
            let src_base = ni * pc * plane;
            let dst_base = (ni * c_total + c_off) * plane;
            o[dst_base..dst_base + pc * plane]
                .copy_from_slice(&src[src_base..src_base + pc * plane]);
            c_off += pc;
        }
    }
    out
}

/// Nearest-neighbour spatial upsampling by an integer factor (YOLOv3 feature
/// pyramid).
pub fn upsample_nearest(x: &Tensor, scale: usize) -> Tensor {
    assert!(scale >= 1);
    let (n, c, h, w) = x.shape().nchw();
    let (oh, ow) = (h * scale, w * scale);
    let xs = x.as_f32();
    let mut out = Tensor::zeros([n, c, oh, ow]);
    let o = out.as_f32_mut();
    for p in 0..n * c {
        for ohi in 0..oh {
            let hi = ohi / scale;
            for owi in 0..ow {
                o[(p * oh + ohi) * ow + owi] = xs[(p * h + hi) * w + owi / scale];
            }
        }
    }
    out
}

/// Flatten `NCHW → N×(CHW)` for the classifier head.
pub fn flatten(x: &Tensor) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    x.clone().reshape([n, c * h * w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec([4], vec![-1.0, 0.0, 2.0, -0.5]);
        assert_eq!(relu(&x).as_f32(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let x = Tensor::from_vec([3], vec![-10.0, 0.0, 5.0]);
        assert_eq!(leaky_relu(&x, 0.1).as_f32(), &[-1.0, 0.0, 5.0]);
    }

    #[test]
    fn sigmoid_midpoint() {
        let x = Tensor::from_vec([1], vec![0.0]);
        assert_eq!(sigmoid(&x).as_f32(), &[0.5]);
    }

    #[test]
    fn add_elementwise() {
        let a = Tensor::from_vec([2], vec![1.0, 2.0]);
        let b = Tensor::from_vec([2], vec![10.0, 20.0]);
        assert_eq!(add(&a, &b).as_f32(), &[11.0, 22.0]);
    }

    #[test]
    fn concat_stacks_channels_in_order() {
        let a = Tensor::full([1, 1, 2, 2], 1.0);
        let b = Tensor::full([1, 2, 2, 2], 2.0);
        let y = concat_channels(&[&a, &b]);
        assert_eq!(y.shape().dims(), &[1, 3, 2, 2]);
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.at(&[0, 1, 1, 1]), 2.0);
        assert_eq!(y.at(&[0, 2, 0, 1]), 2.0);
    }

    #[test]
    fn concat_multibatch_keeps_batches_separate() {
        let a = Tensor::from_vec([2, 1, 1, 1], vec![1.0, 2.0]);
        let b = Tensor::from_vec([2, 1, 1, 1], vec![3.0, 4.0]);
        let y = concat_channels(&[&a, &b]);
        assert_eq!(y.as_f32(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn upsample_replicates_pixels() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = upsample_nearest(&x, 2);
        assert_eq!(y.shape().dims(), &[1, 1, 4, 4]);
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.at(&[0, 0, 0, 1]), 1.0);
        assert_eq!(y.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(y.at(&[0, 0, 3, 3]), 4.0);
        assert_eq!(y.at(&[0, 0, 2, 1]), 3.0);
    }

    #[test]
    fn flatten_reshapes() {
        let x = Tensor::zeros([2, 3, 4, 5]);
        assert_eq!(flatten(&x).shape().dims(), &[2, 60]);
    }
}
