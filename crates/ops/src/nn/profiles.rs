//! Cost-model profiles for the non-convolution dense operators.
//!
//! These operators are bandwidth-bound streaming kernels; their profiles are
//! correspondingly simple. What matters for the end-to-end numbers is that
//! (a) they are cheap relative to convolution and (b) each still pays one
//! kernel-launch overhead, which is why operator *fusion* (§3.2.3) buys real
//! latency on devices with expensive launches (Mali: 60 µs per launch).

use unigpu_device::KernelProfile;

/// Streaming elementwise kernel over `numel` f32 values (`flops_per_elem`
/// useful ops each, e.g. 1 for ReLU/add, ~4 for sigmoid/BN).
pub fn eltwise_profile(name: &str, numel: usize, flops_per_elem: f64) -> KernelProfile {
    KernelProfile::new(format!("eltwise[{name}]"), numel)
        .workgroup(64)
        .flops(flops_per_elem)
        .reads(4.0)
        .writes(4.0)
        .coalesce(0.9)
}

/// Window-reduction kernel (pooling): each output reads `window` inputs.
pub fn pool_profile(name: &str, out_numel: usize, window: usize) -> KernelProfile {
    KernelProfile::new(format!("pool[{name}]"), out_numel)
        .workgroup(64)
        .flops(window as f64)
        .reads(4.0 * window as f64 / 2.0) // halved: windows overlap in cache
        .writes(4.0)
        .coalesce(0.8)
}

/// Full reduction (global pooling, softmax denominator): `in_per_out` inputs
/// per output with a log-depth combine tree.
pub fn reduction_profile(name: &str, out_numel: usize, in_per_out: usize) -> KernelProfile {
    KernelProfile::new(format!("reduce[{name}]"), out_numel.max(1))
        .workgroup(64)
        .flops(in_per_out as f64)
        .reads(4.0 * in_per_out as f64)
        .writes(4.0)
        .coalesce(0.85)
        .with_barriers((in_per_out as f64).log2().ceil() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigpu_device::{CostModel, DeviceSpec};

    #[test]
    fn eltwise_is_bandwidth_bound() {
        let p = eltwise_profile("relu", 1 << 20, 1.0);
        assert!(p.arithmetic_intensity() < 1.0);
    }

    #[test]
    fn pooling_cheaper_than_equivalent_conv_flops() {
        let m = CostModel::new(DeviceSpec::maxwell_nano());
        let pool = m.kernel_time_ms(&pool_profile("max3x3", 64 * 56 * 56, 9));
        assert!(pool < 5.0, "pooling should be sub-5ms: {pool}");
    }

    #[test]
    fn reduction_pays_barriers() {
        let m = CostModel::new(DeviceSpec::mali_t860());
        let r = m.kernel_time_ms(&reduction_profile("gap", 2048, 49));
        let e = m.kernel_time_ms(&eltwise_profile("copy", 2048, 1.0));
        assert!(r > e);
    }
}
