//! Tiled GEMM — the kernel under `dense` layers, the im2col convolution
//! path, and every vendor library's workhorse. Schedule-parameterized like
//! the convolution template: tile sizes move cost, never results.

use unigpu_device::KernelProfile;
use unigpu_tensor::Tensor;

/// GEMM blocking parameters (the register/cache tile shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmConfig {
    /// Rows of `C` per tile.
    pub tile_m: usize,
    /// Columns of `C` per tile.
    pub tile_n: usize,
    /// Reduction block.
    pub tile_k: usize,
}

impl Default for GemmConfig {
    fn default() -> Self {
        GemmConfig { tile_m: 4, tile_n: 8, tile_k: 32 }
    }
}

/// `C[m,n] = Σ_k A[m,k]·B[k,n]` — reference row-major GEMM.
pub fn gemm_ref(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = {
        let d = a.shape().dims();
        assert_eq!(d.len(), 2);
        (d[0], d[1])
    };
    let (k2, n) = {
        let d = b.shape().dims();
        assert_eq!(d.len(), 2);
        (d[0], d[1])
    };
    assert_eq!(k, k2, "GEMM inner dimensions disagree: {k} vs {k2}");
    let (av, bv) = (a.as_f32(), b.as_f32());
    let mut c = Tensor::zeros([m, n]);
    let cv = c.as_f32_mut();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += av[i * k + kk] * bv[kk * n + j];
            }
            cv[i * n + j] = acc;
        }
    }
    c
}

/// Blocked GEMM under a [`GemmConfig`]. The per-output reduction order is
/// identical to [`gemm_ref`] (k ascending), so results are bit-identical for
/// any configuration — the same invariant the conv template upholds.
pub fn gemm_tiled(a: &Tensor, b: &Tensor, cfg: &GemmConfig) -> Tensor {
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let n = b.shape().dim(1);
    assert_eq!(k, b.shape().dim(0));
    assert!(cfg.tile_m > 0 && cfg.tile_n > 0 && cfg.tile_k > 0);
    let (av, bv) = (a.as_f32(), b.as_f32());
    let mut c = Tensor::zeros([m, n]);
    let cv = c.as_f32_mut();
    for i0 in (0..m).step_by(cfg.tile_m) {
        for j0 in (0..n).step_by(cfg.tile_n) {
            let i1 = (i0 + cfg.tile_m).min(m);
            let j1 = (j0 + cfg.tile_n).min(n);
            // accumulate k-blocks in ascending order: bit-stable vs reference
            for k0 in (0..k).step_by(cfg.tile_k) {
                let k1 = (k0 + cfg.tile_k).min(k);
                for i in i0..i1 {
                    for j in j0..j1 {
                        let mut acc = cv[i * n + j];
                        for kk in k0..k1 {
                            acc += av[i * k + kk] * bv[kk * n + j];
                        }
                        cv[i * n + j] = acc;
                    }
                }
            }
        }
    }
    c
}

/// Cost profile of a tiled GEMM launch: each work-item owns one `tile_m ×
/// tile_n` block of `C`, streaming `A`/`B` panels with tile-driven reuse.
pub fn gemm_profile(m: usize, n: usize, k: usize, cfg: &GemmConfig) -> KernelProfile {
    let items = m.div_ceil(cfg.tile_m) * n.div_ceil(cfg.tile_n);
    let tile = (cfg.tile_m * cfg.tile_n) as f64;
    let flops = 2.0 * k as f64 * tile;
    // panel traffic per item, amortized by the opposite tile dimension
    let bytes = 4.0 * k as f64 * (cfg.tile_m as f64 + cfg.tile_n as f64);
    KernelProfile::new(format!("gemm_{m}x{n}x{k}"), items.max(1))
        .workgroup(64)
        .flops(flops)
        .reads(bytes)
        .writes(tile * 4.0)
        .coalesce(0.9)
        .ilp(0.9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigpu_tensor::init::random_uniform;

    #[test]
    fn tiled_matches_reference_bitwise() {
        let a = random_uniform([7, 13], 91);
        let b = random_uniform([13, 9], 92);
        let want = gemm_ref(&a, &b);
        for cfg in [
            GemmConfig::default(),
            GemmConfig { tile_m: 1, tile_n: 1, tile_k: 1 },
            GemmConfig { tile_m: 3, tile_n: 5, tile_k: 4 },
            GemmConfig { tile_m: 16, tile_n: 16, tile_k: 64 },
        ] {
            assert_eq!(gemm_tiled(&a, &b, &cfg), want, "{cfg:?}");
        }
    }

    #[test]
    fn identity_matrix_is_neutral() {
        let n = 6;
        let mut eye = Tensor::zeros([n, n]);
        for i in 0..n {
            eye.set(&[i, i], 1.0);
        }
        let x = random_uniform([n, n], 93);
        assert_eq!(gemm_tiled(&x, &eye, &GemmConfig::default()), x);
    }

    #[test]
    fn agrees_with_dense_layer() {
        // dense(x, w) == gemm(x, wᵀ)
        let x = random_uniform([3, 8], 94);
        let w = random_uniform([5, 8], 95);
        let dense = crate::nn::dense(&x, &w, None);
        // build wᵀ
        let mut wt = Tensor::zeros([8, 5]);
        for i in 0..5 {
            for j in 0..8 {
                wt.set(&[j, i], w.at(&[i, j]));
            }
        }
        let g = gemm_ref(&x, &wt);
        assert!(unigpu_tensor::allclose(&g, &dense, 1e-5, 1e-6));
    }

    #[test]
    fn bigger_tiles_raise_arithmetic_intensity() {
        let small = gemm_profile(256, 256, 256, &GemmConfig { tile_m: 1, tile_n: 1, tile_k: 8 });
        let big = gemm_profile(256, 256, 256, &GemmConfig { tile_m: 8, tile_n: 8, tile_k: 32 });
        assert!(big.arithmetic_intensity() > 3.0 * small.arithmetic_intensity());
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn shape_mismatch_panics() {
        gemm_ref(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
