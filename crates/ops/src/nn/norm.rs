//! Batch normalization (inference form), BN folding, and softmax.

use unigpu_tensor::Tensor;

/// Inference batch norm over `NCHW`:
/// `y = gamma · (x - mean) / sqrt(var + eps) + beta`.
pub fn batch_norm(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    eps: f32,
) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    for t in [gamma, beta, mean, var] {
        assert_eq!(t.numel(), c, "BN parameter length mismatch");
    }
    let (g, b, m, v) = (gamma.as_f32(), beta.as_f32(), mean.as_f32(), var.as_f32());
    let scale: Vec<f32> = (0..c).map(|i| g[i] / (v[i] + eps).sqrt()).collect();
    let shift: Vec<f32> = (0..c).map(|i| b[i] - m[i] * scale[i]).collect();
    let mut out = x.clone();
    let plane = h * w;
    let o = out.as_f32_mut();
    for p in 0..n * c {
        let ci = p % c;
        for q in &mut o[p * plane..(p + 1) * plane] {
            *q = *q * scale[ci] + shift[ci];
        }
    }
    out
}

/// Fold an inference batch norm into the preceding convolution's weights and
/// bias — the "simplifying inference for batch-norm" graph optimization
/// (§3.2.3). Returns `(weight', bias')` such that
/// `conv(x, weight') + bias' == bn(conv(x, weight) + bias)` exactly in real
/// arithmetic (and to f32 rounding in practice).
pub fn fold_batch_norm(
    weight: &Tensor, // OIHW
    bias: Option<&Tensor>,
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    eps: f32,
) -> (Tensor, Tensor) {
    let dims = weight.shape().dims();
    assert_eq!(dims.len(), 4, "expected OIHW weights");
    let oc = dims[0];
    let per_oc = dims[1] * dims[2] * dims[3];
    let (g, m, v) = (gamma.as_f32(), mean.as_f32(), var.as_f32());
    let mut w2 = weight.clone();
    let mut b2 = Tensor::zeros([oc]);
    {
        let ws = w2.as_f32_mut();
        for o in 0..oc {
            let scale = g[o] / (v[o] + eps).sqrt();
            for x in &mut ws[o * per_oc..(o + 1) * per_oc] {
                *x *= scale;
            }
            let b0 = bias.map_or(0.0, |t| t.as_f32()[o]);
            b2.as_f32_mut()[o] = (b0 - m[o]) * scale + beta.as_f32()[o];
        }
    }
    (w2, b2)
}

/// Numerically stable softmax along the last dimension.
pub fn softmax(x: &Tensor) -> Tensor {
    let dims = x.shape().dims().to_vec();
    let last = *dims.last().expect("softmax needs rank >= 1");
    let mut out = x.clone();
    let o = out.as_f32_mut();
    for row in o.chunks_mut(last) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::reference::conv2d_ref;
    use crate::nn::linear::bias_add;
    use crate::workload::ConvWorkload;
    use unigpu_tensor::init::random_uniform;
    use unigpu_tensor::{allclose, Tensor};

    #[test]
    fn bn_normalizes_channel() {
        let x = Tensor::from_vec([1, 1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = batch_norm(
            &x,
            &Tensor::full([1], 1.0),
            &Tensor::zeros([1]),
            &Tensor::full([1], 2.5),
            &Tensor::full([1], 1.25),
            0.0,
        );
        // (x - 2.5)/sqrt(1.25): symmetric around 0
        let v = y.as_f32();
        assert!((v[0] + v[3]).abs() < 1e-6);
        assert!((v[1] + v[2]).abs() < 1e-6);
    }

    #[test]
    fn bn_fold_equals_conv_then_bn() {
        let w = ConvWorkload::square(1, 3, 8, 6, 3, 1, 1);
        let data = random_uniform(w.input_shape(), 41);
        let wt = random_uniform(w.weight_shape(), 42);
        let gamma = random_uniform([8], 43);
        let beta = random_uniform([8], 44);
        let mean = random_uniform([8], 45);
        let var = {
            let mut v = random_uniform([8], 46);
            v.map_inplace(|x| x + 0.5); // keep variance positive
            v
        };
        let eps = 1e-5;

        let unfused = batch_norm(&conv2d_ref(&data, &wt, &w), &gamma, &beta, &mean, &var, eps);
        let (wf, bf) = fold_batch_norm(&wt, None, &gamma, &beta, &mean, &var, eps);
        let fused = bias_add(&conv2d_ref(&data, &wf, &w), &bf);
        assert!(
            allclose(&fused, &unfused, 1e-4, 1e-5),
            "BN folding must preserve results"
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = random_uniform([3, 7], 47);
        let y = softmax(&x);
        for r in 0..3 {
            let s: f32 = (0..7).map(|c| y.at(&[r, c])).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = Tensor::from_vec([1, 3], vec![1000.0, 1001.0, 999.0]);
        let y = softmax(&x);
        assert!(y.as_f32().iter().all(|v| v.is_finite()));
        assert!(y.at(&[0, 1]) > y.at(&[0, 0]));
    }

    #[test]
    fn softmax_preserves_order() {
        let x = Tensor::from_vec([1, 4], vec![0.1, 3.0, -2.0, 1.0]);
        let y = softmax(&x);
        let v = y.as_f32();
        assert!(v[1] > v[3] && v[3] > v[0] && v[0] > v[2]);
    }
}
