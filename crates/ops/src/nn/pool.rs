//! Spatial pooling operators.

use unigpu_tensor::Tensor;

fn pool2d(
    x: &Tensor,
    kernel: usize,
    stride: usize,
    pad: usize,
    init: f32,
    step: impl Fn(f32, f32) -> f32,
    finish: impl Fn(f32, usize) -> f32,
) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let oh = (h + 2 * pad - kernel) / stride + 1;
    let ow = (w + 2 * pad - kernel) / stride + 1;
    let xs = x.as_f32();
    let mut out = Tensor::zeros([n, c, oh, ow]);
    let o = out.as_f32_mut();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut acc = init;
                    let mut count = 0usize;
                    for kh in 0..kernel {
                        let hi = (ohi * stride + kh) as isize - pad as isize;
                        if hi < 0 || hi >= h as isize {
                            continue;
                        }
                        for kw in 0..kernel {
                            let wi = (owi * stride + kw) as isize - pad as isize;
                            if wi < 0 || wi >= w as isize {
                                continue;
                            }
                            acc = step(acc, xs[base + hi as usize * w + wi as usize]);
                            count += 1;
                        }
                    }
                    o[((ni * c + ci) * oh + ohi) * ow + owi] = finish(acc, count);
                }
            }
        }
    }
    out
}

/// Max pooling with zero-excluded padding (padding never wins the max; the
/// window simply shrinks at borders, matching MXNet/GluonCV semantics).
pub fn max_pool2d(x: &Tensor, kernel: usize, stride: usize, pad: usize) -> Tensor {
    pool2d(x, kernel, stride, pad, f32::NEG_INFINITY, f32::max, |acc, count| {
        if count == 0 {
            0.0
        } else {
            acc
        }
    })
}

/// Average pooling, excluding padding from the divisor.
pub fn avg_pool2d(x: &Tensor, kernel: usize, stride: usize, pad: usize) -> Tensor {
    pool2d(x, kernel, stride, pad, 0.0, |a, v| a + v, |acc, count| {
        if count == 0 {
            0.0
        } else {
            acc / count as f32
        }
    })
}

/// Global average pooling: `NCHW → NC11`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let xs = x.as_f32();
    let mut out = Tensor::zeros([n, c, 1, 1]);
    let o = out.as_f32_mut();
    let plane = h * w;
    for i in 0..n * c {
        let sum: f32 = xs[i * plane..(i + 1) * plane].iter().sum();
        o[i] = sum / plane as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2x2(vals: [f32; 16]) -> Tensor {
        Tensor::from_vec([1, 1, 4, 4], vals.to_vec())
    }

    #[test]
    fn max_pool_2x2_stride2() {
        let x = t2x2([
            1.0, 2.0, 3.0, 4.0, //
            5.0, 6.0, 7.0, 8.0, //
            9.0, 10.0, 11.0, 12.0, //
            13.0, 14.0, 15.0, 16.0,
        ]);
        let y = max_pool2d(&x, 2, 2, 0);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_f32(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn avg_pool_excludes_padding_from_divisor() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![4.0, 4.0, 4.0, 4.0]);
        // 3x3 window with pad 1 at corner covers 4 real cells → avg must be 4.
        let y = avg_pool2d(&x, 3, 1, 1);
        assert_eq!(y.at(&[0, 0, 0, 0]), 4.0);
    }

    #[test]
    fn max_pool_padding_never_wins() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![-5.0, -6.0, -7.0, -8.0]);
        let y = max_pool2d(&x, 3, 1, 1);
        // all values negative; zero-padding must not leak a 0 into the max
        assert_eq!(y.at(&[0, 0, 0, 0]), -5.0);
    }

    #[test]
    fn resnet_style_3x3_stride2_pad1() {
        let x = t2x2([
            1.0, 2.0, 3.0, 4.0, //
            5.0, 6.0, 7.0, 8.0, //
            9.0, 10.0, 11.0, 12.0, //
            13.0, 14.0, 15.0, 16.0,
        ]);
        let y = max_pool2d(&x, 3, 2, 1);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_f32(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn global_avg_pool_means() {
        let x = Tensor::from_vec([1, 2, 2, 2], vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0]);
        let y = global_avg_pool(&x);
        assert_eq!(y.shape().dims(), &[1, 2, 1, 1]);
        assert_eq!(y.as_f32(), &[2.5, 10.0]);
    }
}
