//! Vision-specific kernels expressed in the *unified IR* — §3.1.1's claim
//! made concrete: "our approach only requires around 100 lines of TVM IR
//! code (vs 325 lines of CUDA in the original implementation) to generate
//! efficient code for both CUDA and OpenCL supported platforms."
//!
//! Two representative kernels are declared as IR computes, lowered, and
//! interpreted: the pairwise IoU matrix at the heart of NMS, and the SSD box
//! decode. Tests check them against the native implementations and count
//! the IR-declaration size versus both generated sources.

use unigpu_ir::compute::row_major_index;
use unigpu_ir::{Axis, Compute, Expr};

/// Declare the `n×n` pairwise-IoU matrix over corner-form boxes
/// (`boxes[n*4]` flat) as a unified-IR compute.
///
/// `iou[i,j] = inter(i,j) / (area_i + area_j − inter(i,j))`, with the usual
/// clamped-overlap intersection. Every load/select runs under lockstep SIMT
/// without branches — the divergence-free style of §3.1.1.
pub fn iou_matrix_compute(n: usize) -> Compute {
    let coord = |who: &str, k: i64| Expr::load("boxes", Expr::var(who) * Expr::Int(4) + Expr::Int(k));
    let (ix1, iy1, ix2, iy2) = (coord("i", 0), coord("i", 1), coord("i", 2), coord("i", 3));
    let (jx1, jy1, jx2, jy2) = (coord("j", 0), coord("j", 1), coord("j", 2), coord("j", 3));

    let zero = || Expr::Float(0.0);
    let iw = Expr::max(
        Expr::min(ix2.clone(), jx2.clone()) - Expr::max(ix1.clone(), jx1.clone()),
        zero(),
    );
    let ih = Expr::max(
        Expr::min(iy2.clone(), jy2.clone()) - Expr::max(iy1.clone(), jy1.clone()),
        zero(),
    );
    let inter = iw * ih;
    let area = |x1: Expr, y1: Expr, x2: Expr, y2: Expr| {
        Expr::max(x2 - x1, zero()) * Expr::max(y2 - y1, zero())
    };
    let union = area(ix1, iy1, ix2, iy2) + area(jx1, jy1, jx2, jy2) - inter.clone();
    // guard union <= 0 with a select instead of a branch
    let value = Expr::select(
        Expr::bin(unigpu_ir::BinOp::Gt, union.clone(), zero()),
        Expr::bin(unigpu_ir::BinOp::Div, inter, union),
        zero(),
    );
    Compute::spatial(
        "iou",
        vec![Axis::new("i", n), Axis::new("j", n)],
        value,
        Expr::var("i") * Expr::from(n) + Expr::var("j"),
    )
}

/// Declare the SSD center-form box decode (`MultiboxDetection`'s arithmetic
/// half) as a unified-IR compute over `anchors[n*4]` and `deltas[n*4]`.
///
/// Output rows are corner-form `(x1, y1, x2, y2)`; variances `(vc, vs)`.
pub fn box_decode_compute(n: usize, vc: f64, vs: f64) -> Compute {
    let a = |k: i64| Expr::load("anchors", Expr::var("i") * Expr::Int(4) + Expr::Int(k));
    let d = |k: i64| Expr::load("deltas", Expr::var("i") * Expr::Int(4) + Expr::Int(k));
    let aw = a(2) - a(0);
    let ah = a(3) - a(1);
    let acx = a(0) + aw.clone() * Expr::Float(0.5);
    let acy = a(1) + ah.clone() * Expr::Float(0.5);
    let cx = acx + d(0) * Expr::Float(vc) * aw.clone();
    let cy = acy + d(1) * Expr::Float(vc) * ah.clone();
    let bw = aw * Expr::call("exp", vec![d(2) * Expr::Float(vs)]);
    let bh = ah * Expr::call("exp", vec![d(3) * Expr::Float(vs)]);
    // k selects the output coordinate branch-free:
    //   k=0: cx-bw/2, k=1: cy-bh/2, k=2: cx+bw/2, k=3: cy+bh/2
    let k = Expr::var("k");
    let half = Expr::Float(0.5);
    let x_or_y = Expr::select(
        Expr::bin(unigpu_ir::BinOp::Eq, Expr::bin(unigpu_ir::BinOp::Mod, k.clone(), Expr::Int(2)), Expr::Int(0)),
        cx.clone(),
        cy.clone(),
    );
    let extent_half = Expr::select(
        Expr::bin(unigpu_ir::BinOp::Eq, Expr::bin(unigpu_ir::BinOp::Mod, k.clone(), Expr::Int(2)), Expr::Int(0)),
        bw * half.clone(),
        bh * half,
    );
    let signed = Expr::select(
        Expr::lt(k, Expr::Int(2)),
        x_or_y.clone() - extent_half.clone(),
        x_or_y + extent_half,
    );
    Compute::spatial(
        "out",
        vec![Axis::new("i", n), Axis::new("k", 4)],
        signed,
        row_major_index(&[(Expr::var("i"), 0), (Expr::var("k"), 4)]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vision::nms::iou;
    use unigpu_ir::codegen::{generate, line_count, Target};
    use unigpu_ir::eval::Machine;
    use unigpu_ir::{lower, LoopTag, Schedule};

    fn boxes4() -> Vec<f64> {
        vec![
            0.0, 0.0, 2.0, 2.0, //
            1.0, 0.0, 3.0, 2.0, //
            5.0, 5.0, 6.0, 6.0, //
            0.0, 0.0, 2.0, 2.0,
        ]
    }

    #[test]
    fn ir_iou_matches_native() {
        let n = 4;
        let c = iou_matrix_compute(n);
        let stmt = lower(&c, &Schedule::default_for(&c));
        let mut m = Machine::new()
            .with_buffer("boxes", boxes4())
            .with_buffer("iou", vec![0.0; n * n]);
        m.run(&stmt);
        let got = m.buffer("iou");
        let b = boxes4();
        for i in 0..n {
            for j in 0..n {
                let want = iou(
                    [b[i * 4] as f32, b[i * 4 + 1] as f32, b[i * 4 + 2] as f32, b[i * 4 + 3] as f32],
                    [b[j * 4] as f32, b[j * 4 + 1] as f32, b[j * 4 + 2] as f32, b[j * 4 + 3] as f32],
                );
                assert!(
                    (got[i * n + j] - want as f64).abs() < 1e-6,
                    "iou[{i},{j}] = {} vs {want}",
                    got[i * n + j]
                );
            }
        }
        // diagonal is exactly 1, disjoint pairs exactly 0
        assert_eq!(got[0], 1.0);
        assert_eq!(got[2], 0.0);
        assert_eq!(got[3], 1.0, "identical boxes 0 and 3");
    }

    #[test]
    fn ir_box_decode_matches_native_multibox_math() {
        let n = 2;
        let c = box_decode_compute(n, 0.1, 0.2);
        let stmt = lower(&c, &Schedule::default_for(&c));
        let anchors = vec![0.2, 0.2, 0.6, 0.6, 0.0, 0.0, 0.4, 0.4];
        let deltas = vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, (2.0f64).ln() / 0.2, 0.0];
        let mut m = Machine::new()
            .with_buffer("anchors", anchors)
            .with_buffer("deltas", deltas)
            .with_buffer("out", vec![0.0; n * 4]);
        m.run(&stmt);
        let out = m.buffer("out");
        // anchor 0, zero deltas: decode == anchor
        assert!((out[0] - 0.2).abs() < 1e-9 && (out[3] - 0.6).abs() < 1e-9);
        // anchor 1: width doubles, cx shifts by 0.1*0.4
        let w = out[6] - out[4];
        assert!((w - 0.8).abs() < 1e-9, "w = {w}");
        let cx = (out[4] + out[6]) / 2.0;
        assert!((cx - 0.24).abs() < 1e-9, "cx = {cx}");
    }

    #[test]
    fn one_ir_declaration_serves_both_targets_and_is_small() {
        let n = 1024;
        let c = iou_matrix_compute(n);
        let mut s = Schedule::default_for(&c);
        s.split_bind("i", 64, 0).unwrap();
        s.split("j", 4).unwrap();
        s.vectorize("j.i").unwrap();
        let stmt = lower(&c, &s);
        let ocl = generate("iou_matrix", &stmt, Target::OpenCl);
        let cu = generate("iou_matrix", &stmt, Target::Cuda);
        assert!(ocl.contains("__kernel") && ocl.contains("fmax"));
        assert!(cu.contains("__global__") && cu.contains("threadIdx.x"));
        // §3.1.1 conciseness: the IR tree is one declaration serving both
        // targets; each generated kernel alone is nontrivial source.
        assert!(line_count(&ocl) >= 10 && line_count(&cu) >= 10);
    }

    #[test]
    fn scheduled_iou_equals_default_schedule() {
        let n = 7; // imperfect splits
        let c = iou_matrix_compute(n);
        let base = {
            let stmt = lower(&c, &Schedule::default_for(&c));
            let mut m = Machine::new()
                .with_buffer("boxes", (0..n * 4).map(|x| (x % 9) as f64).collect::<Vec<_>>())
                .with_buffer("iou", vec![0.0; n * n]);
            m.run(&stmt);
            m.buffer("iou").to_vec()
        };
        let mut s = Schedule::default_for(&c);
        s.split("i", 4).unwrap();
        s.bind("i.i", LoopTag::ThreadIdx(0)).unwrap();
        s.split("j", 3).unwrap();
        s.unroll("j.i").unwrap();
        let stmt = lower(&c, &s);
        let mut m = Machine::new()
            .with_buffer("boxes", (0..n * 4).map(|x| (x % 9) as f64).collect::<Vec<_>>())
            .with_buffer("iou", vec![0.0; n * n]);
        m.run(&stmt);
        assert_eq!(m.buffer("iou"), &base[..]);
    }
}
