//! `get_valid_counts` and `topk` — the remaining MXNet detection-pipeline
//! operators around NMS (§3.1.1's "other vision-specific operators").
//!
//! `get_valid_counts` compacts candidate boxes above a score threshold to the
//! front of the tensor and reports how many survived; on a GPU this is a
//! stream compaction built from exactly the prefix sum of Figure 3 — which is
//! why the paper's scan optimization matters to detection models at all.

use super::scan::exclusive_scan;
use unigpu_device::{DeviceSpec, KernelProfile};
use unigpu_tensor::Tensor;

/// Compact `[batch, n, 6]` candidates with `score > thresh` to the front of
/// each batch row (remaining rows −1). Returns `(counts, compacted)` where
/// `counts` is `[batch]` i32.
///
/// The compaction address of every surviving box is computed with the
/// three-stage exclusive scan over the survival mask — the canonical GPU
/// stream-compaction idiom.
pub fn get_valid_counts(boxes: &Tensor, thresh: f32) -> (Tensor, Tensor) {
    let dims = boxes.shape().dims();
    assert_eq!(dims.len(), 3, "expected [batch, n, 6]");
    assert_eq!(dims[2], 6);
    let (batch, n) = (dims[0], dims[1]);
    let src = boxes.as_f32();
    let mut counts = Tensor::zeros_i32([batch]);
    let mut out = Tensor::full([batch, n, 6], -1.0);
    for b in 0..batch {
        let rows = &src[b * n * 6..(b + 1) * n * 6];
        // survival mask → exclusive scan → scatter addresses
        let mask: Vec<f32> = (0..n)
            .map(|i| (rows[i * 6] >= 0.0 && rows[i * 6 + 1] > thresh) as u8 as f32)
            .collect();
        let addr = exclusive_scan(&mask, 64);
        let total: usize = mask.iter().sum::<f32>() as usize;
        let dst = &mut out.as_f32_mut()[b * n * 6..(b + 1) * n * 6];
        for i in 0..n {
            if mask[i] > 0.0 {
                let a = addr[i] as usize;
                dst[a * 6..a * 6 + 6].copy_from_slice(&rows[i * 6..i * 6 + 6]);
            }
        }
        counts.as_i32_mut()[b] = total as i32;
    }
    (counts, out)
}

/// Keep only the `k` highest-scoring candidates per batch row (the pre-NMS
/// `topk` of the SSD pipeline); everything else becomes −1. Input rows must
/// be score-sortable; output preserves score order.
pub fn topk(boxes: &Tensor, k: usize) -> Tensor {
    let dims = boxes.shape().dims();
    assert_eq!(dims.len(), 3);
    assert_eq!(dims[2], 6);
    let (batch, n) = (dims[0], dims[1]);
    let src = boxes.as_f32();
    let mut out = Tensor::full([batch, n, 6], -1.0);
    for b in 0..batch {
        let rows = &src[b * n * 6..(b + 1) * n * 6];
        let mut order: Vec<usize> = (0..n).filter(|&i| rows[i * 6] >= 0.0).collect();
        order.sort_by(|&x, &y| rows[y * 6 + 1].total_cmp(&rows[x * 6 + 1]).then(x.cmp(&y)));
        order.truncate(k);
        let dst = &mut out.as_f32_mut()[b * n * 6..(b + 1) * n * 6];
        for (slot, &i) in order.iter().enumerate() {
            dst[slot * 6..slot * 6 + 6].copy_from_slice(&rows[i * 6..i * 6 + 6]);
        }
    }
    out
}

/// Profile: mask + scan (3 launches) + scatter.
pub fn valid_counts_profiles(n: usize, spec: &DeviceSpec) -> Vec<KernelProfile> {
    let mut v = vec![KernelProfile::new("valid_counts/mask", n.max(1))
        .workgroup(128)
        .flops(2.0)
        .reads(8.0)
        .writes(4.0)
        .coalesce(0.9)];
    v.extend(super::scan::scan_profiles(n, spec.max_concurrency(), spec));
    v.push(
        KernelProfile::new("valid_counts/scatter", n.max(1))
            .workgroup(128)
            .flops(1.0)
            .reads(28.0)
            .writes(24.0)
            .coalesce(0.5) // scattered writes
            .divergence(0.85),
    );
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes(rows: &[[f32; 6]]) -> Tensor {
        Tensor::from_vec([1, rows.len(), 6], rows.concat())
    }

    #[test]
    fn compacts_survivors_to_front() {
        let t = boxes(&[
            [0.0, 0.05, 0.0, 0.0, 1.0, 1.0],
            [1.0, 0.90, 1.0, 1.0, 2.0, 2.0],
            [-1.0, 0.99, 0.0, 0.0, 1.0, 1.0], // invalid class
            [2.0, 0.70, 2.0, 2.0, 3.0, 3.0],
        ]);
        let (counts, out) = get_valid_counts(&t, 0.1);
        assert_eq!(counts.as_i32(), &[2]);
        let v = out.as_f32();
        assert_eq!(v[1], 0.90);
        assert_eq!(v[7], 0.70);
        assert!(v[12..].iter().all(|&x| x == -1.0));
    }

    #[test]
    fn preserves_relative_order() {
        let t = boxes(&[
            [0.0, 0.2, 0.0, 0.0, 1.0, 1.0],
            [0.0, 0.9, 0.0, 0.0, 1.0, 1.0],
            [0.0, 0.5, 0.0, 0.0, 1.0, 1.0],
        ]);
        let (_, out) = get_valid_counts(&t, 0.0);
        let v = out.as_f32();
        // compaction is stable: original order 0.2, 0.9, 0.5
        assert_eq!([v[1], v[7], v[13]], [0.2, 0.9, 0.5]);
    }

    #[test]
    fn batches_count_independently() {
        let mut data = vec![];
        data.extend_from_slice(&[0.0, 0.9, 0.0, 0.0, 1.0, 1.0]);
        data.extend_from_slice(&[0.0, 0.01, 0.0, 0.0, 1.0, 1.0]);
        data.extend_from_slice(&[0.0, 0.8, 0.0, 0.0, 1.0, 1.0]);
        data.extend_from_slice(&[0.0, 0.7, 0.0, 0.0, 1.0, 1.0]);
        let t = Tensor::from_vec([2, 2, 6], data);
        let (counts, _) = get_valid_counts(&t, 0.1);
        assert_eq!(counts.as_i32(), &[1, 2]);
    }

    #[test]
    fn topk_keeps_best_in_score_order() {
        let t = boxes(&[
            [0.0, 0.3, 0.0, 0.0, 1.0, 1.0],
            [0.0, 0.9, 0.0, 0.0, 1.0, 1.0],
            [0.0, 0.6, 0.0, 0.0, 1.0, 1.0],
            [0.0, 0.1, 0.0, 0.0, 1.0, 1.0],
        ]);
        let out = topk(&t, 2);
        let v = out.as_f32();
        assert_eq!([v[1], v[7]], [0.9, 0.6]);
        assert!(v[12..].iter().all(|&x| x == -1.0));
    }

    #[test]
    fn topk_larger_than_population_is_safe() {
        let t = boxes(&[[0.0, 0.5, 0.0, 0.0, 1.0, 1.0]]);
        let out = topk(&t, 100);
        assert_eq!(out.as_f32()[1], 0.5);
    }

    #[test]
    fn profile_builds_on_scan() {
        let spec = unigpu_device::DeviceSpec::mali_t860();
        let ps = valid_counts_profiles(24564, &spec);
        assert!(ps.len() >= 5, "mask + 3 scan stages + scatter");
    }
}
