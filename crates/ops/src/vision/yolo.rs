//! YOLOv3 detection head: decode the raw feature-map predictions of each
//! scale into scored boxes, then suppress with [`super::nms::box_nms`].

use super::nms::{box_nms, NmsConfig};
use unigpu_device::KernelProfile;
use unigpu_tensor::Tensor;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Decode one YOLO output scale.
///
/// * `feat`: `[1, a*(5+classes), h, w]` raw network output;
/// * `anchors`: `a` anchor `(w, h)` pairs in pixels;
/// * `stride`: input pixels per feature cell;
/// Returns candidate rows `(class, score, x1, y1, x2, y2)` in input-image
/// pixels for cells whose objectness exceeds `conf_thresh`.
pub fn yolo_decode_scale(
    feat: &Tensor,
    anchors: &[(f32, f32)],
    stride: usize,
    classes: usize,
    conf_thresh: f32,
) -> Vec<[f32; 6]> {
    let (n, c, h, w) = feat.shape().nchw();
    assert_eq!(n, 1, "yolo decode is per image");
    let a = anchors.len();
    assert_eq!(c, a * (5 + classes), "feature channels mismatch");
    let f = feat.as_f32();
    let at = |ch: usize, y: usize, x: usize| f[(ch * h + y) * w + x];
    let mut out = Vec::new();
    for ai in 0..a {
        let base = ai * (5 + classes);
        for y in 0..h {
            for x in 0..w {
                let obj = sigmoid(at(base + 4, y, x));
                if obj <= conf_thresh {
                    continue;
                }
                let bx = (sigmoid(at(base, y, x)) + x as f32) * stride as f32;
                let by = (sigmoid(at(base + 1, y, x)) + y as f32) * stride as f32;
                let bw = anchors[ai].0 * at(base + 2, y, x).exp();
                let bh = anchors[ai].1 * at(base + 3, y, x).exp();
                // best class
                let mut best = 0usize;
                let mut best_p = f32::MIN;
                for cls in 0..classes {
                    let p = at(base + 5 + cls, y, x);
                    if p > best_p {
                        best_p = p;
                        best = cls;
                    }
                }
                let score = obj * sigmoid(best_p);
                if score > conf_thresh {
                    out.push([
                        best as f32,
                        score,
                        bx - bw / 2.0,
                        by - bh / 2.0,
                        bx + bw / 2.0,
                        by + bh / 2.0,
                    ]);
                }
            }
        }
    }
    out
}

/// Full YOLOv3 post-processing: decode all three scales, pad into the NMS
/// tensor format, suppress. Returns `[1, total, 6]` like `box_nms`.
pub fn yolo_detect(
    feats: &[&Tensor],
    anchors: &[Vec<(f32, f32)>],
    strides: &[usize],
    classes: usize,
    conf_thresh: f32,
    nms: &NmsConfig,
) -> Tensor {
    assert_eq!(feats.len(), anchors.len());
    assert_eq!(feats.len(), strides.len());
    let mut rows: Vec<[f32; 6]> = Vec::new();
    for ((f, a), &s) in feats.iter().zip(anchors).zip(strides) {
        rows.extend(yolo_decode_scale(f, a, s, classes, conf_thresh));
    }
    if rows.is_empty() {
        return Tensor::full([1, 1, 6], -1.0);
    }
    let n = rows.len();
    let t = Tensor::from_vec([1, n, 6], rows.concat());
    box_nms(&t, nms)
}

/// Cost-model profile of the decode kernels: one work-item per anchor-cell,
/// sigmoid/exp transcendentals, conditional emission (mild divergence).
pub fn yolo_decode_profile(cells: usize, classes: usize) -> KernelProfile {
    KernelProfile::new("yolo/decode", cells.max(1))
        .workgroup(128)
        .flops(30.0 + classes as f64)
        .reads(4.0 * (5.0 + classes as f64))
        .writes(24.0)
        .divergence(0.8)
        .coalesce(0.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a feature map with one confident cell.
    fn one_hot_feat(h: usize, w: usize, classes: usize, cell: (usize, usize)) -> Tensor {
        let c = 5 + classes;
        let mut t = Tensor::full([1, c, h, w], -10.0); // sigmoid(-10) ~ 0
        // objectness high at `cell`
        t.set(&[0, 4, cell.0, cell.1], 10.0);
        // tx = ty = 0 → sigmoid = 0.5 (center of cell); tw = th = 0 → anchor size
        t.set(&[0, 0, cell.0, cell.1], 0.0);
        t.set(&[0, 1, cell.0, cell.1], 0.0);
        t.set(&[0, 2, cell.0, cell.1], 0.0);
        t.set(&[0, 3, cell.0, cell.1], 0.0);
        // class 2 hot
        t.set(&[0, 5 + 2, cell.0, cell.1], 10.0);
        t
    }

    #[test]
    fn decodes_center_and_anchor_size() {
        let feat = one_hot_feat(4, 4, 3, (1, 2));
        let rows = yolo_decode_scale(&feat, &[(32.0, 64.0)], 16, 3, 0.3);
        assert_eq!(rows.len(), 1);
        let r = rows[0];
        assert_eq!(r[0], 2.0, "class id");
        assert!(r[1] > 0.9, "score");
        let cx = (r[2] + r[4]) / 2.0;
        let cy = (r[3] + r[5]) / 2.0;
        assert!((cx - (2.5 * 16.0)).abs() < 1e-3, "cx = {cx}");
        assert!((cy - (1.5 * 16.0)).abs() < 1e-3, "cy = {cy}");
        assert!(((r[4] - r[2]) - 32.0).abs() < 1e-3, "w from anchor");
        assert!(((r[5] - r[3]) - 64.0).abs() < 1e-3, "h from anchor");
    }

    #[test]
    fn low_objectness_emits_nothing() {
        let feat = Tensor::full([1, 8, 4, 4], -10.0);
        let rows = yolo_decode_scale(&feat, &[(32.0, 32.0)], 16, 3, 0.3);
        assert!(rows.is_empty());
    }

    #[test]
    fn multi_scale_detect_suppresses_duplicates() {
        // the same object seen at two scales → one survivor after NMS
        let f1 = one_hot_feat(4, 4, 3, (1, 1));
        let f2 = one_hot_feat(2, 2, 3, (0, 0));
        // scale strides chosen so both decode near the same pixels
        let det = yolo_detect(
            &[&f1, &f2],
            &[vec![(48.0, 48.0)], vec![(48.0, 48.0)]],
            &[16, 32],
            3,
            0.3,
            &NmsConfig { iou_threshold: 0.3, force_suppress: true, ..Default::default() },
        );
        let v = det.as_f32();
        let kept = (0..v.len() / 6).filter(|&i| v[i * 6] >= 0.0).count();
        assert_eq!(kept, 1, "duplicate across scales must be suppressed");
    }

    #[test]
    fn empty_detection_returns_invalid_tensor() {
        let f = Tensor::full([1, 8, 2, 2], -10.0);
        let det = yolo_detect(
            &[&f],
            &[vec![(32.0, 32.0)]],
            &[16],
            3,
            0.3,
            &NmsConfig::default(),
        );
        assert!(det.as_f32().iter().all(|&x| x == -1.0));
    }
}
