//! SSD multibox operators: anchor (prior) generation and detection decoding
//! (`MultiboxPrior` / `MultiboxDetection` in the MXNet operator set, §3.1.1).

use super::nms::{box_nms, NmsConfig};
use unigpu_device::{DeviceSpec, KernelProfile};
use unigpu_tensor::Tensor;

/// Configuration of the decode + NMS stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiboxConfig {
    /// Box-regression variances (center, size) per the SSD paper.
    pub variances: (f32, f32),
    /// Discard detections with class probability below this.
    pub score_thresh: f32,
    pub nms: NmsConfig,
}

impl Default for MultiboxConfig {
    fn default() -> Self {
        MultiboxConfig {
            variances: (0.1, 0.2),
            score_thresh: 0.01,
            nms: NmsConfig { iou_threshold: 0.45, valid_thresh: 0.01, topk: Some(400), force_suppress: false },
        }
    }
}

/// Generate SSD anchors for one `h×w` feature map.
///
/// `sizes` are scales relative to the image; `ratios` are aspect ratios.
/// Anchor count per cell is `sizes.len() + ratios.len() - 1` (the SSD
/// convention: all sizes at ratio 1, plus extra ratios at the first size).
/// Returns `[1, h*w*anchors_per_cell, 4]` corner-form boxes in `[0,1]` image
/// coordinates (unclipped, like MXNet's default).
pub fn multibox_prior(h: usize, w: usize, sizes: &[f32], ratios: &[f32]) -> Tensor {
    assert!(!sizes.is_empty() && !ratios.is_empty());
    let per_cell = sizes.len() + ratios.len() - 1;
    let mut out = Tensor::zeros([1, h * w * per_cell, 4]);
    let o = out.as_f32_mut();
    let mut k = 0;
    for i in 0..h {
        let cy = (i as f32 + 0.5) / h as f32;
        for j in 0..w {
            let cx = (j as f32 + 0.5) / w as f32;
            let mut emit = |bw: f32, bh: f32, k: &mut usize| {
                o[*k * 4] = cx - bw / 2.0;
                o[*k * 4 + 1] = cy - bh / 2.0;
                o[*k * 4 + 2] = cx + bw / 2.0;
                o[*k * 4 + 3] = cy + bh / 2.0;
                *k += 1;
            };
            // all sizes at ratio 1
            for &s in sizes {
                emit(s, s, &mut k);
            }
            // extra ratios at the first size
            for &r in &ratios[1..] {
                let sq = r.sqrt();
                emit(sizes[0] * sq, sizes[0] / sq, &mut k);
            }
        }
    }
    out
}

/// Decode SSD predictions into detections and run NMS.
///
/// * `cls_probs`: `[batch, num_classes, num_anchors]` softmax outputs where
///   class 0 is background;
/// * `loc_preds`: `[batch, num_anchors*4]` box regression deltas;
/// * `anchors`:   `[1, num_anchors, 4]` corner-form priors.
///
/// Returns `[batch, num_anchors, 6]` rows `(class-1, score, x1, y1, x2, y2)`
/// post-NMS (invalid rows −1), matching `MultiBoxDetection`.
pub fn multibox_detection(
    cls_probs: &Tensor,
    loc_preds: &Tensor,
    anchors: &Tensor,
    cfg: &MultiboxConfig,
) -> Tensor {
    let cdims = cls_probs.shape().dims();
    assert_eq!(cdims.len(), 3, "cls_probs must be [batch, classes, anchors]");
    let (batch, n_cls, n_anc) = (cdims[0], cdims[1], cdims[2]);
    assert_eq!(loc_preds.numel(), batch * n_anc * 4, "loc_preds shape mismatch");
    assert_eq!(anchors.numel(), n_anc * 4, "anchors shape mismatch");
    let cp = cls_probs.as_f32();
    let lp = loc_preds.as_f32();
    let an = anchors.as_f32();
    let (v_c, v_s) = cfg.variances;

    let mut cand = Tensor::full([batch, n_anc, 6], -1.0);
    {
        let c = cand.as_f32_mut();
        for b in 0..batch {
            for a in 0..n_anc {
                // best non-background class
                let mut best_cls = -1i32;
                let mut best_p = cfg.score_thresh;
                for cls in 1..n_cls {
                    let p = cp[(b * n_cls + cls) * n_anc + a];
                    if p > best_p {
                        best_p = p;
                        best_cls = cls as i32 - 1;
                    }
                }
                if best_cls < 0 {
                    continue;
                }
                // decode center-form regression against the anchor
                let (ax1, ay1, ax2, ay2) =
                    (an[a * 4], an[a * 4 + 1], an[a * 4 + 2], an[a * 4 + 3]);
                let (aw, ah) = (ax2 - ax1, ay2 - ay1);
                let (acx, acy) = (ax1 + aw / 2.0, ay1 + ah / 2.0);
                let d = &lp[(b * n_anc + a) * 4..(b * n_anc + a) * 4 + 4];
                let cx = acx + d[0] * v_c * aw;
                let cy = acy + d[1] * v_c * ah;
                let bw = aw * (d[2] * v_s).exp();
                let bh = ah * (d[3] * v_s).exp();
                let row = &mut c[(b * n_anc + a) * 6..(b * n_anc + a) * 6 + 6];
                row[0] = best_cls as f32;
                row[1] = best_p;
                row[2] = cx - bw / 2.0;
                row[3] = cy - bh / 2.0;
                row[4] = cx + bw / 2.0;
                row[5] = cy + bh / 2.0;
            }
        }
    }
    box_nms(&cand, &cfg.nms)
}

/// Profiles for the decode stage (anchor transform + class argmax); NMS adds
/// its own profiles from [`super::nms::nms_profiles`].
pub fn multibox_profiles(n_anchors: usize, n_classes: usize, spec: &DeviceSpec) -> Vec<KernelProfile> {
    let mut v = vec![KernelProfile::new("multibox/decode", n_anchors.max(1))
        .workgroup(128)
        .flops(n_classes as f64 + 20.0)
        .reads(4.0 * (n_classes as f64 + 8.0))
        .writes(24.0)
        .coalesce(0.8)];
    v.extend(super::nms::nms_profiles(n_anchors, spec));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_count_and_centering() {
        let sizes = [0.2, 0.4];
        let ratios = [1.0, 2.0, 0.5];
        let p = multibox_prior(2, 2, &sizes, &ratios);
        // per cell: 2 sizes + 2 extra ratios = 4
        assert_eq!(p.shape().dims(), &[1, 2 * 2 * 4, 4]);
        // first anchor of cell (0,0): center (0.25, 0.25), size 0.2
        let v = p.as_f32();
        assert!((v[0] - (0.25 - 0.1)).abs() < 1e-6);
        assert!((v[2] - (0.25 + 0.1)).abs() < 1e-6);
    }

    #[test]
    fn prior_aspect_ratio_shapes() {
        let p = multibox_prior(1, 1, &[0.4], &[1.0, 4.0]);
        let v = p.as_f32();
        // anchor 1: ratio 4 → w = 0.4*2, h = 0.4/2
        let w = v[6] - v[4];
        let h = v[7] - v[5];
        assert!((w - 0.8).abs() < 1e-6);
        assert!((h - 0.2).abs() < 1e-6);
        assert!((w / h - 4.0).abs() < 1e-5);
    }

    #[test]
    fn zero_deltas_decode_to_anchor() {
        let anchors = Tensor::from_vec([1, 1, 4], vec![0.2, 0.2, 0.6, 0.6]);
        // classes: bg + 1; anchor strongly class 1
        let cls = Tensor::from_vec([1, 2, 1], vec![0.1, 0.9]);
        let loc = Tensor::zeros([1, 4]);
        let det = multibox_detection(&cls, &loc, &anchors, &MultiboxConfig::default());
        let v = det.as_f32();
        assert_eq!(v[0], 0.0); // class 1 → id 0
        assert_eq!(v[1], 0.9);
        assert!((v[2] - 0.2).abs() < 1e-6 && (v[5] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn deltas_shift_and_scale() {
        let anchors = Tensor::from_vec([1, 1, 4], vec![0.0, 0.0, 0.4, 0.4]);
        let cls = Tensor::from_vec([1, 2, 1], vec![0.0, 1.0]);
        // dx = 1 → cx += 0.1*0.4; dw = ln(2)/0.2 → width doubles
        let loc = Tensor::from_vec([1, 4], vec![1.0, 0.0, (2.0f32).ln() / 0.2, 0.0]);
        let det = multibox_detection(&cls, &loc, &anchors, &MultiboxConfig::default());
        let v = det.as_f32();
        let w = v[4] - v[2];
        assert!((w - 0.8).abs() < 1e-5, "width should double: {w}");
        let cx = (v[2] + v[4]) / 2.0;
        assert!((cx - 0.24).abs() < 1e-5, "center should shift: {cx}");
    }

    #[test]
    fn background_only_anchors_yield_nothing() {
        let anchors = Tensor::from_vec([1, 2, 4], vec![0.0, 0.0, 0.5, 0.5, 0.5, 0.5, 1.0, 1.0]);
        let cls = Tensor::from_vec([1, 2, 2], vec![0.99, 0.99, 0.01, 0.01]);
        let loc = Tensor::zeros([1, 8]);
        let mut cfg = MultiboxConfig::default();
        cfg.score_thresh = 0.5;
        let det = multibox_detection(&cls, &loc, &anchors, &cfg);
        assert!(det.as_f32().iter().all(|&x| x == -1.0));
    }

    #[test]
    fn duplicate_anchors_suppressed_by_nms() {
        let anchors = Tensor::from_vec([1, 2, 4], vec![0.2, 0.2, 0.6, 0.6, 0.21, 0.2, 0.61, 0.6]);
        let cls = Tensor::from_vec([1, 2, 2], vec![0.1, 0.2, 0.9, 0.8]);
        let loc = Tensor::zeros([1, 8]);
        let det = multibox_detection(&cls, &loc, &anchors, &MultiboxConfig::default());
        let v = det.as_f32();
        assert_eq!(v[1], 0.9);
        assert_eq!(v[6], -1.0, "near-duplicate anchor must be suppressed");
    }
}
