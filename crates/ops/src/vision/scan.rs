//! Prefix sum (scan) — Figure 3 of the paper.
//!
//! Hillis–Steele scan is `O(n log n)` work with a *global* synchronization
//! per pass, and the element count far exceeds the processor count on an
//! integrated GPU. The paper's three-stage scheme with **register blocking**
//! fixes both:
//!
//! 1. **up-sweep** — each processor sequentially scans its own contiguous
//!    block (elements live in registers, no synchronization at all);
//! 2. **scan** — the per-block totals (one per processor) are scanned with
//!    Hillis–Steele, which is now tiny (`P` elements, `log P` passes);
//! 3. **down-sweep** — each processor adds its exclusive block offset to its
//!    scanned block, again with no synchronization.
//!
//! Latency drops from `O(n)` (sequential) to `O(n/P + log P)` with exactly
//! three kernel launches instead of `log n` global-sync passes.

use unigpu_device::{dispatch_chunks, dispatch_map, DeviceSpec, KernelProfile};

/// Inclusive prefix sum with the three-stage register-blocked scheme over
/// `processors` simulated cores.
pub fn prefix_sum(data: &[f32], processors: usize) -> Vec<f32> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let p = processors.clamp(1, n);
    let block = n.div_ceil(p);

    // Stage 1 (up-sweep): sequential scan inside each processor's block.
    let mut out = data.to_vec();
    dispatch_chunks(&mut out, block, |_, chunk| {
        let mut acc = 0.0f32;
        for v in chunk.iter_mut() {
            acc += *v;
            *v = acc;
        }
    });

    // Per-block reductions (the red bold numbers of Figure 3).
    let sums: Vec<f32> = dispatch_map(n.div_ceil(block), |g| {
        out[((g + 1) * block).min(n) - 1]
    });

    // Stage 2 (scan): Hillis–Steele over the P partial sums. Each pass d
    // adds element i-2^d to element i; double-buffered, log2(P) passes.
    let scanned = hillis_steele(&sums);

    // Stage 3 (down-sweep): add the exclusive predecessor total per block.
    dispatch_chunks(&mut out, block, |g, chunk| {
        if g == 0 {
            return;
        }
        let offset = scanned[g - 1];
        for v in chunk.iter_mut() {
            *v += offset;
        }
    });
    out
}

/// Exclusive scan (`out[0] = 0`, `out[i] = Σ data[..i]`).
pub fn exclusive_scan(data: &[f32], processors: usize) -> Vec<f32> {
    if data.is_empty() {
        return Vec::new();
    }
    let inc = prefix_sum(data, processors);
    let mut out = Vec::with_capacity(data.len());
    out.push(0.0);
    out.extend_from_slice(&inc[..inc.len().saturating_sub(1)]);
    out
}

/// Classic Hillis–Steele inclusive scan (the paper's baseline, also used on
/// the short partial-sums array of stage 2). Pass `d` adds element
/// `i − 2^d` to element `i`; all passes are barrier-separated.
pub fn hillis_steele(data: &[f32]) -> Vec<f32> {
    let n = data.len();
    let mut cur = data.to_vec();
    let mut next = vec![0.0f32; n];
    let mut stride = 1usize;
    while stride < n {
        for i in 0..n {
            next[i] = if i >= stride { cur[i] + cur[i - stride] } else { cur[i] };
        }
        std::mem::swap(&mut cur, &mut next);
        stride *= 2;
    }
    cur
}

/// Profiles of the optimized three-stage scan: 3 launches, no global syncs
/// inside a launch, stage 2 operates on `P` elements only.
pub fn scan_profiles(n: usize, processors: usize, _spec: &DeviceSpec) -> Vec<KernelProfile> {
    let p = processors.clamp(1, n.max(1));
    let block = n.div_ceil(p).max(1);
    vec![
        KernelProfile::new("scan/up_sweep", p)
            .workgroup(64)
            .flops(block as f64)
            .reads(4.0 * block as f64)
            .writes(4.0 * block as f64)
            .coalesce(0.9),
        KernelProfile::new("scan/partials_hs", p)
            .workgroup(p.min(256).max(1))
            .flops((p as f64).log2().max(1.0))
            .reads(8.0)
            .writes(4.0)
            .with_barriers((p as f64).log2().ceil() as usize),
        KernelProfile::new("scan/down_sweep", p)
            .workgroup(64)
            .flops(block as f64)
            .reads(4.0 * block as f64 + 4.0)
            .writes(4.0 * block as f64)
            .coalesce(0.9),
    ]
}

/// Profile of the naive global Hillis–Steele scan: `log2(n)` launches, each
/// streaming the whole array with a global synchronization between passes.
pub fn naive_scan_profile(n: usize) -> KernelProfile {
    let passes = (n.max(2) as f64).log2().ceil() as usize;
    KernelProfile::new("scan/global_hillis_steele", n.max(1))
        .workgroup(64)
        .flops(1.0)
        .reads(8.0)
        .writes(4.0)
        .coalesce(0.85)
        .repeated(passes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial_scan(data: &[f32]) -> Vec<f32> {
        let mut acc = 0.0;
        data.iter()
            .map(|&v| {
                acc += v;
                acc
            })
            .collect()
    }

    /// The exact worked example of Figure 3: 18 elements, 5 processors.
    #[test]
    fn figure3_walkthrough() {
        let data = [
            5.0, 7.0, 1.0, 1.0, 3.0, 4.0, 2.0, 0.0, 3.0, 1.0, 1.0, 2.0, 6.0, 1.0, 2.0, 3.0,
            1.0, 3.0,
        ];
        let got = prefix_sum(&data, 5);
        let want = [
            5.0, 12.0, 13.0, 14.0, 17.0, 21.0, 23.0, 23.0, 26.0, 27.0, 28.0, 30.0, 36.0,
            37.0, 39.0, 42.0, 43.0, 46.0,
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn matches_serial_for_any_processor_count() {
        let data: Vec<f32> = (0..133).map(|i| ((i * 7) % 11) as f32).collect();
        let want = serial_scan(&data);
        for p in [1, 2, 3, 5, 8, 64, 133, 500] {
            assert_eq!(prefix_sum(&data, p), want, "p={p}");
        }
    }

    #[test]
    fn hillis_steele_matches_serial() {
        let data: Vec<f32> = (0..37).map(|i| (i % 5) as f32).collect();
        assert_eq!(hillis_steele(&data), serial_scan(&data));
    }

    #[test]
    fn exclusive_scan_shifts() {
        let data = [1.0, 2.0, 3.0];
        assert_eq!(exclusive_scan(&data, 2), vec![0.0, 1.0, 3.0]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(prefix_sum(&[], 4).is_empty());
        assert_eq!(prefix_sum(&[7.0], 4), vec![7.0]);
        assert_eq!(exclusive_scan(&[], 4), Vec::<f32>::new());
    }

    #[test]
    fn three_stage_beats_naive_in_cost() {
        use unigpu_device::{CostModel, DeviceSpec};
        for spec in [DeviceSpec::intel_hd505(), DeviceSpec::mali_t860(), DeviceSpec::maxwell_nano()] {
            let m = CostModel::new(spec.clone());
            let n = 1 << 17;
            let opt: f64 = scan_profiles(n, spec.max_concurrency(), &spec)
                .iter()
                .map(|p| m.kernel_time_ms(p))
                .sum();
            let naive = m.kernel_time_ms(&naive_scan_profile(n));
            assert!(
                naive > 2.0 * opt,
                "{}: naive {naive:.3} ms vs three-stage {opt:.3} ms",
                spec.name
            );
        }
    }
}
