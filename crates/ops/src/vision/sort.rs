//! Segmented argsort — Figure 2 of the paper.
//!
//! NMS sorts many *small, variable-length* score lists. One GPU thread per
//! segment diverges badly (threads with short segments idle while the longest
//! one runs). The paper's fix:
//!
//! 1. **flatten** the segments into one array, remembering segment starts;
//! 2. chop the flat array into **equal-length blocks** (load balancing);
//! 3. **block-sort** each block — here a real barrier-phased *bitonic sort*
//!    running on the simulated work-group executor;
//! 4. **cooperative merge** rounds: each round doubles the cooperating block
//!    span (Figure 2's `coop 2 → coop 4 → coop 8`), with merge-path
//!    partitioning so every block writes an equal-sized output chunk.
//!
//! Segment independence is preserved by sorting the composite key
//! `(segment, -value, index)`: globally sorting the flattened array under
//! this key equals concatenating per-segment sorts, which is exactly the
//! "only the segments that span the active interface between two input lists
//! are modified" property.

use std::cmp::Ordering;
use unigpu_device::{dispatch_chunks, DeviceSpec, KernelProfile};

/// One element of the flattened composite-key array.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Elem {
    seg: u32,
    val: f32,
    idx: u32,
    /// Padding sentinel (sorts after everything real).
    pad: bool,
}

impl Elem {
    const PAD: Elem = Elem { seg: u32::MAX, val: 0.0, idx: u32::MAX, pad: true };
}

/// Total order: segment ascending, value descending, index ascending;
/// padding last. `total_cmp` keeps the order total even for NaN scores
/// (which sort last among values instead of panicking).
fn elem_cmp(a: &Elem, b: &Elem) -> Ordering {
    a.pad
        .cmp(&b.pad)
        .then(a.seg.cmp(&b.seg))
        .then_with(|| b.val.total_cmp(&a.val))
        .then(a.idx.cmp(&b.idx))
}

/// In-place bitonic sort of a power-of-two block, expressed as the exact
/// compare-exchange network a work-group executes between barriers.
fn bitonic_sort_block(block: &mut [Elem]) {
    let n = block.len();
    debug_assert!(n.is_power_of_two());
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            // One barrier-separated phase: every work-item i does at most one
            // compare-exchange with partner i^j; pairs are disjoint.
            for i in 0..n {
                let partner = i ^ j;
                if partner > i {
                    let ascending = i & k == 0;
                    let out_of_order = elem_cmp(&block[i], &block[partner]) == Ordering::Greater;
                    if ascending == out_of_order {
                        block.swap(i, partner);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// Merge-path diagonal search: how many elements of `a` belong before the
/// `diag`-th output element when merging sorted runs `a` and `b`.
fn merge_path(a: &[Elem], b: &[Elem], diag: usize) -> usize {
    let mut lo = diag.saturating_sub(b.len());
    let mut hi = diag.min(a.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        // a[mid] vs b[diag-1-mid]: if a[mid] <= b[...], take more from a.
        if elem_cmp(&a[mid], &b[diag - 1 - mid]) != Ordering::Greater {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Sequentially merge `count` outputs starting at merge-path split
/// (`ai`, `bi`) into `out`.
fn merge_chunk(a: &[Elem], b: &[Elem], mut ai: usize, mut bi: usize, out: &mut [Elem]) {
    for slot in out.iter_mut() {
        let take_a = if ai >= a.len() {
            false
        } else if bi >= b.len() {
            true
        } else {
            elem_cmp(&a[ai], &b[bi]) != Ordering::Greater
        };
        if take_a {
            *slot = a[ai];
            ai += 1;
        } else {
            *slot = b[bi];
            bi += 1;
        }
    }
}

/// Segmented argsort (descending by value, ties by original index).
///
/// `offsets` is CSR-style: segment `s` is `data[offsets[s]..offsets[s+1]]`.
/// Returns, for each flattened position `offsets[s] + r`, the *local index*
/// within segment `s` of its rank-`r` element (the `numpy.argsort` contract
/// applied per segment, descending).
///
/// `block` is the equal-length block size of Figure 2 (power of two).
pub fn segmented_argsort(data: &[f32], offsets: &[usize], block: usize) -> Vec<i32> {
    assert!(block.is_power_of_two() && block >= 2, "block must be a power of two >= 2");
    assert!(!offsets.is_empty() && *offsets.last().unwrap() == data.len(),
        "offsets must start at 0 and end at data.len()");
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }

    // Step 1: flatten with composite keys, padded to a block multiple.
    let padded = n.div_ceil(block) * block;
    let mut elems = vec![Elem::PAD; padded];
    for s in 0..offsets.len() - 1 {
        let (lo, hi) = (offsets[s], offsets[s + 1]);
        debug_assert!(lo <= hi, "offsets must be nondecreasing");
        for (local, g) in (lo..hi).enumerate() {
            elems[g] = Elem { seg: s as u32, val: data[g], idx: local as u32, pad: false };
        }
    }

    // Step 2+3: equal blocks, bitonic block sort (one work-group per block).
    dispatch_chunks(&mut elems, block, |_, chunk| bitonic_sort_block(chunk));

    // Step 4: cooperative merge rounds, doubling the span each round.
    let mut src = elems;
    let mut dst = vec![Elem::PAD; padded];
    let mut width = block;
    while width < padded {
        let span = 2 * width;
        // Each output chunk of `block` elements is produced by one group via
        // merge-path partitioning, so cooperation within a span is balanced.
        dispatch_chunks(&mut dst, block, |g, out| {
            let chunk_start = g * block;
            let span_start = (chunk_start / span) * span;
            let a = &src[span_start..(span_start + width).min(padded)];
            let b = &src[(span_start + width).min(padded)..(span_start + span).min(padded)];
            let diag = chunk_start - span_start;
            let ai = merge_path(a, b, diag);
            let bi = diag - ai;
            merge_chunk(a, b, ai, bi, out);
        });
        std::mem::swap(&mut src, &mut dst);
        width = span;
    }

    // Gather: src[offsets[s] + rank] is the rank-th element of segment s.
    let mut out = vec![0i32; n];
    for (g, slot) in out.iter_mut().enumerate() {
        *slot = src[g].idx as i32;
    }
    out
}

/// The naive GPU realization Table 4 ablates against: one thread per
/// segment, each insertion-sorting its own variable-length list.
pub fn naive_segment_argsort(data: &[f32], offsets: &[usize]) -> Vec<i32> {
    let n = data.len();
    let mut out = vec![0i32; n];
    for s in 0..offsets.len() - 1 {
        let (lo, hi) = (offsets[s], offsets[s + 1]);
        let mut idx: Vec<i32> = (0..(hi - lo) as i32).collect();
        // Insertion sort — what a single GPU thread would actually run.
        for i in 1..idx.len() {
            let key = idx[i];
            let mut j = i;
            while j > 0 {
                let a = data[lo + idx[j - 1] as usize];
                let b = data[lo + key as usize];
                if a < b || (a == b && idx[j - 1] > key) {
                    idx[j] = idx[j - 1];
                    j -= 1;
                } else {
                    break;
                }
            }
            idx[j] = key;
        }
        out[lo..hi].copy_from_slice(&idx);
    }
    out
}

/// Cost-model profiles for the optimized segmented sort: one block-sort
/// launch plus `log2(blocks)` cooperative merge launches.
pub fn segmented_sort_profiles(n: usize, block: usize, _spec: &DeviceSpec) -> Vec<KernelProfile> {
    let padded = n.div_ceil(block).max(1) * block;
    let blocks = padded / block;
    let bitonic_phases = {
        let lb = block.trailing_zeros() as usize;
        lb * (lb + 1) / 2
    };
    let mut v = vec![KernelProfile::new("segsort/block_bitonic", padded)
        .workgroup(block.min(256))
        .flops(bitonic_phases as f64 * 2.0)
        .reads(12.0)
        .writes(12.0)
        .divergence(0.85)
        .coalesce(0.8)
        .with_barriers(bitonic_phases)];
    let merge_rounds = (blocks as f64).log2().ceil() as usize;
    if merge_rounds > 0 {
        v.push(
            KernelProfile::new("segsort/coop_merge", padded)
                .workgroup(block.min(256))
                .flops(4.0)
                .reads(12.0)
                .writes(12.0)
                .divergence(0.9)
                .coalesce(0.85)
                .repeated(merge_rounds),
        );
    }
    v
}

/// Cost-model profile of the naive GPU sort Table 4 ablates against: an
/// odd-even transposition network over the *un-segmented* flat array (the
/// pre-optimization TVM code sorted everything in one go). One work-item per
/// element, `max_len` barrier-separated passes, divergent compare-exchanges,
/// strided accesses — `O(n·max_len)` work versus the segmented pipeline's
/// `O(n·log n)`.
pub fn naive_sort_profile(seg_lens: &[usize]) -> KernelProfile {
    let n: usize = seg_lens.iter().sum::<usize>().max(1);
    let n_segs = seg_lens.len().max(1);
    let max_len = seg_lens.iter().copied().max().unwrap_or(1).max(1);
    let mean_len = (n / n_segs).max(1);
    KernelProfile::new("segsort/naive_odd_even", n)
        .workgroup(64)
        .flops(4.0 * max_len as f64) // one compare-exchange per pass
        .reads(2.0 * max_len as f64) // neighbour re-reads survive in cache
        .writes(8.0)
        .simd(0.3) // divergent compare-exchange lanes
        .divergence(0.25)
        .imbalance((max_len as f64 / mean_len as f64).clamp(1.0, 8.0))
        .coalesce(0.3)
        .slm(16.0) // scratch staging: spills to DRAM on Mali
        .with_barriers((max_len / 64).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_argsort(data: &[f32], offsets: &[usize]) -> Vec<i32> {
        let mut out = vec![0i32; data.len()];
        for s in 0..offsets.len() - 1 {
            let (lo, hi) = (offsets[s], offsets[s + 1]);
            let mut idx: Vec<usize> = (0..hi - lo).collect();
            idx.sort_by(|&a, &b| data[lo + b].total_cmp(&data[lo + a]).then(a.cmp(&b)));
            for (r, &i) in idx.iter().enumerate() {
                out[lo + r] = i as i32;
            }
        }
        out
    }

    #[test]
    fn single_segment_sorts_descending() {
        let data = [0.3, 0.9, 0.1, 0.5];
        let offsets = [0, 4];
        let got = segmented_argsort(&data, &offsets, 2);
        assert_eq!(got, vec![1, 3, 0, 2]);
    }

    #[test]
    fn multiple_variable_segments() {
        let data = [0.5, 0.2, 0.9, /*|*/ 0.4, /*|*/ 0.1, 0.8, 0.8, 0.3];
        let offsets = [0, 3, 4, 8];
        let got = segmented_argsort(&data, &offsets, 4);
        assert_eq!(got, reference_argsort(&data, &offsets));
    }

    #[test]
    fn empty_segments_are_fine() {
        let data = [0.5, 0.1];
        let offsets = [0, 0, 2, 2];
        let got = segmented_argsort(&data, &offsets, 2);
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn ties_break_by_original_index() {
        let data = [0.7, 0.7, 0.7];
        let offsets = [0, 3];
        assert_eq!(segmented_argsort(&data, &offsets, 2), vec![0, 1, 2]);
    }

    #[test]
    fn matches_reference_across_block_sizes() {
        let data: Vec<f32> = (0..97).map(|i| ((i * 37) % 89) as f32 / 10.0).collect();
        let offsets = [0usize, 10, 11, 40, 40, 97];
        let want = reference_argsort(&data, &offsets);
        for block in [2, 4, 8, 16, 32, 64, 128] {
            assert_eq!(
                segmented_argsort(&data, &offsets, block),
                want,
                "block={block}"
            );
        }
    }

    #[test]
    fn naive_and_optimized_agree() {
        let data: Vec<f32> = (0..64).map(|i| ((i * 13) % 31) as f32).collect();
        let offsets = [0usize, 5, 5, 20, 33, 64];
        assert_eq!(
            segmented_argsort(&data, &offsets, 8),
            naive_segment_argsort(&data, &offsets)
        );
    }

    #[test]
    fn bitonic_block_is_a_real_sort() {
        let mut block: Vec<Elem> = (0..16)
            .map(|i| Elem { seg: 0, val: ((i * 7) % 16) as f32, idx: i as u32, pad: false })
            .collect();
        bitonic_sort_block(&mut block);
        for w in block.windows(2) {
            assert_ne!(elem_cmp(&w[0], &w[1]), Ordering::Greater);
        }
    }

    #[test]
    fn merge_path_splits_are_consistent() {
        let mk = |vals: &[f32]| -> Vec<Elem> {
            vals.iter()
                .enumerate()
                .map(|(i, &v)| Elem { seg: 0, val: v, idx: i as u32, pad: false })
                .collect()
        };
        // a and b sorted descending (our key order)
        let a = mk(&[9.0, 7.0, 5.0]);
        let b = mk(&[8.0, 6.0, 4.0]);
        for diag in 0..=6 {
            let ai = merge_path(&a, &b, diag);
            let bi = diag - ai;
            assert!(ai <= a.len() && bi <= b.len());
        }
    }

    #[test]
    fn optimized_profile_beats_naive_on_imbalanced_input() {
        use unigpu_device::CostModel;
        let spec = unigpu_device::DeviceSpec::mali_t860();
        let m = CostModel::new(spec.clone());
        // SSD-like: 21 classes × ~1000 candidates, one long segment.
        let mut lens = vec![40usize; 20];
        lens.push(5000);
        let n: usize = lens.iter().sum();
        let opt: f64 = segmented_sort_profiles(n, 256, &spec)
            .iter()
            .map(|p| m.kernel_time_ms(p))
            .sum();
        let naive = m.kernel_time_ms(&naive_sort_profile(&lens));
        assert!(
            naive > 3.0 * opt,
            "naive {naive:.3} ms should be >> optimized {opt:.3} ms"
        );
    }
}
