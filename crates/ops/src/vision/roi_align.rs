//! `ROIAlign` — bilinear region-of-interest pooling (§2.2/§3.1.1 lists it
//! among the vision-specific operators vendor libraries run suboptimally).

use unigpu_device::KernelProfile;
use unigpu_tensor::Tensor;

/// Bilinear sample `features[n, c, y, x]` at fractional coordinates, with
/// zero outside the map (Detectron semantics).
fn bilinear(feat: &[f32], h: usize, w: usize, y: f32, x: f32) -> f32 {
    if y < -1.0 || y > h as f32 || x < -1.0 || x > w as f32 {
        return 0.0;
    }
    let y = y.max(0.0);
    let x = x.max(0.0);
    let (y0, x0) = (y.floor() as usize, x.floor() as usize);
    let y1 = (y0 + 1).min(h - 1);
    let x1 = (x0 + 1).min(w - 1);
    let y0 = y0.min(h - 1);
    let x0 = x0.min(w - 1);
    let ly = y - y0 as f32;
    let lx = x - x0 as f32;
    let v00 = feat[y0 * w + x0];
    let v01 = feat[y0 * w + x1];
    let v10 = feat[y1 * w + x0];
    let v11 = feat[y1 * w + x1];
    v00 * (1.0 - ly) * (1.0 - lx) + v01 * (1.0 - ly) * lx + v10 * ly * (1.0 - lx) + v11 * ly * lx
}

/// ROIAlign.
///
/// * `features`: `[n, c, h, w]`;
/// * `rois`: `[r, 5]` rows `(batch_index, x1, y1, x2, y2)` in feature-map
///   coordinates after `spatial_scale` is applied;
/// * output: `[r, c, pooled, pooled]`, each bin averaging
///   `sampling_ratio × sampling_ratio` bilinear samples.
pub fn roi_align(
    features: &Tensor,
    rois: &Tensor,
    pooled: usize,
    spatial_scale: f32,
    sampling_ratio: usize,
) -> Tensor {
    let (n, c, h, w) = features.shape().nchw();
    let rdims = rois.shape().dims();
    assert_eq!(rdims.len(), 2, "rois must be [r, 5]");
    assert_eq!(rdims[1], 5, "roi rows are (batch, x1, y1, x2, y2)");
    assert!(sampling_ratio >= 1);
    let r = rdims[0];
    let f = features.as_f32();
    let rr = rois.as_f32();
    let mut out = Tensor::zeros([r, c, pooled, pooled]);
    let o = out.as_f32_mut();

    for ri in 0..r {
        let b = rr[ri * 5] as usize;
        assert!(b < n, "roi batch index {b} out of range");
        let x1 = rr[ri * 5 + 1] * spatial_scale;
        let y1 = rr[ri * 5 + 2] * spatial_scale;
        let x2 = rr[ri * 5 + 3] * spatial_scale;
        let y2 = rr[ri * 5 + 4] * spatial_scale;
        let rw = (x2 - x1).max(1.0);
        let rh = (y2 - y1).max(1.0);
        let bin_w = rw / pooled as f32;
        let bin_h = rh / pooled as f32;
        for ci in 0..c {
            let feat = &f[(b * c + ci) * h * w..(b * c + ci + 1) * h * w];
            for py in 0..pooled {
                for px in 0..pooled {
                    let mut acc = 0.0f32;
                    for sy in 0..sampling_ratio {
                        let yy = y1
                            + py as f32 * bin_h
                            + (sy as f32 + 0.5) * bin_h / sampling_ratio as f32;
                        for sx in 0..sampling_ratio {
                            let xx = x1
                                + px as f32 * bin_w
                                + (sx as f32 + 0.5) * bin_w / sampling_ratio as f32;
                            acc += bilinear(feat, h, w, yy, xx);
                        }
                    }
                    o[((ri * c + ci) * pooled + py) * pooled + px] =
                        acc / (sampling_ratio * sampling_ratio) as f32;
                }
            }
        }
    }
    out
}

/// Cost-model profile: one work-item per output bin, four bilinear taps per
/// sample — gather-heavy (poorly coalesced) but balanced.
pub fn roi_align_profile(rois: usize, channels: usize, pooled: usize, sampling: usize) -> KernelProfile {
    let items = (rois * channels * pooled * pooled).max(1);
    let samples = (sampling * sampling) as f64;
    KernelProfile::new("roi_align", items)
        .workgroup(64)
        .flops(samples * 10.0)
        .reads(samples * 16.0)
        .writes(4.0)
        .coalesce(0.35) // scattered bilinear gathers
        .divergence(0.9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_features_pool_to_constant() {
        let feat = Tensor::full([1, 2, 8, 8], 3.5);
        let rois = Tensor::from_vec([1, 5], vec![0.0, 1.0, 1.0, 6.0, 6.0]);
        let y = roi_align(&feat, &rois, 2, 1.0, 2);
        assert!(y.as_f32().iter().all(|&v| (v - 3.5).abs() < 1e-6));
    }

    #[test]
    fn linear_ramp_pools_to_exact_means() {
        // f(y,x) = x: bilinear interp of a linear function is exact.
        let mut feat = Tensor::zeros([1, 1, 8, 8]);
        for y in 0..8 {
            for x in 0..8 {
                feat.set(&[0, 0, y, x], x as f32);
            }
        }
        let rois = Tensor::from_vec([1, 5], vec![0.0, 0.0, 0.0, 4.0, 4.0]);
        let out = roi_align(&feat, &rois, 2, 1.0, 2);
        // bin (·,0) covers x∈[0,2): samples at 0.5, 1.5 → mean 1.0
        assert!((out.at(&[0, 0, 0, 0]) - 1.0).abs() < 1e-5);
        // bin (·,1) covers x∈[2,4): samples at 2.5, 3.5 → mean 3.0
        assert!((out.at(&[0, 0, 0, 1]) - 3.0).abs() < 1e-5);
    }

    #[test]
    fn spatial_scale_rescales_rois() {
        let feat = Tensor::full([1, 1, 4, 4], 1.0);
        // roi in image coords 0..32 with scale 1/8 → feature coords 0..4
        let rois = Tensor::from_vec([1, 5], vec![0.0, 0.0, 0.0, 32.0, 32.0]);
        let y = roi_align(&feat, &rois, 2, 0.125, 1);
        assert!(y.as_f32().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn batch_index_selects_image() {
        let mut feat = Tensor::zeros([2, 1, 2, 2]);
        for y in 0..2 {
            for x in 0..2 {
                feat.set(&[1, 0, y, x], 9.0);
            }
        }
        let rois = Tensor::from_vec([2, 5], vec![
            0.0, 0.0, 0.0, 2.0, 2.0, //
            1.0, 0.0, 0.0, 2.0, 2.0,
        ]);
        let y = roi_align(&feat, &rois, 1, 1.0, 1);
        assert_eq!(y.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(y.at(&[1, 0, 0, 0]), 9.0);
    }

    #[test]
    fn out_of_map_samples_are_zero() {
        let feat = Tensor::full([1, 1, 4, 4], 2.0);
        // roi far outside the map
        let rois = Tensor::from_vec([1, 5], vec![0.0, 100.0, 100.0, 108.0, 108.0]);
        let y = roi_align(&feat, &rois, 2, 1.0, 1);
        assert!(y.as_f32().iter().all(|&v| v == 0.0));
    }
}
