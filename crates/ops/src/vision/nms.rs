//! `box_nms` — non-maximum suppression over detection candidates (§3.1.1,
//! §4.3).
//!
//! Input/output follow the MXNet `box_nms` convention the GluonCV SSD models
//! use: a `[batch, num_boxes, 6]` tensor whose rows are
//! `(class_id, score, x1, y1, x2, y2)`; suppressed/invalid rows are all `-1`.
//!
//! The optimized GPU realization applies the paper's three tricks:
//! * scores are ordered with the *segmented sort* of Figure 2 (one segment
//!   per batch image), not per-thread local sorts;
//! * "it avoids branch divergence by initializing all output to be invalid
//!   instead of doing it in a comparison style" — the output tensor is
//!   pre-filled with `-1` and only surviving boxes are written;
//! * the inner suppression loop is aligned with threads (each thread owns one
//!   candidate and checks it against the newly accepted box), one step upper
//!   with blocks, batch level unrolled.

use super::sort::segmented_argsort;
use unigpu_device::{DeviceSpec, KernelProfile};
use unigpu_tensor::Tensor;

/// NMS parameters (MXNet `box_nms` semantics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NmsConfig {
    /// Suppress a candidate when its IoU with an accepted box exceeds this.
    pub iou_threshold: f32,
    /// Drop candidates with `score <= valid_thresh` before sorting.
    pub valid_thresh: f32,
    /// Keep only the `topk` highest-scoring candidates pre-suppression.
    pub topk: Option<usize>,
    /// Suppress across classes (false: only same-class boxes suppress).
    pub force_suppress: bool,
}

impl Default for NmsConfig {
    fn default() -> Self {
        NmsConfig {
            iou_threshold: 0.5,
            valid_thresh: 0.0,
            topk: None,
            force_suppress: false,
        }
    }
}

/// Intersection-over-union of two corner-form boxes `(x1, y1, x2, y2)`.
pub fn iou(a: [f32; 4], b: [f32; 4]) -> f32 {
    let ix = (a[2].min(b[2]) - a[0].max(b[0])).max(0.0);
    let iy = (a[3].min(b[3]) - a[1].max(b[1])).max(0.0);
    let inter = ix * iy;
    let area_a = (a[2] - a[0]).max(0.0) * (a[3] - a[1]).max(0.0);
    let area_b = (b[2] - b[0]).max(0.0) * (b[3] - b[1]).max(0.0);
    let union = area_a + area_b - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

fn row(boxes: &[f32], i: usize) -> (f32, f32, [f32; 4]) {
    let r = &boxes[i * 6..i * 6 + 6];
    (r[0], r[1], [r[2], r[3], r[4], r[5]])
}

/// Non-maximum suppression. See module docs for the tensor convention.
///
/// # Panics
/// Panics unless `boxes` is `[batch, n, 6]` f32.
pub fn box_nms(boxes: &Tensor, cfg: &NmsConfig) -> Tensor {
    let dims = boxes.shape().dims();
    assert_eq!(dims.len(), 3, "box_nms expects [batch, n, 6]");
    assert_eq!(dims[2], 6, "box rows are (class, score, x1, y1, x2, y2)");
    let (batch, n) = (dims[0], dims[1]);
    let src = boxes.as_f32();

    // Divergence-free init: everything starts invalid.
    let mut out = Tensor::full([batch, n, 6], -1.0);
    let o = out.as_f32_mut();

    // Gather valid candidates per batch and sort them all with ONE segmented
    // sort launch (scores flattened, one segment per image).
    let mut flat_scores = Vec::new();
    let mut flat_ids: Vec<usize> = Vec::new();
    let mut offsets = vec![0usize];
    for b in 0..batch {
        for i in 0..n {
            let (cls, score, _) = row(&src[b * n * 6..], i);
            if cls >= 0.0 && score > cfg.valid_thresh {
                flat_scores.push(score);
                flat_ids.push(i);
            }
        }
        offsets.push(flat_scores.len());
    }
    let ranks = if flat_scores.is_empty() {
        Vec::new()
    } else {
        segmented_argsort(&flat_scores, &offsets, 64)
    };

    for b in 0..batch {
        let seg = &ranks[offsets[b]..offsets[b + 1]];
        let ids = &flat_ids[offsets[b]..offsets[b + 1]];
        let mut order: Vec<usize> = seg.iter().map(|&r| ids[r as usize]).collect();
        if let Some(k) = cfg.topk {
            order.truncate(k);
        }
        let bsrc = &src[b * n * 6..(b + 1) * n * 6];
        let mut suppressed = vec![false; order.len()];
        let mut emit = 0usize;
        for i in 0..order.len() {
            if suppressed[i] {
                continue;
            }
            let (cls_i, _, box_i) = row(bsrc, order[i]);
            // Accept candidate i.
            let dst = &mut o[(b * n + emit) * 6..(b * n + emit) * 6 + 6];
            dst.copy_from_slice(&bsrc[order[i] * 6..order[i] * 6 + 6]);
            emit += 1;
            // Thread-per-candidate suppression sweep (data-parallel on GPU).
            for (j, s) in suppressed.iter_mut().enumerate().skip(i + 1) {
                if *s {
                    continue;
                }
                let (cls_j, _, box_j) = row(bsrc, order[j]);
                if (cfg.force_suppress || cls_i == cls_j)
                    && iou(box_i, box_j) > cfg.iou_threshold
                {
                    *s = true;
                }
            }
        }
    }
    out
}

/// Profiles for the optimized `box_nms`: segmented-sort launches plus one
/// thread-aligned suppression kernel.
pub fn nms_profiles(n_boxes: usize, spec: &DeviceSpec) -> Vec<KernelProfile> {
    let mut v = super::sort::segmented_sort_profiles(n_boxes, 256, spec);
    // Suppression: each surviving round sweeps candidates in parallel; model
    // as n·√n pair checks (typical survivor counts are ~√n for detection).
    let sweeps = (n_boxes as f64).sqrt().ceil().max(1.0);
    v.push(
        KernelProfile::new("nms/suppress", n_boxes.max(1))
            .workgroup(128)
            .flops(8.0 * sweeps)
            .reads(24.0)
            .writes(24.0)
            .divergence(0.85)
            .coalesce(0.85),
    );
    v
}

/// Profile of the naive comparison-style NMS: every thread owns one box and
/// checks it against every other box in its class ("doing it in a
/// comparison style" writes outputs behind divergent branches; the paper's
/// version instead initializes all outputs invalid). `O(n²/classes)` pair
/// checks with uncoalesced box reads and local scratch that spills to DRAM
/// on Mali.
pub fn naive_nms_profile(n_boxes: usize, n_classes: usize) -> KernelProfile {
    let per_class = (n_boxes / n_classes.max(1)).max(1);
    KernelProfile::new("nms/naive_all_pairs", n_boxes.max(1))
        .workgroup(32)
        .flops(8.0 * per_class as f64)
        .reads(6.0 * per_class as f64)
        .writes(24.0)
        .simd(0.3)
        .divergence(0.25)
        .imbalance(2.0)
        .coalesce(0.25)
        .slm(24.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes(rows: &[[f32; 6]]) -> Tensor {
        Tensor::from_vec([1, rows.len(), 6], rows.concat())
    }

    #[test]
    fn iou_identity_is_one() {
        assert_eq!(iou([0.0, 0.0, 2.0, 2.0], [0.0, 0.0, 2.0, 2.0]), 1.0);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        assert_eq!(iou([0.0, 0.0, 1.0, 1.0], [2.0, 2.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        // [0,2]x[0,2] vs [1,3]x[0,2]: inter 2, union 6
        let v = iou([0.0, 0.0, 2.0, 2.0], [1.0, 0.0, 3.0, 2.0]);
        assert!((v - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn suppresses_overlapping_same_class() {
        let t = boxes(&[
            [0.0, 0.9, 0.0, 0.0, 1.0, 1.0],
            [0.0, 0.8, 0.05, 0.05, 1.05, 1.05], // IoU ~0.82 with first
            [0.0, 0.7, 5.0, 5.0, 6.0, 6.0],
        ]);
        let y = box_nms(&t, &NmsConfig::default());
        let v = y.as_f32();
        assert_eq!(v[1], 0.9); // best kept
        assert_eq!(v[7], 0.7); // disjoint kept, in score order
        assert_eq!(v[12], -1.0); // third slot invalid
    }

    #[test]
    fn different_classes_do_not_suppress_by_default() {
        let t = boxes(&[
            [0.0, 0.9, 0.0, 0.0, 1.0, 1.0],
            [1.0, 0.8, 0.0, 0.0, 1.0, 1.0], // same box, other class
        ]);
        let keep = box_nms(&t, &NmsConfig::default());
        assert_eq!(keep.as_f32()[7], 0.8);
        let force = box_nms(&t, &NmsConfig { force_suppress: true, ..Default::default() });
        assert_eq!(force.as_f32()[7], -1.0);
    }

    #[test]
    fn valid_thresh_drops_low_scores() {
        let t = boxes(&[
            [0.0, 0.9, 0.0, 0.0, 1.0, 1.0],
            [0.0, 0.01, 5.0, 5.0, 6.0, 6.0],
        ]);
        let y = box_nms(&t, &NmsConfig { valid_thresh: 0.05, ..Default::default() });
        assert_eq!(y.as_f32()[7], -1.0);
    }

    #[test]
    fn negative_class_rows_are_ignored() {
        let t = boxes(&[
            [-1.0, 0.9, 0.0, 0.0, 1.0, 1.0],
            [0.0, 0.5, 2.0, 2.0, 3.0, 3.0],
        ]);
        let y = box_nms(&t, &NmsConfig::default());
        assert_eq!(y.as_f32()[1], 0.5);
        assert_eq!(y.as_f32()[7], -1.0);
    }

    #[test]
    fn topk_limits_candidates() {
        let t = boxes(&[
            [0.0, 0.9, 0.0, 0.0, 1.0, 1.0],
            [0.0, 0.8, 2.0, 0.0, 3.0, 1.0],
            [0.0, 0.7, 4.0, 0.0, 5.0, 1.0],
        ]);
        let y = box_nms(&t, &NmsConfig { topk: Some(2), ..Default::default() });
        let v = y.as_f32();
        assert_eq!(v[1], 0.9);
        assert_eq!(v[7], 0.8);
        assert_eq!(v[13], -1.0);
    }

    #[test]
    fn output_is_score_sorted() {
        let t = boxes(&[
            [0.0, 0.3, 0.0, 0.0, 1.0, 1.0],
            [0.0, 0.9, 2.0, 0.0, 3.0, 1.0],
            [0.0, 0.6, 4.0, 0.0, 5.0, 1.0],
        ]);
        let y = box_nms(&t, &NmsConfig::default());
        let v = y.as_f32();
        assert_eq!([v[1], v[7], v[13]], [0.9, 0.6, 0.3]);
    }

    #[test]
    fn batches_are_independent() {
        let mut data = vec![];
        data.extend_from_slice(&[0.0, 0.9, 0.0, 0.0, 1.0, 1.0]);
        data.extend_from_slice(&[0.0, 0.5, 0.0, 0.0, 1.0, 1.0]); // suppressed in batch 0
        data.extend_from_slice(&[0.0, 0.4, 0.0, 0.0, 1.0, 1.0]); // batch 1: kept
        data.extend_from_slice(&[0.0, 0.3, 9.0, 9.0, 10.0, 10.0]); // batch 1: kept
        let t = Tensor::from_vec([2, 2, 6], data);
        let y = box_nms(&t, &NmsConfig::default());
        let v = y.as_f32();
        assert_eq!(v[1], 0.9);
        assert_eq!(v[7], -1.0);
        assert_eq!(v[13], 0.4);
        assert_eq!(v[19], 0.3);
    }

    #[test]
    fn kept_boxes_never_violate_threshold() {
        // pseudo-random boxes; verify the NMS postcondition.
        let mut rows = vec![];
        for i in 0..40u32 {
            let x = (i * 7 % 13) as f32;
            let y = (i * 11 % 17) as f32;
            rows.push([
                (i % 3) as f32,
                0.1 + (i * 29 % 83) as f32 / 100.0,
                x,
                y,
                x + 2.0,
                y + 2.0,
            ]);
        }
        let t = boxes(&rows);
        let cfg = NmsConfig { iou_threshold: 0.4, ..Default::default() };
        let y = box_nms(&t, &cfg);
        let v = y.as_f32();
        let kept: Vec<(f32, [f32; 4])> = (0..40)
            .filter(|i| v[i * 6] >= 0.0)
            .map(|i| (v[i * 6], [v[i * 6 + 2], v[i * 6 + 3], v[i * 6 + 4], v[i * 6 + 5]]))
            .collect();
        for a in 0..kept.len() {
            for b in a + 1..kept.len() {
                if kept[a].0 == kept[b].0 {
                    assert!(
                        iou(kept[a].1, kept[b].1) <= cfg.iou_threshold + 1e-6,
                        "same-class survivors overlap too much"
                    );
                }
            }
        }
    }

    #[test]
    fn optimized_profile_beats_naive() {
        use unigpu_device::CostModel;
        let spec = unigpu_device::DeviceSpec::intel_hd505();
        let m = CostModel::new(spec.clone());
        let opt: f64 = nms_profiles(6132, &spec).iter().map(|p| m.kernel_time_ms(p)).sum();
        let naive = m.kernel_time_ms(&naive_nms_profile(6132, 21));
        assert!(naive > 2.0 * opt, "naive {naive:.3} vs optimized {opt:.3}");
    }
}
