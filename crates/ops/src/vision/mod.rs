//! Vision-specific operators (§3.1) — the control-flow-heavy operators that
//! keep object-detection models off integrated GPUs, each in an *optimized*
//! unified-GPU realization and (where Table 4 ablates it) a *naive* one.

pub mod ir_kernels;
pub mod multibox;
pub mod nms;
pub mod roi_align;
pub mod scan;
pub mod sort;
pub mod valid_counts;
pub mod yolo;

pub use multibox::{multibox_detection, multibox_prior, MultiboxConfig};
pub use nms::{box_nms, iou, NmsConfig};
pub use roi_align::roi_align;
pub use scan::{exclusive_scan, prefix_sum};
pub use sort::segmented_argsort;
pub use valid_counts::{get_valid_counts, topk};
