//! Convolution expressed in the unified IR — the path that, on real
//! hardware, feeds the OpenCL/CUDA code generators (Fig. 1).
//!
//! Used here to (a) prove the IR pipeline end-to-end on small shapes (lower →
//! interpret → match the native reference bit-for-bit is not expected across
//! f32/f64, so we compare within tolerance), and (b) emit the kernel sources
//! reported in EXPERIMENTS.md.

use crate::workload::ConvWorkload;
use unigpu_ir::compute::row_major_index;
use unigpu_ir::{Axis, BinOp, Compute, Expr};

/// Declare `conv2d_nchw` as a unified-IR compute for workload `w`.
///
/// Buffers: reads `data` (flat NCHW) and `weight` (flat OIHW), writes `out`.
/// Zero padding is expressed with a `Select` guard over clamped coordinates,
/// so every load stays in bounds regardless of schedule.
pub fn conv2d_compute(w: &ConvWorkload) -> Compute {
    assert_eq!(w.groups, 1, "the IR demo covers dense conv (groups=1)");
    let (n, c, oc) = (w.batch, w.in_channels, w.out_channels);
    let (ih, iw) = (w.height, w.width);
    let (oh, ow) = (w.out_h(), w.out_w());

    let axes = vec![
        Axis::new("n", n),
        Axis::new("oc", oc),
        Axis::new("oh", oh),
        Axis::new("ow", ow),
    ];
    let reduce = vec![
        Axis::new("ic", c),
        Axis::new("kh", w.kernel_h),
        Axis::new("kw", w.kernel_w),
    ];

    // hi = oh*stride + kh - pad (may be out of range: guarded)
    let hi = Expr::var("oh") * Expr::from(w.stride_h) + Expr::var("kh")
        - Expr::from(w.pad_h);
    let wi = Expr::var("ow") * Expr::from(w.stride_w) + Expr::var("kw")
        - Expr::from(w.pad_w);
    let in_range = Expr::bin(
        BinOp::And,
        Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Ge, hi.clone(), Expr::Int(0)),
            Expr::lt(hi.clone(), Expr::from(ih)),
        ),
        Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Ge, wi.clone(), Expr::Int(0)),
            Expr::lt(wi.clone(), Expr::from(iw)),
        ),
    );
    // Clamp coordinates so the load itself is always legal.
    let hc = Expr::max(Expr::min(hi, Expr::from(ih as i64 - 1)), Expr::Int(0));
    let wc = Expr::max(Expr::min(wi, Expr::from(iw as i64 - 1)), Expr::Int(0));

    let data_idx = row_major_index(&[
        (Expr::var("n"), 0),
        (Expr::var("ic"), c),
        (hc, ih),
        (wc, iw),
    ]);
    let weight_idx = row_major_index(&[
        (Expr::var("oc"), 0),
        (Expr::var("ic"), c),
        (Expr::var("kh"), w.kernel_h),
        (Expr::var("kw"), w.kernel_w),
    ]);
    let body = Expr::select(
        in_range,
        Expr::load("data", data_idx) * Expr::load("weight", weight_idx),
        Expr::Float(0.0),
    );
    let out_idx = row_major_index(&[
        (Expr::var("n"), 0),
        (Expr::var("oc"), oc),
        (Expr::var("oh"), oh),
        (Expr::var("ow"), ow),
    ]);
    Compute::reduce_sum("out", axes, reduce, body, out_idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::reference::conv2d_ref;
    use unigpu_ir::codegen::{generate, line_count, Target};
    use unigpu_ir::eval::Machine;
    use unigpu_ir::{lower, LoopTag, Schedule};
    use unigpu_tensor::init::random_uniform;
    use unigpu_tensor::Tensor;

    fn run_ir(w: &ConvWorkload, s: &Schedule, data: &Tensor, weight: &Tensor) -> Vec<f32> {
        let c = conv2d_compute(w);
        let stmt = lower(&c, s);
        let mut m = Machine::new()
            .with_buffer_f32("data", data.as_f32())
            .with_buffer_f32("weight", weight.as_f32())
            .with_buffer("out", vec![0.0; w.out_numel()]);
        m.run(&stmt);
        m.buffer_f32("out")
    }

    #[test]
    fn ir_conv_matches_native_reference() {
        let w = ConvWorkload::square(1, 3, 4, 8, 3, 1, 1);
        let data = random_uniform(w.input_shape(), 21);
        let wt = random_uniform(w.weight_shape(), 22);
        let c = conv2d_compute(&w);
        let got = run_ir(&w, &Schedule::default_for(&c), &data, &wt);
        let want = conv2d_ref(&data, &wt, &w);
        for (g, r) in got.iter().zip(want.as_f32()) {
            assert!((g - r).abs() < 1e-4, "{g} vs {r}");
        }
    }

    #[test]
    fn scheduled_ir_conv_matches_default() {
        let w = ConvWorkload::square(1, 2, 4, 6, 3, 2, 1);
        let data = random_uniform(w.input_shape(), 31);
        let wt = random_uniform(w.weight_shape(), 32);
        let c = conv2d_compute(&w);
        let base = run_ir(&w, &Schedule::default_for(&c), &data, &wt);

        let mut s = Schedule::default_for(&c);
        s.split("oc", 2).unwrap();
        s.bind("oc.o", LoopTag::BlockIdx(0)).unwrap();
        s.bind("oc.i", LoopTag::ThreadIdx(0)).unwrap();
        s.split("ow", 3).unwrap(); // imperfect: 3 ∤ out_w? out_w = 3 → perfect; use oh
        s.unroll("kw").unwrap();
        s.vectorize("ow.i").unwrap();
        let got = run_ir(&w, &s, &data, &wt);
        assert_eq!(got, base, "scheduling must not change IR results");
    }

    #[test]
    fn both_targets_generate_from_one_schedule() {
        let w = ConvWorkload::square(1, 8, 16, 14, 3, 1, 1);
        let c = conv2d_compute(&w);
        let mut s = Schedule::default_for(&c);
        s.split_bind("oc", 8, 0).unwrap();
        s.split("ow", 7).unwrap();
        s.vectorize("ow.i").unwrap();
        s.unroll("kw").unwrap();
        let stmt = lower(&c, &s);
        let ocl = generate("conv2d_nchw", &stmt, Target::OpenCl);
        let cu = generate("conv2d_nchw", &stmt, Target::Cuda);
        assert!(ocl.contains("__kernel"));
        assert!(cu.contains("__global__"));
        // §3.1.1-style conciseness check: the IR description is far smaller
        // than either generated kernel.
        assert!(line_count(&ocl) > 15);
        assert!(line_count(&cu) > 15);
    }
}
