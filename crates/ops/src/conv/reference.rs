//! Direct (naive-order) convolution — the functional ground truth every
//! schedule variant must reproduce exactly.
//!
//! The reduction order is fixed as `(ic_in_group, kh, kw)`; the spatial-pack
//! template keeps the same order so results are bit-identical (floating-point
//! addition is not associative, so this is the only way "schedules never
//! change results" can hold exactly rather than approximately).

use crate::workload::ConvWorkload;
use rayon::prelude::*;
use unigpu_tensor::Tensor;

/// 2-d convolution over `NCHW` data with `OIHW` weights, zero padding,
/// arbitrary stride and channel groups.
///
/// # Panics
/// Panics if tensor shapes disagree with the workload.
pub fn conv2d_ref(data: &Tensor, weight: &Tensor, w: &ConvWorkload) -> Tensor {
    assert_eq!(data.shape().dims(), w.input_shape(), "input shape mismatch");
    assert_eq!(weight.shape().dims(), w.weight_shape(), "weight shape mismatch");
    let (oh, ow) = (w.out_h(), w.out_w());
    let (ih, iw) = (w.height, w.width);
    let icg = w.in_ch_per_group();
    let ocg = w.out_ch_per_group();
    let x = data.as_f32();
    let k = weight.as_f32();

    let mut out = Tensor::zeros(w.output_shape());
    let out_plane = oh * ow;
    // One Rayon task per (n, oc) output plane: planes are disjoint.
    out.as_f32_mut()
        .par_chunks_mut(out_plane)
        .enumerate()
        .for_each(|(plane, o)| {
            let n = plane / w.out_channels;
            let oc = plane % w.out_channels;
            let g = oc / ocg;
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut acc = 0.0f32;
                    for ic in 0..icg {
                        let c = g * icg + ic;
                        for khi in 0..w.kernel_h {
                            let hi = (ohi * w.stride_h + khi) as isize - w.pad_h as isize;
                            if hi < 0 || hi >= ih as isize {
                                continue;
                            }
                            for kwi in 0..w.kernel_w {
                                let wi = (owi * w.stride_w + kwi) as isize - w.pad_w as isize;
                                if wi < 0 || wi >= iw as isize {
                                    continue;
                                }
                                let xv = x[((n * w.in_channels + c) * ih + hi as usize) * iw
                                    + wi as usize];
                                let kv = k[((oc * icg + ic) * w.kernel_h + khi) * w.kernel_w + kwi];
                                acc += xv * kv;
                            }
                        }
                    }
                    o[ohi * ow + owi] = acc;
                }
            }
        });
    out
}

/// Depthwise convolution (`groups == channels`), a thin wrapper that asserts
/// the workload really is depthwise.
pub fn depthwise_conv2d_ref(data: &Tensor, weight: &Tensor, w: &ConvWorkload) -> Tensor {
    assert!(w.is_depthwise(), "workload {w} is not depthwise");
    conv2d_ref(data, weight, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigpu_tensor::init::random_uniform;

    /// Scalar re-derivation with no loop tricks at all, for cross-checking.
    fn conv_scalar(data: &Tensor, weight: &Tensor, w: &ConvWorkload) -> Tensor {
        let mut out = Tensor::zeros(w.output_shape());
        let icg = w.in_ch_per_group();
        let ocg = w.out_ch_per_group();
        for n in 0..w.batch {
            for oc in 0..w.out_channels {
                for ohi in 0..w.out_h() {
                    for owi in 0..w.out_w() {
                        let mut acc = 0.0f32;
                        for ic in 0..icg {
                            for khi in 0..w.kernel_h {
                                for kwi in 0..w.kernel_w {
                                    let hi = ohi as isize * w.stride_h as isize + khi as isize
                                        - w.pad_h as isize;
                                    let wi = owi as isize * w.stride_w as isize + kwi as isize
                                        - w.pad_w as isize;
                                    if hi >= 0
                                        && hi < w.height as isize
                                        && wi >= 0
                                        && wi < w.width as isize
                                    {
                                        let c = (oc / ocg) * icg + ic;
                                        acc += data.at(&[n, c, hi as usize, wi as usize])
                                            * weight.at(&[oc, ic, khi, kwi]);
                                    }
                                }
                            }
                        }
                        out.set(&[n, oc, ohi, owi], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn matches_scalar_rederivation() {
        let w = ConvWorkload::square(2, 3, 8, 9, 3, 1, 1);
        let data = random_uniform(w.input_shape(), 1);
        let wt = random_uniform(w.weight_shape(), 2);
        assert_eq!(conv2d_ref(&data, &wt, &w), conv_scalar(&data, &wt, &w));
    }

    #[test]
    fn stride_and_pad_combinations() {
        for (k, s, p) in [(1, 1, 0), (3, 2, 1), (5, 1, 2), (7, 2, 3), (3, 1, 0)] {
            let w = ConvWorkload::square(1, 4, 6, 16, k, s, p);
            let data = random_uniform(w.input_shape(), 3);
            let wt = random_uniform(w.weight_shape(), 4);
            assert_eq!(
                conv2d_ref(&data, &wt, &w),
                conv_scalar(&data, &wt, &w),
                "k={k} s={s} p={p}"
            );
        }
    }

    #[test]
    fn identity_kernel_is_identity() {
        // 1x1 kernel with identity channel mixing copies the input.
        let w = ConvWorkload::square(1, 3, 3, 5, 1, 1, 0);
        let data = random_uniform(w.input_shape(), 5);
        let mut wt = Tensor::zeros(w.weight_shape());
        for c in 0..3 {
            wt.set(&[c, c, 0, 0], 1.0);
        }
        assert_eq!(conv2d_ref(&data, &wt, &w), data);
    }

    #[test]
    fn grouped_conv_blocks_cross_group_flow() {
        // 2 groups: output group 0 must ignore input channels of group 1.
        let mut w = ConvWorkload::square(1, 4, 4, 4, 1, 1, 0);
        w.groups = 2;
        let mut data = Tensor::zeros(w.input_shape());
        // put energy only in input channel 3 (group 1)
        for h in 0..4 {
            for x in 0..4 {
                data.set(&[0, 3, h, x], 1.0);
            }
        }
        let wt = Tensor::full(w.weight_shape(), 1.0);
        let out = conv2d_ref(&data, &wt, &w);
        // output channels 0,1 (group 0) see nothing
        for oc in 0..2 {
            for h in 0..4 {
                for x in 0..4 {
                    assert_eq!(out.at(&[0, oc, h, x]), 0.0);
                }
            }
        }
        // output channels 2,3 (group 1) see channel 3
        assert_eq!(out.at(&[0, 2, 0, 0]), 1.0);
    }

    #[test]
    fn depthwise_is_per_channel() {
        let w = ConvWorkload::depthwise(1, 3, 6, 3, 1, 1);
        let data = random_uniform(w.input_shape(), 7);
        let wt = random_uniform(w.weight_shape(), 8);
        let out = depthwise_conv2d_ref(&data, &wt, &w);
        assert_eq!(out, conv_scalar(&data, &wt, &w));
    }

    #[test]
    #[should_panic(expected = "not depthwise")]
    fn depthwise_wrapper_rejects_dense() {
        let w = ConvWorkload::square(1, 4, 4, 4, 3, 1, 1);
        let data = random_uniform(w.input_shape(), 1);
        let wt = random_uniform(w.weight_shape(), 2);
        depthwise_conv2d_ref(&data, &wt, &w);
    }
}
