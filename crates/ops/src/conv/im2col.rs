//! im2col + GEMM convolution — the other classic vendor-library lowering
//! (cuDNN's `IMPLICIT_GEMM` family, ACL's GEMM path).
//!
//! The input is unfolded so that every output pixel's receptive field
//! becomes one GEMM column; the convolution is then a single
//! `[OC × (IC·KH·KW)] × [(IC·KH·KW) × (OH·OW)]` matrix multiply. Costs extra
//! memory traffic for the unfolded matrix but converts any convolution into
//! the best-studied kernel on earth.

use crate::workload::ConvWorkload;
use unigpu_device::KernelProfile;
use unigpu_tensor::Tensor;

/// Unfold `NCHW` input into the `[(IC·KH·KW) × (N·OH·OW)]` column matrix.
pub fn im2col(data: &Tensor, w: &ConvWorkload) -> Tensor {
    assert_eq!(data.shape().dims(), w.input_shape());
    assert_eq!(w.groups, 1, "im2col path covers dense convolution");
    let (oh, ow) = (w.out_h(), w.out_w());
    let (ih, iw) = (w.height, w.width);
    let ic = w.in_channels;
    let rows = ic * w.kernel_h * w.kernel_w;
    let cols = w.batch * oh * ow;
    let x = data.as_f32();
    let mut out = Tensor::zeros([rows, cols]);
    let o = out.as_f32_mut();
    for c in 0..ic {
        for kh in 0..w.kernel_h {
            for kw in 0..w.kernel_w {
                let r = (c * w.kernel_h + kh) * w.kernel_w + kw;
                for n in 0..w.batch {
                    for ohi in 0..oh {
                        let hi = (ohi * w.stride_h + kh) as isize - w.pad_h as isize;
                        for owi in 0..ow {
                            let wi = (owi * w.stride_w + kw) as isize - w.pad_w as isize;
                            let col = (n * oh + ohi) * ow + owi;
                            o[r * cols + col] = if hi >= 0
                                && hi < ih as isize
                                && wi >= 0
                                && wi < iw as isize
                            {
                                x[((n * ic + c) * ih + hi as usize) * iw + wi as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
        }
    }
    out
}

/// Convolution as im2col + GEMM. Produces the standard `NCHW` output.
pub fn conv2d_im2col(data: &Tensor, weight: &Tensor, w: &ConvWorkload) -> Tensor {
    assert_eq!(weight.shape().dims(), w.weight_shape());
    let cols_mat = im2col(data, w);
    let (oh, ow) = (w.out_h(), w.out_w());
    let k = w.in_channels * w.kernel_h * w.kernel_w;
    let cols = w.batch * oh * ow;
    let a = weight.as_f32(); // [OC × K] row-major (OIHW flattens to exactly this)
    let b = cols_mat.as_f32(); // [K × cols]
    let mut out = Tensor::zeros(w.output_shape());
    let o = out.as_f32_mut();
    for oc in 0..w.out_channels {
        for col in 0..cols {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[oc * k + kk] * b[kk * cols + col];
            }
            // col = (n*oh + ohi)*ow + owi → output offset has oc inserted
            let n = col / (oh * ow);
            let rem = col % (oh * ow);
            o[(n * w.out_channels + oc) * oh * ow + rem] = acc;
        }
    }
    out
}

/// Cost profile of the im2col path: GEMM-grade compute efficiency bought
/// with an extra `K × cols` matrix materialization (the reason direct/
/// spatial-pack kernels win at inference batch-1).
pub fn im2col_profile(w: &ConvWorkload) -> Vec<KernelProfile> {
    let k = w.in_ch_per_group() * w.kernel_h * w.kernel_w;
    let cols = w.batch * w.out_h() * w.out_w();
    vec![
        KernelProfile::new(format!("im2col[{}]", w.key()), k * cols)
            .workgroup(128)
            .flops(1.0)
            .reads(4.0)
            .writes(4.0)
            .coalesce(0.6), // gather pattern
        KernelProfile::new(format!("gemm[{}]", w.key()), w.out_channels * cols / 16)
            .workgroup(128)
            .flops(2.0 * k as f64 * 16.0)
            .reads(2.0 * k as f64) // tiled: A and B panels amortized
            .writes(64.0)
            .coalesce(0.9)
            .ilp(0.9),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::reference::conv2d_ref;
    use unigpu_tensor::allclose;
    use unigpu_tensor::init::random_uniform;

    #[test]
    fn im2col_matrix_shape() {
        let w = ConvWorkload::square(1, 3, 8, 6, 3, 1, 1);
        let data = random_uniform(w.input_shape(), 61);
        let m = im2col(&data, &w);
        assert_eq!(m.shape().dims(), &[3 * 9, 36]);
    }

    #[test]
    fn im2col_zero_pads_borders() {
        let w = ConvWorkload::square(1, 1, 1, 3, 3, 1, 1);
        let data = Tensor::full(w.input_shape(), 1.0);
        let m = im2col(&data, &w);
        // first row = kernel position (0,0): top-left output sees padding
        assert_eq!(m.at(&[0, 0]), 0.0);
        // center kernel position never sees padding
        assert_eq!(m.at(&[4, 0]), 1.0);
    }

    #[test]
    fn gemm_conv_matches_direct() {
        for (k, s, p) in [(1, 1, 0), (3, 1, 1), (3, 2, 1), (5, 1, 2)] {
            let w = ConvWorkload::square(2, 3, 5, 9, k, s, p);
            let data = random_uniform(w.input_shape(), 63);
            let wt = random_uniform(w.weight_shape(), 64);
            let direct = conv2d_ref(&data, &wt, &w);
            let gemm = conv2d_im2col(&data, &wt, &w);
            assert!(allclose(&gemm, &direct, 1e-4, 1e-5), "k={k} s={s} p={p}");
        }
    }

    #[test]
    fn profile_includes_materialization_cost() {
        let w = ConvWorkload::square(1, 64, 64, 56, 3, 1, 1);
        let ps = im2col_profile(&w);
        assert_eq!(ps.len(), 2);
        assert!(ps[0].total_bytes() > (64 * 9 * 56 * 56 * 4) as f64);
    }
}
