//! Convolution: reference kernels, the tunable spatial-pack template, and the
//! schedule-config → cost-model bridge.

pub mod config;
pub mod im2col;
pub mod winograd;
pub mod profile;
pub mod reference;
pub mod spatial_pack;
pub mod te;

pub use config::{ConfigSpace, ConvConfig, FallbackClass};
pub use profile::conv_profile;
pub use reference::{conv2d_ref, depthwise_conv2d_ref};
pub use im2col::conv2d_im2col;
pub use spatial_pack::conv2d_spatial_pack;
pub use winograd::conv2d_winograd;
