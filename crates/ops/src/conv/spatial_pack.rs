//! The spatial-pack convolution template: the schedule-parameterized kernel
//! that AutoTVM searches (§3.2.2).
//!
//! The loop structure follows the paper's heuristics — output channels split
//! into register-tile groups, feature map split along height, reduction nest
//! unrolled, innermost columns vectorized — all under the control of a
//! [`ConvConfig`]. The reduction order per output element is identical to
//! [`crate::conv::reference::conv2d_ref`] `(ic, kh, kw)`, so any
//! configuration produces **bit-identical** results to the reference (the
//! "schedules never change results" invariant; property-tested in
//! `tests/prop_conv.rs`).

use super::config::ConvConfig;
use crate::workload::ConvWorkload;
use unigpu_tensor::Tensor;

/// Tiled convolution under a schedule configuration.
///
/// # Panics
/// Panics if tensor shapes disagree with the workload or the config has a
/// zero tile.
pub fn conv2d_spatial_pack(
    data: &Tensor,
    weight: &Tensor,
    w: &ConvWorkload,
    cfg: &ConvConfig,
) -> Tensor {
    assert_eq!(data.shape().dims(), w.input_shape(), "input shape mismatch");
    assert_eq!(weight.shape().dims(), w.weight_shape(), "weight shape mismatch");
    assert!(cfg.tile_size() > 0, "degenerate tile in {cfg:?}");

    let (toc, toh, tow) = (cfg.tile_oc, cfg.tile_oh, cfg.tile_ow);
    let (oh, ow) = (w.out_h(), w.out_w());
    let (ih, iw) = (w.height, w.width);
    let icg = w.in_ch_per_group();
    let ocg = w.out_ch_per_group();
    let x = data.as_f32();
    let k = weight.as_f32();
    let mut out = Tensor::zeros(w.output_shape());
    let o = out.as_f32_mut();

    // Work-item grid: (n, oc-tile, oh-tile, ow-tile). Each iteration of the
    // body below is one simulated work-item computing a register tile.
    for n in 0..w.batch {
        for oct in 0..w.out_channels.div_ceil(toc) {
            for oht in 0..oh.div_ceil(toh) {
                for owt in 0..ow.div_ceil(tow) {
                    // acc = register tile, kept in GRF on real hardware.
                    let mut acc = vec![0.0f32; toc * toh * tow];
                    // Reduction nest (ic, kh, kw) with spatial tile innermost
                    // — the register-tiled form produced by `ir::lower`.
                    for ic in 0..icg {
                        for khi in 0..w.kernel_h {
                            for kwi in 0..w.kernel_w {
                                for ti in 0..toc {
                                    let oc = oct * toc + ti;
                                    if oc >= w.out_channels {
                                        continue; // imperfect-split guard
                                    }
                                    let g = oc / ocg;
                                    let c = g * icg + ic;
                                    let kv =
                                        k[((oc * icg + ic) * w.kernel_h + khi) * w.kernel_w + kwi];
                                    for th in 0..toh {
                                        let ohi = oht * toh + th;
                                        if ohi >= oh {
                                            continue;
                                        }
                                        let hi = (ohi * w.stride_h + khi) as isize
                                            - w.pad_h as isize;
                                        if hi < 0 || hi >= ih as isize {
                                            continue;
                                        }
                                        // Columns walk in vector_width chunks:
                                        // functionally a plain loop, split to
                                        // mirror the vectorized codegen.
                                        let mut tw = 0;
                                        while tw < tow {
                                            let lanes = cfg.vector_width.max(1).min(tow - tw);
                                            for lane in 0..lanes {
                                                let owi = owt * tow + tw + lane;
                                                if owi >= ow {
                                                    continue;
                                                }
                                                let wi = (owi * w.stride_w + kwi) as isize
                                                    - w.pad_w as isize;
                                                if wi < 0 || wi >= iw as isize {
                                                    continue;
                                                }
                                                let xv = x[((n * w.in_channels + c) * ih
                                                    + hi as usize)
                                                    * iw
                                                    + wi as usize];
                                                acc[(ti * toh + th) * tow + tw + lane] += xv * kv;
                                            }
                                            tw += lanes;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Write-back with imperfect-tile guards.
                    for ti in 0..toc {
                        let oc = oct * toc + ti;
                        if oc >= w.out_channels {
                            continue;
                        }
                        for th in 0..toh {
                            let ohi = oht * toh + th;
                            if ohi >= oh {
                                continue;
                            }
                            for tw in 0..tow {
                                let owi = owt * tow + tw;
                                if owi >= ow {
                                    continue;
                                }
                                o[((n * w.out_channels + oc) * oh + ohi) * ow + owi] =
                                    acc[(ti * toh + th) * tow + tw];
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::reference::conv2d_ref;
    use unigpu_tensor::init::random_uniform;

    fn check(w: &ConvWorkload, cfg: &ConvConfig) {
        let data = random_uniform(w.input_shape(), 11);
        let wt = random_uniform(w.weight_shape(), 12);
        let r = conv2d_ref(&data, &wt, w);
        let s = conv2d_spatial_pack(&data, &wt, w, cfg);
        assert_eq!(r, s, "cfg {cfg:?} diverged on {w}");
    }

    #[test]
    fn default_config_bitwise_equal() {
        let w = ConvWorkload::square(1, 8, 16, 14, 3, 1, 1);
        check(&w, &ConvConfig::default_schedule());
    }

    #[test]
    fn aggressive_tiles_bitwise_equal() {
        let w = ConvWorkload::square(1, 8, 16, 14, 3, 1, 1);
        let cfg = ConvConfig {
            tile_oc: 8,
            tile_oh: 4,
            tile_ow: 8,
            vector_width: 8,
            unroll: 4,
            workgroup: (16, 16),
            use_subgroup: true,
            use_slm: true,
        };
        check(&w, &cfg);
    }

    #[test]
    fn imperfect_tiles_bitwise_equal() {
        // 14 outputs, tiles of 4/8 don't divide → guards exercised.
        let w = ConvWorkload::square(1, 5, 7, 13, 3, 2, 1);
        let cfg = ConvConfig {
            tile_oc: 4,
            tile_oh: 4,
            tile_ow: 8,
            vector_width: 4,
            unroll: 2,
            workgroup: (8, 8),
            use_subgroup: false,
            use_slm: false,
        };
        check(&w, &cfg);
    }

    #[test]
    fn depthwise_bitwise_equal() {
        let w = ConvWorkload::depthwise(1, 8, 10, 3, 1, 1);
        let cfg = ConvConfig { tile_oc: 4, tile_ow: 4, ..ConvConfig::default_schedule() };
        check(&w, &cfg);
    }

    #[test]
    fn grouped_bitwise_equal() {
        let mut w = ConvWorkload::square(1, 8, 8, 6, 3, 1, 1);
        w.groups = 2;
        // tile_oc = 3 straddles the group boundary — must still be correct.
        let cfg = ConvConfig { tile_oc: 3, ..ConvConfig::default_schedule() };
        check(&w, &cfg);
    }

    #[test]
    fn strided_padded_bitwise_equal() {
        let w = ConvWorkload::square(2, 3, 4, 11, 5, 2, 2);
        let cfg = ConvConfig {
            tile_oc: 2,
            tile_oh: 2,
            tile_ow: 4,
            vector_width: 2,
            ..ConvConfig::default_schedule()
        };
        check(&w, &cfg);
    }
}
