//! Schedule configurations and the AutoTVM-style search space.
//!
//! A [`ConvConfig`] is one point of the template's knob space (§3.2.2): the
//! register-tile shape, explicit vector width, reduction unrolling,
//! work-group shape, and the Intel-specific subgroup / shared-local-memory
//! toggles. [`ConfigSpace`] enumerates the whole space with radix indexing so
//! tuners can address configurations by a single integer, exactly like
//! AutoTVM's `ConfigEntity` index.

use crate::workload::ConvWorkload;
use serde::{Deserialize, Serialize};
use unigpu_device::{DeviceSpec, Vendor};

/// Quality class of the pre-existing (untuned) schedule for a workload —
/// drives the "Before" column of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackClass {
    /// A well-studied shape with a decent hand-written schedule.
    HandTuned,
    /// Covered by a generic template without shape-specific care.
    Generic,
    /// Novel shape; only the naive schedule exists.
    Naive,
}

/// One schedule configuration of the convolution template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvConfig {
    /// Output channels computed per work-item (register tile, channel dim).
    pub tile_oc: usize,
    /// Output rows per work-item ("splitting the feature map along the
    /// height dimension", §3.2.2).
    pub tile_oh: usize,
    /// Output columns per work-item.
    pub tile_ow: usize,
    /// Explicit SIMD vector width used by the kernel body.
    pub vector_width: usize,
    /// Unroll factor applied to the reduction nest (1 = no unrolling).
    pub unroll: usize,
    /// Work-group shape `(x, y)` — `x·y` work-items per group.
    pub workgroup: (usize, usize),
    /// Use Intel subgroup block reads/shuffles (no-op on other vendors).
    pub use_subgroup: bool,
    /// Stage the input tile in shared local memory.
    pub use_slm: bool,
}

impl ConvConfig {
    /// The untuned default the paper's "Before" column corresponds to: a
    /// plausible hand-written schedule with modest tiling and no
    /// device-specific tricks.
    pub fn default_schedule() -> Self {
        ConvConfig {
            tile_oc: 2,
            tile_oh: 1,
            tile_ow: 2,
            vector_width: 1,
            unroll: 1,
            workgroup: (8, 8),
            use_subgroup: false,
            use_slm: false,
        }
    }

    /// The schedule an *untuned* stack would pick for this workload — the
    /// paper's "Before" column in Table 5.
    ///
    /// Mirrors reality: classic, well-studied shapes (ResNet-style 3×3/7×7
    /// convolutions over wide, even channel counts) ship with a reasonable
    /// hand-written schedule, while novel shapes (depthwise, SqueezeNet's
    /// fire modules) fall back to a naive generic schedule — "the network is
    /// fairly new so there is no manually written implementation of it in
    /// good performance" (§4.4).
    pub fn fallback_for(w: &ConvWorkload, spec: &DeviceSpec) -> Self {
        let naive = ConvConfig {
            tile_oc: 1,
            tile_oh: 1,
            tile_ow: 1,
            vector_width: 1,
            unroll: 1,
            workgroup: (8, 4),
            use_subgroup: false,
            use_slm: false,
        };
        let class = Self::fallback_class(w);
        // Fallback quality is a property of the *backend*, not just the
        // shape: in the TVM-0.5 era the Intel OpenCL backend shipped with
        // the authors' own fresh template (decent untuned numbers, Table 5
        // row 1: only 1.2–1.4x left for tuning), the Mali backend had the
        // schedules of [6] for classic shapes only, and the CUDA fallback
        // schedules were poor across the board (9.6–39x tuning headroom).
        match spec.vendor {
            Vendor::Intel => match (w.is_depthwise(), class) {
                (true, _) => naive, // the depthwise template gap (§4.2)
                (false, FallbackClass::Naive) => ConvConfig {
                    tile_oc: 2.min(w.out_channels),
                    tile_oh: 1,
                    tile_ow: 2.min(w.out_w()),
                    vector_width: 4,
                    unroll: 2,
                    workgroup: (8, 8),
                    use_subgroup: false,
                    use_slm: false,
                },
                (false, _) => ConvConfig {
                    tile_oc: 4.min(w.out_channels),
                    tile_oh: 1,
                    tile_ow: 4.min(w.out_w()),
                    vector_width: 8,
                    unroll: 4,
                    workgroup: (16, 4),
                    use_subgroup: true,
                    use_slm: false,
                },
            },
            Vendor::Arm => match class {
                FallbackClass::HandTuned => ConvConfig {
                    tile_oc: 4.min(w.out_channels),
                    tile_oh: 1,
                    tile_ow: 4.min(w.out_w()),
                    vector_width: 4,
                    unroll: 2,
                    workgroup: (8, 8),
                    use_subgroup: false,
                    use_slm: false,
                },
                FallbackClass::Generic => ConvConfig {
                    tile_oc: 2.min(w.out_channels),
                    tile_oh: 1,
                    tile_ow: 2.min(w.out_w()),
                    vector_width: 2,
                    unroll: 1,
                    workgroup: (8, 8),
                    use_subgroup: false,
                    use_slm: false,
                },
                FallbackClass::Naive => ConvConfig { workgroup: (4, 4), ..naive },
            },
            Vendor::Nvidia => match class {
                // even "known" shapes only had a weak generic CUDA fallback
                FallbackClass::HandTuned | FallbackClass::Generic => ConvConfig {
                    tile_oc: 1,
                    tile_oh: 1,
                    tile_ow: 1,
                    vector_width: 1,
                    unroll: 1,
                    workgroup: (8, 2), // half-warp groups: lanes idle
                    use_subgroup: false,
                    use_slm: false,
                },
                FallbackClass::Naive => ConvConfig { workgroup: (1, 1), ..naive },
            },
            Vendor::Generic => match class {
                FallbackClass::HandTuned | FallbackClass::Generic => ConvConfig {
                    tile_oc: 2.min(w.out_channels),
                    tile_oh: 1,
                    tile_ow: 2.min(w.out_w()),
                    vector_width: spec.simd_width,
                    unroll: 2,
                    workgroup: (8, 8),
                    use_subgroup: false,
                    use_slm: false,
                },
                FallbackClass::Naive => naive,
            },
        }
    }

    /// Classify how good the pre-existing (untuned) schedule for a shape is.
    pub fn fallback_class(w: &ConvWorkload) -> FallbackClass {
        let wide = w.out_channels >= 64 && w.in_channels >= 64;
        if w.is_depthwise() || w.groups > 1 || !wide {
            // Novel shapes: depthwise, grouped, narrow towers (SqueezeNet's
            // squeeze/expand mixes) — "no manually written implementation of
            // it in good performance" (§4.4).
            FallbackClass::Naive
        } else if matches!(w.kernel_h, 1 | 3 | 5 | 7) && w.kernel_h == w.kernel_w && wide {
            // Classic, heavily studied dense convolutions (ResNet trunk,
            // wide 1x1 projections).
            FallbackClass::HandTuned
        } else {
            // 1×1 projections and other intermediate shapes.
            FallbackClass::Generic
        }
    }

    /// Work-items per work-group.
    pub fn workgroup_size(&self) -> usize {
        self.workgroup.0 * self.workgroup.1
    }

    /// Outputs produced per work-item.
    pub fn tile_size(&self) -> usize {
        self.tile_oc * self.tile_oh * self.tile_ow
    }

    /// Total work-items needed for a workload under this config.
    pub fn work_items(&self, w: &ConvWorkload) -> usize {
        w.batch
            * w.out_channels.div_ceil(self.tile_oc)
            * w.out_h().div_ceil(self.tile_oh)
            * w.out_w().div_ceil(self.tile_ow)
    }

    /// Stable string form for the tuning-record database.
    pub fn key(&self) -> String {
        format!(
            "oc{}oh{}ow{}v{}u{}wg{}x{}sg{}slm{}",
            self.tile_oc,
            self.tile_oh,
            self.tile_ow,
            self.vector_width,
            self.unroll,
            self.workgroup.0,
            self.workgroup.1,
            self.use_subgroup as u8,
            self.use_slm as u8
        )
    }
}

/// The enumerable knob space of the template for one (workload, device).
///
/// Knob menus are pruned by the workload (tiles never exceed the output
/// extents) and the device (subgroup only on Intel, SLM only where hardware
/// has it, vector width bounded by twice the native SIMD width) — the same
/// pruning AutoTVM templates perform with `define_split`/`define_knob`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigSpace {
    pub tile_oc: Vec<usize>,
    pub tile_oh: Vec<usize>,
    pub tile_ow: Vec<usize>,
    pub vector_width: Vec<usize>,
    pub unroll: Vec<usize>,
    pub workgroup: Vec<(usize, usize)>,
    pub use_subgroup: Vec<bool>,
    pub use_slm: Vec<bool>,
}

fn menu_leq(candidates: &[usize], cap: usize) -> Vec<usize> {
    let v: Vec<usize> = candidates.iter().copied().filter(|&x| x <= cap).collect();
    if v.is_empty() {
        vec![1]
    } else {
        v
    }
}

impl ConfigSpace {
    /// Build the pruned knob space for a workload on a device.
    pub fn build(w: &ConvWorkload, spec: &DeviceSpec) -> Self {
        let depthwise = w.is_depthwise();
        let max_vw = spec.simd_width * 2;
        // The paper notes the Intel depthwise template is immature (§4.2,
        // "our depth-wise convolution has not been fully optimized for Intel
        // Graphics"): reproduce that template gap by restricting its knobs.
        let intel_dw_gap = depthwise && spec.vendor == Vendor::Intel;
        let vector_menu: Vec<usize> = if intel_dw_gap {
            menu_leq(&[1, 2, 4], max_vw)
        } else {
            menu_leq(&[1, 2, 4, 8, 16], max_vw)
        };
        // The immature Intel depthwise template (§4.2) also lacks the wide
        // spatial register tiles of the dense template.
        let tile_ow_menu: &[usize] = if intel_dw_gap { &[1, 2, 4] } else { &[1, 2, 4, 8] };
        ConfigSpace {
            tile_oc: menu_leq(&[1, 2, 4, 8, 16], w.out_channels),
            tile_oh: menu_leq(&[1, 2, 4], w.out_h()),
            tile_ow: menu_leq(tile_ow_menu, w.out_w()),
            vector_width: vector_menu,
            unroll: vec![1, 2, 4, 8],
            workgroup: vec![(8, 8), (16, 4), (32, 4), (64, 1), (16, 16), (32, 8), (8, 4)],
            use_subgroup: if spec.has_subgroups && !intel_dw_gap {
                vec![false, true]
            } else {
                vec![false]
            },
            use_slm: if spec.has_slm { vec![false, true] } else { vec![false] },
        }
    }

    /// Number of configurations in the space.
    pub fn len(&self) -> usize {
        self.tile_oc.len()
            * self.tile_oh.len()
            * self.tile_ow.len()
            * self.vector_width.len()
            * self.unroll.len()
            * self.workgroup.len()
            * self.use_subgroup.len()
            * self.use_slm.len()
    }

    /// True when the space is degenerate-empty (never happens in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode a flat index (radix decomposition over the knob menus).
    ///
    /// # Panics
    /// Panics if `index >= self.len()`.
    pub fn get(&self, index: usize) -> ConvConfig {
        assert!(index < self.len(), "config index {index} out of space of {}", self.len());
        let mut i = index;
        let mut take = |n: usize| {
            let r = i % n;
            i /= n;
            r
        };
        ConvConfig {
            tile_oc: self.tile_oc[take(self.tile_oc.len())],
            tile_oh: self.tile_oh[take(self.tile_oh.len())],
            tile_ow: self.tile_ow[take(self.tile_ow.len())],
            vector_width: self.vector_width[take(self.vector_width.len())],
            unroll: self.unroll[take(self.unroll.len())],
            workgroup: self.workgroup[take(self.workgroup.len())],
            use_subgroup: self.use_subgroup[take(self.use_subgroup.len())],
            use_slm: self.use_slm[take(self.use_slm.len())],
        }
    }

    /// Per-knob cardinalities, for tuner neighbourhood moves.
    pub fn radix(&self) -> Vec<usize> {
        vec![
            self.tile_oc.len(),
            self.tile_oh.len(),
            self.tile_ow.len(),
            self.vector_width.len(),
            self.unroll.len(),
            self.workgroup.len(),
            self.use_subgroup.len(),
            self.use_slm.len(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigpu_device::DeviceSpec;

    fn wl() -> ConvWorkload {
        ConvWorkload::square(1, 64, 64, 56, 3, 1, 1)
    }

    #[test]
    fn space_size_is_product_of_menus() {
        let s = ConfigSpace::build(&wl(), &DeviceSpec::intel_hd505());
        assert_eq!(s.len(), s.radix().iter().product::<usize>());
        assert!(s.len() > 1000, "space should be non-trivial: {}", s.len());
    }

    #[test]
    fn decode_covers_all_indices_uniquely() {
        let s = ConfigSpace::build(&wl(), &DeviceSpec::mali_t860());
        let n = s.len();
        let mut seen = std::collections::HashSet::new();
        for i in (0..n).step_by(17) {
            let c = s.get(i);
            assert!(seen.insert(c.key()), "duplicate config at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of space")]
    fn decode_oob_panics() {
        let s = ConfigSpace::build(&wl(), &DeviceSpec::mali_t860());
        s.get(s.len());
    }

    #[test]
    fn mali_space_has_no_subgroup_or_slm() {
        let s = ConfigSpace::build(&wl(), &DeviceSpec::mali_t860());
        assert_eq!(s.use_subgroup, vec![false]);
        assert_eq!(s.use_slm, vec![false]);
    }

    #[test]
    fn intel_space_offers_subgroups() {
        let s = ConfigSpace::build(&wl(), &DeviceSpec::intel_hd505());
        assert_eq!(s.use_subgroup, vec![false, true]);
        assert_eq!(s.use_slm, vec![false, true]);
    }

    #[test]
    fn intel_depthwise_template_gap() {
        let dw = ConvWorkload::depthwise(1, 32, 112, 3, 1, 1);
        let s = ConfigSpace::build(&dw, &DeviceSpec::intel_hd505());
        assert_eq!(s.use_subgroup, vec![false], "depthwise-on-Intel gap");
        assert!(s.vector_width.iter().all(|&v| v <= 4));
        // ...but the Mali space for the same workload is unrestricted.
        let sm = ConfigSpace::build(&dw, &DeviceSpec::mali_t860());
        assert!(sm.vector_width.iter().any(|&v| v > 4));
    }

    #[test]
    fn tiles_never_exceed_output_extent() {
        let tiny = ConvWorkload::square(1, 4, 4, 3, 3, 1, 1); // 3x3 output... actually out=3
        let s = ConfigSpace::build(&tiny, &DeviceSpec::intel_hd505());
        assert!(s.tile_ow.iter().all(|&t| t <= tiny.out_w()));
        assert!(s.tile_oc.iter().all(|&t| t <= 4));
    }

    #[test]
    fn work_items_cover_output() {
        let w = wl();
        let c = ConvConfig { tile_oc: 4, tile_oh: 2, tile_ow: 8, ..ConvConfig::default_schedule() };
        let items = c.work_items(&w);
        assert!(items * c.tile_size() >= w.out_numel());
    }

    #[test]
    fn default_schedule_is_in_every_space() {
        // The "Before" config must be expressible so Table 5 is a fair
        // within-template comparison.
        for spec in [DeviceSpec::intel_hd505(), DeviceSpec::mali_t860(), DeviceSpec::maxwell_nano()] {
            let s = ConfigSpace::build(&wl(), &spec);
            let d = ConvConfig::default_schedule();
            assert!(s.tile_oc.contains(&d.tile_oc));
            assert!(s.vector_width.contains(&d.vector_width));
            assert!(s.workgroup.contains(&d.workgroup));
        }
    }
}
