//! The schedule-config → cost-model bridge for convolutions.
//!
//! This module encodes the optimization insights of §3.2.1/§3.2.2 as an
//! analytic mapping from a [`ConvConfig`] to a [`KernelProfile`]:
//!
//! * register tiles raise arithmetic intensity (input/weight reuse) until
//!   they exceed the register file, at which point spills re-inflate memory
//!   traffic — on Intel the GRF "is playing a much more critical role than
//!   others" (§3.2.1);
//! * Intel subgroups broadcast weights through the hardware thread's shared
//!   register file (`intel_subgroup_block_read`), multiplying weight reuse;
//! * staging input tiles in shared local memory helps — except on Mali,
//!   where SLM does not exist and the cost model spills it to DRAM;
//! * each vendor rewards a different vectorization style (warp-width
//!   work-groups on Nvidia, explicit `float4` on Mali, SIMD-8/16 subgroups
//!   on Intel);
//! * unrolling buys instruction-level parallelism with an icache cliff;
//! * imperfect tiles cost guard-branch divergence.

use super::config::ConvConfig;
use crate::workload::ConvWorkload;
use unigpu_device::{DeviceSpec, KernelProfile, Vendor};

/// Baseline input reuse from caches even without explicit staging (rows of
/// the input tile overlap between adjacent work-items).
const BASE_INPUT_REUSE: f64 = 2.0;
/// Cap on intra-work-group weight-sharing reuse.
const MAX_WG_WEIGHT_REUSE: f64 = 32.0;
/// Extra input reuse bought by SLM staging.
const SLM_INPUT_REUSE: f64 = 4.0;
/// Scalar (non-vector) access wastes most of each DRAM burst.
const SCALAR_COALESCING: f64 = 0.35;
/// Wide vector access achieves most of peak bandwidth.
const VECTOR_COALESCING: f64 = 0.92;

/// Registers (in f32) available to one work-item's accumulator tile.
fn register_capacity(spec: &DeviceSpec) -> f64 {
    let per_thread = (spec.grf_kb_per_thread.max(1) * 1024 / 4) as f64;
    match spec.vendor {
        // Intel: a hardware thread's 4 KiB GRF is shared by the SIMD lanes
        // (work-items) of its subgroup.
        Vendor::Intel => per_thread / spec.simd_width as f64,
        _ => per_thread,
    }
}

/// Vendor-specific SIMD-lane utilization of a configuration (§2.1, §3.2.1).
fn simd_utilization(cfg: &ConvConfig, spec: &DeviceSpec) -> f64 {
    let wg = cfg.workgroup_size();
    let vw = cfg.vector_width.max(1);
    match spec.vendor {
        Vendor::Nvidia => {
            // Warps are 32 wide; partial warps idle lanes. Explicit vectors
            // beyond float4 only add register pressure.
            let warp = spec.simd_width;
            let full = (wg / warp) * warp;
            let warp_util = if wg >= warp { full as f64 / wg as f64 } else { wg as f64 / warp as f64 };
            let vw_penalty = if vw > 4 { 0.9 } else { 1.0 };
            warp_util * vw_penalty
        }
        Vendor::Intel => {
            // The compiler packs work-items into SIMD-8/16 instructions when
            // the kernel vector width matches the FPU layout (§3.2.1).
            let lanes = spec.simd_width;
            if vw >= lanes {
                if vw % lanes == 0 {
                    1.0
                } else {
                    0.7
                }
            } else {
                0.45 + 0.55 * vw as f64 / lanes as f64
            }
        }
        Vendor::Arm => {
            // Mali executes explicit vec4 arithmetic; scalar code wastes the
            // SIMD ALU.
            let lanes = spec.simd_width as f64; // 4
            let base = (vw as f64).min(lanes) / lanes;
            if vw > spec.simd_width {
                base * 0.85 // split into multiple ops, mild overhead
            } else {
                base
            }
        }
        Vendor::Generic => (vw as f64).min(spec.simd_width as f64) / spec.simd_width as f64,
    }
}

/// Instruction-level-parallelism factor from reduction unrolling.
fn ilp_factor(cfg: &ConvConfig) -> f64 {
    let u = cfg.unroll.max(1) as f64;
    let gain = 0.62 + 0.38 * (u.min(8.0) / 8.0);
    if cfg.unroll > 16 {
        gain * 0.85 // icache pressure from over-unrolling
    } else {
        gain
    }
}

/// Build the cost-model profile for one convolution launch.
pub fn conv_profile(w: &ConvWorkload, cfg: &ConvConfig, spec: &DeviceSpec) -> KernelProfile {
    let icg = w.in_ch_per_group() as f64;
    let tile = cfg.tile_size() as f64;
    let items = cfg.work_items(w);
    let red = icg * (w.kernel_h * w.kernel_w) as f64;
    let flops_item = 2.0 * red * tile;

    // ---- register pressure / spills ----
    let regs_needed = tile + cfg.tile_ow as f64 + cfg.tile_oc as f64 + 2.0 * cfg.vector_width as f64 + 8.0;
    let spill = (regs_needed / register_capacity(spec)).max(1.0);

    // ---- global traffic per item after reuse ----
    let in_rows = (cfg.tile_oh * w.stride_h + w.kernel_h).saturating_sub(w.stride_h) as f64;
    let in_cols = (cfg.tile_ow * w.stride_w + w.kernel_w).saturating_sub(w.stride_w) as f64;
    let in_bytes = icg * in_rows * in_cols * 4.0;
    let wgt_bytes = cfg.tile_oc as f64 * red * 4.0;

    let mut weight_reuse = (cfg.workgroup_size() as f64).min(MAX_WG_WEIGHT_REUSE);
    let mut input_reuse = BASE_INPUT_REUSE;
    let mut slm_bytes = 0.0;
    if cfg.use_subgroup && spec.has_subgroups {
        weight_reuse *= spec.simd_width as f64;
    }
    let mut barriers = 0;
    if cfg.use_slm {
        input_reuse *= SLM_INPUT_REUSE;
        slm_bytes = in_bytes; // charged to DRAM on SLM-less devices (Mali)
        barriers = 2; // fill + drain synchronization around the staged tile
    }
    let mut bytes_read = (in_bytes / input_reuse + wgt_bytes / weight_reuse) * spill;
    let bytes_written = tile * 4.0 * spill;

    // Depthwise layout gap: a depthwise kernel without the right data-
    // movement idiom for its device pays strided per-channel-plane walks
    // that re-fetch the halo on every tap. On Intel the idiom is subgroup
    // block reads over a blocked layout — clDNN's mature kernel has it, our
    // template does not ("optimizing depth-wise convolutions on Intel
    // Graphics ... remains our future work", §4.2). On Mali it is explicit
    // vec4 staging, which tuned schedules reach and naive ones do not.
    let dw_gap_refetch = if !w.is_depthwise() {
        0.0
    } else {
        match spec.vendor {
            // clDNN's kernel uses subgroup block reads; ours cannot.
            Vendor::Intel if !(cfg.use_subgroup && spec.has_subgroups) => 12.0,
            // On Mali only explicit vec4 staging avoids the refetch storm.
            Vendor::Arm if cfg.vector_width < 4 => 6.0,
            _ => 0.0,
        }
    };
    let dw_layout_gap = dw_gap_refetch > 0.0;
    if dw_layout_gap {
        // The strided per-channel-plane walks defeat the cache entirely:
        // traffic is the raw halo footprint times the refetch factor, with
        // no register/SLM reuse credit.
        bytes_read = (in_bytes * dw_gap_refetch + wgt_bytes) * spill;
    }

    // ---- penalty factors ----
    let guards = [
        w.out_channels % cfg.tile_oc != 0,
        w.out_h() % cfg.tile_oh != 0,
        w.out_w() % cfg.tile_ow != 0,
    ]
    .iter()
    .filter(|&&g| g)
    .count();
    let divergence = 1.0 - 0.06 * guards as f64;

    let vw = cfg.vector_width.max(1) as f64;
    let mut coalescing = match spec.vendor {
        // Warps coalesce per-thread scalar accesses across the 32 lanes:
        // what matters is full warps, not explicit vector width.
        Vendor::Nvidia => {
            if cfg.workgroup_size() % spec.simd_width == 0 {
                VECTOR_COALESCING
            } else {
                0.55
            }
        }
        // Mali's tiled memory system is brutally sensitive to scalar loads:
        // un-vectorized kernels waste most of every burst.
        Vendor::Arm => {
            let scalar = 0.10;
            if cfg.vector_width >= 4 {
                VECTOR_COALESCING
            } else {
                scalar + (VECTOR_COALESCING - scalar) * (vw - 1.0) / 3.0
            }
        }
        // Intel/CPU: wide explicit loads fill the DRAM bursts.
        _ => {
            if cfg.vector_width >= 4 {
                VECTOR_COALESCING
            } else {
                SCALAR_COALESCING + (VECTOR_COALESCING - SCALAR_COALESCING) * (vw - 1.0) / 3.0
            }
        }
    };

    if dw_layout_gap && spec.vendor == Vendor::Intel {
        coalescing *= 0.3;
    }

    KernelProfile::new(format!("conv2d[{}]", w.key()), items)
        .workgroup(cfg.workgroup_size())
        .flops(flops_item)
        .reads(bytes_read)
        .writes(bytes_written)
        .simd(simd_utilization(cfg, spec))
        .divergence(divergence)
        .coalesce(coalescing)
        .ilp(ilp_factor(cfg))
        .slm(slm_bytes)
        .with_barriers(barriers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigpu_device::CostModel;

    fn wl() -> ConvWorkload {
        ConvWorkload::square(1, 128, 128, 28, 3, 1, 1)
    }

    fn tuned_intel() -> ConvConfig {
        ConvConfig {
            tile_oc: 8,
            tile_oh: 2,
            tile_ow: 4,
            vector_width: 8,
            unroll: 4,
            workgroup: (16, 4),
            use_subgroup: true,
            use_slm: false,
        }
    }

    #[test]
    fn tuned_beats_naive_on_every_gpu() {
        let w = wl();
        for spec in [
            DeviceSpec::intel_hd505(),
            DeviceSpec::mali_t860(),
            DeviceSpec::maxwell_nano(),
        ] {
            let m = CostModel::new(spec.clone());
            let naive = ConvConfig {
                tile_oc: 1,
                tile_oh: 1,
                tile_ow: 1,
                vector_width: 1,
                unroll: 1,
                workgroup: (8, 4),
                use_subgroup: false,
                use_slm: false,
            };
            let mut tuned = tuned_intel();
            tuned.use_subgroup = spec.has_subgroups;
            if spec.vendor == Vendor::Nvidia {
                tuned.workgroup = (32, 4);
                tuned.vector_width = 1;
            }
            let tn = m.kernel_time_ms(&conv_profile(&w, &naive, &spec));
            let tt = m.kernel_time_ms(&conv_profile(&w, &tuned, &spec));
            assert!(
                tn > 2.0 * tt,
                "{}: naive {tn:.3} ms should be >2x tuned {tt:.3} ms",
                spec.name
            );
        }
    }

    #[test]
    fn subgroup_helps_on_intel_only() {
        let w = wl();
        let mut cfg = tuned_intel();
        let intel = DeviceSpec::intel_hd505();
        let m = CostModel::new(intel.clone());
        cfg.use_subgroup = true;
        let with = m.kernel_time_ms(&conv_profile(&w, &cfg, &intel));
        cfg.use_subgroup = false;
        let without = m.kernel_time_ms(&conv_profile(&w, &cfg, &intel));
        assert!(with <= without);

        // On Mali the flag changes nothing (hardware lacks subgroups).
        let mali = DeviceSpec::mali_t860();
        let mm = CostModel::new(mali.clone());
        cfg.use_subgroup = true;
        let a = mm.kernel_time_ms(&conv_profile(&w, &cfg, &mali));
        cfg.use_subgroup = false;
        let b = mm.kernel_time_ms(&conv_profile(&w, &cfg, &mali));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn slm_staging_hurts_on_mali() {
        let w = wl();
        let mut cfg = ConvConfig { use_slm: true, ..tuned_intel() };
        cfg.use_subgroup = false;
        let mali = DeviceSpec::mali_t860();
        let m = CostModel::new(mali.clone());
        let with = m.kernel_time_ms(&conv_profile(&w, &cfg, &mali));
        cfg.use_slm = false;
        let without = m.kernel_time_ms(&conv_profile(&w, &cfg, &mali));
        assert!(
            with > without,
            "SLM staging must be counterproductive on SLM-less Mali: {with} vs {without}"
        );
    }

    #[test]
    fn oversized_tiles_spill() {
        let w = wl();
        let spec = DeviceSpec::intel_hd505();
        let m = CostModel::new(spec.clone());
        let modest = ConvConfig { tile_oc: 4, tile_oh: 2, tile_ow: 4, ..tuned_intel() };
        let huge = ConvConfig { tile_oc: 16, tile_oh: 4, tile_ow: 8, ..tuned_intel() };
        let tm = m.kernel_time_ms(&conv_profile(&w, &modest, &spec));
        let th = m.kernel_time_ms(&conv_profile(&w, &huge, &spec));
        assert!(th > tm, "512-register tile must spill: {th} vs {tm}");
    }

    #[test]
    fn warp_misalignment_hurts_on_nvidia() {
        let w = wl();
        let spec = DeviceSpec::maxwell_nano();
        let m = CostModel::new(spec.clone());
        let aligned = ConvConfig { workgroup: (32, 4), vector_width: 1, ..tuned_intel() };
        let ragged = ConvConfig { workgroup: (8, 4), vector_width: 1, ..tuned_intel() };
        let ta = m.kernel_time_ms(&conv_profile(&w, &aligned, &spec));
        let tr = m.kernel_time_ms(&conv_profile(&w, &ragged, &spec));
        assert!(tr > ta, "32-item group should beat ragged one: {tr} vs {ta}");
    }

    #[test]
    fn vec4_matters_on_mali() {
        let w = wl();
        let spec = DeviceSpec::mali_t860();
        let m = CostModel::new(spec.clone());
        let scalar = ConvConfig { vector_width: 1, use_subgroup: false, ..tuned_intel() };
        let vec4 = ConvConfig { vector_width: 4, use_subgroup: false, ..tuned_intel() };
        let ts = m.kernel_time_ms(&conv_profile(&w, &scalar, &spec));
        let tv = m.kernel_time_ms(&conv_profile(&w, &vec4, &spec));
        assert!(ts > 1.5 * tv, "scalar code should badly underuse Mali SIMD: {ts} vs {tv}");
    }

    #[test]
    fn depthwise_is_memory_bound() {
        let dw = ConvWorkload::depthwise(1, 256, 28, 3, 1, 1);
        let cfg = ConvConfig::fallback_for(&dw, &DeviceSpec::maxwell_nano());
        let p = conv_profile(&dw, &cfg, &DeviceSpec::maxwell_nano());
        assert!(p.arithmetic_intensity() < 5.0, "AI = {}", p.arithmetic_intensity());
    }

    #[test]
    fn fallback_quality_ordering() {
        // HandTuned fallback should out-run the Naive fallback on the same
        // classic workload.
        let w = wl();
        let spec = DeviceSpec::maxwell_nano();
        let m = CostModel::new(spec.clone());
        let hand = ConvConfig::fallback_for(&w, &spec);
        let naive = ConvConfig {
            tile_oc: 1,
            tile_oh: 1,
            tile_ow: 1,
            vector_width: 1,
            unroll: 1,
            workgroup: (4, 2),
            use_subgroup: false,
            use_slm: false,
        };
        let th = m.kernel_time_ms(&conv_profile(&w, &hand, &spec));
        let tn = m.kernel_time_ms(&conv_profile(&w, &naive, &spec));
        assert!(tn > th);
    }
}
