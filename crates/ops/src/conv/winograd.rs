//! Winograd fast convolution F(2×2, 3×3).
//!
//! The vendor baselines (cuDNN/clDNN) owe part of their classic-shape edge
//! to Winograd kernels, which compute a 2×2 output tile of a 3×3 stride-1
//! convolution with 16 multiplies instead of 36 (a 2.25× multiply reduction)
//! at the price of transform overhead. This module implements the algorithm
//! functionally (validated against the direct reference) and provides its
//! cost-model profile, so the baseline emulation's "vendor kernels use
//! techniques outside our template space" factor has a concrete mechanism
//! behind it.
//!
//! Transforms (Lavin & Gray 2015):
//! `Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A`
//! with the canonical 4×4/3×3 matrices for m=2, r=3.

use crate::workload::ConvWorkload;
use unigpu_device::{DeviceSpec, KernelProfile};
use unigpu_tensor::Tensor;

/// `Bᵀ d B` for a 4×4 input tile `d`.
fn input_transform(d: &[[f32; 4]; 4]) -> [[f32; 4]; 4] {
    // Bᵀ = [1  0 -1  0; 0  1  1  0; 0 -1  1  0; 0  1  0 -1]
    let mut tmp = [[0.0f32; 4]; 4];
    for c in 0..4 {
        tmp[0][c] = d[0][c] - d[2][c];
        tmp[1][c] = d[1][c] + d[2][c];
        tmp[2][c] = d[2][c] - d[1][c];
        tmp[3][c] = d[1][c] - d[3][c];
    }
    let mut out = [[0.0f32; 4]; 4];
    for r in 0..4 {
        out[r][0] = tmp[r][0] - tmp[r][2];
        out[r][1] = tmp[r][1] + tmp[r][2];
        out[r][2] = tmp[r][2] - tmp[r][1];
        out[r][3] = tmp[r][1] - tmp[r][3];
    }
    out
}

/// `G g Gᵀ` for a 3×3 kernel `g`.
fn kernel_transform(g: &[[f32; 3]; 3]) -> [[f32; 4]; 4] {
    // G = [1 0 0; 1/2 1/2 1/2; 1/2 -1/2 1/2; 0 0 1]
    let mut tmp = [[0.0f32; 3]; 4];
    for c in 0..3 {
        tmp[0][c] = g[0][c];
        tmp[1][c] = 0.5 * (g[0][c] + g[1][c] + g[2][c]);
        tmp[2][c] = 0.5 * (g[0][c] - g[1][c] + g[2][c]);
        tmp[3][c] = g[2][c];
    }
    let mut out = [[0.0f32; 4]; 4];
    for r in 0..4 {
        out[r][0] = tmp[r][0];
        out[r][1] = 0.5 * (tmp[r][0] + tmp[r][1] + tmp[r][2]);
        out[r][2] = 0.5 * (tmp[r][0] - tmp[r][1] + tmp[r][2]);
        out[r][3] = tmp[r][2];
    }
    out
}

/// `Aᵀ m A` collapsing a 4×4 elementwise product to the 2×2 output tile.
fn output_transform(m: &[[f32; 4]; 4]) -> [[f32; 2]; 2] {
    // Aᵀ = [1 1 1 0; 0 1 -1 -1]
    let mut tmp = [[0.0f32; 4]; 2];
    for c in 0..4 {
        tmp[0][c] = m[0][c] + m[1][c] + m[2][c];
        tmp[1][c] = m[1][c] - m[2][c] - m[3][c];
    }
    let mut out = [[0.0f32; 2]; 2];
    for r in 0..2 {
        out[r][0] = tmp[r][0] + tmp[r][1] + tmp[r][2];
        out[r][1] = tmp[r][1] - tmp[r][2] - tmp[r][3];
    }
    out
}

/// Winograd F(2×2, 3×3) convolution.
///
/// # Panics
/// Panics unless the workload is a dense (groups=1) 3×3 stride-1 conv.
pub fn conv2d_winograd(data: &Tensor, weight: &Tensor, w: &ConvWorkload) -> Tensor {
    assert_eq!((w.kernel_h, w.kernel_w), (3, 3), "Winograd F(2,3) needs a 3x3 kernel");
    assert_eq!((w.stride_h, w.stride_w), (1, 1), "Winograd needs stride 1");
    assert_eq!(w.groups, 1, "dense convolution only");
    assert_eq!(data.shape().dims(), w.input_shape());
    assert_eq!(weight.shape().dims(), w.weight_shape());

    let (oh, ow) = (w.out_h(), w.out_w());
    let (ih, iw) = (w.height, w.width);
    let (ic, oc) = (w.in_channels, w.out_channels);
    let x = data.as_f32();
    let k = weight.as_f32();
    let mut out = Tensor::zeros(w.output_shape());
    let o = out.as_f32_mut();

    // Pre-transform all kernels: U[oc][ic] in the 4×4 Winograd domain.
    let mut u = vec![[[0.0f32; 4]; 4]; oc * ic];
    for ocl in 0..oc {
        for icl in 0..ic {
            let mut g = [[0.0f32; 3]; 3];
            for r in 0..3 {
                for c in 0..3 {
                    g[r][c] = k[((ocl * ic + icl) * 3 + r) * 3 + c];
                }
            }
            u[ocl * ic + icl] = kernel_transform(&g);
        }
    }

    let tiles_h = oh.div_ceil(2);
    let tiles_w = ow.div_ceil(2);
    for n in 0..w.batch {
        for th in 0..tiles_h {
            for tw in 0..tiles_w {
                // Gather + transform the 4×4 input tile per channel once.
                let mut v = vec![[[0.0f32; 4]; 4]; ic];
                for (icl, vt) in v.iter_mut().enumerate() {
                    let mut d = [[0.0f32; 4]; 4];
                    for r in 0..4 {
                        for c in 0..4 {
                            let hi = (th * 2 + r) as isize - w.pad_h as isize;
                            let wi = (tw * 2 + c) as isize - w.pad_w as isize;
                            d[r][c] = if hi >= 0 && hi < ih as isize && wi >= 0 && wi < iw as isize
                            {
                                x[((n * ic + icl) * ih + hi as usize) * iw + wi as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                    *vt = input_transform(&d);
                }
                for ocl in 0..oc {
                    // Elementwise multiply-accumulate in the Winograd domain.
                    let mut m = [[0.0f32; 4]; 4];
                    for (icl, vt) in v.iter().enumerate() {
                        let ut = &u[ocl * ic + icl];
                        for r in 0..4 {
                            for c in 0..4 {
                                m[r][c] += ut[r][c] * vt[r][c];
                            }
                        }
                    }
                    let y = output_transform(&m);
                    for r in 0..2 {
                        for c in 0..2 {
                            let (ho, wo) = (th * 2 + r, tw * 2 + c);
                            if ho < oh && wo < ow {
                                o[((n * oc + ocl) * oh + ho) * ow + wo] = y[r][c];
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Is a workload eligible for the Winograd kernel?
pub fn winograd_applicable(w: &ConvWorkload) -> bool {
    w.kernel_h == 3 && w.kernel_w == 3 && w.stride_h == 1 && w.stride_w == 1 && w.groups == 1
}

/// Cost-model profile of a Winograd kernel: 2.25× fewer multiplies in the
/// elementwise stage, plus transform traffic. Used by the vendor baseline
/// emulation to justify its classic-shape advantage mechanically.
pub fn winograd_profile(w: &ConvWorkload, spec: &DeviceSpec) -> KernelProfile {
    assert!(winograd_applicable(w));
    let tiles = w.batch * w.out_h().div_ceil(2) * w.out_w().div_ceil(2);
    let items = tiles * w.out_channels;
    // per item: ic 4×4 MACs in the transform domain + output transform
    let flops = 2.0 * 16.0 * w.in_channels as f64 + 32.0;
    KernelProfile::new(format!("winograd[{}]", w.key()), items)
        .workgroup(64.min(spec.max_concurrency()))
        .flops(flops)
        .reads(16.0 * 4.0 / 4.0) // transformed tiles shared across oc via SLM
        .writes(16.0)
        .coalesce(0.85)
        .ilp(0.9)
        .slm(64.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::reference::conv2d_ref;
    use unigpu_tensor::allclose;
    use unigpu_tensor::init::random_uniform;

    fn check(w: ConvWorkload, seed: u64) {
        let data = random_uniform(w.input_shape(), seed);
        let wt = random_uniform(w.weight_shape(), seed + 1);
        let direct = conv2d_ref(&data, &wt, &w);
        let wino = conv2d_winograd(&data, &wt, &w);
        assert!(
            allclose(&wino, &direct, 1e-4, 1e-5),
            "winograd diverged on {w}"
        );
    }

    #[test]
    fn matches_direct_on_even_sizes() {
        check(ConvWorkload::square(1, 4, 6, 8, 3, 1, 1), 51);
    }

    #[test]
    fn matches_direct_on_odd_sizes() {
        // odd output extent exercises the partial final tile
        check(ConvWorkload::square(1, 3, 5, 9, 3, 1, 1), 53);
    }

    #[test]
    fn matches_direct_without_padding() {
        check(ConvWorkload::square(2, 2, 4, 10, 3, 1, 0), 55);
    }

    #[test]
    fn matches_direct_single_channel() {
        check(ConvWorkload::square(1, 1, 1, 6, 3, 1, 1), 57);
    }

    #[test]
    #[should_panic(expected = "stride 1")]
    fn rejects_strided() {
        let w = ConvWorkload::square(1, 2, 2, 8, 3, 2, 1);
        let data = random_uniform(w.input_shape(), 1);
        let wt = random_uniform(w.weight_shape(), 2);
        conv2d_winograd(&data, &wt, &w);
    }

    #[test]
    fn applicability() {
        assert!(winograd_applicable(&ConvWorkload::square(1, 64, 64, 56, 3, 1, 1)));
        assert!(!winograd_applicable(&ConvWorkload::square(1, 64, 64, 56, 1, 1, 0)));
        assert!(!winograd_applicable(&ConvWorkload::square(1, 64, 64, 56, 3, 2, 1)));
        assert!(!winograd_applicable(&ConvWorkload::depthwise(1, 64, 56, 3, 1, 1)));
    }

    #[test]
    fn winograd_profile_cuts_multiplies() {
        let w = ConvWorkload::square(1, 128, 128, 28, 3, 1, 1);
        let spec = DeviceSpec::maxwell_nano();
        let p = winograd_profile(&w, &spec);
        let direct_flops = w.flops();
        assert!(
            p.total_flops() < direct_flops / 1.8,
            "winograd {} should be well under direct {direct_flops}",
            p.total_flops()
        );
    }

    #[test]
    fn kernel_transform_of_identity_delta() {
        // delta kernel (center 1) convolves to identity; sanity on transforms
        let w = ConvWorkload::square(1, 1, 1, 6, 3, 1, 1);
        let data = random_uniform(w.input_shape(), 60);
        let mut wt = Tensor::zeros(w.weight_shape());
        wt.set(&[0, 0, 1, 1], 1.0);
        let y = conv2d_winograd(&data, &wt, &w);
        assert!(allclose(&y, &data, 1e-5, 1e-6));
    }
}
