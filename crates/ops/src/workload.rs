//! Convolution workload descriptions.
//!
//! A *workload* is the shape signature of one convolution layer. It is the
//! key of the tuning database (§3.2.3: "we maintain a database to store the
//! results for every convolution workload on each hardware platform") and
//! the unit over which AutoTVM searches ("convolutions with different data
//! input shapes may require different optimization schemes", §2.2).

use serde::{Deserialize, Serialize};

/// Shape signature of a 2-d convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvWorkload {
    pub batch: usize,
    pub in_channels: usize,
    pub out_channels: usize,
    /// Input spatial size (height, width).
    pub height: usize,
    pub width: usize,
    /// Kernel size (height, width).
    pub kernel_h: usize,
    pub kernel_w: usize,
    pub stride_h: usize,
    pub stride_w: usize,
    pub pad_h: usize,
    pub pad_w: usize,
    /// Channel groups; `groups == in_channels == out_channels` is depthwise.
    pub groups: usize,
}

impl ConvWorkload {
    /// Square-everything convenience constructor.
    pub fn square(
        batch: usize,
        in_channels: usize,
        out_channels: usize,
        size: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        ConvWorkload {
            batch,
            in_channels,
            out_channels,
            height: size,
            width: size,
            kernel_h: kernel,
            kernel_w: kernel,
            stride_h: stride,
            stride_w: stride,
            pad_h: pad,
            pad_w: pad,
            groups: 1,
        }
    }

    /// Depthwise variant (groups = channels).
    pub fn depthwise(batch: usize, channels: usize, size: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        let mut w = Self::square(batch, channels, channels, size, kernel, stride, pad);
        w.groups = channels;
        w
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        (self.height + 2 * self.pad_h - self.kernel_h) / self.stride_h + 1
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        (self.width + 2 * self.pad_w - self.kernel_w) / self.stride_w + 1
    }

    /// Input channels per group.
    pub fn in_ch_per_group(&self) -> usize {
        self.in_channels / self.groups
    }

    /// Output channels per group.
    pub fn out_ch_per_group(&self) -> usize {
        self.out_channels / self.groups
    }

    /// True when this is a depthwise convolution.
    pub fn is_depthwise(&self) -> bool {
        self.groups > 1 && self.groups == self.in_channels && self.groups == self.out_channels
    }

    /// Multiply-accumulate count ×2 (the usual FLOP convention).
    pub fn flops(&self) -> f64 {
        2.0 * self.batch as f64
            * self.out_channels as f64
            * self.out_h() as f64
            * self.out_w() as f64
            * self.in_ch_per_group() as f64
            * self.kernel_h as f64
            * self.kernel_w as f64
    }

    /// Output element count.
    pub fn out_numel(&self) -> usize {
        self.batch * self.out_channels * self.out_h() * self.out_w()
    }

    /// Input tensor shape (`NCHW`).
    pub fn input_shape(&self) -> [usize; 4] {
        [self.batch, self.in_channels, self.height, self.width]
    }

    /// Weight tensor shape (`OIHW`, with `I` per-group).
    pub fn weight_shape(&self) -> [usize; 4] {
        [self.out_channels, self.in_ch_per_group(), self.kernel_h, self.kernel_w]
    }

    /// Output tensor shape (`NCHW`).
    pub fn output_shape(&self) -> [usize; 4] {
        [self.batch, self.out_channels, self.out_h(), self.out_w()]
    }

    /// Stable string key for the tuning database.
    pub fn key(&self) -> String {
        format!(
            "conv2d_n{}c{}o{}h{}w{}k{}x{}s{}x{}p{}x{}g{}",
            self.batch,
            self.in_channels,
            self.out_channels,
            self.height,
            self.width,
            self.kernel_h,
            self.kernel_w,
            self.stride_h,
            self.stride_w,
            self.pad_h,
            self.pad_w,
            self.groups
        )
    }
}

impl std::fmt::Display for ConvWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_first_layer_dims() {
        // ResNet50 conv1: 7x7/2, 3→64, 224².
        let w = ConvWorkload::square(1, 3, 64, 224, 7, 2, 3);
        assert_eq!(w.out_h(), 112);
        assert_eq!(w.out_w(), 112);
        assert_eq!(w.output_shape(), [1, 64, 112, 112]);
        // 2*64*112²*3*49 ≈ 236 MFLOPs
        assert!((w.flops() - 2.0 * 64.0 * 112.0 * 112.0 * 3.0 * 49.0).abs() < 1.0);
    }

    #[test]
    fn depthwise_detection() {
        let w = ConvWorkload::depthwise(1, 32, 112, 3, 1, 1);
        assert!(w.is_depthwise());
        assert_eq!(w.in_ch_per_group(), 1);
        assert_eq!(w.weight_shape(), [32, 1, 3, 3]);
        let n = ConvWorkload::square(1, 32, 64, 56, 1, 1, 0);
        assert!(!n.is_depthwise());
    }

    #[test]
    fn key_is_unique_per_shape() {
        let a = ConvWorkload::square(1, 64, 64, 56, 3, 1, 1);
        let mut b = a;
        b.stride_h = 2;
        assert_ne!(a.key(), b.key());
        assert_eq!(format!("{a}"), a.key());
    }

    #[test]
    fn stride_two_halves_output() {
        let w = ConvWorkload::square(1, 16, 16, 56, 3, 2, 1);
        assert_eq!(w.out_h(), 28);
    }
}
