//! # unigpu-ops
//!
//! The operator library of the stack:
//!
//! * [`conv`] — the computationally-intensive operators (§3.2): direct
//!   reference convolution, the schedule-parameterized spatial-pack template
//!   searched by AutoTVM, depthwise convolution, and the bridge that turns a
//!   (workload, schedule-config, device) triple into a cost-model
//!   [`unigpu_device::KernelProfile`]. The Intel Graphics heuristics of
//!   §3.2.1 (subgroup weight broadcast, GRF-resident register tiles) live
//!   here.
//! * [`nn`] — the remaining dense network operators: GEMM/dense, pooling,
//!   batch norm (+ inference folding), activations, softmax, elementwise,
//!   concat, upsampling.
//! * [`vision`] — the vision-specific operators of §3.1 that block object
//!   detection models from running on integrated GPUs: segmented argsort
//!   (Fig. 2), the three-stage register-blocked prefix sum (Fig. 3),
//!   divergence-free `box_nms`, SSD multibox anchor generation and decoding,
//!   `ROIAlign`, and the YOLO detection head. Each has an *optimized* and a
//!   *naive* GPU realization so Table 4's ablation can be regenerated.
//!
//! Every operator provides (a) a functional implementation (real numbers,
//! tested) and (b) an analytic profile for the device cost model (simulated
//! latency).

pub mod conv;
pub mod nn;
pub mod quant;
pub mod vision;
pub mod workload;

pub use workload::ConvWorkload;
