//! Property tests for the vision-specific operators: segmented sort, prefix
//! sum, and NMS invariants over arbitrary inputs.

use proptest::prelude::*;
use unigpu_ops::vision::nms::{box_nms, iou, naive_nms_profile, NmsConfig};
use unigpu_ops::vision::scan::{exclusive_scan, hillis_steele, prefix_sum};
use unigpu_ops::vision::sort::{naive_segment_argsort, segmented_argsort};
use unigpu_tensor::Tensor;

fn arb_segments() -> impl Strategy<Value = (Vec<f32>, Vec<usize>)> {
    prop::collection::vec(0usize..40, 1..8).prop_flat_map(|lens| {
        let n: usize = lens.iter().sum();
        let mut offsets = vec![0usize];
        for l in &lens {
            offsets.push(offsets.last().unwrap() + l);
        }
        (
            prop::collection::vec((0u32..1000).prop_map(|v| v as f32 / 10.0), n..=n.max(1))
                .prop_map(move |mut v| {
                    v.truncate(n);
                    v
                }),
            Just(offsets),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn segmented_sort_equals_naive((data, offsets) in arb_segments(), blk in 1usize..6) {
        let block = 1usize << blk; // 2..32
        prop_assert_eq!(
            segmented_argsort(&data, &offsets, block),
            naive_segment_argsort(&data, &offsets)
        );
    }

    #[test]
    fn segmented_sort_output_is_ranked((data, offsets) in arb_segments()) {
        let ranks = segmented_argsort(&data, &offsets, 16);
        for s in 0..offsets.len() - 1 {
            let (lo, hi) = (offsets[s], offsets[s + 1]);
            // ranks within a segment are a permutation of 0..len
            let mut seen: Vec<i32> = ranks[lo..hi].to_vec();
            seen.sort_unstable();
            prop_assert!(seen.iter().enumerate().all(|(i, &r)| r == i as i32));
            // values in rank order are non-increasing
            for w in ranks[lo..hi].windows(2) {
                prop_assert!(data[lo + w[0] as usize] >= data[lo + w[1] as usize]);
            }
        }
    }

    #[test]
    fn prefix_sum_matches_serial_integers(
        data in prop::collection::vec(0u32..100, 0..300),
        p in 1usize..64,
    ) {
        // Integer-valued f32 sums are exact up to 2^24: bit-equal comparisons valid.
        let data: Vec<f32> = data.into_iter().map(|v| v as f32).collect();
        let mut acc = 0.0f32;
        let want: Vec<f32> = data.iter().map(|&v| { acc += v; acc }).collect();
        prop_assert_eq!(prefix_sum(&data, p), want.clone());
        prop_assert_eq!(hillis_steele(&data), want.clone());
        if !data.is_empty() {
            let ex = exclusive_scan(&data, p);
            prop_assert_eq!(ex[0], 0.0);
            prop_assert_eq!(&ex[1..], &want[..want.len() - 1]);
        }
    }

    #[test]
    fn nms_postconditions(
        seeds in prop::collection::vec((0u32..50, 0u32..50, 1u32..20, 1u32..20, 0u32..100, 0u32..3), 1..60),
        thresh in 0.1f32..0.9,
    ) {
        let rows: Vec<f32> = seeds
            .iter()
            .flat_map(|&(x, y, w, h, s, c)| {
                vec![
                    c as f32,
                    s as f32 / 100.0,
                    x as f32,
                    y as f32,
                    (x + w) as f32,
                    (y + h) as f32,
                ]
            })
            .collect();
        let n = seeds.len();
        let t = Tensor::from_vec([1, n, 6], rows);
        let cfg = NmsConfig { iou_threshold: thresh, valid_thresh: 0.005, ..Default::default() };
        let out = box_nms(&t, &cfg);
        let v = out.as_f32();

        // 1. valid rows are a prefix, sorted by descending score
        let mut seen_invalid = false;
        let mut last_score = f32::INFINITY;
        let mut kept = vec![];
        for i in 0..n {
            let r = &v[i * 6..i * 6 + 6];
            if r[0] < 0.0 {
                seen_invalid = true;
                prop_assert!(r.iter().all(|&x| x == -1.0), "invalid rows are all -1");
            } else {
                prop_assert!(!seen_invalid, "valid rows must form a prefix");
                prop_assert!(r[1] <= last_score, "scores must be non-increasing");
                last_score = r[1];
                kept.push((r[0], [r[2], r[3], r[4], r[5]]));
            }
        }
        // 2. no same-class pair above the threshold survives
        for a in 0..kept.len() {
            for b in a + 1..kept.len() {
                if kept[a].0 == kept[b].0 {
                    prop_assert!(iou(kept[a].1, kept[b].1) <= thresh + 1e-6);
                }
            }
        }
    }

    #[test]
    fn naive_nms_profile_worsens_with_boxes(n in 10usize..2000) {
        let small = naive_nms_profile(n, 5);
        let big = naive_nms_profile(n * 2, 5);
        prop_assert!(big.total_flops() > small.total_flops());
    }
}
