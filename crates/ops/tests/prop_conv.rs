//! Property tests: the "schedules never change results" invariant — any
//! configuration drawn from the template's search space produces bit-identical
//! output to the direct reference convolution.

use proptest::prelude::*;
use unigpu_ops::conv::{conv2d_ref, conv2d_spatial_pack, ConfigSpace, ConvConfig};
use unigpu_ops::ConvWorkload;
use unigpu_device::DeviceSpec;
use unigpu_tensor::init::random_uniform;

fn arb_workload() -> impl Strategy<Value = ConvWorkload> {
    (
        1usize..3,   // batch
        1usize..9,   // in channels
        1usize..13,  // out channels
        4usize..14,  // size
        prop_oneof![Just(1usize), Just(3), Just(5)],
        1usize..3, // stride
        0usize..3, // pad
    )
        .prop_filter_map("output must be non-empty", |(n, c, oc, s, k, st, p)| {
            if s + 2 * p < k {
                return None;
            }
            Some(ConvWorkload::square(n, c, oc, s, k, st, p))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_config_matches_reference(
        w in arb_workload(),
        cfg_idx in any::<prop::sample::Index>(),
        dev in 0usize..3,
    ) {
        let spec = match dev {
            0 => DeviceSpec::intel_hd505(),
            1 => DeviceSpec::mali_t860(),
            _ => DeviceSpec::maxwell_nano(),
        };
        let space = ConfigSpace::build(&w, &spec);
        let cfg = space.get(cfg_idx.index(space.len()));
        let data = random_uniform(w.input_shape(), 97);
        let wt = random_uniform(w.weight_shape(), 98);
        let r = conv2d_ref(&data, &wt, &w);
        let s = conv2d_spatial_pack(&data, &wt, &w, &cfg);
        prop_assert_eq!(r, s, "config {:?} diverged on {}", cfg, w);
    }

    #[test]
    fn depthwise_any_config_matches_reference(
        ch in 1usize..9,
        size in 4usize..12,
        cfg_idx in any::<prop::sample::Index>(),
    ) {
        let w = ConvWorkload::depthwise(1, ch, size, 3, 1, 1);
        let spec = DeviceSpec::maxwell_nano();
        let space = ConfigSpace::build(&w, &spec);
        let cfg = space.get(cfg_idx.index(space.len()));
        let data = random_uniform(w.input_shape(), 99);
        let wt = random_uniform(w.weight_shape(), 100);
        prop_assert_eq!(
            conv2d_ref(&data, &wt, &w),
            conv2d_spatial_pack(&data, &wt, &w, &cfg)
        );
    }

    #[test]
    fn fallback_config_is_always_valid(w in arb_workload(), dev in 0usize..3) {
        let spec = match dev {
            0 => DeviceSpec::intel_hd505(),
            1 => DeviceSpec::mali_t860(),
            _ => DeviceSpec::maxwell_nano(),
        };
        let cfg = ConvConfig::fallback_for(&w, &spec);
        prop_assert!(cfg.tile_size() >= 1);
        let data = random_uniform(w.input_shape(), 101);
        let wt = random_uniform(w.weight_shape(), 102);
        prop_assert_eq!(
            conv2d_ref(&data, &wt, &w),
            conv2d_spatial_pack(&data, &wt, &w, &cfg)
        );
    }
}
