//! The engine: compile once, run many.
//!
//! [`Engine`] owns the compilation policy (platform, placement, tuning
//! budget) and the [`ArtifactCache`]; [`Engine::compile`] resolves a model
//! through the cache or runs the full pipeline — graph optimization (§3.2.3
//! fusion + BN folding), device placement (§3.1.2), optional schedule search
//! (§3.2) — and returns a [`CompiledModel`] ready to estimate, execute, and
//! serve. [`Engine::compile_deferred`] degrades gracefully: the model serves
//! on fallback schedules immediately while tuning proceeds on a background
//! thread, then hot-swaps the tuned schedules in.

use crate::artifact::{
    fingerprint, records_digest, Artifact, ArtifactKey, ArtifactMeta, TuningState, ARTIFACT_KIND,
    ARTIFACT_VERSION,
};
use crate::cache::{default_artifact_dir, ArtifactCache, CacheStats};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use unigpu_device::{CostTable, DeviceSpec, Platform};
use unigpu_graph::latency::FallbackSchedules;
use unigpu_graph::passes::optimize;
use unigpu_graph::{
    estimate_latency, place, rebatch, Executor, Graph, LatencyOptions, LatencyReport, OpKind,
    Placement, PlacementPolicy, ScheduleProvider,
};
use unigpu_ops::conv::ConvConfig;
use unigpu_ops::ConvWorkload;
use unigpu_farm::FarmClient;
use unigpu_telemetry::{tel_debug, tel_info, tel_warn, MetricsRegistry, SpanRecorder};
use unigpu_tensor::{Shape, Tensor};
use unigpu_tuner::{tune_graph, tune_graph_with, Database, TuneRecord, TunedSchedules, TuningBudget};

type SharedProvider = Arc<dyn ScheduleProvider + Send + Sync>;

/// Run tensor-level search for `graph`, honouring `UNIGPU_FARM_ADDR`: when
/// set (and non-empty) the search is dispatched to that farm tracker's
/// worker pool — same per-workload seeds, so the database is bit-identical
/// to the in-process one at zero noise. Any farm failure logs a warning and
/// falls back to in-process serial search rather than failing compilation.
fn search_database(graph: &Graph, spec: &DeviceSpec, budget: &TuningBudget) -> Database {
    let addr = std::env::var("UNIGPU_FARM_ADDR").unwrap_or_default();
    if !addr.is_empty() {
        tel_info!("engine", "dispatching schedule search to farm at {addr}");
        // Root the farm batch's trace in the graph fingerprint: the
        // tracker's per-lease spans become children of this context, so a
        // remote tune stitches into the originating compile's trace — and
        // re-compiling the same graph reproduces the same ids.
        let trace = unigpu_telemetry::TraceContext::from_seed(fingerprint(graph));
        let client = FarmClient::new(addr.clone()).with_trace(trace);
        match tune_graph_with(graph, spec, budget, &client, None) {
            Ok(db) => return db,
            Err(e) => {
                tel_warn!("engine", "farm at {addr} failed ({e}); falling back to in-process search");
            }
        }
    }
    tune_graph(graph, spec, budget)
}

/// Normalizes workload batch to 1 before lookup, so schedules tuned on the
/// single-sample graph serve rebatched graphs (`ConvWorkload::key` embeds
/// the batch, which would otherwise miss on every batched estimate).
struct BatchAgnostic<'a>(&'a dyn ScheduleProvider);

impl ScheduleProvider for BatchAgnostic<'_> {
    fn conv_config(&self, w: &ConvWorkload, spec: &DeviceSpec) -> ConvConfig {
        let mut w1 = *w;
        w1.batch = 1;
        self.0.conv_config(&w1, spec)
    }
}

#[derive(Debug, Clone)]
enum TuningConfig {
    Fallback,
    Tuned,
    Pinned(Database),
}

/// Builder for [`Engine`]; start from [`Engine::builder`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    platform: Platform,
    policy: PlacementPolicy,
    opts: LatencyOptions,
    tuning: TuningConfig,
    budget: TuningBudget,
    cache_capacity: usize,
    cache_dir: Option<PathBuf>,
    persist: bool,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            platform: Platform::deeplens(),
            policy: PlacementPolicy::AllGpu,
            opts: LatencyOptions::default(),
            tuning: TuningConfig::Fallback,
            budget: TuningBudget::default(),
            cache_capacity: 8,
            cache_dir: None,
            persist: true,
        }
    }
}

impl EngineBuilder {
    /// Target platform (default: DeepLens).
    pub fn platform(mut self, p: Platform) -> Self {
        self.platform = p;
        self
    }

    /// Device-placement policy (default: all-GPU).
    pub fn policy(mut self, p: PlacementPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Toggle the §3.1.2 vision-operator optimization in the estimator.
    pub fn vision_optimized(mut self, on: bool) -> Self {
        self.opts.vision_optimized = on;
        self
    }

    /// Tune schedules at compile time with this many trials per workload.
    pub fn tuned(mut self, trials: usize) -> Self {
        self.tuning = TuningConfig::Tuned;
        self.budget.trials_per_workload = trials;
        self
    }

    /// Full tuning budget (call before [`EngineBuilder::tuned`] if both are
    /// used — `tuned` overrides the trial count).
    pub fn budget(mut self, b: TuningBudget) -> Self {
        self.budget = b;
        self
    }

    /// Skip search entirely and serve from a caller-supplied database.
    pub fn tuned_database(mut self, db: Database) -> Self {
        self.tuning = TuningConfig::Pinned(db);
        self
    }

    /// In-memory artifact-cache capacity (default: 8 models).
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n.max(1);
        self
    }

    /// Directory for persisted artifacts (default:
    /// [`default_artifact_dir`]). Implies persistence.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self.persist = true;
        self
    }

    /// Turn disk persistence on/off (default: on). Off means the cache is
    /// memory-only and artifacts die with the engine.
    pub fn persist(mut self, on: bool) -> Self {
        self.persist = on;
        self
    }

    pub fn build(self) -> Engine {
        let cache = if self.persist {
            let dir = self.cache_dir.unwrap_or_else(default_artifact_dir);
            ArtifactCache::with_dir(self.cache_capacity, dir)
        } else {
            ArtifactCache::new(self.cache_capacity)
        };
        Engine {
            platform: self.platform,
            policy: self.policy,
            opts: self.opts,
            tuning: self.tuning,
            budget: self.budget,
            cache: Arc::new(Mutex::new(cache)),
        }
    }
}

/// The serving engine. Cheap to clone conceptually (hold it once, compile
/// many models); the artifact cache is shared behind a mutex.
pub struct Engine {
    platform: Platform,
    policy: PlacementPolicy,
    opts: LatencyOptions,
    tuning: TuningConfig,
    budget: TuningBudget,
    cache: Arc<Mutex<ArtifactCache>>,
}

impl Engine {
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("artifact cache poisoned").stats()
    }

    fn key_for(&self, model: &Graph) -> ArtifactKey {
        let tuning = match &self.tuning {
            TuningConfig::Fallback => TuningState::Fallback,
            TuningConfig::Tuned => TuningState::Tuned {
                trials: self.budget.trials_per_workload,
            },
            TuningConfig::Pinned(db) => TuningState::Pinned {
                digest: records_digest(&db.records()),
            },
        };
        ArtifactKey::new(model, &self.platform.gpu.name, tuning)
    }

    /// Compile a model, resolving through the artifact cache. Blocks for
    /// the full schedule search when the engine is tuned and the cache
    /// misses; see [`Engine::compile_deferred`] for the non-blocking path.
    pub fn compile(&self, model: &Graph) -> CompiledModel {
        let key = self.key_for(model);
        let cached = self
            .cache
            .lock()
            .expect("artifact cache poisoned")
            .get(&key);
        if let Some(artifact) = cached {
            tel_debug!(
                "engine",
                "artifact cache hit: {} on {}",
                key.model,
                key.device
            );
            return self.instantiate(model, key, &artifact, true);
        }
        let artifact = self.build_artifact(model, &key);
        let compiled = self.instantiate(model, key.clone(), &artifact, false);
        self.cache
            .lock()
            .expect("artifact cache poisoned")
            .put(key, artifact);
        compiled
    }

    /// Compile with graceful degradation. Cache hits behave like
    /// [`Engine::compile`]; on a miss with a tuned engine, the model is
    /// returned immediately on fallback schedules while the search runs on
    /// a background thread, which then swaps the tuned schedules in and
    /// persists the artifact. [`CompiledModel::wait_ready`] joins the
    /// search; estimates taken before it finishes simply price the fallback
    /// schedules.
    pub fn compile_deferred(&self, model: &Graph) -> CompiledModel {
        let key = self.key_for(model);
        let cached = self
            .cache
            .lock()
            .expect("artifact cache poisoned")
            .get(&key);
        if let Some(artifact) = cached {
            return self.instantiate(model, key, &artifact, true);
        }
        if !matches!(self.tuning, TuningConfig::Tuned) {
            // fallback/pinned compiles are cheap: nothing to defer
            let artifact = self.build_artifact(model, &key);
            let compiled = self.instantiate(model, key.clone(), &artifact, false);
            self.cache
                .lock()
                .expect("artifact cache poisoned")
                .put(key, artifact);
            return compiled;
        }

        // serve on fallback schedules now, search in the background
        let fallback = Artifact {
            meta: self.meta_for(&key, model, &FallbackSchedules),
            records: Vec::new(),
        };
        let compiled = self.instantiate(model, key.clone(), &fallback, false);

        let inner = Arc::clone(&compiled.inner);
        let cache = Arc::clone(&self.cache);
        let graph = compiled.inner.graph.clone(); // already optimized
        let platform = self.platform.clone();
        let policy = self.policy;
        let opts = self.opts;
        let budget = self.budget;
        let handle = std::thread::spawn(move || {
            tel_info!(
                "engine",
                "background tuning {} ({} trials/workload)",
                inner.key.model,
                budget.trials_per_workload
            );
            let tuned = TunedSchedules::new(search_database(&graph, &platform.gpu, &budget));
            let records = tuned.to_records();
            let placed = place(&graph, policy);
            let report = estimate_latency(&placed, &platform, &tuned, &opts);
            let meta = ArtifactMeta {
                kind: ARTIFACT_KIND.into(),
                version: ARTIFACT_VERSION,
                model: inner.key.model.clone(),
                fingerprint: inner.key.fingerprint,
                device: inner.key.device.clone(),
                tuning: inner.key.tuning.clone(),
                nodes: placed.graph.nodes.len(),
                total_ms: report.total_ms,
                cost_table: report
                    .per_op
                    .iter()
                    .map(|t| (t.name.clone(), t.ms))
                    .collect(),
            };
            {
                let mut st = inner.schedules.write().expect("schedule state poisoned");
                st.provider = Arc::new(tuned);
                st.records = records.clone();
                st.tuned = true;
            }
            // batched estimates priced on fallback schedules are stale now
            inner
                .batch_cost
                .lock()
                .expect("batch cost poisoned")
                .clear();
            cache
                .lock()
                .expect("artifact cache poisoned")
                .put(inner.key.clone(), Artifact { meta, records });
            tel_info!(
                "engine",
                "tuned schedules swapped in for {}",
                inner.key.model
            );
        });
        *compiled
            .inner
            .pending
            .lock()
            .expect("pending handle poisoned") = Some(handle);
        compiled
    }

    fn meta_for(
        &self,
        key: &ArtifactKey,
        model: &Graph,
        provider: &dyn ScheduleProvider,
    ) -> ArtifactMeta {
        let placed = place(&optimize(model), self.policy);
        let report = estimate_latency(&placed, &self.platform, provider, &self.opts);
        ArtifactMeta {
            kind: ARTIFACT_KIND.into(),
            version: ARTIFACT_VERSION,
            model: key.model.clone(),
            fingerprint: key.fingerprint,
            device: key.device.clone(),
            tuning: key.tuning.clone(),
            nodes: placed.graph.nodes.len(),
            total_ms: report.total_ms,
            cost_table: report
                .per_op
                .iter()
                .map(|t| (t.name.clone(), t.ms))
                .collect(),
        }
    }

    /// Run the full pipeline and package the result as an artifact.
    fn build_artifact(&self, model: &Graph, key: &ArtifactKey) -> Artifact {
        let g = optimize(model);
        let placed = place(&g, self.policy);
        let (provider, records): (SharedProvider, Vec<TuneRecord>) = match &self.tuning {
            TuningConfig::Fallback => (Arc::new(FallbackSchedules), Vec::new()),
            TuningConfig::Tuned => {
                tel_info!(
                    "engine",
                    "tuning {} on {} ({} trials/workload)",
                    key.model,
                    key.device,
                    self.budget.trials_per_workload
                );
                let tuned =
                    TunedSchedules::new(search_database(&g, &self.platform.gpu, &self.budget));
                let records = tuned.to_records();
                (Arc::new(tuned), records)
            }
            TuningConfig::Pinned(db) => {
                let tuned = TunedSchedules::new(db.clone());
                let records = tuned.to_records();
                (Arc::new(tuned), records)
            }
        };
        let report = estimate_latency(&placed, &self.platform, provider.as_ref(), &self.opts);
        Artifact {
            meta: ArtifactMeta {
                kind: ARTIFACT_KIND.into(),
                version: ARTIFACT_VERSION,
                model: key.model.clone(),
                fingerprint: key.fingerprint,
                device: key.device.clone(),
                tuning: key.tuning.clone(),
                nodes: placed.graph.nodes.len(),
                total_ms: report.total_ms,
                cost_table: report
                    .per_op
                    .iter()
                    .map(|t| (t.name.clone(), t.ms))
                    .collect(),
            },
            records,
        }
    }

    /// Materialize a `CompiledModel` from an artifact (cached or fresh).
    fn instantiate(
        &self,
        model: &Graph,
        key: ArtifactKey,
        artifact: &Artifact,
        from_cache: bool,
    ) -> CompiledModel {
        let g = optimize(model);
        let placed = place(&g, self.policy);
        let has_vision = g.nodes.iter().any(|n| n.op.is_vision_control());
        let tuned = !artifact.records.is_empty();
        let provider: SharedProvider = if tuned {
            Arc::new(TunedSchedules::from_records(
                artifact.records.iter().cloned(),
            ))
        } else {
            // an empty record set always resolves to fallback schedules
            Arc::new(FallbackSchedules)
        };
        CompiledModel {
            inner: Arc::new(CompiledInner {
                key,
                graph: g,
                placement: placed,
                platform: self.platform.clone(),
                policy: self.policy,
                opts: self.opts,
                schedules: RwLock::new(ScheduleState {
                    provider,
                    records: artifact.records.clone(),
                    tuned,
                }),
                from_cache,
                has_vision,
                cost_table: artifact.meta.cost_table.clone(),
                batch_cost: Mutex::new(HashMap::new()),
                pending: Mutex::new(None),
            }),
        }
    }
}

struct ScheduleState {
    provider: SharedProvider,
    records: Vec<TuneRecord>,
    tuned: bool,
}

struct CompiledInner {
    key: ArtifactKey,
    /// Optimized (fused, BN-folded) graph at the model's authored batch.
    graph: Graph,
    placement: Placement,
    platform: Platform,
    policy: PlacementPolicy,
    opts: LatencyOptions,
    schedules: RwLock<ScheduleState>,
    from_cache: bool,
    has_vision: bool,
    /// Per-node cost table from compile time, (node name, ms).
    cost_table: Vec<(String, f64)>,
    /// Memoized batched-latency estimates, keyed by batch size.
    batch_cost: Mutex<HashMap<usize, f64>>,
    /// Background tuning thread, when compiled via `compile_deferred`.
    pending: Mutex<Option<JoinHandle<()>>>,
}

/// A model compiled by [`Engine::compile`]: optimized graph, device
/// placement, schedules, and the compile-time cost table, ready to
/// estimate, execute, and serve. Clones share the same state.
#[derive(Clone)]
pub struct CompiledModel {
    inner: Arc<CompiledInner>,
}

impl CompiledModel {
    pub fn key(&self) -> &ArtifactKey {
        &self.inner.key
    }

    pub fn model(&self) -> &str {
        &self.inner.key.model
    }

    /// True when this compile was served from the artifact cache (memory or
    /// disk) instead of running the pipeline.
    pub fn from_cache(&self) -> bool {
        self.inner.from_cache
    }

    /// True once tuned schedules are active (immediately for a blocking
    /// tuned compile; after the background search for a deferred one).
    pub fn is_tuned(&self) -> bool {
        self.inner
            .schedules
            .read()
            .expect("schedule state poisoned")
            .tuned
    }

    /// Join the background tuning search, if one is running.
    pub fn wait_ready(&self) {
        let handle = self
            .inner
            .pending
            .lock()
            .expect("pending handle poisoned")
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    pub fn graph(&self) -> &Graph {
        &self.inner.graph
    }

    pub fn placement(&self) -> &Placement {
        &self.inner.placement
    }

    /// Compile-time per-node cost table, (node name, ms).
    pub fn cost_table(&self) -> &[(String, f64)] {
        &self.inner.cost_table
    }

    /// The compile-time predictions as a [`CostTable`] — the per-node
    /// predicted-latency view the drift monitor compares observations
    /// against.
    pub fn predicted_costs(&self) -> CostTable {
        CostTable::new(self.inner.cost_table.clone())
    }

    /// Predicted latency of one node from the compile-time cost table, ms.
    pub fn predicted_node_ms(&self, node: &str) -> Option<f64> {
        self.inner
            .cost_table
            .iter()
            .find(|(n, _)| n == node)
            .map(|&(_, ms)| ms)
    }

    /// The model's (first) input shape.
    pub fn input_shape(&self) -> Shape {
        self.inner
            .graph
            .nodes
            .iter()
            .find_map(|n| match &n.op {
                OpKind::Input { shape } => Some(shape.clone()),
                _ => None,
            })
            .expect("compiled model has an input node")
    }

    /// Snapshot of the active schedule records (what a tuned artifact
    /// persists; empty on fallback schedules).
    pub fn schedule_records(&self) -> Vec<TuneRecord> {
        self.inner
            .schedules
            .read()
            .expect("schedule state poisoned")
            .records
            .clone()
    }

    fn provider(&self) -> SharedProvider {
        self.inner
            .schedules
            .read()
            .expect("schedule state poisoned")
            .provider
            .clone()
    }

    /// Single-sample latency estimate on the compiled placement.
    pub fn estimate(&self) -> LatencyReport {
        let p = self.provider();
        estimate_latency(
            &self.inner.placement,
            &self.inner.platform,
            p.as_ref(),
            &self.inner.opts,
        )
    }

    /// Latency of `batch` coalesced requests executed as one launch
    /// sequence, ms. Memoized per batch size; the batched graph reuses the
    /// single-sample schedules (batch-agnostic lookup). Vision-control
    /// graphs (SSD/YOLO heads) pin batch 1, so they price as `batch`
    /// sequential runs — no amortization, which is exactly why serving
    /// batches classification models but not detectors.
    pub fn estimate_batch_ms(&self, batch: usize) -> f64 {
        let batch = batch.max(1);
        if let Some(&ms) = self
            .inner
            .batch_cost
            .lock()
            .expect("batch cost poisoned")
            .get(&batch)
        {
            return ms;
        }
        let ms = self.compute_batch_ms(batch);
        self.inner
            .batch_cost
            .lock()
            .expect("batch cost poisoned")
            .insert(batch, ms);
        ms
    }

    fn compute_batch_ms(&self, batch: usize) -> f64 {
        if batch == 1 {
            return self.estimate().total_ms;
        }
        if self.inner.has_vision {
            return batch as f64 * self.estimate_batch_ms(1);
        }
        let g = rebatch(&self.inner.graph, batch);
        let placed = place(&g, self.inner.policy);
        let p = self.provider();
        let batched = BatchAgnostic(p.as_ref());
        estimate_latency(&placed, &self.inner.platform, &batched, &self.inner.opts).total_ms
    }

    /// An all-CPU variant of this model: same optimized graph and schedule
    /// records, re-placed with [`PlacementPolicy::AllCpu`]. This is the
    /// graceful-degradation target the serving layer routes batches to when
    /// the device misbehaves (circuit breaker open, retries exhausted,
    /// out-of-memory) — slower, but it keeps answering. Built lazily by the
    /// scheduler, so fault-free serving never pays for it.
    pub fn degraded(&self) -> CompiledModel {
        let placed = place(&self.inner.graph, PlacementPolicy::AllCpu);
        let st = self
            .inner
            .schedules
            .read()
            .expect("schedule state poisoned");
        CompiledModel {
            inner: Arc::new(CompiledInner {
                key: self.inner.key.clone(),
                graph: self.inner.graph.clone(),
                placement: placed,
                platform: self.inner.platform.clone(),
                policy: PlacementPolicy::AllCpu,
                opts: self.inner.opts,
                schedules: RwLock::new(ScheduleState {
                    provider: st.provider.clone(),
                    records: st.records.clone(),
                    tuned: st.tuned,
                }),
                from_cache: self.inner.from_cache,
                has_vision: self.inner.has_vision,
                cost_table: self.inner.cost_table.clone(),
                batch_cost: Mutex::new(HashMap::new()),
                pending: Mutex::new(None),
            }),
        }
    }

    /// Execute the model functionally on real tensors (placement-aware
    /// graph, so `DeviceCopy` boundaries are exercised).
    pub fn run(&self, inputs: &[Tensor]) -> Vec<Tensor> {
        Executor.run(&self.inner.placement.graph, inputs)
    }

    /// Traced estimate: one span per node plus `exec.*`/`latency.*`
    /// metrics, for Chrome-trace export.
    #[allow(deprecated)] // the engine owns the sanctioned call of the legacy shim
    pub fn trace(&self, spans: &SpanRecorder, metrics: &MetricsRegistry) -> LatencyReport {
        let p = self.provider();
        unigpu_graph::estimate_latency_traced(
            &self.inner.placement,
            &self.inner.platform,
            p.as_ref(),
            &self.inner.opts,
            spans,
            metrics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigpu_graph::Activation;

    fn conv_chain(name: &str, layers: usize) -> Graph {
        let mut g = Graph::new(name);
        let w0 = ConvWorkload::square(1, 3, 8, 16, 3, 1, 1);
        let x = g.add(
            OpKind::Input {
                shape: Shape::from(w0.input_shape()),
            },
            vec![],
            "data",
        );
        let mut prev = x;
        let mut in_ch = 3;
        for i in 0..layers {
            let w = ConvWorkload::square(1, in_ch, 8, 16, 3, 1, 1);
            let wt = g.add(
                OpKind::Constant(Tensor::zeros(w.weight_shape())),
                vec![],
                format!("w{i}"),
            );
            prev = g.add(
                OpKind::Conv2d {
                    w,
                    bias: false,
                    act: Activation::Relu,
                },
                vec![prev, wt],
                format!("conv{i}"),
            );
            in_ch = 8;
        }
        g.mark_output(prev);
        g
    }

    fn memory_engine() -> Engine {
        Engine::builder()
            .platform(Platform::deeplens())
            .persist(false)
            .build()
    }

    #[test]
    fn compile_matches_primitive_pipeline_and_caches() {
        let g = conv_chain("chain", 2);
        let engine = memory_engine();
        let compiled = engine.compile(&g);
        assert!(!compiled.from_cache());
        assert!(!compiled.is_tuned());

        let placed = place(&optimize(&g), PlacementPolicy::AllGpu);
        let direct = estimate_latency(
            &placed,
            engine.platform(),
            &FallbackSchedules,
            &LatencyOptions::default(),
        );
        assert_eq!(compiled.estimate().total_ms, direct.total_ms);

        let again = engine.compile(&g);
        assert!(again.from_cache());
        assert_eq!(engine.cache_stats().hits, 1);
        assert_eq!(engine.cache_stats().misses, 1);
    }

    #[test]
    fn cost_table_covers_the_placed_graph() {
        let g = conv_chain("chain", 2);
        let compiled = memory_engine().compile(&g);
        let report = compiled.estimate();
        assert_eq!(compiled.cost_table().len(), report.per_op.len());
        let table_total: f64 = compiled.cost_table().iter().map(|(_, ms)| ms).sum();
        assert!((table_total - report.per_op.iter().map(|t| t.ms).sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn batched_estimates_are_memoized_and_sublinear() {
        let g = conv_chain("chain", 2);
        let compiled = memory_engine().compile(&g);
        let one = compiled.estimate_batch_ms(1);
        let eight = compiled.estimate_batch_ms(8);
        assert!(eight > one, "more work costs more");
        assert!(
            eight < 8.0 * one,
            "launch amortization makes batching sublinear"
        );
        // memoized: same value back
        assert_eq!(compiled.estimate_batch_ms(8), eight);
    }

    #[test]
    fn deferred_compile_serves_fallback_then_swaps_tuned_in() {
        let g = conv_chain("deferred", 1);
        let engine = Engine::builder()
            .platform(Platform::deeplens())
            .persist(false)
            .tuned(8)
            .build();
        let compiled = engine.compile_deferred(&g);
        assert!(!compiled.from_cache());
        // usable immediately on fallback schedules
        assert!(compiled.estimate().total_ms > 0.0);
        compiled.wait_ready();
        assert!(compiled.is_tuned());
        assert!(!compiled.schedule_records().is_empty());
        assert!(compiled.estimate().total_ms > 0.0);
        // the background thread published the artifact: next compile hits
        let again = engine.compile(&g);
        assert!(again.from_cache());
        assert!(again.is_tuned());
    }

    #[test]
    fn degraded_variant_is_all_cpu_and_shares_schedules() {
        let g = conv_chain("chain", 2);
        let compiled = memory_engine().compile(&g);
        let degraded = compiled.degraded();
        assert!(
            degraded
                .placement()
                .device
                .iter()
                .all(|d| *d == unigpu_graph::Device::Cpu),
            "every node re-placed on the CPU"
        );
        assert_eq!(
            degraded.placement().copy_count(),
            0,
            "single-device placement needs no copies"
        );
        assert!(degraded.estimate().total_ms > 0.0);
        assert!(
            degraded.estimate_batch_ms(4) != compiled.estimate_batch_ms(4),
            "CPU pricing differs from the compiled placement"
        );
    }

    #[test]
    fn different_tuning_states_are_distinct_cache_entries() {
        let g = conv_chain("chain", 1);
        let fallback = Engine::builder()
            .platform(Platform::deeplens())
            .persist(false)
            .build();
        let tuned = Engine::builder()
            .platform(Platform::deeplens())
            .persist(false)
            .tuned(4)
            .build();
        assert_ne!(
            fallback.compile(&g).key().tuning,
            tuned.compile(&g).key().tuning
        );
    }
}
