//! Compiled-model artifacts.
//!
//! `Engine::compile` turns a model into an [`Artifact`]: the metadata of the
//! optimized/placed graph (identity, estimated cost, per-node cost table)
//! plus the tuned schedule records needed to re-instantiate its
//! [`ScheduleProvider`](unigpu_graph::ScheduleProvider). Artifacts serialize
//! to JSON lines — one metadata line followed by one line per tuning record,
//! the same AutoTVM-log style the tuner database uses — so a model compiled
//! (and possibly tuned for minutes) in one process is a file read in the
//! next.

use serde::{Deserialize, Serialize};
use std::path::Path;
use unigpu_graph::{Graph, OpKind};
use unigpu_tuner::{Database, TuneRecord};

/// Bump when the artifact layout changes; readers reject other versions.
pub const ARTIFACT_VERSION: u32 = 1;

/// Marker distinguishing artifact files from plain tuning databases.
pub const ARTIFACT_KIND: &str = "unigpu-artifact";

/// How an artifact's schedules were obtained. Part of the cache key: a
/// fallback compile and a 128-trial tuned compile of the same model are
/// different artifacts.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TuningState {
    /// TVM-style fallback schedules — no search, compile is cheap.
    Fallback,
    /// Schedule search with this many trials per convolution workload.
    Tuned { trials: usize },
    /// Caller-supplied database, identified by a digest of its records.
    Pinned { digest: u64 },
}

impl TuningState {
    /// Filesystem-safe tag used in artifact file names.
    pub fn tag(&self) -> String {
        match self {
            TuningState::Fallback => "fallback".into(),
            TuningState::Tuned { trials } => format!("tuned{trials}"),
            TuningState::Pinned { digest } => format!("pinned{digest:016x}"),
        }
    }
}

/// Cache key for a compiled model: model identity (name + structural
/// fingerprint), target device, and tuning state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArtifactKey {
    pub model: String,
    /// Structural fingerprint of the *source* graph (see [`fingerprint`]).
    pub fingerprint: u64,
    /// GPU device name (`DeviceSpec::name`) the schedules target.
    pub device: String,
    pub tuning: TuningState,
}

impl ArtifactKey {
    pub fn new(model: &Graph, device: &str, tuning: TuningState) -> Self {
        ArtifactKey {
            model: model.name.clone(),
            fingerprint: fingerprint(model),
            device: device.to_string(),
            tuning,
        }
    }

    /// Filesystem-safe file stem for this key.
    pub fn slug(&self) -> String {
        format!(
            "{}__{}__{:016x}__{}",
            slugify(&self.model),
            slugify(&self.device),
            self.fingerprint,
            self.tuning.tag()
        )
    }
}

fn slugify(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// FNV-1a over the graph structure: model name, per-node operator kind,
/// convolution workload key, input wiring, inferred output shape, and the
/// graph outputs. Deliberately *not* `DefaultHasher` (unstable across
/// processes/releases) and deliberately not a `Debug` dump (a
/// `Constant(Tensor)` node would drag megabytes of weights through the
/// hasher); weight *values* do not affect scheduling, so structure is the
/// right identity for schedule reuse.
pub fn fingerprint(g: &Graph) -> u64 {
    let shapes = g.infer_shapes();
    let mut h = Fnv1a::new();
    h.update(g.name.as_bytes());
    for (n, shape) in g.nodes.iter().zip(&shapes) {
        h.update(&[0xff]); // node separator
        h.update(n.op.name().as_bytes());
        if let OpKind::Conv2d { w, .. } = &n.op {
            h.update(w.key().as_bytes());
        }
        for &i in &n.inputs {
            h.update(&(i as u64).to_le_bytes());
        }
        for &d in shape.dims() {
            h.update(&(d as u64).to_le_bytes());
        }
    }
    for &o in &g.outputs {
        h.update(&(o as u64).to_le_bytes());
    }
    h.finish()
}

/// Digest of a set of tuning records (for [`TuningState::Pinned`] keys).
/// Relies on `serde_json` emitting struct fields in declaration order, which
/// is deterministic for a fixed build.
pub fn records_digest(records: &[TuneRecord]) -> u64 {
    let mut h = Fnv1a::new();
    for r in records {
        h.update(
            serde_json::to_string(r)
                .expect("record serializes")
                .as_bytes(),
        );
        h.update(&[0xff]);
    }
    h.finish()
}

struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// First line of a serialized artifact: everything except the records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArtifactMeta {
    /// Always [`ARTIFACT_KIND`]; guards against reading unrelated JSONL.
    pub kind: String,
    pub version: u32,
    pub model: String,
    pub fingerprint: u64,
    pub device: String,
    pub tuning: TuningState,
    /// Node count of the optimized, placed graph.
    pub nodes: usize,
    /// Estimated single-sample latency at compile time, ms.
    pub total_ms: f64,
    /// Precomputed per-node cost table of the placed graph: (node name, ms).
    pub cost_table: Vec<(String, f64)>,
}

/// A compiled-model artifact: metadata plus the tuned schedule records.
#[derive(Debug, Clone)]
pub struct Artifact {
    pub meta: ArtifactMeta,
    pub records: Vec<TuneRecord>,
}

impl Artifact {
    /// The cache key this artifact answers to.
    pub fn key(&self) -> ArtifactKey {
        ArtifactKey {
            model: self.meta.model.clone(),
            fingerprint: self.meta.fingerprint,
            device: self.meta.device.clone(),
            tuning: self.meta.tuning.clone(),
        }
    }

    /// Rebuild a tuning database from the stored records.
    pub fn database(&self) -> Database {
        Database::from_records(self.records.iter().cloned())
    }

    /// Serialize: one metadata line, then one line per record.
    pub fn to_jsonl(&self) -> String {
        let mut out = serde_json::to_string(&self.meta).expect("meta serializes");
        out.push('\n');
        for r in &self.records {
            out.push_str(&serde_json::to_string(r).expect("record serializes"));
            out.push('\n');
        }
        out
    }

    /// Strict parse of [`Artifact::to_jsonl`] output. Any malformed line —
    /// including a truncated record tail — fails the whole artifact, so
    /// callers fall back to recompiling instead of serving half a schedule
    /// set.
    pub fn from_jsonl(s: &str) -> Result<Artifact, String> {
        let mut lines = s.lines().filter(|l| !l.trim().is_empty());
        let meta_line = lines.next().ok_or_else(|| "empty artifact".to_string())?;
        let meta: ArtifactMeta =
            serde_json::from_str(meta_line).map_err(|e| format!("bad metadata line: {e}"))?;
        if meta.kind != ARTIFACT_KIND {
            return Err(format!("not an artifact (kind {:?})", meta.kind));
        }
        if meta.version != ARTIFACT_VERSION {
            return Err(format!(
                "artifact version {} (this build reads {ARTIFACT_VERSION})",
                meta.version
            ));
        }
        let mut records = Vec::new();
        for line in lines {
            records.push(serde_json::from_str(line).map_err(|e| format!("bad record: {e}"))?);
        }
        Ok(Artifact { meta, records })
    }

    /// Persist atomically: write to a sibling temp file, flush it to disk,
    /// then rename over `path`. A crash mid-write leaves either the old
    /// artifact or a stray `.tmp` — never a truncated JSONL that readers
    /// would have to heal from.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".{}.tmp", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let result = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_jsonl().as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Strict load; IO and parse failures both surface as the error string,
    /// letting the cache treat them uniformly as "corrupt, recompile".
    pub fn load(path: &Path) -> Result<Artifact, String> {
        let s = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
        Artifact::from_jsonl(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigpu_graph::Activation;
    use unigpu_ops::conv::ConvConfig;
    use unigpu_ops::ConvWorkload;
    use unigpu_tensor::{Shape, Tensor};

    fn tiny_graph(name: &str, channels: usize) -> Graph {
        let mut g = Graph::new(name);
        let w = ConvWorkload::square(1, 3, channels, 8, 3, 1, 1);
        let x = g.add(
            OpKind::Input {
                shape: Shape::from(w.input_shape()),
            },
            vec![],
            "data",
        );
        let wt = g.add(
            OpKind::Constant(Tensor::zeros(w.weight_shape())),
            vec![],
            "w0",
        );
        let conv = g.add(
            OpKind::Conv2d {
                w,
                bias: false,
                act: Activation::Relu,
            },
            vec![x, wt],
            "conv0",
        );
        g.mark_output(conv);
        g
    }

    #[test]
    fn fingerprint_is_stable_and_structure_sensitive() {
        let a = tiny_graph("m", 8);
        assert_eq!(fingerprint(&a), fingerprint(&tiny_graph("m", 8)));
        // different conv workload → different fingerprint
        assert_ne!(fingerprint(&a), fingerprint(&tiny_graph("m", 16)));
        // different model name → different fingerprint
        assert_ne!(fingerprint(&a), fingerprint(&tiny_graph("m2", 8)));
    }

    fn sample_artifact() -> Artifact {
        let g = tiny_graph("m", 8);
        let w = ConvWorkload::square(1, 3, 8, 8, 3, 1, 1);
        Artifact {
            meta: ArtifactMeta {
                kind: ARTIFACT_KIND.into(),
                version: ARTIFACT_VERSION,
                model: "m".into(),
                fingerprint: fingerprint(&g),
                device: "dev".into(),
                tuning: TuningState::Tuned { trials: 4 },
                nodes: 2,
                total_ms: 1.5,
                cost_table: vec![("conv0".into(), 1.5)],
            },
            records: vec![TuneRecord {
                device: "dev".into(),
                workload: w.key(),
                config: ConvConfig::default_schedule(),
                cost_ms: 1.5,
                trials: 4,
            }],
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let a = sample_artifact();
        let back = Artifact::from_jsonl(&a.to_jsonl()).unwrap();
        assert_eq!(back.key(), a.key());
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.meta.cost_table, a.meta.cost_table);
    }

    #[test]
    fn corrupt_artifacts_are_rejected_wholesale() {
        assert!(Artifact::from_jsonl("").is_err());
        assert!(Artifact::from_jsonl("not json at all").is_err());
        // a valid tuning-db line is not an artifact (wrong shape → parse error)
        let a = sample_artifact();
        let rec_only = serde_json::to_string(&a.records[0]).unwrap();
        assert!(Artifact::from_jsonl(&rec_only).is_err());
        // truncated record tail fails strictly
        let mut text = a.to_jsonl();
        text.push_str("{\"device\":\"dev\",\"workl");
        assert!(Artifact::from_jsonl(&text).is_err());
    }

    #[test]
    fn version_and_kind_are_enforced() {
        let mut a = sample_artifact();
        a.meta.version = ARTIFACT_VERSION + 1;
        assert!(Artifact::from_jsonl(&a.to_jsonl()).is_err());
        let mut b = sample_artifact();
        b.meta.kind = "something-else".into();
        assert!(Artifact::from_jsonl(&b.to_jsonl()).is_err());
    }

    #[test]
    fn slug_is_filesystem_safe() {
        let g = tiny_graph("ResNet50_v1", 8);
        let key = ArtifactKey::new(&g, "Intel HD 505", TuningState::Fallback);
        assert!(key
            .slug()
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_'));
        assert!(key.slug().contains("fallback"));
    }
}
