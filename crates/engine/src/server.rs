//! Event-driven serving scheduler on the simulated clock.
//!
//! [`Server`] replaces the retired thread-per-worker blocking loops with a
//! discrete-event core: batch *formation* ([`RequestQueue::form_batch`]),
//! device *execution* (launches onto [`MultiTimeline`] lanes), and
//! *readback/accounting* are overlapping stages driven by one priority
//! queue of simulated-time events. Multiple batches are in flight per
//! device, and a lane never idles while compatible requests are queued —
//! the moment a readback frees a lane, formation runs again at that exact
//! simulated instant.
//!
//! **Continuous batching:** [`Server::submit`] drives the clock. A request
//! arriving while batches are in flight joins the *next* formation slot
//! (`engine.continuous_joins`) instead of waiting for a full drain; the
//! flush window lives entirely on the simulated clock, so formation
//! decisions are deterministic and replayable ([`ServeReport::digest`]).
//! Arrivals timestamped in the past join the current simulated instant —
//! the clock never runs backwards.
//!
//! Because the core is a single-threaded event loop, 10k+ in-flight
//! requests cost 10k queue slots, not 10k OS threads. All of the
//! fault-tolerance machinery — deadlines, shedding, transient-fault retry,
//! CPU-degraded re-placement, the circuit breaker, panic isolation, trace
//! contexts, and SLO accounting — runs unchanged inside the event handlers
//! (see [`crate::serve`] for the knob-by-knob description).
//!
//! [`serve_phase_sequential`] keeps a deterministic rendering of the old
//! scheduler alive as the ablation baseline: static same-shape chunks, each
//! waiting for its *last* arrival before launch, with no partial flushes.

use crate::compiled::CompiledModel;
use crate::serve::{
    Admission, Formation, InferenceRequest, RequestQueue, RequestResult, ServeConfig, ServeReport,
    FAULT_LATENCY_FRACTION, LANE_CONTROL, LANE_WORKER_BASE,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use unigpu_device::{DeviceFaultState, LaunchOutcome, MultiTimeline};
use unigpu_telemetry::{
    append_retune_recommendation, tel_warn, AlertEngine, DriftConfig, DriftMonitor, FlightRecorder,
    MetricsRegistry, RetuneRecommendation, SloConfig, SloTracker, SpanRecord, SpanRecorder,
};

/// Deadline expiries within [`DEADLINE_BURST_WINDOW_MS`] that trip a
/// flight-recorder dump.
const DEADLINE_BURST_COUNT: usize = 4;
/// Sliding simulated-time window for the deadline-burst trigger, ms.
const DEADLINE_BURST_WINDOW_MS: f64 = 50.0;
/// SLO burn rate above which the (once-per-run) burn dump triggers.
const BURN_DUMP_THRESHOLD: f64 = 2.0;

/// A batch whose execution interval is already priced on the timeline,
/// waiting for its readback event to be accounted.
#[derive(Debug)]
struct Retire {
    lane: usize,
    /// Batch index (the formation slot) — `batch{idx}` on the timeline.
    idx: usize,
    start_ms: f64,
    done_ms: f64,
    degraded: bool,
    kept: Vec<InferenceRequest>,
}

#[derive(Debug)]
enum EventKind {
    /// A launched batch finishes: account it and free its lane.
    Readback(Retire),
    /// A held formation window elapses: re-run formation.
    Flush,
}

/// One simulated-time event. Ordered by `(at_ms, seq)` so same-instant
/// events retire in creation order — fully deterministic.
#[derive(Debug)]
struct Event {
    at_ms: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at_ms.to_bits() == other.at_ms.to_bits() && self.seq == other.seq
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at_ms
            .total_cmp(&other.at_ms)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-device circuit breaker: K consecutive faults open it (batches route
/// to the CPU variant), a simulated-clock cooldown half-opens it, and a
/// successful probe closes it again.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BreakerPhase {
    Closed,
    Open { until_ms: f64 },
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    phase: BreakerPhase,
    consecutive_faults: usize,
    trips: usize,
    recoveries: usize,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            phase: BreakerPhase::Closed,
            consecutive_faults: 0,
            trips: 0,
            recoveries: 0,
        }
    }

    fn gauge(&self) -> f64 {
        match self.phase {
            BreakerPhase::Closed => 0.0,
            BreakerPhase::Open { .. } => 1.0,
            BreakerPhase::HalfOpen => 2.0,
        }
    }
}

#[derive(Clone, Copy)]
enum ExecMode {
    /// Normal path: device attempts with retry/breaker, CPU on exhaustion.
    Device { inject_panics: bool },
    /// Last-resort path after repeated panics: price on the CPU variant
    /// without touching the device or the panic-injection counters.
    ForceDegraded,
}

/// Streaming serve handle — the event-driven scheduler plus its telemetry.
///
/// Obtain one from [`CompiledModel::server`] (fresh telemetry) or
/// [`CompiledModel::server_with`] (caller-shared recorder/registry, e.g.
/// for a live metrics endpoint). Feed it with [`Server::submit`], harvest
/// completions incrementally with [`Server::poll`] or force the backlog
/// through with [`Server::drain`], and finish with [`Server::shutdown`] for
/// the full [`ServeReport`].
///
/// The handle owns the simulated clock: time advances on `submit` (to the
/// request's arrival), on `drain`, and on `shutdown`. Everything in
/// between — formation windows, launches, readbacks, breaker cooldowns —
/// happens at exact simulated instants through one event queue, so a run
/// is deterministic end to end.
pub struct Server {
    compiled: CompiledModel,
    cfg: ServeConfig,
    spans: SpanRecorder,
    metrics: MetricsRegistry,
    queue: RequestQueue,
    timeline: MultiTimeline,
    clock_ms: f64,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    /// Deadline of the currently armed `Flush` event, if any — dedups
    /// re-arming while a held window is already ticking.
    flush_armed_at: Option<f64>,
    window_ms: f64,
    completed: Vec<RequestResult>,
    /// How much of `completed` earlier `poll`/`drain` calls handed out.
    harvested: usize,
    shed: Vec<InferenceRequest>,
    expired: Vec<InferenceRequest>,
    failed: Vec<InferenceRequest>,
    offered: usize,
    batches: usize,
    inflight: usize,
    continuous_joins: usize,
    faults: DeviceFaultState,
    breaker: Breaker,
    degraded_model: Option<CompiledModel>,
    device_faults: usize,
    retries: usize,
    degraded_batches: usize,
    worker_panics: usize,
    slo: SloTracker,
    /// Always-on bounded ring of recent scheduler events (simulated clock).
    recorder: FlightRecorder,
    /// Predicted-vs-observed latency accounting against the cost table.
    drift: DriftMonitor,
    /// Declarative threshold alerting over the metrics registry.
    alerts: AlertEngine,
    /// Flight-recorder dump files written so far this run.
    dumps: Vec<PathBuf>,
    /// Simulated times of recent deadline expiries (burst trigger window).
    recent_expiries: VecDeque<f64>,
    /// The SLO burn-rate dump fires at most once per run.
    burn_dumped: bool,
}

impl Server {
    /// A server with its own fresh [`SpanRecorder`] and
    /// [`MetricsRegistry`] (see [`Server::spans`] / [`Server::metrics`]).
    pub fn new(compiled: CompiledModel, cfg: ServeConfig) -> Self {
        Server::with_telemetry(compiled, cfg, SpanRecorder::new(), MetricsRegistry::new())
    }

    /// A server recording into caller-owned telemetry (both types are
    /// cheaply clonable `Arc` handles — share them with an exposition
    /// endpoint to watch the run live).
    pub fn with_telemetry(
        compiled: CompiledModel,
        cfg: ServeConfig,
        spans: SpanRecorder,
        metrics: MetricsRegistry,
    ) -> Self {
        let queue = match cfg.queue_cap {
            Some(cap) => RequestQueue::bounded(cap),
            None => RequestQueue::new(),
        };
        let slo = SloTracker::new(SloConfig {
            objective: cfg.slo_objective,
            window_ms: cfg.slo_window_ms,
        });
        let window_ms = cfg.batch_window.as_secs_f64() * 1000.0;
        let recorder = FlightRecorder::new(cfg.recorder_capacity);
        let drift = DriftMonitor::new(DriftConfig {
            threshold: cfg.drift_threshold,
            min_samples: cfg.drift_min_samples,
        });
        let alerts = AlertEngine::new(cfg.alert_rules.clone());
        Server {
            timeline: MultiTimeline::new(cfg.concurrency.max(1)),
            faults: DeviceFaultState::new(cfg.faults),
            queue,
            slo,
            window_ms,
            compiled,
            cfg,
            spans,
            metrics,
            clock_ms: 0.0,
            events: BinaryHeap::new(),
            seq: 0,
            flush_armed_at: None,
            completed: Vec::new(),
            harvested: 0,
            shed: Vec::new(),
            expired: Vec::new(),
            failed: Vec::new(),
            offered: 0,
            batches: 0,
            inflight: 0,
            continuous_joins: 0,
            breaker: Breaker::new(),
            degraded_model: None,
            device_faults: 0,
            retries: 0,
            degraded_batches: 0,
            worker_panics: 0,
            recorder,
            drift,
            alerts,
            dumps: Vec::new(),
            recent_expiries: VecDeque::new(),
            burn_dumped: false,
        }
    }

    /// Current simulated time, ms.
    pub fn now_ms(&self) -> f64 {
        self.clock_ms
    }

    /// Batches launched but not yet retired by their readback event.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Requests admitted but not yet formed into a batch.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Requests offered so far (accepted or not).
    pub fn offered(&self) -> usize {
        self.offered
    }

    /// Requests admitted mid-flight that joined a later formation slot —
    /// the continuous-batching count (also `engine.continuous_joins`).
    pub fn continuous_joins(&self) -> usize {
        self.continuous_joins
    }

    /// Circuit-breaker state as the `engine.breaker_state` gauge encodes
    /// it: 0 closed, 1 open, 2 half-open. A fleet router reads this on
    /// every admission ack so tripped replicas shed to healthy peers.
    pub fn breaker_gauge(&self) -> f64 {
        self.breaker.gauge()
    }

    /// Simulated instant an open breaker becomes eligible to half-open;
    /// `None` unless the breaker is open. A starved replica's clock only
    /// advances when work arrives, so a router uses this to decide when a
    /// request may *probe* an open replica instead of waiting forever.
    pub fn breaker_open_until_ms(&self) -> Option<f64> {
        match self.breaker.phase {
            BreakerPhase::Open { until_ms } => Some(until_ms),
            _ => None,
        }
    }

    /// SLO burn rate at the current simulated instant (non-mutating; the
    /// same quantity `engine.slo.burn_rate` publishes at retirement).
    pub fn slo_burn_rate(&self) -> f64 {
        self.slo.summary(self.clock_ms).burn_rate
    }

    /// Hard-kill this server: requests still queued (admitted but not yet
    /// formed into a batch) are evicted and handed back for re-routing —
    /// they leave this server's accounting entirely — while batches
    /// already in flight run to their readback and are reported normally.
    /// The fleet chaos invariant rests on this split: a killed replica's
    /// report still satisfies `lost() == 0`, and the evicted backlog is
    /// the router's to place elsewhere.
    pub fn kill(mut self) -> (Vec<InferenceRequest>, ServeReport) {
        let evicted = self.queue.evict();
        self.offered -= evicted.len();
        self.queue.close();
        self.run_to_quiescence();
        (evicted, self.finalize())
    }

    /// The span recorder this server writes to.
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// The metrics registry this server writes to.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Offer one request. Advances the simulated clock to the request's
    /// arrival (processing every event due before it — readbacks free
    /// lanes, held windows flush), then runs admission control and
    /// formation. `Accepted` means admitted, not completed: harvest
    /// completions with [`Server::poll`]/[`Server::drain`]/
    /// [`Server::shutdown`]. Rejections are accounted (`engine.shed`, SLO
    /// bad) and also handed back to the caller.
    ///
    /// Arrivals are expected in non-decreasing order; an out-of-order
    /// arrival is not an error — it simply joins the current instant.
    pub fn submit(&mut self, req: InferenceRequest) -> Admission {
        self.offered += 1;
        let target = self.clock_ms.max(req.arrival_ms);
        self.advance_to(target);
        let mid_flight = self.inflight > 0;
        let id = req.id;
        match self.queue.offer(req) {
            Admission::Accepted => {
                if mid_flight {
                    // continuous batching: this request joins the next
                    // formation slot while earlier batches are still on
                    // the device
                    self.continuous_joins += 1;
                    self.metrics.inc("engine.continuous_joins");
                }
                self.recorder
                    .record(self.clock_ms, "admit", &[("id", id.to_string())]);
                self.metrics
                    .set_gauge("engine.queue_depth", self.queue.len() as f64);
                self.dispatch();
                Admission::Accepted
            }
            Admission::Shed(r) => {
                self.metrics.inc("engine.shed");
                self.slo.bad(r.arrival_ms);
                self.recorder
                    .record(self.clock_ms, "shed", &[("id", id.to_string())]);
                self.shed.push(r.clone());
                Admission::Shed(r)
            }
            Admission::Closed(r) => {
                self.metrics.inc("engine.shed");
                self.slo.bad(r.arrival_ms);
                self.recorder
                    .record(self.clock_ms, "shed", &[("id", id.to_string()), ("closed", "1".into())]);
                self.shed.push(r.clone());
                Admission::Closed(r)
            }
        }
    }

    /// Hand out results completed since the last harvest. Never advances
    /// the simulated clock.
    pub fn poll(&mut self) -> Vec<RequestResult> {
        let out = self.completed[self.harvested..].to_vec();
        self.harvested = self.completed.len();
        out
    }

    /// Run the simulated clock forward until every admitted request has
    /// retired (held windows flush, in-flight batches read back), then
    /// hand out the newly completed results. The queue stays open for
    /// further submissions.
    pub fn drain(&mut self) -> Vec<RequestResult> {
        self.run_to_quiescence();
        self.poll()
    }

    /// Close the queue (drain-then-reject), run every remaining event, and
    /// produce the final report with the same accounting, gauges, and SLO
    /// publication contract the retired blocking scheduler had.
    pub fn shutdown(mut self) -> ServeReport {
        self.queue.close();
        self.run_to_quiescence();
        self.finalize()
    }

    /// Process every due event up to `limit`, then move the clock there
    /// and re-run formation at the new instant.
    fn advance_to(&mut self, limit_ms: f64) {
        loop {
            match self.events.peek() {
                Some(Reverse(ev)) if ev.at_ms <= limit_ms => {
                    let Reverse(ev) = self.events.pop().expect("peeked event");
                    self.clock_ms = self.clock_ms.max(ev.at_ms);
                    self.handle(ev);
                }
                _ => break,
            }
        }
        self.clock_ms = self.clock_ms.max(limit_ms);
        self.dispatch();
    }

    /// Drain the event queue completely; the heap only ever shrinks once
    /// no new work can be launched, so this terminates at quiescence.
    fn run_to_quiescence(&mut self) {
        self.dispatch();
        while let Some(Reverse(ev)) = self.events.pop() {
            self.clock_ms = self.clock_ms.max(ev.at_ms);
            self.handle(ev);
        }
    }

    fn handle(&mut self, ev: Event) {
        match ev.kind {
            EventKind::Readback(retire) => {
                self.retire(retire);
                self.dispatch();
            }
            EventKind::Flush => {
                if self.flush_armed_at == Some(ev.at_ms) {
                    self.flush_armed_at = None;
                }
                self.dispatch();
            }
        }
    }

    fn push_event(&mut self, at_ms: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { at_ms, seq, kind }));
    }

    /// Launch work while a lane is free at the current instant and
    /// formation yields a batch. An underfull run arms a `Flush` event at
    /// its window deadline instead of blocking.
    fn dispatch(&mut self) {
        while let Some(lane) = self.timeline.first_free_at(self.clock_ms) {
            match self
                .queue
                .form_batch(self.cfg.max_batch, self.clock_ms, self.window_ms)
            {
                Formation::Flush(batch) => {
                    self.metrics
                        .set_gauge("engine.queue_depth", self.queue.len() as f64);
                    self.execute(lane, batch);
                }
                Formation::Hold { until_ms } => {
                    if self.flush_armed_at != Some(until_ms) {
                        self.flush_armed_at = Some(until_ms);
                        self.push_event(until_ms, EventKind::Flush);
                    }
                    break;
                }
                Formation::Empty { .. } => break,
            }
        }
    }

    /// Execute one formed batch on `lane` under the panic-isolation
    /// ladder: device with injected panics → device without → forced CPU
    /// accounting → the counted `failed` bucket.
    fn execute(&mut self, lane: usize, batch: Vec<InferenceRequest>) {
        for (attempt, mode) in [
            ExecMode::Device {
                inject_panics: true,
            },
            ExecMode::Device {
                inject_panics: false,
            },
            ExecMode::ForceDegraded,
        ]
        .into_iter()
        .enumerate()
        {
            let outcome = catch_unwind(AssertUnwindSafe(|| self.try_batch(lane, &batch, mode)));
            match outcome {
                Ok(Some(retire)) => {
                    self.inflight += 1;
                    self.metrics
                        .set_gauge("engine.inflight", self.inflight as f64);
                    self.push_event(retire.done_ms, EventKind::Readback(retire));
                    return;
                }
                // every request expired at formation: nothing launched
                Ok(None) => return,
                Err(_) => {
                    self.worker_panics += 1;
                    self.metrics.inc("engine.worker_panics");
                    self.recorder.record(
                        self.clock_ms,
                        "panic",
                        &[
                            ("lane", lane.to_string()),
                            ("n", batch.len().to_string()),
                            ("attempt", (attempt + 1).to_string()),
                        ],
                    );
                    self.dump_recorder("panic");
                    tel_warn!(
                        "engine::serve",
                        "lane {lane} panicked on a batch of {} (attempt {}); restarting",
                        batch.len(),
                        attempt + 1
                    );
                }
            }
        }
        // even degraded accounting panicked: bucket the requests as
        // failed so they are counted, never silently dropped
        self.metrics.add("engine.failed", batch.len() as u64);
        self.recorder
            .record(self.clock_ms, "failed", &[("n", batch.len().to_string())]);
        for r in &batch {
            self.slo.bad(r.arrival_ms);
        }
        self.failed.extend(batch);
    }

    /// Price one batch onto the timeline (deadline filter, breaker, fault
    /// ladder) and return its pending readback; `None` when every request
    /// expired. Runs under `catch_unwind` — injected panics fire before
    /// any state besides the fault counters moves.
    fn try_batch(
        &mut self,
        lane: usize,
        batch: &[InferenceRequest],
        mode: ExecMode,
    ) -> Option<Retire> {
        if let ExecMode::Device {
            inject_panics: true,
        } = mode
        {
            if self.faults.worker_panic_now() {
                panic!("injected worker panic (UNIGPU_FAULTS worker_panic_nth)");
            }
        }

        // Deadline admission at batch formation: requests whose completion
        // budget the batch would already blow are rejected, counted, and
        // never executed. The projection uses the full batch; survivors
        // ride a batch that is no larger, so it finishes no later than
        // projected.
        let mut kept: Vec<&InferenceRequest> = batch.iter().collect();
        if let Some(budget) = self.cfg.deadline_ms {
            let free = self.timeline.free_at(lane);
            let ready = batch.iter().map(|r| r.arrival_ms).fold(0.0, f64::max);
            let base = self.compiled.estimate_batch_ms(batch.len());
            let factor = self.faults.throttle_factor_now();
            let projected_done = free.max(ready) + base * factor;
            let (ok, late): (Vec<_>, Vec<_>) = kept
                .into_iter()
                .partition(|r| r.arrival_ms + budget >= projected_done);
            if !late.is_empty() {
                self.metrics
                    .add("engine.deadline_expired", late.len() as u64);
                for r in &late {
                    self.slo.bad(r.arrival_ms);
                    self.recorder.record(
                        self.clock_ms,
                        "deadline_expired",
                        &[
                            ("id", r.id.to_string()),
                            ("projected_done", format!("{projected_done:.3}")),
                        ],
                    );
                    self.recent_expiries.push_back(self.clock_ms);
                }
                while self
                    .recent_expiries
                    .front()
                    .is_some_and(|t| *t < self.clock_ms - DEADLINE_BURST_WINDOW_MS)
                {
                    self.recent_expiries.pop_front();
                }
                if self.recent_expiries.len() >= DEADLINE_BURST_COUNT {
                    self.recent_expiries.clear();
                    self.dump_recorder("deadline_burst");
                }
                self.expired.extend(late.into_iter().cloned());
            }
            kept = ok;
        }
        if kept.is_empty() {
            return None;
        }

        let len = kept.len();
        let ready_ms = kept.iter().map(|r| r.arrival_ms).fold(0.0, f64::max);
        let base_ms = self.compiled.estimate_batch_ms(len);
        let idx = self.batches;
        self.batches += 1;
        // batch-level control spans (retries) stitch into the trace of the
        // first sampled request riding the batch
        let batch_trace = kept.iter().find_map(|r| self.cfg.request_trace(r));

        let (start, done, degraded) = match mode {
            ExecMode::ForceDegraded => self.run_degraded(lane, idx, len, ready_ms),
            ExecMode::Device { .. } => {
                let mut attempts = 0usize;
                loop {
                    let now = self.timeline.free_at(lane).max(ready_ms);
                    if !self.breaker_allows_gpu(now) {
                        break self.run_degraded(lane, idx, len, ready_ms);
                    }
                    match self.faults.on_launch(base_ms, len) {
                        LaunchOutcome::Ok { duration_ms } => {
                            let start = self.timeline.schedule(
                                lane,
                                format!("batch{idx}[{len}]"),
                                ready_ms,
                                duration_ms,
                            );
                            self.breaker_on_success(start + duration_ms);
                            break (start, start + duration_ms, false);
                        }
                        LaunchOutcome::Fault(f) => {
                            self.device_faults += 1;
                            self.metrics.inc("engine.device_faults");
                            self.recorder.record(
                                now,
                                "fault",
                                &[("slot", idx.to_string()), ("fault", f.to_string())],
                            );
                            // the failed launch occupies the lane until the
                            // driver reports the error
                            let cost = base_ms * FAULT_LATENCY_FRACTION;
                            let at = self.timeline.schedule(
                                lane,
                                format!("fault{idx}[{f}]"),
                                ready_ms,
                                cost,
                            );
                            let open = self.breaker_on_fault(at + cost);
                            attempts += 1;
                            if open || !f.is_transient() || attempts > self.cfg.max_retries {
                                break self.run_degraded(lane, idx, len, ready_ms);
                            }
                            self.retries += 1;
                            self.metrics.inc("engine.retries");
                            self.recorder.record(
                                at + cost,
                                "retry",
                                &[("slot", idx.to_string()), ("attempt", attempts.to_string())],
                            );
                            self.spans.record(SpanRecord {
                                name: format!("retry batch{idx}"),
                                category: "retry".into(),
                                start_us: at * 1000.0,
                                dur_us: cost * 1000.0,
                                lane: LANE_CONTROL,
                                attrs: vec![
                                    ("fault".into(), f.to_string()),
                                    ("attempt".into(), attempts.to_string()),
                                ],
                                trace: batch_trace.map(|t| t.child(attempts as u64)),
                            });
                        }
                    }
                }
            }
        };

        self.recorder.record(
            start,
            "launch",
            &[
                ("slot", idx.to_string()),
                ("lane", lane.to_string()),
                ("n", len.to_string()),
                ("done", format!("{done:.3}")),
                ("device", if degraded { "cpu" } else { "gpu" }.into()),
            ],
        );

        Some(Retire {
            lane,
            idx,
            start_ms: start,
            done_ms: done,
            degraded,
            kept: kept.into_iter().cloned().collect(),
        })
    }

    /// Readback/accounting stage: the batch's execution interval is
    /// settled, so emit the per-request metrics, spans, SLO events, and
    /// results, and free the lane for the next dispatch.
    fn retire(&mut self, retire: Retire) {
        self.inflight -= 1;
        self.metrics
            .set_gauge("engine.inflight", self.inflight as f64);
        let Retire {
            lane,
            idx,
            start_ms: start,
            done_ms: done,
            degraded,
            kept,
        } = retire;
        let len = kept.len();
        self.metrics.inc("engine.batches");
        self.metrics.observe("engine.batch_size", len as f64);
        self.metrics.observe("engine.exec_ms", done - start);
        for r in kept {
            self.metrics.inc("engine.requests");
            self.metrics.observe("engine.queue_ms", start - r.arrival_ms);
            self.metrics
                .observe("engine.latency_ms", done - r.arrival_ms);
            self.slo.good(done);
            if let Some(trace) = self.cfg.request_trace(&r) {
                self.spans.record(SpanRecord {
                    name: format!("req{}", r.id),
                    category: "request".into(),
                    start_us: start * 1000.0,
                    dur_us: (done - start) * 1000.0,
                    lane: LANE_WORKER_BASE + lane as u32,
                    attrs: vec![
                        ("batch".into(), len.to_string()),
                        ("worker".into(), lane.to_string()),
                        ("queue_ms".into(), format!("{:.3}", start - r.arrival_ms)),
                        ("device".into(), if degraded { "cpu" } else { "gpu" }.into()),
                        ("slot".into(), idx.to_string()),
                    ],
                    trace: Some(trace),
                });
            }
            self.completed.push(RequestResult {
                id: r.id,
                arrival_ms: r.arrival_ms,
                start_ms: start,
                done_ms: done,
                batch_size: len,
                worker: lane,
                degraded,
            });
        }
        self.recorder.record(
            done,
            "retire",
            &[
                ("slot", idx.to_string()),
                ("lane", lane.to_string()),
                ("n", len.to_string()),
                ("device", if degraded { "cpu" } else { "gpu" }.into()),
            ],
        );
        // Drift tap: the cost table predicted this batch's latency; the
        // timeline interval (throttle, fault retries folded in) is the
        // observation. Batches priced on the CPU-degraded variant say
        // nothing about the GPU cost table and are excluded.
        if !degraded {
            let predicted = self.compiled.estimate_batch_ms(len);
            let observed = done - start;
            self.drift.record_graph(predicted, observed);
            let table = self.compiled.cost_table();
            let total: f64 = table.iter().map(|(_, ms)| ms).sum();
            if predicted > 0.0 && total > 0.0 {
                // The simulator observes batch-level latency only, so each
                // node's observation is apportioned by its predicted share:
                // every node inherits the batch's relative error.
                let scale = predicted / total;
                let factor = observed / predicted;
                for (name, ms) in table {
                    let node_predicted = ms * scale;
                    self.drift
                        .record_node(name, node_predicted, node_predicted * factor);
                }
            }
        }
        // Alert rules run on the freshly updated registry; publish the SLO
        // gauges first so burn-rate rules see the value at this instant.
        // Skipped entirely when nobody is watching (no rules, no dump dir).
        if !self.alerts.is_empty() || self.cfg.recorder_dump_dir.is_some() {
            self.slo.publish(&self.metrics, "engine.slo", done);
            if !self.burn_dumped
                && self
                    .metrics
                    .gauge("engine.slo.burn_rate")
                    .is_some_and(|b| b > BURN_DUMP_THRESHOLD)
            {
                self.burn_dumped = true;
                self.recorder.record(done, "slo_burn", &[]);
                self.dump_recorder("slo_burn");
            }
            self.evaluate_alerts(done);
        }
    }

    /// Run the alert rules at `now_ms`, recording fire/resolve edges in
    /// the flight recorder and dumping it on every fire edge.
    fn evaluate_alerts(&mut self, now_ms: f64) {
        if self.alerts.is_empty() {
            return;
        }
        for t in self.alerts.evaluate(&self.metrics, now_ms) {
            self.recorder.record(
                now_ms,
                if t.firing { "alert_fire" } else { "alert_resolve" },
                &[
                    ("rule", t.rule.clone()),
                    ("value", format!("{:.6}", t.value)),
                ],
            );
            if t.firing {
                let trigger = format!("alert_{}", t.rule);
                self.dump_recorder(&trigger);
            }
        }
    }

    /// Dump the flight recorder into the configured directory; a no-op
    /// unless [`ServeConfig::recorder_dump_dir`] is set. Dump failures are
    /// warnings — observability must never take the data path down.
    fn dump_recorder(&mut self, trigger: &str) {
        let Some(dir) = self.cfg.recorder_dump_dir.clone() else {
            return;
        };
        match self.recorder.dump(&dir, trigger) {
            Ok(path) => {
                self.metrics.inc("engine.recorder_dumps");
                self.dumps.push(path);
            }
            Err(e) => {
                tel_warn!(
                    "engine::serve",
                    "flight-recorder dump ({trigger}) failed: {e}"
                );
            }
        }
    }

    /// Price the batch on the all-CPU degraded variant (graceful
    /// degradation).
    fn run_degraded(&mut self, lane: usize, idx: usize, len: usize, ready_ms: f64) -> (f64, f64, bool) {
        if self.degraded_model.is_none() {
            self.degraded_model = Some(self.compiled.degraded());
        }
        let model = self.degraded_model.as_ref().expect("degraded model set above");
        let ms = model.estimate_batch_ms(len);
        let start =
            self.timeline
                .schedule(lane, format!("batch{idx}[{len}]@cpu"), ready_ms, ms);
        self.degraded_batches += 1;
        self.metrics.inc("engine.degraded_batches");
        (start, start + ms, true)
    }

    fn breaker_transition(&mut self, to: &str, gauge: f64, at_ms: f64, detail: String) {
        self.metrics.set_gauge("engine.breaker_state", gauge);
        self.recorder
            .record(at_ms, "breaker", &[("to", to.into()), ("detail", detail.clone())]);
        self.spans.record(SpanRecord {
            name: format!("breaker→{to}"),
            category: "breaker".into(),
            start_us: at_ms * 1000.0,
            dur_us: 0.0,
            lane: LANE_CONTROL,
            attrs: vec![("detail".into(), detail)],
            trace: None,
        });
    }

    /// May this batch try the device right now? Handles the open→half-open
    /// transition when the cooldown has elapsed on the simulated clock.
    fn breaker_allows_gpu(&mut self, now_ms: f64) -> bool {
        match self.breaker.phase {
            BreakerPhase::Closed | BreakerPhase::HalfOpen => true,
            BreakerPhase::Open { until_ms } if now_ms >= until_ms => {
                self.breaker.phase = BreakerPhase::HalfOpen;
                self.breaker_transition(
                    "half_open",
                    self.breaker.gauge(),
                    now_ms,
                    format!("cooldown elapsed at {now_ms:.3} ms; probing device"),
                );
                true
            }
            BreakerPhase::Open { .. } => false,
        }
    }

    fn breaker_on_success(&mut self, at_ms: f64) {
        self.breaker.consecutive_faults = 0;
        if self.breaker.phase == BreakerPhase::HalfOpen {
            self.breaker.phase = BreakerPhase::Closed;
            self.breaker.recoveries += 1;
            self.metrics.inc("engine.breaker_recoveries");
            self.breaker_transition(
                "closed",
                self.breaker.gauge(),
                at_ms,
                "probe succeeded; device recovered".into(),
            );
        }
    }

    /// Record a device fault; returns `true` if the breaker is (now) open.
    fn breaker_on_fault(&mut self, at_ms: f64) -> bool {
        let threshold = self.cfg.breaker_threshold;
        self.breaker.consecutive_faults += 1;
        let trip = match self.breaker.phase {
            BreakerPhase::HalfOpen => true, // failed probe: straight back open
            BreakerPhase::Closed => {
                threshold > 0 && self.breaker.consecutive_faults >= threshold
            }
            BreakerPhase::Open { .. } => return true,
        };
        if trip {
            self.breaker.phase = BreakerPhase::Open {
                until_ms: at_ms + self.cfg.breaker_cooldown_ms,
            };
            self.breaker.trips += 1;
            self.metrics.inc("engine.breaker_trips");
            self.breaker_transition(
                "open",
                self.breaker.gauge(),
                at_ms,
                format!(
                    "{} consecutive fault(s); cooling down {:.1} ms",
                    self.breaker.consecutive_faults, self.cfg.breaker_cooldown_ms
                ),
            );
            self.dump_recorder("breaker_trip");
        }
        trip
    }

    /// Build the final report and publish the end-of-run gauges — the same
    /// contract the retired blocking scheduler had.
    fn finalize(mut self) -> ServeReport {
        self.completed.sort_by_key(|r| r.id);
        self.expired.sort_by_key(|r| r.id);
        self.metrics.set_gauge("engine.queue_depth", 0.0);
        let makespan_ms = self.timeline.makespan_ms();
        let device_idle_fraction = self.timeline.idle_fraction();
        let lane_utilization = self.timeline.utilizations();
        let slo_summary = self.slo.publish(&self.metrics, "engine.slo", makespan_ms);
        self.metrics.set_gauge("engine.makespan_ms", makespan_ms);
        // same formula as ServeReport::throughput_rps, computed before the
        // result vector moves into the report
        let throughput_rps = if makespan_ms <= 0.0 {
            0.0
        } else {
            self.completed.len() as f64 / (makespan_ms / 1000.0)
        };
        self.metrics.set_gauge("engine.throughput_rps", throughput_rps);
        self.metrics
            .set_gauge("engine.breaker_state", self.breaker.gauge());
        self.metrics
            .set_gauge("engine.device_idle_fraction", device_idle_fraction);
        for (lane, u) in lane_utilization.iter().enumerate() {
            self.metrics
                .set_gauge(&format!("engine.lane_utilization.{lane}"), *u);
        }
        self.drift.publish(&self.metrics, "engine.drift");
        let drift_summary = self.drift.summary();
        if drift_summary.miscalibrated {
            if let Some(dir) = self.cfg.retune_dir.clone() {
                let key = self.compiled.key();
                let rec = RetuneRecommendation {
                    model: key.model.clone(),
                    device: key.device.clone(),
                    fingerprint: key.fingerprint,
                    samples: drift_summary.samples,
                    mean_abs_rel_err: drift_summary.mean_abs_rel_err,
                    max_abs_rel_err: drift_summary.max_abs_rel_err,
                    threshold: drift_summary.threshold,
                    worst_node: drift_summary.worst_node.clone(),
                    sim_time_ms: makespan_ms,
                };
                match append_retune_recommendation(&dir, &rec) {
                    Ok(_) => self.metrics.inc("engine.drift.retune_recommendations"),
                    Err(e) => {
                        tel_warn!("engine::serve", "re-tune recommendation write failed: {e}");
                    }
                }
            }
        }
        // final alert sweep over the end-of-run gauges, then the
        // unconditional shutdown dump: every configured run leaves at
        // least one dump, so determinism can be checked even on clean runs
        self.evaluate_alerts(makespan_ms);
        self.recorder.record(
            makespan_ms,
            "shutdown",
            &[
                ("offered", self.offered.to_string()),
                ("completed", self.completed.len().to_string()),
                ("batches", self.batches.to_string()),
            ],
        );
        self.dump_recorder("shutdown");
        ServeReport {
            results: self.completed,
            batches: self.batches,
            makespan_ms,
            timeline: self.timeline,
            offered: self.offered,
            shed: self.shed,
            expired: self.expired,
            failed: self.failed,
            device_faults: self.device_faults,
            retries: self.retries,
            degraded_batches: self.degraded_batches,
            breaker_trips: self.breaker.trips,
            breaker_recoveries: self.breaker.recoveries,
            worker_panics: self.worker_panics,
            device_idle_fraction,
            lane_utilization,
            slo: slo_summary,
            drift: drift_summary,
            alerts_fired: self.alerts.fired_total(),
            alerts_resolved: self.alerts.resolved_total(),
            fired_alerts: self
                .alerts
                .fired_rules()
                .into_iter()
                .map(str::to_string)
                .collect(),
            recorder_dumps: self.dumps,
        }
    }
}

impl CompiledModel {
    /// A streaming [`Server`] for this model with fresh telemetry.
    pub fn server(&self, cfg: &ServeConfig) -> Server {
        Server::new(self.clone(), cfg.clone())
    }

    /// A streaming [`Server`] recording into caller-owned telemetry.
    pub fn server_with(
        &self,
        cfg: &ServeConfig,
        spans: &SpanRecorder,
        metrics: &MetricsRegistry,
    ) -> Server {
        Server::with_telemetry(self.clone(), cfg.clone(), spans.clone(), metrics.clone())
    }
}

/// Deterministic rendering of the retired thread-per-worker scheduler, kept
/// as the pipelining-ablation baseline.
///
/// Requests are statically partitioned, in arrival order, into contiguous
/// same-shape chunks of at most `cfg.max_batch`; each chunk goes to the
/// least-loaded lane and waits for its *last* member's arrival before
/// launching — exactly the phase-sequential form/execute/account cycle,
/// with none of the event-driven core's partial flushes or free-lane
/// work stealing. Admission control is bypassed (the old feeder raced the
/// workers; the static partition models the fair rendering of that), so
/// run it without a queue cap. Deadlines, faults, the breaker, and panic
/// isolation all apply unchanged, making reports directly comparable with
/// [`Server::shutdown`]'s.
pub fn serve_phase_sequential(
    compiled: &CompiledModel,
    mut requests: Vec<InferenceRequest>,
    cfg: &ServeConfig,
    spans: &SpanRecorder,
    metrics: &MetricsRegistry,
) -> ServeReport {
    requests.sort_by(|a, b| a.arrival_ms.total_cmp(&b.arrival_ms));
    let mut server =
        Server::with_telemetry(compiled.clone(), cfg.clone(), spans.clone(), metrics.clone());
    server.offered = requests.len();
    let max = cfg.max_batch.max(1);
    let mut chunk: Vec<InferenceRequest> = Vec::new();
    for r in requests {
        let boundary = chunk.len() == max || chunk.first().is_some_and(|f| f.shape != r.shape);
        if boundary {
            let lane = server.timeline.least_loaded();
            server.execute(lane, std::mem::take(&mut chunk));
        }
        chunk.push(r);
    }
    if !chunk.is_empty() {
        let lane = server.timeline.least_loaded();
        server.execute(lane, chunk);
    }
    server.run_to_quiescence();
    server.finalize()
}
