//! The artifact cache: bounded in-memory LRU over [`Artifact`]s with
//! optional JSONL persistence.
//!
//! Eviction only drops the in-memory copy — the on-disk file survives, so a
//! later `get` for an evicted key comes back as a disk hit rather than a
//! recompile. Corrupt or mismatched disk artifacts are deleted and reported
//! as misses; the engine recompiles instead of crashing on a bad file.

use crate::artifact::{Artifact, ArtifactKey};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use unigpu_telemetry::{tel_debug, tel_warn};

/// Default artifact directory: `$UNIGPU_DB_DIR/artifacts` (the tuning
/// database lives alongside, under the same root).
pub fn default_artifact_dir() -> PathBuf {
    let base = std::env::var("UNIGPU_DB_DIR").unwrap_or_else(|_| "target/tuning".into());
    PathBuf::from(base).join("artifacts")
}

/// Cache traffic counters, readable via [`ArtifactCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// In-memory hits.
    pub hits: usize,
    /// Served from disk after a memory miss (cross-process reuse).
    pub disk_hits: usize,
    /// Not found anywhere: the caller compiles.
    pub misses: usize,
    /// In-memory entries dropped by the LRU bound.
    pub evictions: usize,
    /// Corrupt or mismatched disk artifacts deleted.
    pub corrupt: usize,
}

/// LRU cache of compiled-model artifacts.
#[derive(Debug)]
pub struct ArtifactCache {
    capacity: usize,
    dir: Option<PathBuf>,
    entries: HashMap<ArtifactKey, Artifact>,
    /// Recency order, most recently used last.
    order: Vec<ArtifactKey>,
    stats: CacheStats,
}

impl ArtifactCache {
    /// Memory-only cache holding at most `capacity` artifacts.
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            capacity: capacity.max(1),
            dir: None,
            entries: HashMap::new(),
            order: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Cache backed by a directory of `<key-slug>.jsonl` files.
    pub fn with_dir(capacity: usize, dir: impl Into<PathBuf>) -> Self {
        let mut c = ArtifactCache::new(capacity);
        c.dir = Some(dir.into());
        c
    }

    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// In-memory entry count (disk may hold more).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn path_for(&self, key: &ArtifactKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.jsonl", key.slug())))
    }

    fn touch(&mut self, key: &ArtifactKey) {
        self.order.retain(|k| k != key);
        self.order.push(key.clone());
    }

    /// Look up an artifact: memory first, then disk. A disk artifact is
    /// validated against the key it claims to be; corrupt or mismatched
    /// files are deleted and counted, never propagated.
    pub fn get(&mut self, key: &ArtifactKey) -> Option<Artifact> {
        if let Some(a) = self.entries.get(key) {
            let a = a.clone();
            self.stats.hits += 1;
            self.touch(key);
            return Some(a);
        }
        if let Some(path) = self.path_for(key) {
            if path.exists() {
                match Artifact::load(&path) {
                    Ok(a) if a.key() == *key => {
                        tel_debug!(
                            "engine::cache",
                            "disk hit for {} [{}]",
                            key.model,
                            key.tuning.tag()
                        );
                        self.stats.disk_hits += 1;
                        self.insert_mem(key.clone(), a.clone());
                        return Some(a);
                    }
                    Ok(_) => {
                        tel_warn!(
                            "engine::cache",
                            "artifact {} does not match its key (stale or renamed); recompiling",
                            path.display()
                        );
                        self.stats.corrupt += 1;
                        std::fs::remove_file(&path).ok();
                    }
                    Err(e) => {
                        tel_warn!(
                            "engine::cache",
                            "corrupt artifact {}: {e}; recompiling",
                            path.display()
                        );
                        self.stats.corrupt += 1;
                        std::fs::remove_file(&path).ok();
                    }
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Insert an artifact, persisting it when a directory is configured.
    /// Persistence failures degrade to memory-only caching with a warning.
    pub fn put(&mut self, key: ArtifactKey, artifact: Artifact) {
        if let Some(path) = self.path_for(&key) {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).ok();
            }
            if let Err(e) = artifact.save(&path) {
                tel_warn!(
                    "engine::cache",
                    "failed to persist artifact {}: {e}",
                    path.display()
                );
            }
        }
        self.insert_mem(key, artifact);
    }

    fn insert_mem(&mut self, key: ArtifactKey, artifact: Artifact) {
        self.entries.insert(key.clone(), artifact);
        self.touch(&key);
        while self.entries.len() > self.capacity {
            let victim = self.order.remove(0);
            self.entries.remove(&victim);
            self.stats.evictions += 1;
            // the disk copy (if any) survives eviction deliberately
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ArtifactMeta, TuningState, ARTIFACT_KIND, ARTIFACT_VERSION};

    fn artifact(model: &str, fp: u64) -> Artifact {
        Artifact {
            meta: ArtifactMeta {
                kind: ARTIFACT_KIND.into(),
                version: ARTIFACT_VERSION,
                model: model.into(),
                fingerprint: fp,
                device: "dev".into(),
                tuning: TuningState::Fallback,
                nodes: 1,
                total_ms: 1.0,
                cost_table: vec![],
            },
            records: vec![],
        }
    }

    fn key(model: &str, fp: u64) -> ArtifactKey {
        artifact(model, fp).key()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("unigpu_engine_cache_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ArtifactCache::new(2);
        assert!(c.get(&key("a", 1)).is_none());
        c.put(key("a", 1), artifact("a", 1));
        c.put(key("b", 2), artifact("b", 2));
        assert!(c.get(&key("a", 1)).is_some()); // bumps `a` over `b`
        c.put(key("c", 3), artifact("c", 3)); // evicts `b`
        assert!(c.get(&key("b", 2)).is_none());
        assert!(c.get(&key("a", 1)).is_some());
        assert!(c.get(&key("c", 3)).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.misses, 2); // initial `a`, evicted `b`
        assert_eq!(s.hits, 4);
    }

    #[test]
    fn disk_survives_eviction_and_fresh_caches() {
        let dir = temp_dir("disk");
        {
            let mut c = ArtifactCache::with_dir(1, &dir);
            c.put(key("a", 1), artifact("a", 1));
            c.put(key("b", 2), artifact("b", 2)); // evicts `a` from memory
            assert_eq!(c.stats().evictions, 1);
            // ...but `a`'s file is still there
            let back = c.get(&key("a", 1)).expect("disk hit");
            assert_eq!(back.meta.model, "a");
            assert_eq!(c.stats().disk_hits, 1);
        }
        // a brand-new cache over the same directory sees everything
        let mut fresh = ArtifactCache::with_dir(4, &dir);
        assert!(fresh.get(&key("a", 1)).is_some());
        assert!(fresh.get(&key("b", 2)).is_some());
        assert_eq!(fresh.stats().disk_hits, 2);
        assert_eq!(fresh.stats().hits, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_disk_artifact_is_deleted_and_reported_as_miss() {
        let dir = temp_dir("corrupt");
        let mut c = ArtifactCache::with_dir(4, &dir);
        let k = key("a", 1);
        c.put(k.clone(), artifact("a", 1));
        let path = dir.join(format!("{}.jsonl", k.slug()));
        assert!(path.exists());
        std::fs::write(&path, "{ not an artifact").unwrap();

        let mut fresh = ArtifactCache::with_dir(4, &dir);
        assert!(fresh.get(&k).is_none());
        assert_eq!(fresh.stats().corrupt, 1);
        assert_eq!(fresh.stats().misses, 1);
        assert!(!path.exists(), "corrupt file removed");
        // recompile path: put works again and the next get hits
        fresh.put(k.clone(), artifact("a", 1));
        assert!(fresh.get(&k).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistence_is_atomic_no_temp_files_linger() {
        let dir = temp_dir("atomic");
        let mut c = ArtifactCache::with_dir(4, &dir);
        let k = key("a", 1);
        // a stray temp file from a crashed writer must not confuse anything
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("stale-crash-leftover.tmp"), "half-written garbage").unwrap();
        c.put(k.clone(), artifact("a", 1));
        let path = dir.join(format!("{}.jsonl", k.slug()));
        assert!(path.exists());
        // the save itself left no temp file behind (only the stale one)
        let tmp_files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert_eq!(
            tmp_files,
            vec!["stale-crash-leftover.tmp".to_string()],
            "atomic save leaves no temp files of its own"
        );
        // the artifact round-trips intact despite the stray temp file
        let mut fresh = ArtifactCache::with_dir(4, &dir);
        assert!(fresh.get(&k).is_some());
        assert_eq!(fresh.stats().corrupt, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_disk_artifact_is_rejected() {
        let dir = temp_dir("mismatch");
        let mut c = ArtifactCache::with_dir(4, &dir);
        let k = key("a", 1);
        // write a *valid* artifact under `a`'s file name, but for a
        // different fingerprint (simulates a stale rename)
        let path = dir.join(format!("{}.jsonl", k.slug()));
        std::fs::create_dir_all(&dir).unwrap();
        artifact("a", 99).save(&path).unwrap();
        assert!(c.get(&k).is_none());
        assert_eq!(c.stats().corrupt, 1);
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
