//! # unigpu-engine
//!
//! The serving subsystem: the deployment story on top of the paper's
//! optimization pipeline. Three pieces:
//!
//! * [`artifact`] — compile a model *once* into an [`Artifact`] (optimized
//!   graph identity, placement cost table, tuned schedule records) with
//!   JSONL persistence, so minutes of schedule search amortize across
//!   processes;
//! * [`cache`] — a bounded LRU [`ArtifactCache`] over artifacts; eviction
//!   drops memory only, corrupt disk artifacts are deleted and recompiled,
//!   never crashed on;
//! * [`compiled`]/[`serve`]/[`server`] — the [`Engine`]/[`CompiledModel`]
//!   API and the event-driven request scheduler: concurrent requests
//!   coalesce into same-shape batches (bounded size and simulated-clock
//!   wait window) and execute on the simulated multi-stream device
//!   timeline, with formation, launch, and readback/accounting overlapped
//!   through one event queue so several batches are in flight per device
//!   (continuous batching). Per-request queueing/latency and aggregate
//!   throughput flow through telemetry. The scheduler is hardened for
//!   production failure modes: bounded admission with load shedding,
//!   per-request deadlines, device-fault retry with an all-CPU degraded
//!   fallback, a circuit breaker, and panic-isolated batch execution over
//!   poison-recovering locks ([`lock`]).
//!
//! Typical use:
//!
//! ```text
//! let engine = Engine::builder().platform(Platform::jetson_nano()).tuned(64).build();
//! let compiled = engine.compile(&model);      // second process: cache hit
//! let report = compiled.estimate();           // single-sample latency
//! let mut server = compiled.server(&ServeConfig::builder().concurrency(2).build()?);
//! for r in requests { server.submit(r); }     // streaming; poll()/drain() mid-run
//! let served = server.shutdown();             // final ServeReport
//! ```

pub mod artifact;
pub mod cache;
pub mod compiled;
pub mod lock;
pub mod serve;
pub mod server;

pub use artifact::{
    fingerprint, records_digest, Artifact, ArtifactKey, ArtifactMeta, TuningState, ARTIFACT_KIND,
    ARTIFACT_VERSION,
};
pub use cache::{default_artifact_dir, ArtifactCache, CacheStats};
pub use compiled::{CompiledModel, Engine, EngineBuilder};
#[allow(deprecated)] // the legacy entry point stays exported through its deprecation window
pub use serve::serve;
pub use serve::{
    uniform_requests, Admission, ConfigError, Formation, InferenceRequest, RequestQueue,
    RequestResult, ServeConfig, ServeConfigBuilder, ServeReport, LANE_CONTROL, LANE_WORKER_BASE,
};
pub use server::{serve_phase_sequential, Server};
