//! Poison-recovering lock acquisition.
//!
//! A panicking worker thread poisons every `Mutex` it holds; the default
//! `lock().expect(..)` response turns one bad request into a permanently
//! wedged scheduler — every later lock attempt panics too. Serving state
//! (queues, timelines, fault counters) stays structurally valid even when a
//! holder panicked mid-update for our use sites, because all updates are
//! single-call appends/increments, so the right response is to clear the
//! poison and keep serving.
//!
//! The implementation lives in `unigpu_telemetry::lock` — the lowest layer
//! of the workspace — so the telemetry registries, the farm, and the engine
//! share one recovery path. This module re-exports it under the engine's
//! historical name so existing call sites keep reading `lock::recover`.

pub use unigpu_telemetry::lock::recover;

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    #[test]
    fn recover_survives_a_poisoning_panic() {
        let m = Mutex::new(7usize);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("holder dies mid-critical-section");
        }));
        assert!(r.is_err());
        assert!(m.is_poisoned());
        // a plain lock() would now return Err forever; recover() keeps going
        *recover(&m) += 1;
        assert_eq!(*recover(&m), 8);
        assert!(!m.is_poisoned(), "poison cleared on first recovery");
    }
}
