//! Concurrent serving: a request queue with shape-aware batch coalescing
//! and a worker pool executing on the simulated device timeline.
//!
//! Workers are real `std::thread`s; *execution* is priced on the simulated
//! clock. A batch becomes ready at the latest arrival among its requests,
//! starts at `max(ready, worker lane free)`, and runs for the compiled
//! batched estimate ([`CompiledModel::estimate_batch_ms`]). Per-request
//! latency therefore decomposes exactly as queueing delay (`start −
//! arrival`) plus execution (`done − start`), and throughput falls out of
//! the timeline makespan.

use crate::compiled::CompiledModel;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use unigpu_device::MultiTimeline;
use unigpu_telemetry::{MetricsRegistry, SpanRecord, SpanRecorder};
use unigpu_tensor::Shape;

/// First Chrome-trace lane used by serving workers (lanes 0–2 belong to the
/// estimator's GPU/CPU/transfer lanes).
pub const LANE_WORKER_BASE: u32 = 8;

const POISONED: &str = "request queue poisoned";

/// One inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRequest {
    pub id: usize,
    /// Input shape; only same-shape requests coalesce into a batch.
    pub shape: Shape,
    /// Arrival time on the simulated clock, ms.
    pub arrival_ms: f64,
}

/// Batching and concurrency knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each with its own simulated device stream.
    pub concurrency: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Wall-clock time a worker holds an underfull batch open for more
    /// same-shape arrivals before flushing it.
    pub batch_window: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            concurrency: 2,
            max_batch: 8,
            batch_window: Duration::from_millis(2),
        }
    }
}

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<InferenceRequest>,
    closed: bool,
}

/// Thread-safe FIFO of requests with shape-aware batch extraction.
#[derive(Debug, Default)]
pub struct RequestQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl RequestQueue {
    pub fn new() -> Self {
        RequestQueue::default()
    }

    pub fn push(&self, req: InferenceRequest) {
        self.state.lock().expect(POISONED).queue.push_back(req);
        self.ready.notify_all();
    }

    /// Mark the queue closed: blocked `pop_batch` calls flush what they
    /// hold and then return `None` once the queue drains.
    pub fn close(&self) {
        self.state.lock().expect(POISONED).closed = true;
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.state.lock().expect(POISONED).queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pop the next batch: up to `max` requests sharing the shape of the
    /// queue's front request. Mismatched shapes never coalesce — a batch is
    /// only the *contiguous* same-shape run at the front, so cross-shape
    /// FIFO order is preserved. An underfull batch is held open up to
    /// `window` for more same-shape arrivals, but flushes immediately when
    /// it fills, when a mismatched request is already waiting behind it
    /// (holding on would only delay that request), or when the queue
    /// closes. Returns `None` once the queue is closed and drained.
    pub fn pop_batch(&self, max: usize, window: Duration) -> Option<Vec<InferenceRequest>> {
        let max = max.max(1);
        let mut st = self.state.lock().expect(POISONED);
        let mut deadline: Option<Instant> = None;
        loop {
            while st.queue.is_empty() {
                if st.closed {
                    return None;
                }
                st = self.ready.wait(st).expect(POISONED);
            }
            // the window opens when this worker first sees a request
            let flush_at = *deadline.get_or_insert_with(|| Instant::now() + window);
            let anchor = st.queue.front().expect("non-empty queue").shape.clone();
            let matching = st.queue.iter().take_while(|r| r.shape == anchor).count();
            let take = matching.min(max);
            let now = Instant::now();
            if take == max || st.closed || matching < st.queue.len() || now >= flush_at {
                return Some(st.queue.drain(..take).collect());
            }
            let (guard, _) = self.ready.wait_timeout(st, flush_at - now).expect(POISONED);
            st = guard;
        }
    }
}

/// Outcome of one request on the simulated clock.
#[derive(Debug, Clone)]
pub struct RequestResult {
    pub id: usize,
    pub arrival_ms: f64,
    /// When the batch containing this request started executing.
    pub start_ms: f64,
    pub done_ms: f64,
    /// Size of the batch it rode in.
    pub batch_size: usize,
    /// Worker (device stream) that executed it.
    pub worker: usize,
}

impl RequestResult {
    /// Time spent queued before execution started.
    pub fn queue_ms(&self) -> f64 {
        self.start_ms - self.arrival_ms
    }

    /// Execution time of the batch.
    pub fn exec_ms(&self) -> f64 {
        self.done_ms - self.start_ms
    }

    /// End-to-end latency: queueing + execution.
    pub fn latency_ms(&self) -> f64 {
        self.done_ms - self.arrival_ms
    }
}

/// Aggregate outcome of a [`serve`] run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-request results, sorted by request id.
    pub results: Vec<RequestResult>,
    /// Batches executed.
    pub batches: usize,
    /// Simulated time at which the last batch finished, ms.
    pub makespan_ms: f64,
    /// The per-worker device timeline (for trace export / utilization).
    pub timeline: MultiTimeline,
}

impl ServeReport {
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / (self.makespan_ms / 1000.0)
        }
    }

    pub fn mean_latency_ms(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.results
                .iter()
                .map(RequestResult::latency_ms)
                .sum::<f64>()
                / self.results.len() as f64
        }
    }

    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.results.len() as f64 / self.batches as f64
        }
    }
}

/// Serve a fixed request set through a compiled model and report
/// per-request latency plus throughput. Emits one span per request (lane
/// `LANE_WORKER_BASE + worker`) and `engine.*` metrics:
/// `engine.requests`/`engine.batches` counters,
/// `engine.queue_ms`/`engine.latency_ms`/`engine.exec_ms`/`engine.batch_size`
/// histograms, and `engine.throughput_rps`/`engine.makespan_ms` gauges.
pub fn serve(
    compiled: &CompiledModel,
    mut requests: Vec<InferenceRequest>,
    cfg: &ServeConfig,
    spans: &SpanRecorder,
    metrics: &MetricsRegistry,
) -> ServeReport {
    let workers = cfg.concurrency.max(1);
    requests.sort_by(|a, b| a.arrival_ms.total_cmp(&b.arrival_ms));

    let queue = RequestQueue::new();
    let timeline = Mutex::new(MultiTimeline::new(workers));
    let results = Mutex::new(Vec::<RequestResult>::new());
    let batches = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queue = &queue;
            let timeline = &timeline;
            let results = &results;
            let batches = &batches;
            scope.spawn(move || {
                while let Some(batch) = queue.pop_batch(cfg.max_batch, cfg.batch_window) {
                    let exec_ms = compiled.estimate_batch_ms(batch.len());
                    let ready_ms = batch.iter().map(|r| r.arrival_ms).fold(0.0, f64::max);
                    let idx = batches.fetch_add(1, Ordering::Relaxed);
                    let start = timeline.lock().expect("timeline poisoned").schedule(
                        w,
                        format!("batch{idx}[{}]", batch.len()),
                        ready_ms,
                        exec_ms,
                    );
                    let done = start + exec_ms;
                    metrics.inc("engine.batches");
                    metrics.observe("engine.batch_size", batch.len() as f64);
                    metrics.observe("engine.exec_ms", exec_ms);
                    let mut out = Vec::with_capacity(batch.len());
                    for r in &batch {
                        metrics.inc("engine.requests");
                        metrics.observe("engine.queue_ms", start - r.arrival_ms);
                        metrics.observe("engine.latency_ms", done - r.arrival_ms);
                        spans.record(SpanRecord {
                            name: format!("req{}", r.id),
                            category: "request".into(),
                            start_us: start * 1000.0,
                            dur_us: exec_ms * 1000.0,
                            lane: LANE_WORKER_BASE + w as u32,
                            attrs: vec![
                                ("batch".into(), batch.len().to_string()),
                                ("worker".into(), w.to_string()),
                                ("queue_ms".into(), format!("{:.3}", start - r.arrival_ms)),
                            ],
                        });
                        out.push(RequestResult {
                            id: r.id,
                            arrival_ms: r.arrival_ms,
                            start_ms: start,
                            done_ms: done,
                            batch_size: batch.len(),
                            worker: w,
                        });
                    }
                    results.lock().expect("results poisoned").extend(out);
                }
            });
        }
        // feed in arrival order; workers drain concurrently
        for r in requests {
            queue.push(r);
        }
        queue.close();
    });

    let timeline = timeline.into_inner().expect("timeline poisoned");
    let mut results = results.into_inner().expect("results poisoned");
    results.sort_by_key(|r| r.id);
    let makespan_ms = timeline.makespan_ms();
    let report = ServeReport {
        results,
        batches: batches.load(Ordering::Relaxed),
        makespan_ms,
        timeline,
    };
    metrics.set_gauge("engine.makespan_ms", makespan_ms);
    metrics.set_gauge("engine.throughput_rps", report.throughput_rps());
    report
}

impl CompiledModel {
    /// Convenience wrapper over [`serve`].
    pub fn serve(
        &self,
        requests: Vec<InferenceRequest>,
        cfg: &ServeConfig,
        spans: &SpanRecorder,
        metrics: &MetricsRegistry,
    ) -> ServeReport {
        serve(self, requests, cfg, spans, metrics)
    }
}

/// `n` same-shape requests for a compiled model, evenly spaced
/// `interval_ms` apart on the simulated clock (ids `0..n`).
pub fn uniform_requests(
    compiled: &CompiledModel,
    n: usize,
    interval_ms: f64,
) -> Vec<InferenceRequest> {
    let shape = compiled.input_shape();
    (0..n)
        .map(|i| InferenceRequest {
            id: i,
            shape: shape.clone(),
            arrival_ms: i as f64 * interval_ms,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, dims: &[usize], arrival_ms: f64) -> InferenceRequest {
        InferenceRequest {
            id,
            shape: Shape(dims.to_vec()),
            arrival_ms,
        }
    }

    #[test]
    fn pop_batch_takes_contiguous_same_shape_run() {
        let q = RequestQueue::new();
        for i in 0..4 {
            q.push(req(i, &[1, 3, 8, 8], 0.0));
        }
        q.push(req(4, &[1, 3, 16, 16], 0.0));
        let batch = q.pop_batch(8, Duration::from_secs(5)).unwrap();
        // flushes immediately despite the long window: a mismatched shape
        // is already waiting behind the run
        assert_eq!(
            batch.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        q.close();
        let tail = q.pop_batch(8, Duration::from_secs(5)).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].id, 4);
        assert!(q.pop_batch(8, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn mismatched_shapes_never_coalesce() {
        let q = RequestQueue::new();
        for i in 0..6 {
            let dims: &[usize] = if i % 2 == 0 {
                &[1, 3, 8, 8]
            } else {
                &[1, 3, 16, 16]
            };
            q.push(req(i, dims, 0.0));
        }
        q.close();
        let mut order = Vec::new();
        while let Some(batch) = q.pop_batch(8, Duration::from_millis(1)) {
            assert!(
                batch.iter().all(|r| r.shape == batch[0].shape),
                "every batch is shape-uniform"
            );
            assert_eq!(batch.len(), 1, "alternating shapes force singleton batches");
            order.extend(batch.iter().map(|r| r.id));
        }
        assert_eq!(
            order,
            vec![0, 1, 2, 3, 4, 5],
            "FIFO order preserved across shapes"
        );
    }

    #[test]
    fn full_batch_flushes_without_waiting_for_the_window() {
        let q = RequestQueue::new();
        for i in 0..8 {
            q.push(req(i, &[1, 3, 8, 8], 0.0));
        }
        let t0 = Instant::now();
        let batch = q.pop_batch(4, Duration::from_secs(5)).unwrap();
        assert_eq!(batch.len(), 4);
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "no window stall on a full batch"
        );
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn window_timeout_flushes_partial_batch() {
        let q = RequestQueue::new();
        for i in 0..3 {
            q.push(req(i, &[1, 3, 8, 8], 0.0));
        }
        let window = Duration::from_millis(40);
        let t0 = Instant::now();
        let batch = q.pop_batch(8, window).unwrap(); // queue stays open
        assert_eq!(batch.len(), 3, "partial batch flushed at the window");
        assert!(
            t0.elapsed() >= window,
            "held open for the full window first"
        );
    }

    #[test]
    fn close_wakes_empty_waiters() {
        let q = RequestQueue::new();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| q.pop_batch(4, Duration::from_secs(10)));
            std::thread::sleep(Duration::from_millis(10));
            q.close();
            assert!(waiter.join().unwrap().is_none());
        });
    }
}
