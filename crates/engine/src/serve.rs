//! Concurrent serving: a request queue with shape-aware batch coalescing
//! and a worker pool executing on the simulated device timeline — hardened
//! for production failure modes.
//!
//! Workers are real `std::thread`s; *execution* is priced on the simulated
//! clock. A batch becomes ready at the latest arrival among its requests,
//! starts at `max(ready, worker lane free)`, and runs for the compiled
//! batched estimate ([`CompiledModel::estimate_batch_ms`]). Per-request
//! latency therefore decomposes exactly as queueing delay (`start −
//! arrival`) plus execution (`done − start`), and throughput falls out of
//! the timeline makespan.
//!
//! ## Fault tolerance
//!
//! The serving path assumes the device *misbehaves* (see
//! [`DeviceFaultPlan`], read from `UNIGPU_FAULTS` by the CLI):
//!
//! * **Admission control** — [`RequestQueue`] can be bounded
//!   ([`ServeConfig::queue_cap`]); offers beyond capacity are shed with an
//!   `engine.shed` count, never silently dropped. A closed queue drains
//!   what it holds and rejects new offers (drain-then-reject).
//! * **Deadlines** — [`ServeConfig::deadline_ms`] gives every request a
//!   completion budget from its arrival; requests whose batch would finish
//!   past the budget are rejected at batch formation and counted under
//!   `engine.deadline_expired`.
//! * **Retry + re-placement** — a transient kernel fault retries the launch
//!   (up to [`ServeConfig::max_retries`], `engine.retries`); exhausted
//!   retries or a non-transient fault (OOM) re-place the batch on the
//!   all-CPU degraded variant ([`CompiledModel::degraded`],
//!   `engine.degraded_batches`).
//! * **Circuit breaker** — K consecutive device faults trip a per-device
//!   breaker (`engine.breaker_state` gauge: 0 closed / 1 open / 2
//!   half-open); while open, batches route straight to the CPU variant.
//!   After [`ServeConfig::breaker_cooldown_ms`] of simulated time it
//!   half-opens, probes the device, and closes on success.
//! * **Panic isolation** — each batch executes under `catch_unwind`; a
//!   panicking worker restarts and retries the batch (panic injection
//!   disabled), then falls back to CPU accounting, so a single poisoned
//!   lock or bad request can never wedge the scheduler.
//!
//! With an empty fault plan and default config the scheduler is
//! bit-identical to the pre-fault-tolerance one: same batches, same
//! timeline, same per-request results.

use crate::compiled::CompiledModel;
use crate::lock;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};
use unigpu_device::{DeviceFaultPlan, DeviceFaultState, LaunchOutcome, MultiTimeline};
use unigpu_telemetry::{
    tel_warn, MetricsRegistry, SloConfig, SloSummary, SloTracker, SpanRecord, SpanRecorder,
    TraceContext,
};
use unigpu_tensor::Shape;

/// First Chrome-trace lane used by serving workers (lanes 0–2 belong to the
/// estimator's GPU/CPU/transfer lanes).
pub const LANE_WORKER_BASE: u32 = 8;

/// Chrome-trace lane for control-plane events: retries, breaker
/// transitions, fault reports.
pub const LANE_CONTROL: u32 = 7;

/// Fraction of the nominal batch time a *failed* launch occupies the lane
/// before the driver reports the error (kernels fail fast, not free).
const FAULT_LATENCY_FRACTION: f64 = 0.25;

/// One inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRequest {
    pub id: usize,
    /// Input shape; only same-shape requests coalesce into a batch.
    pub shape: Shape,
    /// Arrival time on the simulated clock, ms.
    pub arrival_ms: f64,
    /// Trace context carried from an upstream caller. `None` lets the
    /// engine derive a deterministic one from the request id
    /// ([`TraceContext::from_seed`]), so tracing needs no caller changes.
    pub trace: Option<TraceContext>,
}

/// Batching, concurrency, and fault-tolerance knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each with its own simulated device stream.
    pub concurrency: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Wall-clock time a worker holds an underfull batch open for more
    /// same-shape arrivals before flushing it.
    pub batch_window: Duration,
    /// Admission-control bound on the request queue; offers beyond it are
    /// shed. `None` = unbounded (the pre-fault-tolerance behavior).
    pub queue_cap: Option<usize>,
    /// Per-request completion budget from arrival, simulated ms. Requests
    /// whose batch would finish past the budget are rejected at batch
    /// formation. `None` = no deadlines.
    pub deadline_ms: Option<f64>,
    /// Deterministic device-fault plan (the CLI wires `UNIGPU_FAULTS`
    /// here). A no-op plan leaves serving bit-identical to fault-free.
    pub faults: DeviceFaultPlan,
    /// Transient-fault retries per batch before degrading to the CPU.
    pub max_retries: usize,
    /// Consecutive device faults that trip the circuit breaker (0 disables
    /// the breaker).
    pub breaker_threshold: usize,
    /// Simulated ms an open breaker waits before half-opening a probe.
    pub breaker_cooldown_ms: f64,
    /// SLO success objective over offered requests (completed within
    /// deadline = good; shed/expired/failed = bad), e.g. `0.99`.
    pub slo_objective: f64,
    /// Trailing simulated-ms window for the SLO burn rate.
    pub slo_window_ms: f64,
    /// Trace every Nth request (by id): `1` traces everything (default),
    /// `0` disables tracing. Sampling bounds span-arg overhead at high
    /// offered load without losing the deterministic id derivation.
    pub trace_sample_every: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            concurrency: 2,
            max_batch: 8,
            batch_window: Duration::from_millis(2),
            queue_cap: None,
            deadline_ms: None,
            faults: DeviceFaultPlan::default(),
            max_retries: 2,
            breaker_threshold: 3,
            breaker_cooldown_ms: 50.0,
            slo_objective: 0.99,
            slo_window_ms: 250.0,
            trace_sample_every: 1,
        }
    }
}

impl ServeConfig {
    /// The trace context for `r` under this config's sampling: the
    /// request's own context if it carried one, else a deterministic root
    /// derived from the request id; `None` when the id is not sampled.
    fn request_trace(&self, r: &InferenceRequest) -> Option<TraceContext> {
        if self.trace_sample_every == 0 || r.id % self.trace_sample_every != 0 {
            return None;
        }
        Some(r.trace.unwrap_or_else(|| TraceContext::from_seed(r.id as u64)))
    }
}

/// Outcome of offering a request to a [`RequestQueue`].
#[derive(Debug, PartialEq)]
pub enum Admission {
    Accepted,
    /// The queue is at capacity — the request is shed back to the caller.
    Shed(InferenceRequest),
    /// The queue is closed — draining what it holds, accepting nothing new.
    Closed(InferenceRequest),
}

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<InferenceRequest>,
    closed: bool,
}

/// Thread-safe FIFO of requests with shape-aware batch extraction and
/// optional bounded admission. All lock acquisitions recover from poison
/// ([`lock::recover`]) so a panicked worker cannot wedge the queue.
#[derive(Debug)]
pub struct RequestQueue {
    cap: usize,
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl Default for RequestQueue {
    fn default() -> Self {
        RequestQueue {
            cap: usize::MAX,
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
        }
    }
}

impl RequestQueue {
    /// An unbounded queue.
    pub fn new() -> Self {
        RequestQueue::default()
    }

    /// A queue admitting at most `cap` queued requests at a time.
    pub fn bounded(cap: usize) -> Self {
        RequestQueue {
            cap: cap.max(1),
            ..RequestQueue::default()
        }
    }

    /// Queue capacity (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Enqueue unconditionally, bypassing admission control. Kept for
    /// pre-admission callers and for re-inserting already-admitted work;
    /// new code should prefer [`RequestQueue::offer`].
    pub fn push(&self, req: InferenceRequest) {
        lock::recover(&self.state).queue.push_back(req);
        self.ready.notify_all();
    }

    /// Offer a request through admission control: rejected (with the
    /// request handed back) when the queue is closed or at capacity.
    pub fn offer(&self, req: InferenceRequest) -> Admission {
        {
            let mut st = lock::recover(&self.state);
            if st.closed {
                return Admission::Closed(req);
            }
            if st.queue.len() >= self.cap {
                return Admission::Shed(req);
            }
            st.queue.push_back(req);
        }
        self.ready.notify_all();
        Admission::Accepted
    }

    /// Mark the queue closed: new offers are rejected immediately, while
    /// blocked `pop_batch` calls flush what they hold and then return
    /// `None` once the queue drains (drain-then-reject — close never loses
    /// queued requests).
    pub fn close(&self) {
        lock::recover(&self.state).closed = true;
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        lock::recover(&self.state).queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pop the next batch: up to `max` requests sharing the shape of the
    /// queue's front request. Mismatched shapes never coalesce — a batch is
    /// only the *contiguous* same-shape run at the front, so cross-shape
    /// FIFO order is preserved. An underfull batch is held open up to
    /// `window` for more same-shape arrivals, but flushes immediately when
    /// it fills, when a mismatched request is already waiting behind it
    /// (holding on would only delay that request), or when the queue
    /// closes. Returns `None` once the queue is closed and drained.
    pub fn pop_batch(&self, max: usize, window: Duration) -> Option<Vec<InferenceRequest>> {
        let max = max.max(1);
        let mut st = lock::recover(&self.state);
        let mut deadline: Option<Instant> = None;
        loop {
            while st.queue.is_empty() {
                if st.closed {
                    return None;
                }
                st = self.ready.wait(st).unwrap_or_else(|p| {
                    self.state.clear_poison();
                    p.into_inner()
                });
            }
            // the window opens when this worker first sees a request
            let flush_at = *deadline.get_or_insert_with(|| Instant::now() + window);
            let anchor = st.queue.front().expect("non-empty queue").shape.clone();
            let matching = st.queue.iter().take_while(|r| r.shape == anchor).count();
            let take = matching.min(max);
            let now = Instant::now();
            if take == max || st.closed || matching < st.queue.len() || now >= flush_at {
                return Some(st.queue.drain(..take).collect());
            }
            let (guard, _) = self
                .ready
                .wait_timeout(st, flush_at - now)
                .unwrap_or_else(|p| {
                    self.state.clear_poison();
                    p.into_inner()
                });
            st = guard;
        }
    }
}

/// Outcome of one request on the simulated clock.
#[derive(Debug, Clone)]
pub struct RequestResult {
    pub id: usize,
    pub arrival_ms: f64,
    /// When the batch containing this request started executing.
    pub start_ms: f64,
    pub done_ms: f64,
    /// Size of the batch it rode in.
    pub batch_size: usize,
    /// Worker (device stream) that executed it.
    pub worker: usize,
    /// True when device faults re-placed this batch on the all-CPU
    /// degraded variant instead of the compiled placement.
    pub degraded: bool,
}

impl RequestResult {
    /// Time spent queued before execution started.
    pub fn queue_ms(&self) -> f64 {
        self.start_ms - self.arrival_ms
    }

    /// Execution time of the batch.
    pub fn exec_ms(&self) -> f64 {
        self.done_ms - self.start_ms
    }

    /// End-to-end latency: queueing + execution.
    pub fn latency_ms(&self) -> f64 {
        self.done_ms - self.arrival_ms
    }
}

/// Aggregate outcome of a [`serve`] run. Every offered request lands in
/// exactly one bucket: `results` (completed), `shed` (admission control),
/// `expired` (deadline), or `failed` (repeated worker panics — the
/// last-resort bucket, empty unless pricing itself is broken).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-request results, sorted by request id.
    pub results: Vec<RequestResult>,
    /// Batches executed.
    pub batches: usize,
    /// Simulated time at which the last batch finished, ms.
    pub makespan_ms: f64,
    /// The per-worker device timeline (for trace export / utilization).
    pub timeline: MultiTimeline,
    /// Requests offered to the scheduler (all buckets sum to this).
    pub offered: usize,
    /// Requests rejected by admission control (queue at capacity).
    pub shed: Vec<InferenceRequest>,
    /// Requests rejected because their deadline could not be met.
    pub expired: Vec<InferenceRequest>,
    /// Requests abandoned after repeated worker panics.
    pub failed: Vec<InferenceRequest>,
    /// Device faults observed (kernel failures, OOM).
    pub device_faults: usize,
    /// Same-device retries after transient faults.
    pub retries: usize,
    /// Batches re-placed on the all-CPU degraded variant.
    pub degraded_batches: usize,
    /// Circuit-breaker trips (closed/half-open → open).
    pub breaker_trips: usize,
    /// Circuit-breaker recoveries (half-open → closed).
    pub breaker_recoveries: usize,
    /// Worker panics caught and isolated.
    pub worker_panics: usize,
    /// Fraction of total device capacity (`workers × makespan`) spent
    /// idle — the paper's core utilization concern, measured on the
    /// simulated timeline.
    pub device_idle_fraction: f64,
    /// Per-worker-lane busy fraction over the makespan.
    pub lane_utilization: Vec<f64>,
    /// SLO digest at the makespan: completed = good, shed/expired/failed =
    /// bad, burn rate over [`ServeConfig::slo_window_ms`].
    pub slo: SloSummary,
}

impl ServeReport {
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / (self.makespan_ms / 1000.0)
        }
    }

    pub fn mean_latency_ms(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.results
                .iter()
                .map(RequestResult::latency_ms)
                .sum::<f64>()
                / self.results.len() as f64
        }
    }

    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.results.len() as f64 / self.batches as f64
        }
    }

    /// Requests in no bucket at all — the chaos invariant is that this is
    /// always zero.
    pub fn lost(&self) -> usize {
        self.offered.saturating_sub(
            self.results.len() + self.shed.len() + self.expired.len() + self.failed.len(),
        )
    }
}

/// Per-device circuit breaker: K consecutive faults open it (batches route
/// to the CPU variant), a simulated-clock cooldown half-opens it, and a
/// successful probe closes it again.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BreakerPhase {
    Closed,
    Open { until_ms: f64 },
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    phase: BreakerPhase,
    consecutive_faults: usize,
    trips: usize,
    recoveries: usize,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            phase: BreakerPhase::Closed,
            consecutive_faults: 0,
            trips: 0,
            recoveries: 0,
        }
    }

    fn gauge(&self) -> f64 {
        match self.phase {
            BreakerPhase::Closed => 0.0,
            BreakerPhase::Open { .. } => 1.0,
            BreakerPhase::HalfOpen => 2.0,
        }
    }
}

#[derive(Default)]
struct FaultTally {
    device_faults: AtomicUsize,
    retries: AtomicUsize,
    degraded_batches: AtomicUsize,
    worker_panics: AtomicUsize,
}

/// Everything a worker needs, borrowed for the scope of one `serve` run.
struct Ctx<'a> {
    compiled: &'a CompiledModel,
    cfg: &'a ServeConfig,
    spans: &'a SpanRecorder,
    metrics: &'a MetricsRegistry,
    queue: &'a RequestQueue,
    timeline: &'a Mutex<MultiTimeline>,
    results: &'a Mutex<Vec<RequestResult>>,
    expired: &'a Mutex<Vec<InferenceRequest>>,
    failed: &'a Mutex<Vec<InferenceRequest>>,
    batches: &'a AtomicUsize,
    faults: &'a Mutex<DeviceFaultState>,
    breaker: &'a Mutex<Breaker>,
    degraded: &'a OnceLock<CompiledModel>,
    tally: &'a FaultTally,
    slo: &'a SloTracker,
}

impl Ctx<'_> {
    fn breaker_transition(&self, to: &str, gauge: f64, at_ms: f64, detail: String) {
        self.metrics.set_gauge("engine.breaker_state", gauge);
        self.spans.record(SpanRecord {
            name: format!("breaker→{to}"),
            category: "breaker".into(),
            start_us: at_ms * 1000.0,
            dur_us: 0.0,
            lane: LANE_CONTROL,
            attrs: vec![("detail".into(), detail)],
            trace: None,
        });
    }

    /// May this batch try the device right now? Handles the open→half-open
    /// transition when the cooldown has elapsed on the simulated clock.
    fn breaker_allows_gpu(&self, now_ms: f64) -> bool {
        let mut b = lock::recover(self.breaker);
        match b.phase {
            BreakerPhase::Closed | BreakerPhase::HalfOpen => true,
            BreakerPhase::Open { until_ms } if now_ms >= until_ms => {
                b.phase = BreakerPhase::HalfOpen;
                let gauge = b.gauge();
                drop(b);
                self.breaker_transition(
                    "half_open",
                    gauge,
                    now_ms,
                    format!("cooldown elapsed at {now_ms:.3} ms; probing device"),
                );
                true
            }
            BreakerPhase::Open { .. } => false,
        }
    }

    fn breaker_on_success(&self, at_ms: f64) {
        let mut b = lock::recover(self.breaker);
        b.consecutive_faults = 0;
        if b.phase == BreakerPhase::HalfOpen {
            b.phase = BreakerPhase::Closed;
            b.recoveries += 1;
            self.metrics.inc("engine.breaker_recoveries");
            let gauge = b.gauge();
            drop(b);
            self.breaker_transition(
                "closed",
                gauge,
                at_ms,
                "probe succeeded; device recovered".into(),
            );
        }
    }

    /// Record a device fault; returns `true` if the breaker is (now) open.
    fn breaker_on_fault(&self, at_ms: f64) -> bool {
        let threshold = self.cfg.breaker_threshold;
        let mut b = lock::recover(self.breaker);
        b.consecutive_faults += 1;
        let trip = match b.phase {
            BreakerPhase::HalfOpen => true, // failed probe: straight back open
            BreakerPhase::Closed => threshold > 0 && b.consecutive_faults >= threshold,
            BreakerPhase::Open { .. } => return true,
        };
        if trip {
            b.phase = BreakerPhase::Open {
                until_ms: at_ms + self.cfg.breaker_cooldown_ms,
            };
            b.trips += 1;
            self.metrics.inc("engine.breaker_trips");
            let (gauge, faults) = (b.gauge(), b.consecutive_faults);
            drop(b);
            self.breaker_transition(
                "open",
                gauge,
                at_ms,
                format!(
                    "{faults} consecutive fault(s); cooling down {:.1} ms",
                    self.cfg.breaker_cooldown_ms
                ),
            );
        }
        trip
    }
}

#[derive(Clone, Copy)]
enum ExecMode {
    /// Normal path: device attempts with retry/breaker, CPU on exhaustion.
    Device { inject_panics: bool },
    /// Last-resort path after repeated panics: price on the CPU variant
    /// without touching the device or the panic-injection counters.
    ForceDegraded,
}

/// Execute (or reject) one popped batch. Runs under `catch_unwind` — every
/// lock it takes recovers from poison.
fn process_batch(w: usize, batch: &[InferenceRequest], ctx: &Ctx, mode: ExecMode) {
    if let ExecMode::Device {
        inject_panics: true,
    } = mode
    {
        let panic_now = lock::recover(ctx.faults).worker_panic_now();
        if panic_now {
            panic!("injected worker panic (UNIGPU_FAULTS worker_panic_nth)");
        }
    }

    // Deadline admission at batch formation: requests whose completion
    // budget the batch would already blow are rejected, counted, and never
    // executed. The projection uses the full batch; survivors ride a batch
    // that is no larger, so it finishes no later than projected.
    let mut kept: Vec<&InferenceRequest> = batch.iter().collect();
    if let Some(budget) = ctx.cfg.deadline_ms {
        let free = lock::recover(ctx.timeline).free_at(w);
        let ready = batch.iter().map(|r| r.arrival_ms).fold(0.0, f64::max);
        let base = ctx.compiled.estimate_batch_ms(batch.len());
        let factor = lock::recover(ctx.faults).throttle_factor_now();
        let projected_done = free.max(ready) + base * factor;
        let (ok, late): (Vec<_>, Vec<_>) = kept
            .into_iter()
            .partition(|r| r.arrival_ms + budget >= projected_done);
        if !late.is_empty() {
            ctx.metrics
                .add("engine.deadline_expired", late.len() as u64);
            for r in &late {
                ctx.slo.bad(r.arrival_ms);
            }
            lock::recover(ctx.expired).extend(late.into_iter().cloned());
        }
        kept = ok;
    }
    if kept.is_empty() {
        return;
    }

    let len = kept.len();
    let ready_ms = kept.iter().map(|r| r.arrival_ms).fold(0.0, f64::max);
    let base_ms = ctx.compiled.estimate_batch_ms(len);
    let idx = ctx.batches.fetch_add(1, Ordering::Relaxed);
    // batch-level control spans (retries) stitch into the trace of the
    // first sampled request riding the batch
    let batch_trace = kept.iter().find_map(|r| ctx.cfg.request_trace(r));

    let (start, done, degraded) = match mode {
        ExecMode::ForceDegraded => run_degraded(ctx, w, idx, len, ready_ms),
        ExecMode::Device { .. } => {
            let mut attempts = 0usize;
            loop {
                let now = lock::recover(ctx.timeline).free_at(w).max(ready_ms);
                if !ctx.breaker_allows_gpu(now) {
                    break run_degraded(ctx, w, idx, len, ready_ms);
                }
                match lock::recover(ctx.faults).on_launch(base_ms, len) {
                    LaunchOutcome::Ok { duration_ms } => {
                        let start = lock::recover(ctx.timeline).schedule(
                            w,
                            format!("batch{idx}[{len}]"),
                            ready_ms,
                            duration_ms,
                        );
                        ctx.breaker_on_success(start + duration_ms);
                        break (start, start + duration_ms, false);
                    }
                    LaunchOutcome::Fault(f) => {
                        ctx.tally.device_faults.fetch_add(1, Ordering::Relaxed);
                        ctx.metrics.inc("engine.device_faults");
                        // the failed launch occupies the lane until the
                        // driver reports the error
                        let cost = base_ms * FAULT_LATENCY_FRACTION;
                        let at = lock::recover(ctx.timeline).schedule(
                            w,
                            format!("fault{idx}[{f}]"),
                            ready_ms,
                            cost,
                        );
                        let open = ctx.breaker_on_fault(at + cost);
                        attempts += 1;
                        if open || !f.is_transient() || attempts > ctx.cfg.max_retries {
                            break run_degraded(ctx, w, idx, len, ready_ms);
                        }
                        ctx.tally.retries.fetch_add(1, Ordering::Relaxed);
                        ctx.metrics.inc("engine.retries");
                        ctx.spans.record(SpanRecord {
                            name: format!("retry batch{idx}"),
                            category: "retry".into(),
                            start_us: at * 1000.0,
                            dur_us: cost * 1000.0,
                            lane: LANE_CONTROL,
                            attrs: vec![
                                ("fault".into(), f.to_string()),
                                ("attempt".into(), attempts.to_string()),
                            ],
                            trace: batch_trace.map(|t| t.child(attempts as u64)),
                        });
                    }
                }
            }
        }
    };

    ctx.metrics.inc("engine.batches");
    ctx.metrics.observe("engine.batch_size", len as f64);
    ctx.metrics.observe("engine.exec_ms", done - start);
    let mut out = Vec::with_capacity(len);
    for r in kept {
        ctx.metrics.inc("engine.requests");
        ctx.metrics.observe("engine.queue_ms", start - r.arrival_ms);
        ctx.metrics
            .observe("engine.latency_ms", done - r.arrival_ms);
        ctx.slo.good(done);
        ctx.spans.record(SpanRecord {
            name: format!("req{}", r.id),
            category: "request".into(),
            start_us: start * 1000.0,
            dur_us: (done - start) * 1000.0,
            lane: LANE_WORKER_BASE + w as u32,
            attrs: vec![
                ("batch".into(), len.to_string()),
                ("worker".into(), w.to_string()),
                ("queue_ms".into(), format!("{:.3}", start - r.arrival_ms)),
                ("device".into(), if degraded { "cpu" } else { "gpu" }.into()),
            ],
            trace: ctx.cfg.request_trace(r),
        });
        out.push(RequestResult {
            id: r.id,
            arrival_ms: r.arrival_ms,
            start_ms: start,
            done_ms: done,
            batch_size: len,
            worker: w,
            degraded,
        });
    }
    lock::recover(ctx.results).extend(out);
}

/// Price the batch on the all-CPU degraded variant (graceful degradation).
fn run_degraded(ctx: &Ctx, w: usize, idx: usize, len: usize, ready_ms: f64) -> (f64, f64, bool) {
    let model = ctx.degraded.get_or_init(|| ctx.compiled.degraded());
    let ms = model.estimate_batch_ms(len);
    let start =
        lock::recover(ctx.timeline).schedule(w, format!("batch{idx}[{len}]@cpu"), ready_ms, ms);
    ctx.tally.degraded_batches.fetch_add(1, Ordering::Relaxed);
    ctx.metrics.inc("engine.degraded_batches");
    (start, start + ms, true)
}

/// One worker: pop batches until the queue closes and drains. Each batch
/// runs under `catch_unwind`; a panic restarts the worker and retries the
/// batch with panic injection disabled, then degrades to CPU accounting —
/// a batch is abandoned (into the `failed` bucket) only if even that
/// panics.
fn worker_loop(w: usize, ctx: &Ctx) {
    while let Some(batch) = ctx.queue.pop_batch(ctx.cfg.max_batch, ctx.cfg.batch_window) {
        let mut settled = false;
        for (attempt, mode) in [
            ExecMode::Device {
                inject_panics: true,
            },
            ExecMode::Device {
                inject_panics: false,
            },
            ExecMode::ForceDegraded,
        ]
        .into_iter()
        .enumerate()
        {
            let outcome = catch_unwind(AssertUnwindSafe(|| process_batch(w, &batch, ctx, mode)));
            match outcome {
                Ok(()) => {
                    settled = true;
                    break;
                }
                Err(_) => {
                    ctx.tally.worker_panics.fetch_add(1, Ordering::Relaxed);
                    ctx.metrics.inc("engine.worker_panics");
                    tel_warn!(
                        "engine::serve",
                        "worker {w} panicked on a batch of {} (attempt {}); restarting",
                        batch.len(),
                        attempt + 1
                    );
                }
            }
        }
        if !settled {
            // even degraded accounting panicked: bucket the requests as
            // failed so they are counted, never silently dropped
            ctx.metrics.add("engine.failed", batch.len() as u64);
            for r in &batch {
                ctx.slo.bad(r.arrival_ms);
            }
            lock::recover(ctx.failed).extend(batch.iter().cloned());
        }
    }
}

/// Serve a request set through a compiled model and report per-request
/// latency plus throughput, with load shedding, deadlines, device-fault
/// retry/degradation, a circuit breaker, and panic-isolated workers (see
/// the module docs). Emits one span per request (lane `LANE_WORKER_BASE +
/// worker`), control-plane spans on [`LANE_CONTROL`], and `engine.*`
/// metrics: `engine.requests`/`engine.batches` counters,
/// `engine.queue_ms`/`engine.latency_ms`/`engine.exec_ms`/`engine.batch_size`
/// histograms, `engine.throughput_rps`/`engine.makespan_ms`/
/// `engine.breaker_state` gauges, and the fault counters
/// `engine.shed`/`engine.deadline_expired`/`engine.device_faults`/
/// `engine.retries`/`engine.degraded_batches`/`engine.breaker_trips`/
/// `engine.breaker_recoveries`/`engine.worker_panics`.
///
/// Every span of a sampled request carries its [`TraceContext`]
/// (deterministically derived from the request id unless the request
/// supplied one), SLO accounting runs on the simulated clock
/// (`engine.slo.*` gauges; completed = good, shed/expired/failed = bad),
/// and device utilization lands in `engine.device_idle_fraction` /
/// `engine.lane_utilization.N` gauges plus the report.
pub fn serve(
    compiled: &CompiledModel,
    mut requests: Vec<InferenceRequest>,
    cfg: &ServeConfig,
    spans: &SpanRecorder,
    metrics: &MetricsRegistry,
) -> ServeReport {
    let workers = cfg.concurrency.max(1);
    requests.sort_by(|a, b| a.arrival_ms.total_cmp(&b.arrival_ms));
    let offered = requests.len();

    let queue = match cfg.queue_cap {
        Some(cap) => RequestQueue::bounded(cap),
        None => RequestQueue::new(),
    };
    let timeline = Mutex::new(MultiTimeline::new(workers));
    let results = Mutex::new(Vec::<RequestResult>::new());
    let expired = Mutex::new(Vec::<InferenceRequest>::new());
    let failed = Mutex::new(Vec::<InferenceRequest>::new());
    let batches = AtomicUsize::new(0);
    let faults = Mutex::new(DeviceFaultState::new(cfg.faults));
    let breaker = Mutex::new(Breaker::new());
    let degraded = OnceLock::new();
    let tally = FaultTally::default();
    let slo = SloTracker::new(SloConfig {
        objective: cfg.slo_objective,
        window_ms: cfg.slo_window_ms,
    });
    let mut shed = Vec::new();

    let ctx = Ctx {
        compiled,
        cfg,
        spans,
        metrics,
        queue: &queue,
        timeline: &timeline,
        results: &results,
        expired: &expired,
        failed: &failed,
        batches: &batches,
        faults: &faults,
        breaker: &breaker,
        degraded: &degraded,
        tally: &tally,
        slo: &slo,
    };

    std::thread::scope(|scope| {
        for w in 0..workers {
            let ctx = &ctx;
            scope.spawn(move || worker_loop(w, ctx));
        }
        // feed in arrival order; workers drain concurrently. Rejections are
        // collected here — never silently dropped.
        for r in requests {
            match queue.offer(r) {
                Admission::Accepted => {}
                Admission::Shed(r) | Admission::Closed(r) => {
                    metrics.inc("engine.shed");
                    slo.bad(r.arrival_ms);
                    shed.push(r);
                }
            }
        }
        queue.close();
    });

    let timeline = timeline.into_inner().unwrap_or_else(|p| p.into_inner());
    let mut results = results.into_inner().unwrap_or_else(|p| p.into_inner());
    results.sort_by_key(|r| r.id);
    let mut expired = expired.into_inner().unwrap_or_else(|p| p.into_inner());
    expired.sort_by_key(|r| r.id);
    let failed = failed.into_inner().unwrap_or_else(|p| p.into_inner());
    let breaker = breaker.into_inner().unwrap_or_else(|p| p.into_inner());
    let makespan_ms = timeline.makespan_ms();
    let device_idle_fraction = timeline.idle_fraction();
    let lane_utilization = timeline.utilizations();
    let slo_summary = slo.publish(metrics, "engine.slo", makespan_ms);
    let report = ServeReport {
        results,
        batches: batches.load(Ordering::Relaxed),
        makespan_ms,
        timeline,
        offered,
        shed,
        expired,
        failed,
        device_faults: tally.device_faults.load(Ordering::Relaxed),
        retries: tally.retries.load(Ordering::Relaxed),
        degraded_batches: tally.degraded_batches.load(Ordering::Relaxed),
        breaker_trips: breaker.trips,
        breaker_recoveries: breaker.recoveries,
        worker_panics: tally.worker_panics.load(Ordering::Relaxed),
        device_idle_fraction,
        lane_utilization,
        slo: slo_summary,
    };
    metrics.set_gauge("engine.makespan_ms", makespan_ms);
    metrics.set_gauge("engine.throughput_rps", report.throughput_rps());
    metrics.set_gauge("engine.breaker_state", breaker.gauge());
    metrics.set_gauge("engine.device_idle_fraction", device_idle_fraction);
    for (lane, u) in report.lane_utilization.iter().enumerate() {
        metrics.set_gauge(&format!("engine.lane_utilization.{lane}"), *u);
    }
    report
}

impl CompiledModel {
    /// Convenience wrapper over [`serve`].
    pub fn serve(
        &self,
        requests: Vec<InferenceRequest>,
        cfg: &ServeConfig,
        spans: &SpanRecorder,
        metrics: &MetricsRegistry,
    ) -> ServeReport {
        serve(self, requests, cfg, spans, metrics)
    }
}

/// `n` same-shape requests for a compiled model, evenly spaced
/// `interval_ms` apart on the simulated clock (ids `0..n`).
pub fn uniform_requests(
    compiled: &CompiledModel,
    n: usize,
    interval_ms: f64,
) -> Vec<InferenceRequest> {
    let shape = compiled.input_shape();
    (0..n)
        .map(|i| InferenceRequest {
            id: i,
            shape: shape.clone(),
            arrival_ms: i as f64 * interval_ms,
            trace: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, dims: &[usize], arrival_ms: f64) -> InferenceRequest {
        InferenceRequest {
            id,
            shape: Shape(dims.to_vec()),
            arrival_ms,
            trace: None,
        }
    }

    #[test]
    fn pop_batch_takes_contiguous_same_shape_run() {
        let q = RequestQueue::new();
        for i in 0..4 {
            q.push(req(i, &[1, 3, 8, 8], 0.0));
        }
        q.push(req(4, &[1, 3, 16, 16], 0.0));
        let batch = q.pop_batch(8, Duration::from_secs(5)).unwrap();
        // flushes immediately despite the long window: a mismatched shape
        // is already waiting behind the run
        assert_eq!(
            batch.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        q.close();
        let tail = q.pop_batch(8, Duration::from_secs(5)).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].id, 4);
        assert!(q.pop_batch(8, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn mismatched_shapes_never_coalesce() {
        let q = RequestQueue::new();
        for i in 0..6 {
            let dims: &[usize] = if i % 2 == 0 {
                &[1, 3, 8, 8]
            } else {
                &[1, 3, 16, 16]
            };
            q.push(req(i, dims, 0.0));
        }
        q.close();
        let mut order = Vec::new();
        while let Some(batch) = q.pop_batch(8, Duration::from_millis(1)) {
            assert!(
                batch.iter().all(|r| r.shape == batch[0].shape),
                "every batch is shape-uniform"
            );
            assert_eq!(batch.len(), 1, "alternating shapes force singleton batches");
            order.extend(batch.iter().map(|r| r.id));
        }
        assert_eq!(
            order,
            vec![0, 1, 2, 3, 4, 5],
            "FIFO order preserved across shapes"
        );
    }

    #[test]
    fn full_batch_flushes_without_waiting_for_the_window() {
        let q = RequestQueue::new();
        for i in 0..8 {
            q.push(req(i, &[1, 3, 8, 8], 0.0));
        }
        let t0 = Instant::now();
        let batch = q.pop_batch(4, Duration::from_secs(5)).unwrap();
        assert_eq!(batch.len(), 4);
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "no window stall on a full batch"
        );
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn window_timeout_flushes_partial_batch() {
        let q = RequestQueue::new();
        for i in 0..3 {
            q.push(req(i, &[1, 3, 8, 8], 0.0));
        }
        let window = Duration::from_millis(40);
        let t0 = Instant::now();
        let batch = q.pop_batch(8, window).unwrap(); // queue stays open
        assert_eq!(batch.len(), 3, "partial batch flushed at the window");
        assert!(
            t0.elapsed() >= window,
            "held open for the full window first"
        );
    }

    #[test]
    fn close_wakes_empty_waiters() {
        let q = RequestQueue::new();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| q.pop_batch(4, Duration::from_secs(10)));
            std::thread::sleep(Duration::from_millis(10));
            q.close();
            assert!(waiter.join().unwrap().is_none());
        });
    }

    #[test]
    fn bounded_queue_sheds_at_capacity() {
        let q = RequestQueue::bounded(2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.offer(req(0, &[1, 3, 8, 8], 0.0)), Admission::Accepted);
        assert_eq!(q.offer(req(1, &[1, 3, 8, 8], 0.0)), Admission::Accepted);
        match q.offer(req(2, &[1, 3, 8, 8], 0.0)) {
            Admission::Shed(r) => assert_eq!(r.id, 2, "the shed request comes back"),
            other => panic!("expected shed, got {other:?}"),
        }
        // draining frees capacity again
        let batch = q.pop_batch(8, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(q.offer(req(3, &[1, 3, 8, 8], 0.0)), Admission::Accepted);
    }

    #[test]
    fn close_drains_queued_requests_then_rejects_new_offers() {
        let q = RequestQueue::new();
        for i in 0..5 {
            assert_eq!(q.offer(req(i, &[1, 3, 8, 8], 0.0)), Admission::Accepted);
        }
        q.close();
        // new offers are rejected immediately...
        match q.offer(req(9, &[1, 3, 8, 8], 0.0)) {
            Admission::Closed(r) => assert_eq!(r.id, 9),
            other => panic!("expected closed, got {other:?}"),
        }
        // ...but everything already queued still drains, in order
        let mut drained = Vec::new();
        while let Some(batch) = q.pop_batch(2, Duration::from_millis(1)) {
            drained.extend(batch.iter().map(|r| r.id));
        }
        assert_eq!(
            drained,
            vec![0, 1, 2, 3, 4],
            "no queued request lost on close"
        );
    }

    #[test]
    fn queue_survives_a_poisoned_lock() {
        let q = RequestQueue::new();
        q.push(req(0, &[1, 3, 8, 8], 0.0));
        // poison the state mutex the way a panicking worker would
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = q.state.lock().unwrap();
            panic!("worker dies holding the queue lock");
        }));
        assert!(q.state.is_poisoned());
        // every entry point recovers instead of cascading the panic
        q.push(req(1, &[1, 3, 8, 8], 0.0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.offer(req(2, &[1, 3, 8, 8], 0.0)), Admission::Accepted);
        q.close();
        let batch = q.pop_batch(8, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 3);
    }
}
