//! Serving data plane: requests, admission control, batch formation, and
//! the per-run report. The scheduler itself lives in [`crate::server`] — an
//! event-driven simulated-clock core ([`crate::server::Server`]) that
//! overlaps batch *formation*, device *execution*, and *readback/accounting*
//! so multiple batches are in flight per device.
//!
//! Everything here is priced on the simulated clock. A batch becomes ready
//! at the latest arrival among its requests, starts at `max(ready, lane
//! free)`, and runs for the compiled batched estimate
//! ([`CompiledModel::estimate_batch_ms`]). Per-request latency therefore
//! decomposes exactly as queueing delay (`start − arrival`) plus execution
//! (`done − start`), and throughput falls out of the timeline makespan.
//!
//! ## Fault tolerance
//!
//! The serving path assumes the device *misbehaves* (see
//! [`DeviceFaultPlan`], read from `UNIGPU_FAULTS` by the CLI):
//!
//! * **Admission control** — [`RequestQueue`] can be bounded
//!   ([`ServeConfig::queue_cap`]); offers beyond capacity are shed with an
//!   `engine.shed` count, never silently dropped. A closed queue drains
//!   what it holds and rejects new offers (drain-then-reject).
//! * **Deadlines** — [`ServeConfig::deadline_ms`] gives every request a
//!   completion budget from its arrival; requests whose batch would finish
//!   past the budget are rejected at batch formation and counted under
//!   `engine.deadline_expired`.
//! * **Retry + re-placement** — a transient kernel fault retries the launch
//!   (up to [`ServeConfig::max_retries`], `engine.retries`); exhausted
//!   retries or a non-transient fault (OOM) re-place the batch on the
//!   all-CPU degraded variant ([`CompiledModel::degraded`],
//!   `engine.degraded_batches`).
//! * **Circuit breaker** — K consecutive device faults trip a per-device
//!   breaker (`engine.breaker_state` gauge: 0 closed / 1 open / 2
//!   half-open); while open, batches route straight to the CPU variant.
//!   After [`ServeConfig::breaker_cooldown_ms`] of simulated time it
//!   half-opens, probes the device, and closes on success.
//! * **Panic isolation** — each batch executes under `catch_unwind`; a
//!   panicking launch is retried with panic injection disabled, then falls
//!   back to CPU accounting, so a single poisoned lock or bad request can
//!   never wedge the scheduler.
//!
//! With an empty fault plan and default config the scheduler is
//! deterministic down to the bit: two runs of the same workload produce
//! identical reports ([`ServeReport::digest`]).

use crate::compiled::CompiledModel;
use crate::lock;
use crate::server::Server;
use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use unigpu_device::{DeviceFaultPlan, MultiTimeline};
use unigpu_telemetry::{
    AlertRule, DriftSummary, MetricsRegistry, SloSummary, SpanRecorder, TraceContext,
};
use unigpu_tensor::Shape;

/// First Chrome-trace lane used by serving workers (lanes 0–2 belong to the
/// estimator's GPU/CPU/transfer lanes).
pub const LANE_WORKER_BASE: u32 = 8;

/// Chrome-trace lane for control-plane events: retries, breaker
/// transitions, fault reports.
pub const LANE_CONTROL: u32 = 7;

/// Fraction of the nominal batch time a *failed* launch occupies the lane
/// before the driver reports the error (kernels fail fast, not free).
pub(crate) const FAULT_LATENCY_FRACTION: f64 = 0.25;

/// One inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRequest {
    pub id: usize,
    /// Input shape; only same-shape requests coalesce into a batch.
    pub shape: Shape,
    /// Arrival time on the simulated clock, ms.
    pub arrival_ms: f64,
    /// Trace context carried from an upstream caller. `None` lets the
    /// engine derive a deterministic one from the request id
    /// ([`TraceContext::from_seed`]), so tracing needs no caller changes.
    pub trace: Option<TraceContext>,
}

/// Batching, concurrency, and fault-tolerance knobs.
///
/// Construct with [`ServeConfig::builder`] for validation at the edge, or
/// by struct literal (the fields stay public; the scheduler defensively
/// clamps the few that would otherwise divide by zero).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Device lanes (simulated streams) batches are launched onto.
    pub concurrency: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Simulated time an underfull batch is held open for more same-shape
    /// arrivals before flushing. Lives entirely on the simulated clock
    /// ([`RequestQueue::form_batch`]), so formation is deterministic.
    pub batch_window: Duration,
    /// Admission-control bound on the request queue; offers beyond it are
    /// shed. `None` = unbounded (the pre-fault-tolerance behavior).
    pub queue_cap: Option<usize>,
    /// Per-request completion budget from arrival, simulated ms. Requests
    /// whose batch would finish past the budget are rejected at batch
    /// formation. `None` = no deadlines.
    pub deadline_ms: Option<f64>,
    /// Deterministic device-fault plan (the CLI wires `UNIGPU_FAULTS`
    /// here). A no-op plan leaves serving bit-identical to fault-free.
    pub faults: DeviceFaultPlan,
    /// Transient-fault retries per batch before degrading to the CPU.
    pub max_retries: usize,
    /// Consecutive device faults that trip the circuit breaker (0 disables
    /// the breaker).
    pub breaker_threshold: usize,
    /// Simulated ms an open breaker waits before half-opening a probe.
    pub breaker_cooldown_ms: f64,
    /// SLO success objective over offered requests (completed within
    /// deadline = good; shed/expired/failed = bad), e.g. `0.99`.
    pub slo_objective: f64,
    /// Trailing simulated-ms window for the SLO burn rate.
    pub slo_window_ms: f64,
    /// Trace every Nth request (by id): `1` traces everything (default),
    /// `0` disables tracing. Sampling bounds span-arg overhead at high
    /// offered load without losing the deterministic id derivation.
    pub trace_sample_every: usize,
    /// Mean |relative error| between predicted and observed latency at or
    /// above which the model is flagged miscalibrated (`engine.drift.*`).
    pub drift_threshold: f64,
    /// Graph-level drift samples required before the miscalibration
    /// verdict is trusted.
    pub drift_min_samples: u64,
    /// Events the always-on flight recorder retains.
    pub recorder_capacity: usize,
    /// Directory triggered flight-recorder dumps are written to. `None`
    /// (the default) keeps the recorder in-memory only — no disk I/O on
    /// the serving path.
    pub recorder_dump_dir: Option<PathBuf>,
    /// Directory a re-tune recommendation is appended to (as
    /// `retune.jsonl`) when the run ends miscalibrated. The CLI wires
    /// `$UNIGPU_DB_DIR/retune` here; `None` disables the record.
    pub retune_dir: Option<PathBuf>,
    /// Declarative alert rules evaluated on the simulated clock at each
    /// batch retirement (see [`AlertRule::parse_rules`]). Empty = no
    /// alerting overhead.
    pub alert_rules: Vec<AlertRule>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            concurrency: 2,
            max_batch: 8,
            batch_window: Duration::from_millis(2),
            queue_cap: None,
            deadline_ms: None,
            faults: DeviceFaultPlan::default(),
            max_retries: 2,
            breaker_threshold: 3,
            breaker_cooldown_ms: 50.0,
            slo_objective: 0.99,
            slo_window_ms: 250.0,
            trace_sample_every: 1,
            drift_threshold: 0.25,
            drift_min_samples: 8,
            recorder_capacity: 256,
            recorder_dump_dir: None,
            retune_dir: None,
            alert_rules: Vec::new(),
        }
    }
}

impl ServeConfig {
    /// A validating builder seeded with the defaults. Rejects nonsense
    /// (zero concurrency, zero queue capacity, non-positive deadlines) at
    /// construction instead of clamping deep inside the scheduler.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: ServeConfig::default(),
        }
    }

    /// The trace context for `r` under this config's sampling: the
    /// request's own context if it carried one, else a deterministic root
    /// derived from the request id; `None` when the id is not sampled.
    pub(crate) fn request_trace(&self, r: &InferenceRequest) -> Option<TraceContext> {
        if self.trace_sample_every == 0 || r.id % self.trace_sample_every != 0 {
            return None;
        }
        Some(r.trace.unwrap_or_else(|| TraceContext::from_seed(r.id as u64)))
    }
}

/// A [`ServeConfig`] knob rejected by [`ServeConfigBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `concurrency` must be at least one device lane.
    ZeroConcurrency,
    /// `max_batch` must admit at least one request per batch.
    ZeroMaxBatch,
    /// A bounded queue must admit at least one request.
    ZeroQueueCap,
    /// Deadlines must be positive and finite (the carried value is the
    /// rejected one).
    InvalidDeadline(f64),
    /// The SLO objective is a success fraction in `(0, 1]`.
    InvalidSloObjective(f64),
    /// The SLO window must be positive and finite.
    InvalidSloWindow(f64),
    /// The breaker cooldown must be non-negative and finite.
    InvalidBreakerCooldown(f64),
    /// The drift threshold must be positive and finite.
    InvalidDriftThreshold(f64),
    /// The flight recorder must retain at least one event.
    ZeroRecorderCapacity,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroConcurrency => write!(f, "concurrency must be >= 1"),
            ConfigError::ZeroMaxBatch => write!(f, "max_batch must be >= 1"),
            ConfigError::ZeroQueueCap => write!(f, "queue_cap must be >= 1 (omit it for unbounded)"),
            ConfigError::InvalidDeadline(d) => {
                write!(f, "deadline_ms must be positive and finite, got {d}")
            }
            ConfigError::InvalidSloObjective(o) => {
                write!(f, "slo_objective must be a fraction in (0, 1], got {o}")
            }
            ConfigError::InvalidSloWindow(w) => {
                write!(f, "slo_window_ms must be positive and finite, got {w}")
            }
            ConfigError::InvalidBreakerCooldown(c) => {
                write!(f, "breaker_cooldown_ms must be non-negative and finite, got {c}")
            }
            ConfigError::InvalidDriftThreshold(t) => {
                write!(f, "drift_threshold must be positive and finite, got {t}")
            }
            ConfigError::ZeroRecorderCapacity => {
                write!(f, "recorder_capacity must be >= 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`ServeConfig`] — see [`ServeConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    pub fn concurrency(mut self, lanes: usize) -> Self {
        self.cfg.concurrency = lanes;
        self
    }

    pub fn max_batch(mut self, max: usize) -> Self {
        self.cfg.max_batch = max;
        self
    }

    pub fn batch_window(mut self, window: Duration) -> Self {
        self.cfg.batch_window = window;
        self
    }

    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.cfg.queue_cap = Some(cap);
        self
    }

    pub fn deadline_ms(mut self, budget: f64) -> Self {
        self.cfg.deadline_ms = Some(budget);
        self
    }

    pub fn faults(mut self, plan: DeviceFaultPlan) -> Self {
        self.cfg.faults = plan;
        self
    }

    pub fn max_retries(mut self, retries: usize) -> Self {
        self.cfg.max_retries = retries;
        self
    }

    pub fn breaker_threshold(mut self, faults: usize) -> Self {
        self.cfg.breaker_threshold = faults;
        self
    }

    pub fn breaker_cooldown_ms(mut self, cooldown: f64) -> Self {
        self.cfg.breaker_cooldown_ms = cooldown;
        self
    }

    pub fn slo_objective(mut self, objective: f64) -> Self {
        self.cfg.slo_objective = objective;
        self
    }

    pub fn slo_window_ms(mut self, window: f64) -> Self {
        self.cfg.slo_window_ms = window;
        self
    }

    pub fn trace_sample_every(mut self, every: usize) -> Self {
        self.cfg.trace_sample_every = every;
        self
    }

    pub fn drift_threshold(mut self, threshold: f64) -> Self {
        self.cfg.drift_threshold = threshold;
        self
    }

    pub fn drift_min_samples(mut self, samples: u64) -> Self {
        self.cfg.drift_min_samples = samples;
        self
    }

    pub fn recorder_capacity(mut self, events: usize) -> Self {
        self.cfg.recorder_capacity = events;
        self
    }

    pub fn recorder_dump_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.recorder_dump_dir = Some(dir.into());
        self
    }

    pub fn retune_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.retune_dir = Some(dir.into());
        self
    }

    pub fn alert_rules(mut self, rules: Vec<AlertRule>) -> Self {
        self.cfg.alert_rules = rules;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.concurrency == 0 {
            return Err(ConfigError::ZeroConcurrency);
        }
        if cfg.max_batch == 0 {
            return Err(ConfigError::ZeroMaxBatch);
        }
        if cfg.queue_cap == Some(0) {
            return Err(ConfigError::ZeroQueueCap);
        }
        if let Some(d) = cfg.deadline_ms {
            if !d.is_finite() || d <= 0.0 {
                return Err(ConfigError::InvalidDeadline(d));
            }
        }
        if !cfg.slo_objective.is_finite() || cfg.slo_objective <= 0.0 || cfg.slo_objective > 1.0 {
            return Err(ConfigError::InvalidSloObjective(cfg.slo_objective));
        }
        if !cfg.slo_window_ms.is_finite() || cfg.slo_window_ms <= 0.0 {
            return Err(ConfigError::InvalidSloWindow(cfg.slo_window_ms));
        }
        if !cfg.breaker_cooldown_ms.is_finite() || cfg.breaker_cooldown_ms < 0.0 {
            return Err(ConfigError::InvalidBreakerCooldown(cfg.breaker_cooldown_ms));
        }
        if !cfg.drift_threshold.is_finite() || cfg.drift_threshold <= 0.0 {
            return Err(ConfigError::InvalidDriftThreshold(cfg.drift_threshold));
        }
        if cfg.recorder_capacity == 0 {
            return Err(ConfigError::ZeroRecorderCapacity);
        }
        Ok(cfg)
    }
}

/// Outcome of offering a request to a [`RequestQueue`].
#[derive(Debug, PartialEq)]
pub enum Admission {
    Accepted,
    /// The queue is at capacity — the request is shed back to the caller.
    Shed(InferenceRequest),
    /// The queue is closed — draining what it holds, accepting nothing new.
    Closed(InferenceRequest),
}

/// Outcome of one simulated-clock batch-formation decision
/// ([`RequestQueue::form_batch`]).
#[derive(Debug, PartialEq)]
pub enum Formation {
    /// A batch is ready: the contiguous same-shape run at the queue front.
    Flush(Vec<InferenceRequest>),
    /// An underfull same-shape run is held open for more arrivals; re-form
    /// at `until_ms` (simulated clock) unless something flushes it sooner.
    Hold { until_ms: f64 },
    /// Nothing queued right now. `closed` reports whether the queue has
    /// finished its drain-then-reject shutdown.
    Empty { closed: bool },
}

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<InferenceRequest>,
    closed: bool,
    /// Simulated time the current underfull front run was first seen by
    /// [`RequestQueue::form_batch`]; cleared on flush/empty.
    window_open_ms: Option<f64>,
}

/// Thread-safe FIFO of requests with shape-aware batch extraction and
/// optional bounded admission. All lock acquisitions recover from poison
/// ([`lock::recover`]) so a panicked worker cannot wedge the queue.
#[derive(Debug)]
pub struct RequestQueue {
    cap: usize,
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl Default for RequestQueue {
    fn default() -> Self {
        RequestQueue {
            cap: usize::MAX,
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
        }
    }
}

impl RequestQueue {
    /// An unbounded queue.
    pub fn new() -> Self {
        RequestQueue::default()
    }

    /// A queue admitting at most `cap` queued requests at a time.
    pub fn bounded(cap: usize) -> Self {
        RequestQueue {
            cap: cap.max(1),
            ..RequestQueue::default()
        }
    }

    /// Queue capacity (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Enqueue unconditionally, bypassing admission control. Kept for
    /// pre-admission callers and for re-inserting already-admitted work;
    /// new code should prefer [`RequestQueue::offer`].
    pub fn push(&self, req: InferenceRequest) {
        lock::recover(&self.state).queue.push_back(req);
        self.ready.notify_all();
    }

    /// Offer a request through admission control: rejected (with the
    /// request handed back) when the queue is closed or at capacity.
    pub fn offer(&self, req: InferenceRequest) -> Admission {
        {
            let mut st = lock::recover(&self.state);
            if st.closed {
                return Admission::Closed(req);
            }
            if st.queue.len() >= self.cap {
                return Admission::Shed(req);
            }
            st.queue.push_back(req);
        }
        self.ready.notify_all();
        Admission::Accepted
    }

    /// Mark the queue closed: new offers are rejected immediately, while
    /// formation flushes what the queue holds and then reports
    /// `Empty { closed: true }` once it drains (drain-then-reject — close
    /// never loses queued requests).
    pub fn close(&self) {
        lock::recover(&self.state).closed = true;
        self.ready.notify_all();
    }

    /// Remove and return every queued request without forming a batch —
    /// the hard-kill path ([`Server::kill`]): a dying replica hands its
    /// backlog back to the caller (a fleet router re-routes it to healthy
    /// peers) instead of silently losing it. The held-window state resets;
    /// the queue itself stays usable, though kill paths close it next.
    ///
    /// [`Server::kill`]: crate::server::Server::kill
    pub fn evict(&self) -> Vec<InferenceRequest> {
        let mut st = lock::recover(&self.state);
        st.window_open_ms = None;
        st.queue.drain(..).collect()
    }

    pub fn len(&self) -> usize {
        lock::recover(&self.state).queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One simulated-clock batch-formation decision at `now_ms`: up to
    /// `max` requests sharing the shape of the queue's front request.
    /// Mismatched shapes never coalesce — a batch is only the *contiguous*
    /// same-shape run at the front, so cross-shape FIFO order is preserved.
    ///
    /// An underfull run is *held* (requests stay queued, still counted
    /// against [`RequestQueue::capacity`]) until `window_ms` of simulated
    /// time passes from when the run was first seen, but flushes
    /// immediately when it fills, when a mismatched request is already
    /// waiting behind it (holding on would only delay that request), or
    /// when the queue closes. Unlike the retired wall-clock
    /// [`RequestQueue::pop_batch`], the flush window lives entirely on the
    /// caller's clock, so formation is deterministic and replayable.
    pub fn form_batch(&self, max: usize, now_ms: f64, window_ms: f64) -> Formation {
        let max = max.max(1);
        let mut st = lock::recover(&self.state);
        if st.queue.is_empty() {
            st.window_open_ms = None;
            return Formation::Empty { closed: st.closed };
        }
        let opened = *st.window_open_ms.get_or_insert(now_ms);
        let anchor = st.queue.front().expect("non-empty queue").shape.clone();
        let run = st
            .queue
            .iter()
            .take(max)
            .take_while(|r| r.shape == anchor)
            .count();
        // `run < len` can only mean a mismatched shape is waiting behind
        // the run (the scan is capped at `max`, but `run == max` flushes
        // anyway).
        if run == max || st.closed || run < st.queue.len() || now_ms >= opened + window_ms {
            st.window_open_ms = None;
            return Formation::Flush(st.queue.drain(..run).collect());
        }
        Formation::Hold {
            until_ms: opened + window_ms,
        }
    }

    /// Pop the next batch, blocking on the *wall* clock.
    ///
    /// Retired in favor of [`RequestQueue::form_batch`], which makes the
    /// identical flush decision on the simulated clock and never blocks.
    #[deprecated(
        since = "0.1.0",
        note = "use `RequestQueue::form_batch` — the flush window now lives on the \
                simulated clock; this blocking variant survives for out-of-tree callers"
    )]
    pub fn pop_batch(&self, max: usize, window: Duration) -> Option<Vec<InferenceRequest>> {
        let max = max.max(1);
        let mut st = lock::recover(&self.state);
        let mut deadline: Option<Instant> = None;
        loop {
            while st.queue.is_empty() {
                if st.closed {
                    return None;
                }
                st = self.ready.wait(st).unwrap_or_else(|p| {
                    self.state.clear_poison();
                    p.into_inner()
                });
            }
            // the window opens when this worker first sees a request
            let flush_at = *deadline.get_or_insert_with(|| Instant::now() + window);
            let anchor = st.queue.front().expect("non-empty queue").shape.clone();
            let matching = st.queue.iter().take_while(|r| r.shape == anchor).count();
            let take = matching.min(max);
            let now = Instant::now();
            if take == max || st.closed || matching < st.queue.len() || now >= flush_at {
                return Some(st.queue.drain(..take).collect());
            }
            let (guard, _) = self
                .ready
                .wait_timeout(st, flush_at - now)
                .unwrap_or_else(|p| {
                    self.state.clear_poison();
                    p.into_inner()
                });
            st = guard;
        }
    }
}

/// Outcome of one request on the simulated clock.
#[derive(Debug, Clone)]
pub struct RequestResult {
    pub id: usize,
    pub arrival_ms: f64,
    /// When the batch containing this request started executing.
    pub start_ms: f64,
    pub done_ms: f64,
    /// Size of the batch it rode in.
    pub batch_size: usize,
    /// Device lane (simulated stream) that executed it.
    pub worker: usize,
    /// True when device faults re-placed this batch on the all-CPU
    /// degraded variant instead of the compiled placement.
    pub degraded: bool,
}

impl RequestResult {
    /// Time spent queued before execution started.
    pub fn queue_ms(&self) -> f64 {
        self.start_ms - self.arrival_ms
    }

    /// Execution time of the batch.
    pub fn exec_ms(&self) -> f64 {
        self.done_ms - self.start_ms
    }

    /// End-to-end latency: queueing + execution.
    pub fn latency_ms(&self) -> f64 {
        self.done_ms - self.arrival_ms
    }
}

/// Aggregate outcome of a serve run. Every offered request lands in
/// exactly one bucket: `results` (completed), `shed` (admission control),
/// `expired` (deadline), or `failed` (repeated worker panics — the
/// last-resort bucket, empty unless pricing itself is broken).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-request results, sorted by request id.
    pub results: Vec<RequestResult>,
    /// Batches executed.
    pub batches: usize,
    /// Simulated time at which the last batch finished, ms.
    pub makespan_ms: f64,
    /// The per-lane device timeline (for trace export / utilization).
    pub timeline: MultiTimeline,
    /// Requests offered to the scheduler (all buckets sum to this).
    pub offered: usize,
    /// Requests rejected by admission control (queue at capacity).
    pub shed: Vec<InferenceRequest>,
    /// Requests rejected because their deadline could not be met.
    pub expired: Vec<InferenceRequest>,
    /// Requests abandoned after repeated worker panics.
    pub failed: Vec<InferenceRequest>,
    /// Device faults observed (kernel failures, OOM).
    pub device_faults: usize,
    /// Same-device retries after transient faults.
    pub retries: usize,
    /// Batches re-placed on the all-CPU degraded variant.
    pub degraded_batches: usize,
    /// Circuit-breaker trips (closed/half-open → open).
    pub breaker_trips: usize,
    /// Circuit-breaker recoveries (half-open → closed).
    pub breaker_recoveries: usize,
    /// Worker panics caught and isolated.
    pub worker_panics: usize,
    /// Fraction of total device capacity (`lanes × makespan`) spent
    /// idle — the paper's core utilization concern, measured on the
    /// simulated timeline.
    pub device_idle_fraction: f64,
    /// Per-lane busy fraction over the makespan.
    pub lane_utilization: Vec<f64>,
    /// SLO digest at the makespan: completed = good, shed/expired/failed =
    /// bad, burn rate over [`ServeConfig::slo_window_ms`].
    pub slo: SloSummary,
    /// Cost-model drift digest: predicted vs observed latency over the
    /// run, with the miscalibration verdict judged against
    /// [`ServeConfig::drift_threshold`].
    pub drift: DriftSummary,
    /// Alert fire edges over the run (`engine.alert.fired`).
    pub alerts_fired: u64,
    /// Alert resolve edges over the run.
    pub alerts_resolved: u64,
    /// Names of alert rules that fired at least once, in rule order.
    pub fired_alerts: Vec<String>,
    /// Flight-recorder dump files written during the run (empty unless
    /// [`ServeConfig::recorder_dump_dir`] is set and a trigger fired).
    pub recorder_dumps: Vec<PathBuf>,
}

impl ServeReport {
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / (self.makespan_ms / 1000.0)
        }
    }

    pub fn mean_latency_ms(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.results
                .iter()
                .map(RequestResult::latency_ms)
                .sum::<f64>()
                / self.results.len() as f64
        }
    }

    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.results.len() as f64 / self.batches as f64
        }
    }

    /// Requests in no bucket at all — the chaos invariant is that this is
    /// always zero.
    pub fn lost(&self) -> usize {
        self.offered.saturating_sub(
            self.results.len() + self.shed.len() + self.expired.len() + self.failed.len(),
        )
    }

    /// FNV-1a digest over every externally observable field. Two zero-noise
    /// runs of the same workload must agree bit for bit — the CI
    /// determinism gate compares this across back-to-back serves.
    pub fn digest(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100_0000_01b3)
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = mix(h, self.offered as u64);
        h = mix(h, self.batches as u64);
        h = mix(h, self.makespan_ms.to_bits());
        for r in &self.results {
            h = mix(h, r.id as u64);
            h = mix(h, r.arrival_ms.to_bits());
            h = mix(h, r.start_ms.to_bits());
            h = mix(h, r.done_ms.to_bits());
            h = mix(h, r.batch_size as u64);
            h = mix(h, r.worker as u64);
            h = mix(h, u64::from(r.degraded));
        }
        for bucket in [&self.shed, &self.expired, &self.failed] {
            h = mix(h, bucket.len() as u64);
            for r in bucket {
                h = mix(h, r.id as u64);
                h = mix(h, r.arrival_ms.to_bits());
            }
        }
        for v in [
            self.device_faults,
            self.retries,
            self.degraded_batches,
            self.breaker_trips,
            self.breaker_recoveries,
            self.worker_panics,
        ] {
            h = mix(h, v as u64);
        }
        h = mix(h, self.device_idle_fraction.to_bits());
        for u in &self.lane_utilization {
            h = mix(h, u.to_bits());
        }
        h = mix(h, self.slo.good);
        h = mix(h, self.slo.bad);
        h = mix(h, self.drift.samples);
        h = mix(h, self.drift.mean_abs_rel_err.to_bits());
        h = mix(h, self.drift.max_abs_rel_err.to_bits());
        h = mix(h, u64::from(self.drift.miscalibrated));
        h = mix(h, self.alerts_fired);
        h = mix(h, self.alerts_resolved);
        for name in &self.fired_alerts {
            for b in name.bytes() {
                h = mix(h, u64::from(b));
            }
        }
        // Dump *count* is deterministic; the paths embed the caller's dump
        // directory, so they stay out of the digest.
        h = mix(h, self.recorder_dumps.len() as u64);
        h
    }

    /// Fold another replica's report into this one — the fleet-level
    /// roll-up a router builds across a heterogeneous pool. Per-request
    /// buckets concatenate (re-sorted by id), counters add, and the
    /// makespan takes the slowest replica. The timeline keeps `self`'s
    /// lanes (per-replica timelines stay meaningful only per replica);
    /// `lane_utilization` concatenates so the merged idle fraction is the
    /// lane-weighted mean. Windowed SLO statistics merge coarsely: lifetime
    /// good/bad counts add and the lifetime error rate is recomputed, while
    /// the windowed quantities (window error rate, burn rate) take the
    /// *worst* replica — the fleet is burning as fast as its hottest
    /// member. Drift samples merge sample-weighted; the miscalibration
    /// verdict ORs (one drifting replica is a fleet problem).
    pub fn merge(&mut self, other: ServeReport) {
        self.results.extend(other.results);
        self.results.sort_by_key(|r| r.id);
        self.batches += other.batches;
        self.makespan_ms = self.makespan_ms.max(other.makespan_ms);
        self.offered += other.offered;
        self.shed.extend(other.shed);
        self.shed.sort_by_key(|r| r.id);
        self.expired.extend(other.expired);
        self.expired.sort_by_key(|r| r.id);
        self.failed.extend(other.failed);
        self.failed.sort_by_key(|r| r.id);
        self.device_faults += other.device_faults;
        self.retries += other.retries;
        self.degraded_batches += other.degraded_batches;
        self.breaker_trips += other.breaker_trips;
        self.breaker_recoveries += other.breaker_recoveries;
        self.worker_panics += other.worker_panics;
        let a = self.lane_utilization.len().max(1) as f64;
        let b = other.lane_utilization.len().max(1) as f64;
        self.device_idle_fraction =
            (self.device_idle_fraction * a + other.device_idle_fraction * b) / (a + b);
        self.lane_utilization.extend(other.lane_utilization);
        self.slo.good += other.slo.good;
        self.slo.bad += other.slo.bad;
        let total = self.slo.good + self.slo.bad;
        self.slo.error_rate = if total == 0 {
            0.0
        } else {
            self.slo.bad as f64 / total as f64
        };
        self.slo.window_error_rate = self.slo.window_error_rate.max(other.slo.window_error_rate);
        self.slo.burn_rate = self.slo.burn_rate.max(other.slo.burn_rate);
        let budget = (1.0 - self.slo.objective).max(1e-9);
        self.slo.budget_remaining = 1.0 - self.slo.error_rate / budget;
        let (sa, sb) = (self.drift.samples as f64, other.drift.samples as f64);
        if sa + sb > 0.0 {
            self.drift.mean_rel_err =
                (self.drift.mean_rel_err * sa + other.drift.mean_rel_err * sb) / (sa + sb);
            self.drift.mean_abs_rel_err =
                (self.drift.mean_abs_rel_err * sa + other.drift.mean_abs_rel_err * sb) / (sa + sb);
        }
        self.drift.samples += other.drift.samples;
        self.drift.max_abs_rel_err = self.drift.max_abs_rel_err.max(other.drift.max_abs_rel_err);
        self.drift.miscalibrated |= other.drift.miscalibrated;
        if other.drift.worst_node_rel_err.abs() > self.drift.worst_node_rel_err.abs() {
            self.drift.worst_node = other.drift.worst_node;
            self.drift.worst_node_rel_err = other.drift.worst_node_rel_err;
        }
        self.alerts_fired += other.alerts_fired;
        self.alerts_resolved += other.alerts_resolved;
        for name in other.fired_alerts {
            if !self.fired_alerts.contains(&name) {
                self.fired_alerts.push(name);
            }
        }
        self.recorder_dumps.extend(other.recorder_dumps);
    }
}

/// Serve a pre-collected request set through a compiled model.
///
/// Retired in favor of the streaming API: [`CompiledModel::server`] returns
/// a [`Server`] handle with `submit`/`poll`/`drain`/`shutdown`. This shim
/// sorts the set by arrival, submits everything, and shuts down — same
/// scheduler, same report.
#[deprecated(
    since = "0.1.0",
    note = "use `CompiledModel::server` and `Server::submit`/`shutdown` — \
            this free function survives as a thin shim for out-of-tree callers"
)]
pub fn serve(
    compiled: &CompiledModel,
    mut requests: Vec<InferenceRequest>,
    cfg: &ServeConfig,
    spans: &SpanRecorder,
    metrics: &MetricsRegistry,
) -> ServeReport {
    requests.sort_by(|a, b| a.arrival_ms.total_cmp(&b.arrival_ms));
    let mut server = Server::with_telemetry(compiled.clone(), cfg.clone(), spans.clone(), metrics.clone());
    for r in requests {
        let _ = server.submit(r);
    }
    server.shutdown()
}

impl CompiledModel {
    /// Serve a pre-collected request set — retired convenience wrapper.
    #[deprecated(
        since = "0.1.0",
        note = "use `CompiledModel::server` and `Server::submit`/`shutdown` — \
                kept as a thin shim for out-of-tree callers"
    )]
    #[allow(deprecated)] // the shim is allowed to call its deprecated sibling
    pub fn serve(
        &self,
        requests: Vec<InferenceRequest>,
        cfg: &ServeConfig,
        spans: &SpanRecorder,
        metrics: &MetricsRegistry,
    ) -> ServeReport {
        serve(self, requests, cfg, spans, metrics)
    }
}

/// `n` same-shape requests for a compiled model, evenly spaced
/// `interval_ms` apart on the simulated clock (ids `0..n`).
pub fn uniform_requests(
    compiled: &CompiledModel,
    n: usize,
    interval_ms: f64,
) -> Vec<InferenceRequest> {
    let shape = compiled.input_shape();
    (0..n)
        .map(|i| InferenceRequest {
            id: i,
            shape: shape.clone(),
            arrival_ms: i as f64 * interval_ms,
            trace: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;

    fn req(id: usize, dims: &[usize], arrival_ms: f64) -> InferenceRequest {
        InferenceRequest {
            id,
            shape: Shape(dims.to_vec()),
            arrival_ms,
            trace: None,
        }
    }

    #[test]
    fn form_batch_takes_contiguous_same_shape_run() {
        let q = RequestQueue::new();
        for i in 0..4 {
            q.push(req(i, &[1, 3, 8, 8], 0.0));
        }
        q.push(req(4, &[1, 3, 16, 16], 0.0));
        // flushes immediately despite the long window: a mismatched shape
        // is already waiting behind the run
        match q.form_batch(8, 0.0, 5000.0) {
            Formation::Flush(batch) => assert_eq!(
                batch.iter().map(|r| r.id).collect::<Vec<_>>(),
                vec![0, 1, 2, 3]
            ),
            other => panic!("expected flush, got {other:?}"),
        }
        q.close();
        match q.form_batch(8, 0.0, 5000.0) {
            Formation::Flush(tail) => {
                assert_eq!(tail.len(), 1);
                assert_eq!(tail[0].id, 4);
            }
            other => panic!("expected closed flush, got {other:?}"),
        }
        assert_eq!(q.form_batch(8, 0.0, 1.0), Formation::Empty { closed: true });
    }

    #[test]
    fn form_batch_mismatched_shapes_never_coalesce() {
        let q = RequestQueue::new();
        for i in 0..6 {
            let dims: &[usize] = if i % 2 == 0 {
                &[1, 3, 8, 8]
            } else {
                &[1, 3, 16, 16]
            };
            q.push(req(i, dims, 0.0));
        }
        q.close();
        let mut order = Vec::new();
        while let Formation::Flush(batch) = q.form_batch(8, 0.0, 1.0) {
            assert!(
                batch.iter().all(|r| r.shape == batch[0].shape),
                "every batch is shape-uniform"
            );
            assert_eq!(batch.len(), 1, "alternating shapes force singleton batches");
            order.extend(batch.iter().map(|r| r.id));
        }
        assert_eq!(
            order,
            vec![0, 1, 2, 3, 4, 5],
            "FIFO order preserved across shapes"
        );
    }

    #[test]
    fn form_batch_full_batch_flushes_without_waiting_for_the_window() {
        let q = RequestQueue::new();
        for i in 0..8 {
            q.push(req(i, &[1, 3, 8, 8], 0.0));
        }
        match q.form_batch(4, 0.0, 5000.0) {
            Formation::Flush(batch) => assert_eq!(batch.len(), 4),
            other => panic!("no window stall on a full batch, got {other:?}"),
        }
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn form_batch_holds_partial_run_until_the_simulated_window() {
        let q = RequestQueue::new();
        for i in 0..3 {
            q.push(req(i, &[1, 3, 8, 8], 0.0));
        }
        // the window opens the first time formation sees the run
        assert_eq!(
            q.form_batch(8, 10.0, 40.0),
            Formation::Hold { until_ms: 50.0 }
        );
        assert_eq!(q.len(), 3, "held requests stay queued");
        // still short of the window: the open time is remembered, not reset
        assert_eq!(
            q.form_batch(8, 30.0, 40.0),
            Formation::Hold { until_ms: 50.0 }
        );
        // a fourth same-shape arrival joins the held run
        q.push(req(3, &[1, 3, 8, 8], 0.0));
        match q.form_batch(8, 50.0, 40.0) {
            Formation::Flush(batch) => assert_eq!(batch.len(), 4, "window elapsed, run flushed"),
            other => panic!("expected flush at the window, got {other:?}"),
        }
        assert_eq!(q.form_batch(8, 50.0, 40.0), Formation::Empty { closed: false });
    }

    #[test]
    fn form_batch_window_reopens_per_run() {
        let q = RequestQueue::new();
        q.push(req(0, &[1, 3, 8, 8], 0.0));
        assert_eq!(
            q.form_batch(4, 0.0, 10.0),
            Formation::Hold { until_ms: 10.0 }
        );
        match q.form_batch(4, 10.0, 10.0) {
            Formation::Flush(batch) => assert_eq!(batch.len(), 1),
            other => panic!("expected flush, got {other:?}"),
        }
        // the next run opens a fresh window anchored at its own first look
        q.push(req(1, &[1, 3, 8, 8], 0.0));
        assert_eq!(
            q.form_batch(4, 25.0, 10.0),
            Formation::Hold { until_ms: 35.0 }
        );
    }

    #[test]
    #[allow(deprecated)]
    fn pop_batch_shim_still_flushes_partial_batch_on_the_wall_clock() {
        let q = RequestQueue::new();
        for i in 0..3 {
            q.push(req(i, &[1, 3, 8, 8], 0.0));
        }
        let window = Duration::from_millis(40);
        let t0 = Instant::now();
        let batch = q.pop_batch(8, window).unwrap(); // queue stays open
        assert_eq!(batch.len(), 3, "partial batch flushed at the window");
        assert!(
            t0.elapsed() >= window,
            "held open for the full window first"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn close_wakes_empty_pop_batch_waiters() {
        let q = RequestQueue::new();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| q.pop_batch(4, Duration::from_secs(10)));
            std::thread::sleep(Duration::from_millis(10));
            q.close();
            assert!(waiter.join().unwrap().is_none());
        });
    }

    #[test]
    fn bounded_queue_sheds_at_capacity() {
        let q = RequestQueue::bounded(2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.offer(req(0, &[1, 3, 8, 8], 0.0)), Admission::Accepted);
        assert_eq!(q.offer(req(1, &[1, 3, 8, 8], 0.0)), Admission::Accepted);
        match q.offer(req(2, &[1, 3, 8, 8], 0.0)) {
            Admission::Shed(r) => assert_eq!(r.id, 2, "the shed request comes back"),
            other => panic!("expected shed, got {other:?}"),
        }
        // draining frees capacity again
        match q.form_batch(8, 0.0, 0.0) {
            Formation::Flush(batch) => assert_eq!(batch.len(), 2),
            other => panic!("expected flush, got {other:?}"),
        }
        assert_eq!(q.offer(req(3, &[1, 3, 8, 8], 0.0)), Admission::Accepted);
    }

    #[test]
    fn close_drains_queued_requests_then_rejects_new_offers() {
        let q = RequestQueue::new();
        for i in 0..5 {
            assert_eq!(q.offer(req(i, &[1, 3, 8, 8], 0.0)), Admission::Accepted);
        }
        q.close();
        // new offers are rejected immediately...
        match q.offer(req(9, &[1, 3, 8, 8], 0.0)) {
            Admission::Closed(r) => assert_eq!(r.id, 9),
            other => panic!("expected closed, got {other:?}"),
        }
        // ...but everything already queued still drains, in order
        let mut drained = Vec::new();
        while let Formation::Flush(batch) = q.form_batch(2, 0.0, 1.0) {
            drained.extend(batch.iter().map(|r| r.id));
        }
        assert_eq!(
            drained,
            vec![0, 1, 2, 3, 4],
            "no queued request lost on close"
        );
    }

    #[test]
    fn evict_hands_back_every_queued_request() {
        let q = RequestQueue::bounded(8);
        for i in 0..5 {
            assert_eq!(q.offer(req(i, &[1, 3, 8, 8], 0.0)), Admission::Accepted);
        }
        // open a held window so evict also exercises the window reset
        assert!(matches!(q.form_batch(8, 0.0, 100.0), Formation::Hold { .. }));
        let evicted = q.evict();
        assert_eq!(
            evicted.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4],
            "eviction preserves FIFO order"
        );
        assert!(q.is_empty());
        assert_eq!(
            q.form_batch(8, 0.0, 100.0),
            Formation::Empty { closed: false },
            "window state reset with the backlog"
        );
        // the queue stays usable after eviction
        assert_eq!(q.offer(req(9, &[1, 3, 8, 8], 0.0)), Admission::Accepted);
    }

    #[test]
    fn merge_rolls_up_buckets_counters_and_rates() {
        let result = |id: usize, done: f64| RequestResult {
            id,
            arrival_ms: 0.0,
            start_ms: 1.0,
            done_ms: done,
            batch_size: 1,
            worker: 0,
            degraded: false,
        };
        let report = |ids: &[usize], shed: &[usize], offered: usize| ServeReport {
            results: ids.iter().map(|&i| result(i, 5.0)).collect(),
            batches: ids.len(),
            makespan_ms: ids.len() as f64 * 5.0,
            timeline: MultiTimeline::new(1),
            offered,
            shed: shed.iter().map(|&i| req(i, &[1, 3, 8, 8], 0.0)).collect(),
            expired: Vec::new(),
            failed: Vec::new(),
            device_faults: 1,
            retries: 2,
            degraded_batches: 0,
            breaker_trips: 1,
            breaker_recoveries: 1,
            worker_panics: 0,
            device_idle_fraction: 0.5,
            lane_utilization: vec![0.5],
            slo: SloSummary {
                objective: 0.99,
                window_ms: 250.0,
                good: ids.len() as u64,
                bad: shed.len() as u64,
                error_rate: shed.len() as f64 / offered as f64,
                window_error_rate: 0.1,
                burn_rate: 10.0,
                budget_remaining: 0.0,
            },
            drift: DriftSummary {
                samples: 4,
                mean_rel_err: 0.1,
                mean_abs_rel_err: 0.2,
                max_abs_rel_err: 0.3,
                threshold: 0.25,
                miscalibrated: false,
                worst_node: None,
                worst_node_rel_err: 0.0,
            },
            alerts_fired: 1,
            alerts_resolved: 0,
            fired_alerts: vec!["burn".into()],
            recorder_dumps: Vec::new(),
        };
        let mut merged = report(&[0, 2], &[4], 3);
        let mut other = report(&[1, 3], &[], 2);
        other.slo.burn_rate = 25.0;
        other.drift.miscalibrated = true;
        other.fired_alerts = vec!["burn".into(), "trip".into()];
        merged.merge(other);
        assert_eq!(merged.offered, 5);
        assert_eq!(
            merged.results.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "merged results re-sort by id"
        );
        assert_eq!(merged.lost(), 0, "merge preserves the accounting invariant");
        assert_eq!(merged.batches, 4);
        assert_eq!(merged.device_faults, 2);
        assert_eq!(merged.slo.good, 4);
        assert_eq!(merged.slo.bad, 1);
        assert_eq!(merged.slo.burn_rate, 25.0, "burn rate takes the worst replica");
        assert_eq!(merged.drift.samples, 8);
        assert!(merged.drift.miscalibrated, "one drifting replica flags the fleet");
        assert_eq!(
            merged.fired_alerts,
            vec!["burn".to_string(), "trip".to_string()],
            "fired alerts dedup by name"
        );
        assert_eq!(merged.lane_utilization.len(), 2);
    }

    #[test]
    fn queue_survives_a_poisoned_lock() {
        let q = RequestQueue::new();
        q.push(req(0, &[1, 3, 8, 8], 0.0));
        // poison the state mutex the way a panicking worker would
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = q.state.lock().unwrap();
            panic!("worker dies holding the queue lock");
        }));
        assert!(q.state.is_poisoned());
        // every entry point recovers instead of cascading the panic
        q.push(req(1, &[1, 3, 8, 8], 0.0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.offer(req(2, &[1, 3, 8, 8], 0.0)), Admission::Accepted);
        q.close();
        match q.form_batch(8, 0.0, 1.0) {
            Formation::Flush(batch) => assert_eq!(batch.len(), 3),
            other => panic!("expected flush, got {other:?}"),
        }
    }

    #[test]
    fn builder_accepts_defaults_and_sets_fields() {
        let cfg = ServeConfig::builder()
            .concurrency(4)
            .max_batch(16)
            .batch_window(Duration::from_millis(1))
            .queue_cap(32)
            .deadline_ms(125.0)
            .max_retries(5)
            .breaker_threshold(7)
            .breaker_cooldown_ms(9.0)
            .slo_objective(0.999)
            .slo_window_ms(100.0)
            .trace_sample_every(2)
            .drift_threshold(0.5)
            .drift_min_samples(3)
            .recorder_capacity(64)
            .recorder_dump_dir("target/dumps")
            .retune_dir("target/retune")
            .alert_rules(vec![AlertRule::parse("burn:engine.slo.burn_rate>2").unwrap()])
            .build()
            .expect("valid config");
        assert_eq!(cfg.concurrency, 4);
        assert_eq!(cfg.max_batch, 16);
        assert_eq!(cfg.queue_cap, Some(32));
        assert_eq!(cfg.deadline_ms, Some(125.0));
        assert_eq!(cfg.max_retries, 5);
        assert_eq!(cfg.breaker_threshold, 7);
        assert_eq!(cfg.trace_sample_every, 2);
        assert_eq!(cfg.drift_threshold, 0.5);
        assert_eq!(cfg.drift_min_samples, 3);
        assert_eq!(cfg.recorder_capacity, 64);
        assert_eq!(cfg.recorder_dump_dir, Some(PathBuf::from("target/dumps")));
        assert_eq!(cfg.retune_dir, Some(PathBuf::from("target/retune")));
        assert_eq!(cfg.alert_rules.len(), 1);
        assert!(ServeConfig::builder().build().is_ok(), "defaults validate");
    }

    #[test]
    fn builder_rejects_nonsense() {
        let err = |b: ServeConfigBuilder| b.build().expect_err("invalid config must not build");
        assert_eq!(
            err(ServeConfig::builder().concurrency(0)),
            ConfigError::ZeroConcurrency
        );
        assert_eq!(
            err(ServeConfig::builder().max_batch(0)),
            ConfigError::ZeroMaxBatch
        );
        assert_eq!(
            err(ServeConfig::builder().queue_cap(0)),
            ConfigError::ZeroQueueCap
        );
        assert_eq!(
            err(ServeConfig::builder().deadline_ms(-1.0)),
            ConfigError::InvalidDeadline(-1.0)
        );
        assert!(matches!(
            err(ServeConfig::builder().deadline_ms(f64::NAN)),
            ConfigError::InvalidDeadline(_)
        ));
        assert_eq!(
            err(ServeConfig::builder().slo_objective(1.5)),
            ConfigError::InvalidSloObjective(1.5)
        );
        assert_eq!(
            err(ServeConfig::builder().slo_window_ms(0.0)),
            ConfigError::InvalidSloWindow(0.0)
        );
        assert_eq!(
            err(ServeConfig::builder().breaker_cooldown_ms(-2.0)),
            ConfigError::InvalidBreakerCooldown(-2.0)
        );
        assert_eq!(
            err(ServeConfig::builder().drift_threshold(0.0)),
            ConfigError::InvalidDriftThreshold(0.0)
        );
        assert!(matches!(
            err(ServeConfig::builder().drift_threshold(f64::NAN)),
            ConfigError::InvalidDriftThreshold(_)
        ));
        assert_eq!(
            err(ServeConfig::builder().recorder_capacity(0)),
            ConfigError::ZeroRecorderCapacity
        );
        // errors render as actionable prose
        assert!(ConfigError::ZeroQueueCap.to_string().contains("queue_cap"));
    }
}
