//! Edge cases of the compile-time cost table through the public `Engine`
//! API: an empty model, the all-CPU degraded variant, and compiles pinned
//! to a tuning database that knows nothing (fallback-schedule pricing).
//!
//! The drift monitor and the fleet router both key on
//! `CompiledModel::predicted_costs()`; these tests pin the contract at its
//! boundaries so neither consumer has to defend against them.

use unigpu_device::Platform;
use unigpu_engine::Engine;
use unigpu_graph::{Activation, Graph, OpKind};
use unigpu_ops::ConvWorkload;
use unigpu_tensor::{Shape, Tensor};
use unigpu_tuner::Database;

fn conv_model(name: &str) -> Graph {
    let mut g = Graph::new(name);
    let w = ConvWorkload::square(1, 3, 8, 16, 3, 1, 1);
    let x = g.add(
        OpKind::Input {
            shape: Shape::from(w.input_shape()),
        },
        vec![],
        "data",
    );
    let wt = g.add(
        OpKind::Constant(Tensor::zeros(w.weight_shape())),
        vec![],
        "w0",
    );
    let c = g.add(
        OpKind::Conv2d {
            w,
            bias: false,
            act: Activation::Relu,
        },
        vec![x, wt],
        "conv0",
    );
    g.mark_output(c);
    g
}

fn memory_engine() -> Engine {
    Engine::builder()
        .platform(Platform::deeplens())
        .persist(false)
        .build()
}

#[test]
fn empty_graph_compiles_to_an_empty_cost_table() {
    let compiled = memory_engine().compile(&Graph::new("empty"));
    let table = compiled.predicted_costs();
    assert!(table.is_empty());
    assert_eq!(table.len(), 0);
    assert_eq!(table.total_ms(), 0.0);
    assert_eq!(table.predicted_ms("conv0"), None);
    assert!(compiled.cost_table().is_empty());
    assert_eq!(compiled.estimate().total_ms, 0.0);
    // batching nothing still costs nothing
    assert_eq!(compiled.estimate_batch_ms(4), 0.0);
}

#[test]
fn degraded_variant_keeps_the_compile_time_cost_table() {
    let compiled = memory_engine().compile(&conv_model("degrade"));
    let degraded = compiled.degraded();
    // the degraded model re-places nodes but does NOT re-predict: drift
    // comparisons against the original compile stay meaningful even after
    // a fallback to the CPU
    assert_eq!(degraded.cost_table(), compiled.cost_table());
    assert_eq!(
        degraded.predicted_costs().entries(),
        compiled.predicted_costs().entries()
    );
    // while the live estimate prices the new (all-CPU) placement
    assert_ne!(
        degraded.estimate().total_ms,
        compiled.estimate().total_ms,
        "CPU pricing must differ from the GPU placement"
    );
}

#[test]
fn pinned_empty_database_still_prices_every_node() {
    // an engine pinned to a database that has never tuned anything must
    // fall back to default schedules, not to zero or missing costs
    let engine = Engine::builder()
        .platform(Platform::deeplens())
        .persist(false)
        .tuned_database(Database::new())
        .build();
    let compiled = engine.compile(&conv_model("pinned"));
    let table = compiled.predicted_costs();
    assert!(!table.is_empty());
    let conv = table
        .predicted_ms("conv0")
        .expect("the conv node is priced even with no tuning record");
    assert!(conv > 0.0, "fallback-schedule cost must be positive: {conv}");
    assert!(table.total_ms() > 0.0);
    // misses stay misses: a node that never existed is None, not 0.0
    assert_eq!(table.predicted_ms("conv99"), None);
    // and the pinned-empty compile prices exactly like the fallback
    // engine: both resolve to default schedules
    let fallback = memory_engine().compile(&conv_model("pinned"));
    assert_eq!(table.entries(), fallback.predicted_costs().entries());
}
