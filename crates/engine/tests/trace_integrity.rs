//! Trace-integrity and utilization accounting under chaos at 4x offered
//! load: every span of a sampled request carries that request's trace id,
//! the Chrome export parses as JSON, latency-histogram bucket counts sum to
//! the counted completions, and the device-idle-fraction metric agrees with
//! the value re-derived from the exported trace.
//!
//! Exercises the deprecated `compiled.serve` shim on purpose: the PR 6
//! observability contract must hold unchanged through the legacy entry
//! point.
#![allow(deprecated)]

use std::collections::HashSet;
use std::time::Duration;
use unigpu_device::{DeviceFaultPlan, Platform};
use unigpu_engine::{
    uniform_requests, Engine, ServeConfig, ServeReport, LANE_WORKER_BASE,
};
use unigpu_graph::{Activation, Graph, OpKind};
use unigpu_ops::ConvWorkload;
use unigpu_telemetry::{ChromeTrace, MetricsRegistry, SpanRecorder, TraceContext};
use unigpu_tensor::{Shape, Tensor};

const WORKERS: usize = 2;
const REQUESTS: usize = 64;

fn conv_model(name: &str) -> Graph {
    let mut g = Graph::new(name);
    let w0 = ConvWorkload::square(1, 3, 8, 16, 3, 1, 1);
    let x = g.add(OpKind::Input { shape: Shape::from(w0.input_shape()) }, vec![], "data");
    let wt0 = g.add(OpKind::Constant(Tensor::zeros(w0.weight_shape())), vec![], "w0");
    let c0 = g.add(
        OpKind::Conv2d { w: w0, bias: false, act: Activation::Relu },
        vec![x, wt0],
        "conv0",
    );
    g.mark_output(c0);
    g
}

/// One chaos serve at 4x the aggregate per-worker capacity: every 5th
/// kernel launch fails (transient), sustained load throttles the device,
/// every 9th batch panics its worker. Retries are effectively unbounded and
/// the breaker threshold is out of reach, so every injected kernel fault is
/// retried on-device and leaves a `retry` control span (which keeps the
/// exported trace a complete record of device-lane occupancy).
fn chaos_serve() -> (ServeReport, SpanRecorder, MetricsRegistry) {
    let compiled = Engine::builder()
        .platform(Platform::deeplens())
        .persist(false)
        .build()
        .compile(&conv_model("trace-integrity"));
    let spans = SpanRecorder::new();
    let metrics = MetricsRegistry::new();
    let cfg = ServeConfig {
        concurrency: WORKERS,
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        faults: DeviceFaultPlan::parse(
            "kernel_fail_nth=5,throttle_after_ms=2:1.3,worker_panic_nth=9",
        ),
        max_retries: 1_000,
        breaker_threshold: 1_000_000,
        ..Default::default()
    };
    let single = compiled.estimate_batch_ms(1);
    // 4x offered load: requests arrive four times faster than the workers
    // collectively drain single-sample executions
    let interval = single / (WORKERS as f64 * 4.0);
    let report =
        compiled.serve(uniform_requests(&compiled, REQUESTS, interval), &cfg, &spans, &metrics);
    (report, spans, metrics)
}

#[test]
fn every_span_of_a_sampled_request_shares_one_trace_id() {
    let (report, spans, _metrics) = chaos_serve();
    assert_eq!(report.results.len(), REQUESTS, "chaos must not lose requests");
    assert!(report.device_faults >= 1, "the fault plan actually fired");
    assert!(report.retries >= 1, "transient faults retried");

    let recorded = spans.spans();
    // Each completed request's span carries exactly the deterministic
    // trace derived from its id (trace_sample_every = 1 samples them all).
    let mut request_trace_ids = HashSet::new();
    for r in &report.results {
        let expected = TraceContext::from_seed(r.id as u64);
        let span = recorded
            .iter()
            .find(|s| s.category == "request" && s.name == format!("req{}", r.id))
            .unwrap_or_else(|| panic!("no span for request {}", r.id));
        let ctx = span.trace.expect("sampled request span carries its trace");
        assert_eq!(ctx.trace_id, expected.trace_id, "req{} trace id", r.id);
        assert_eq!(ctx.span_id, expected.span_id, "req{} span id", r.id);
        request_trace_ids.insert(ctx.trace_id);
    }
    // Control spans (retries) stitch into the trace of a request riding
    // the batch — never a trace id that belongs to no request.
    let mut retry_spans = 0;
    for s in recorded.iter().filter(|s| s.category == "retry") {
        retry_spans += 1;
        let ctx = s.trace.expect("retry spans stitch into a request trace");
        assert!(
            request_trace_ids.contains(&ctx.trace_id),
            "retry span {} carries unknown trace id {:016x}",
            s.name,
            ctx.trace_id
        );
    }
    assert!(retry_spans >= 1, "chaos produced at least one retry span");
}

#[test]
fn sampling_zero_disables_tracing_and_sampling_n_thins_it() {
    let compiled = Engine::builder()
        .platform(Platform::deeplens())
        .persist(false)
        .build()
        .compile(&conv_model("trace-sampling"));
    let serve_with = |every: usize| {
        let spans = SpanRecorder::new();
        let metrics = MetricsRegistry::new();
        let cfg = ServeConfig {
            concurrency: 1,
            max_batch: 4,
            trace_sample_every: every,
            ..Default::default()
        };
        compiled.serve(uniform_requests(&compiled, 16, 0.0), &cfg, &spans, &metrics);
        spans.spans()
    };
    assert!(
        serve_with(0).iter().all(|s| s.trace.is_none()),
        "trace_sample_every = 0 leaves every span untraced"
    );
    let sampled = serve_with(4);
    let traced: Vec<_> =
        sampled.iter().filter(|s| s.category == "request" && s.trace.is_some()).collect();
    assert_eq!(traced.len(), 4, "ids 0,4,8,12 of 16 are sampled");
}

#[test]
fn chrome_export_parses_as_json_with_complete_events() {
    let (report, spans, metrics) = chaos_serve();
    let mut trace = ChromeTrace::new();
    trace.add_spans(&spans.spans());
    trace.add_metrics(&metrics.snapshot(), report.makespan_ms * 1000.0);
    let parsed: serde_json::Value =
        serde_json::from_str(&trace.to_json()).expect("chrome export is valid JSON");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e["ph"].as_str().expect("every event has a ph");
        // Complete ("X") events are self-balancing; the exporter never
        // emits unpaired B/E begin/end events.
        assert!(
            matches!(ph, "X" | "C" | "M"),
            "unexpected phase {ph} in {e}"
        );
        if ph == "X" {
            assert!(e["dur"].as_f64().expect("X events carry dur") >= 0.0);
            assert!(e["ts"].as_f64().expect("X events carry ts") >= 0.0);
        }
    }
    // sampled request ids are greppable in the export
    assert!(
        events.iter().any(|e| e["args"]["trace_id"].is_string()),
        "traced spans export their trace_id as an arg"
    );
}

#[test]
fn latency_histogram_bucket_counts_sum_to_completions() {
    let (report, _spans, metrics) = chaos_serve();
    let snap = metrics.snapshot();
    let (_, hist) = snap
        .raw_histograms
        .iter()
        .find(|(name, _)| name == "engine.latency_ms")
        .expect("latency histogram present");
    let bucket_sum: u64 = hist.buckets.iter().sum();
    assert_eq!(bucket_sum, hist.count, "buckets partition every observation");
    assert_eq!(
        hist.count,
        report.results.len() as u64,
        "one latency observation per completed request"
    );
    assert_eq!(metrics.counter("engine.requests"), report.results.len() as u64);
}

#[test]
fn device_idle_fraction_matches_the_trace_derived_value() {
    let (report, spans, _metrics) = chaos_serve();
    let mut trace = ChromeTrace::new();
    trace.add_spans(&spans.spans());
    let parsed: serde_json::Value =
        serde_json::from_str(&trace.to_json()).expect("chrome export is valid JSON");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");

    // Re-derive device busy time from the export alone. Request spans on
    // the worker lanes tile batch execution (every request of a batch
    // shares one interval — dedupe by (lane, ts, dur)); retry control
    // spans account for the lane time failed launches occupied.
    let mut batch_intervals: HashSet<(u64, u64, u64)> = HashSet::new();
    let mut fault_us = 0.0;
    for e in events {
        if e["ph"].as_str() != Some("X") {
            continue;
        }
        let (ts, dur) = (e["ts"].as_f64().unwrap(), e["dur"].as_f64().unwrap());
        match e["cat"].as_str() {
            Some("request") => {
                let tid = e["tid"].as_u64().expect("request spans ride worker lanes");
                assert!(tid >= u64::from(LANE_WORKER_BASE));
                batch_intervals.insert((tid, ts.to_bits(), dur.to_bits()));
            }
            Some("retry") => fault_us += dur,
            _ => {}
        }
    }
    let busy_us: f64 =
        batch_intervals.iter().map(|&(_, _, dur)| f64::from_bits(dur)).sum::<f64>() + fault_us;
    let capacity_us = WORKERS as f64 * report.makespan_ms * 1000.0;
    let derived_idle = 1.0 - busy_us / capacity_us;
    assert!(
        (derived_idle - report.device_idle_fraction).abs() < 0.01,
        "trace-derived idle {derived_idle:.4} vs metric {:.4}",
        report.device_idle_fraction
    );
    assert_eq!(report.lane_utilization.len(), WORKERS);
    for u in &report.lane_utilization {
        assert!((0.0..=1.0).contains(u));
    }
}
