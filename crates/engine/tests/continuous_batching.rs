//! Event-driven scheduler guarantees through the streaming `Server` API:
//! continuous batching (mid-flight arrivals join the next formation slot),
//! the pipelining win over the phase-sequential baseline, deterministic
//! replay across entry points, incremental poll/drain harvesting, the
//! chaos accounting invariant on the direct API, and 10k in-flight
//! requests on a single thread.

use std::time::Duration;
use unigpu_device::{DeviceFaultPlan, Platform};
use unigpu_engine::{
    serve_phase_sequential, uniform_requests, CompiledModel, InferenceRequest, Engine,
    ServeConfig,
};
use unigpu_graph::{Activation, Graph, OpKind};
use unigpu_ops::ConvWorkload;
use unigpu_telemetry::{MetricsRegistry, SpanRecorder};
use unigpu_tensor::{Shape, Tensor};

fn conv_model(name: &str) -> Graph {
    let mut g = Graph::new(name);
    let w0 = ConvWorkload::square(1, 3, 8, 16, 3, 1, 1);
    let x = g.add(
        OpKind::Input {
            shape: Shape::from(w0.input_shape()),
        },
        vec![],
        "data",
    );
    let wt0 = g.add(
        OpKind::Constant(Tensor::zeros(w0.weight_shape())),
        vec![],
        "w0",
    );
    let c0 = g.add(
        OpKind::Conv2d {
            w: w0,
            bias: false,
            act: Activation::Relu,
        },
        vec![x, wt0],
        "conv0",
    );
    g.mark_output(c0);
    g
}

fn compile(name: &str) -> CompiledModel {
    Engine::builder()
        .platform(Platform::deeplens())
        .persist(false)
        .build()
        .compile(&conv_model(name))
}

fn req(compiled: &CompiledModel, id: usize, arrival_ms: f64) -> InferenceRequest {
    InferenceRequest {
        id,
        shape: compiled.input_shape(),
        arrival_ms,
        trace: None,
    }
}

/// A request submitted while a batch is on the device joins the *next*
/// formation slot, starting the instant the lane frees — visible through
/// the per-request trace spans' `slot` attribute and the
/// `engine.continuous_joins` counter.
#[test]
fn mid_flight_arrival_joins_the_next_formation_slot() {
    let compiled = compile("joins");
    let spans = SpanRecorder::new();
    let metrics = MetricsRegistry::new();
    let e1 = compiled.estimate_batch_ms(1);
    let cfg = ServeConfig::builder()
        .concurrency(1)
        .max_batch(4)
        .batch_window(Duration::ZERO) // launch the moment a lane frees
        .build()
        .expect("valid config");

    let mut server = compiled.server_with(&cfg, &spans, &metrics);
    // r0 launches alone (zero window, nothing else queued)...
    server.submit(req(&compiled, 0, 0.0));
    assert_eq!(server.inflight(), 1, "r0 is on the device");
    // ...and r1/r2 arrive while it is still executing
    server.submit(req(&compiled, 1, 0.3 * e1));
    server.submit(req(&compiled, 2, 0.5 * e1));
    assert_eq!(server.continuous_joins(), 2, "both arrivals were mid-flight");
    let report = server.shutdown();

    assert_eq!(report.results.len(), 3);
    assert_eq!(report.batches, 2, "r1 and r2 coalesced into one batch");
    assert_eq!(metrics.counter("engine.continuous_joins"), 2);

    let recorded = spans.spans();
    let slot = |name: &str| {
        let s = recorded
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("span {name} recorded"));
        let attr = |k: &str| {
            s.attrs
                .iter()
                .find(|(a, _)| a == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("span {name} carries attr {k}"))
        };
        (attr("slot"), attr("batch"), s.start_us)
    };
    let (slot0, batch0, _) = slot("req0");
    assert_eq!((slot0.as_str(), batch0.as_str()), ("0", "1"));
    for name in ["req1", "req2"] {
        let (slot_n, batch_n, start_us) = slot(name);
        assert_eq!(slot_n, "1", "{name} rode the next formation slot");
        assert_eq!(batch_n, "2", "{name} shared the two-request batch");
        assert!(
            (start_us - e1 * 1000.0).abs() < 1e-6,
            "{name} started the instant the lane freed: {start_us} vs {}",
            e1 * 1000.0
        );
    }
}

/// Under saturating load, overlapping formation/execution/readback must
/// strictly beat the phase-sequential baseline on both device idleness and
/// throughput — the PR's acceptance criterion, and the paper's core
/// keep-the-GPU-busy concern restated at the serving layer.
#[test]
fn pipelining_beats_the_phase_sequential_baseline() {
    let compiled = compile("pipelining");
    let n = 64;
    let e1 = compiled.estimate_batch_ms(1);
    let cfg = ServeConfig::builder()
        .concurrency(4)
        .max_batch(8)
        .batch_window(Duration::ZERO)
        .build()
        .expect("valid config");
    let arrivals = uniform_requests(&compiled, n, e1 / 4.0);

    let mut server = compiled.server_with(&cfg, &SpanRecorder::new(), &MetricsRegistry::new());
    for r in arrivals.clone() {
        server.submit(r);
    }
    let event_driven = server.shutdown();
    let baseline = serve_phase_sequential(
        &compiled,
        arrivals,
        &cfg,
        &SpanRecorder::new(),
        &MetricsRegistry::new(),
    );

    for (label, report) in [("event-driven", &event_driven), ("baseline", &baseline)] {
        assert_eq!(report.results.len(), n, "{label} completes everything");
        assert_eq!(report.lost(), 0, "{label} loses nothing");
    }
    assert!(
        event_driven.device_idle_fraction < baseline.device_idle_fraction,
        "pipelining strictly reduces device idleness: {} vs {}",
        event_driven.device_idle_fraction,
        baseline.device_idle_fraction
    );
    assert!(
        event_driven.throughput_rps() > baseline.throughput_rps(),
        "pipelining strictly raises throughput: {} vs {}",
        event_driven.throughput_rps(),
        baseline.throughput_rps()
    );
}

/// The same zero-noise workload produces byte-identical report digests on
/// every run and through every entry point (streaming API and deprecated
/// shim) — the property the ci.sh determinism gate checks end to end.
#[test]
fn zero_noise_runs_are_replayable_across_entry_points() {
    let compiled = compile("determinism");
    let cfg = ServeConfig::builder()
        .concurrency(2)
        .max_batch(4)
        .batch_window(Duration::from_millis(2))
        .build()
        .expect("valid config");
    let run_streaming = || {
        let mut server =
            compiled.server_with(&cfg, &SpanRecorder::new(), &MetricsRegistry::new());
        for r in uniform_requests(&compiled, 16, 0.1) {
            server.submit(r);
        }
        server.shutdown().digest()
    };
    let a = run_streaming();
    let b = run_streaming();
    assert_eq!(a, b, "two streaming runs agree bit for bit");

    #[allow(deprecated)] // the shim must replay identically to the new core
    let c = compiled
        .serve(
            uniform_requests(&compiled, 16, 0.1),
            &cfg,
            &SpanRecorder::new(),
            &MetricsRegistry::new(),
        )
        .digest();
    assert_eq!(a, c, "the deprecated shim routes through the same core");
}

/// `poll` hands out only what has retired since the last harvest; `drain`
/// runs the clock to quiescence without closing the queue.
#[test]
fn poll_and_drain_harvest_results_incrementally() {
    let compiled = compile("streaming");
    let cfg = ServeConfig::builder()
        .concurrency(1)
        .max_batch(2)
        .batch_window(Duration::from_millis(5))
        .build()
        .expect("valid config");
    let mut server = compiled.server_with(&cfg, &SpanRecorder::new(), &MetricsRegistry::new());
    server.submit(req(&compiled, 0, 0.0));
    server.submit(req(&compiled, 1, 0.0)); // fills the batch: launches now
    assert!(
        server.poll().is_empty(),
        "poll never advances the clock; the batch is still in flight"
    );
    let first = server.drain();
    assert_eq!(
        first.iter().map(|r| r.id).collect::<Vec<_>>(),
        vec![0, 1],
        "drain runs the readback and hands both results out"
    );
    assert!(server.poll().is_empty(), "nothing new since the drain");

    // the queue is still open after a drain
    server.submit(req(&compiled, 2, 1.0));
    let second = server.drain();
    assert_eq!(second.len(), 1, "the held window flushed on the sim clock");
    assert_eq!(second[0].id, 2);

    let report = server.shutdown();
    assert_eq!(report.offered, 3);
    assert_eq!(report.results.len(), 3, "the report re-lists every result");
    assert_eq!(report.lost(), 0);
}

/// The PR 5 chaos plan through the *direct* streaming API: deadlines,
/// retries, breaker, degraded re-placement, and panic isolation all run
/// inside the event loop, and the accounting invariant holds.
#[test]
fn direct_api_chaos_preserves_the_accounting_invariant() {
    let compiled = compile("direct-chaos");
    let metrics = MetricsRegistry::new();
    let n = 48;
    let cfg = ServeConfig::builder()
        .concurrency(2)
        .max_batch(4)
        .batch_window(Duration::from_millis(1))
        .faults(DeviceFaultPlan::parse(
            "kernel_fail_first=4,kernel_fail_nth=9,throttle_after_ms=2:1.5,worker_panic_nth=6",
        ))
        .breaker_threshold(3)
        .breaker_cooldown_ms(1.0)
        .build()
        .expect("valid config");
    let single = compiled.estimate_batch_ms(1);
    let mut server = compiled.server_with(&cfg, &SpanRecorder::new(), &metrics);
    for r in uniform_requests(&compiled, n, single / 2.0) {
        server.submit(r);
    }
    let report = server.shutdown();

    assert_eq!(report.offered, n);
    assert_eq!(report.lost(), 0, "chaos never loses a request");
    assert_eq!(report.results.len(), n, "all requests complete despite chaos");
    assert!(report.device_faults >= 4, "the fault plan actually fired");
    assert!(report.worker_panics >= 1, "the injected panic fired");
    assert!(report.degraded_batches >= 1, "CPU re-placement happened");
    assert_eq!(
        metrics.counter("engine.requests"),
        report.results.len() as u64
    );
}

/// 10k requests in flight through one single-threaded event loop — the
/// scale target thread-per-worker could not touch without 10k OS threads.
#[test]
fn ten_thousand_requests_on_one_thread() {
    let compiled = compile("scale");
    let n = 10_000;
    let cfg = ServeConfig::builder()
        .concurrency(4)
        .max_batch(16)
        .batch_window(Duration::from_millis(2))
        .trace_sample_every(0) // spans off: this test is about scale
        .build()
        .expect("valid config");
    let spans = SpanRecorder::new();
    let mut server = compiled.server_with(&cfg, &spans, &MetricsRegistry::new());
    for r in uniform_requests(&compiled, n, 0.0) {
        server.submit(r);
    }
    assert!(
        server.queue_depth() + server.inflight() * 16 > 0,
        "work is pending without any worker threads"
    );
    let report = server.shutdown();
    assert_eq!(report.results.len(), n);
    assert_eq!(report.lost(), 0);
    assert_eq!(report.batches, n / 16, "full batches all the way through");
    assert!(spans.spans().is_empty(), "sampling off records no spans");
}
