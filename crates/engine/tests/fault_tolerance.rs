//! Fault-tolerance guarantees through the public serving API: the chaos
//! accounting invariant (no request is ever lost or hung), circuit-breaker
//! trip/recovery, deadline rejection, load shedding, panic isolation, and
//! the bit-identical no-fault path.
//!
//! Exercises the deprecated `compiled.serve` shim on purpose: the PR 5
//! chaos contract must hold unchanged through the legacy entry point.
#![allow(deprecated)]

use std::time::Duration;
use unigpu_device::{DeviceFaultPlan, Platform};
use unigpu_engine::{uniform_requests, Engine, ServeConfig, ServeReport};
use unigpu_graph::{Activation, Graph, OpKind};
use unigpu_ops::ConvWorkload;
use unigpu_telemetry::{MetricsRegistry, SpanRecorder};
use unigpu_tensor::{Shape, Tensor};

fn conv_model(name: &str) -> Graph {
    let mut g = Graph::new(name);
    let w0 = ConvWorkload::square(1, 3, 8, 16, 3, 1, 1);
    let x = g.add(
        OpKind::Input {
            shape: Shape::from(w0.input_shape()),
        },
        vec![],
        "data",
    );
    let wt0 = g.add(
        OpKind::Constant(Tensor::zeros(w0.weight_shape())),
        vec![],
        "w0",
    );
    let c0 = g.add(
        OpKind::Conv2d {
            w: w0,
            bias: false,
            act: Activation::Relu,
        },
        vec![x, wt0],
        "conv0",
    );
    g.mark_output(c0);
    g
}

fn compile(name: &str) -> unigpu_engine::CompiledModel {
    Engine::builder()
        .platform(Platform::deeplens())
        .persist(false)
        .build()
        .compile(&conv_model(name))
}

/// Every offered request must land in exactly one bucket, with ids unique
/// across buckets and the matching `engine.*` counters agreeing.
fn assert_accounted(report: &ServeReport, metrics: &MetricsRegistry, offered: usize) {
    assert_eq!(report.offered, offered);
    assert_eq!(
        report.results.len() + report.shed.len() + report.expired.len() + report.failed.len(),
        offered,
        "every request lands in exactly one bucket"
    );
    assert_eq!(report.lost(), 0, "zero lost requests");
    let mut ids: Vec<usize> = report
        .results
        .iter()
        .map(|r| r.id)
        .chain(report.shed.iter().map(|r| r.id))
        .chain(report.expired.iter().map(|r| r.id))
        .chain(report.failed.iter().map(|r| r.id))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), offered, "no request appears in two buckets");
    assert_eq!(
        metrics.counter("engine.shed"),
        report.shed.len() as u64,
        "shed requests carry a counted reason"
    );
    assert_eq!(
        metrics.counter("engine.deadline_expired"),
        report.expired.len() as u64,
        "expired requests carry a counted reason"
    );
    assert_eq!(
        metrics.counter("engine.requests"),
        report.results.len() as u64
    );
    assert_eq!(metrics.counter("engine.retries"), report.retries as u64);
    assert_eq!(
        metrics.counter("engine.worker_panics"),
        report.worker_panics as u64
    );
}

#[test]
fn chaos_plan_trips_and_recovers_the_breaker_without_losing_requests() {
    let compiled = compile("chaos");
    let spans = SpanRecorder::new();
    let metrics = MetricsRegistry::new();
    let n = 48;
    // launches 1..=4 fail (trips the K=3 breaker and fails the first
    // half-open probe), then the device heals apart from every 9th launch;
    // sustained load throttles 1.5x; every 6th batch panics its worker.
    let cfg = ServeConfig {
        concurrency: 2,
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        faults: DeviceFaultPlan::parse(
            "kernel_fail_first=4,kernel_fail_nth=9,throttle_after_ms=2:1.5,worker_panic_nth=6",
        ),
        breaker_threshold: 3,
        breaker_cooldown_ms: 1.0,
        ..Default::default()
    };
    let single = compiled.estimate_batch_ms(1);
    let report = compiled.serve(
        uniform_requests(&compiled, n, single / 2.0),
        &cfg,
        &spans,
        &metrics,
    );

    assert_accounted(&report, &metrics, n);
    // unbounded queue, no deadline: nothing shed or expired, nothing failed
    assert_eq!(
        report.results.len(),
        n,
        "all requests complete despite chaos"
    );
    assert!(report.device_faults >= 4, "the fault plan actually fired");
    assert!(report.retries >= 1, "transient faults retried");
    assert!(
        report.degraded_batches >= 1,
        "open breaker routed batches to the CPU variant"
    );
    assert!(
        report.results.iter().any(|r| r.degraded),
        "some requests completed on the degraded placement"
    );
    assert!(report.breaker_trips >= 1, "breaker observed tripping");
    assert!(
        report.breaker_recoveries >= 1,
        "breaker observed recovering after the device healed"
    );
    assert!(report.worker_panics >= 1, "the injected panic fired");
    assert_eq!(
        metrics.counter("engine.breaker_trips"),
        report.breaker_trips as u64
    );
    assert_eq!(
        metrics.counter("engine.breaker_recoveries"),
        report.breaker_recoveries as u64
    );
    // breaker transitions and retries are visible on the trace
    let recorded = spans.spans();
    assert!(recorded.iter().any(|s| s.category == "breaker"));
    assert!(recorded.iter().any(|s| s.category == "retry"));
}

#[test]
fn no_fault_plan_serves_bit_identically_to_the_plain_scheduler() {
    let compiled = compile("identical");
    let n = 8;
    // one worker, one full batch: the schedule is fully deterministic
    let cfg = ServeConfig {
        concurrency: 1,
        max_batch: n,
        batch_window: Duration::from_millis(200),
        ..Default::default()
    };
    let run = || {
        let spans = SpanRecorder::new();
        let metrics = MetricsRegistry::new();
        compiled.serve(uniform_requests(&compiled, n, 0.0), &cfg, &spans, &metrics)
    };
    let a = run();
    let b = run();

    assert_eq!(a.results.len(), n);
    assert_eq!(a.batches, 1, "everything coalesced into one batch");
    let exec = compiled.estimate_batch_ms(n);
    for r in &a.results {
        assert_eq!(r.start_ms, 0.0, "batch starts at the simulated origin");
        assert_eq!(
            r.done_ms, exec,
            "no-fault pricing is exactly the batched estimate"
        );
        assert!(!r.degraded);
    }
    // no fault machinery engaged at all
    assert_eq!((a.shed.len(), a.expired.len(), a.failed.len()), (0, 0, 0));
    assert_eq!(a.device_faults + a.retries + a.degraded_batches, 0);
    assert_eq!(a.breaker_trips + a.breaker_recoveries + a.worker_panics, 0);
    // bit-identical across runs
    assert_eq!(a.makespan_ms, b.makespan_ms);
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(
            (x.id, x.batch_size, x.worker, x.degraded),
            (y.id, y.batch_size, y.worker, y.degraded)
        );
        assert_eq!(x.arrival_ms, y.arrival_ms);
        assert_eq!(x.start_ms, y.start_ms);
        assert_eq!(x.done_ms, y.done_ms);
    }
}

#[test]
fn tight_deadlines_reject_with_a_counted_reason_never_silently() {
    let compiled = compile("deadline");
    let n = 12;
    let single = compiled.estimate_batch_ms(1);
    let serve_with_deadline = |deadline_ms: f64| {
        let spans = SpanRecorder::new();
        let metrics = MetricsRegistry::new();
        let cfg = ServeConfig {
            concurrency: 1,
            max_batch: 4,
            batch_window: Duration::from_millis(1),
            deadline_ms: Some(deadline_ms),
            ..Default::default()
        };
        let report = compiled.serve(uniform_requests(&compiled, n, 0.0), &cfg, &spans, &metrics);
        assert_accounted(&report, &metrics, n);
        report
    };
    // a budget below even a single-sample execution: no request can make it
    let hopeless = serve_with_deadline(single * 0.5);
    assert_eq!(hopeless.results.len(), 0);
    assert_eq!(hopeless.expired.len(), n, "all rejections counted");
    assert_eq!(hopeless.batches, 0, "rejected requests never execute");
    // a generous budget: everything completes
    let relaxed = serve_with_deadline(1e9);
    assert_eq!(relaxed.results.len(), n);
    assert_eq!(relaxed.expired.len(), 0);
}

#[test]
fn bounded_queue_sheds_overload_but_never_loses_accepted_requests() {
    let compiled = compile("shed");
    let n = 32;
    let spans = SpanRecorder::new();
    let metrics = MetricsRegistry::new();
    // capacity 1 and a long batch window: the feeder outruns the single
    // worker by construction, so admission control must shed
    let cfg = ServeConfig {
        concurrency: 1,
        max_batch: 4,
        batch_window: Duration::from_millis(50),
        queue_cap: Some(1),
        ..Default::default()
    };
    let report = compiled.serve(uniform_requests(&compiled, n, 0.0), &cfg, &spans, &metrics);
    assert_accounted(&report, &metrics, n);
    assert!(
        !report.shed.is_empty(),
        "a 1-deep queue under a burst of {n} must shed"
    );
    assert!(
        !report.results.is_empty(),
        "admitted requests still complete"
    );
}

#[test]
fn worker_panics_are_isolated_and_batches_retried() {
    let compiled = compile("panics");
    let n = 24;
    let spans = SpanRecorder::new();
    let metrics = MetricsRegistry::new();
    // every second batch attempt panics its worker; the worker restarts and
    // re-runs the batch with injection disabled
    let cfg = ServeConfig {
        concurrency: 2,
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        faults: DeviceFaultPlan::parse("worker_panic_nth=2"),
        ..Default::default()
    };
    let single = compiled.estimate_batch_ms(1);
    let report = compiled.serve(
        uniform_requests(&compiled, n, single / 2.0),
        &cfg,
        &spans,
        &metrics,
    );
    assert_accounted(&report, &metrics, n);
    assert_eq!(report.results.len(), n, "panics never lose requests");
    assert!(report.worker_panics >= 1, "the injected panic fired");
    assert!(report.failed.is_empty(), "retry-after-panic succeeded");
}

#[test]
fn out_of_memory_re_places_the_batch_on_the_cpu_without_retrying() {
    let compiled = compile("oom");
    let n = 8;
    let spans = SpanRecorder::new();
    let metrics = MetricsRegistry::new();
    // batches above 2 requests OOM; one worker coalesces all 8 into one
    // batch, which must go straight to the degraded CPU variant
    let cfg = ServeConfig {
        concurrency: 1,
        max_batch: n,
        batch_window: Duration::from_millis(200),
        faults: DeviceFaultPlan::parse("mem_pressure=2"),
        ..Default::default()
    };
    let report = compiled.serve(uniform_requests(&compiled, n, 0.0), &cfg, &spans, &metrics);
    assert_accounted(&report, &metrics, n);
    assert_eq!(report.results.len(), n);
    assert_eq!(report.device_faults, 1, "one OOM fault");
    assert_eq!(
        report.retries, 0,
        "OOM is non-transient: no same-device retry"
    );
    assert_eq!(report.degraded_batches, 1);
    assert!(report.results.iter().all(|r| r.degraded));
    assert_eq!(metrics.counter("engine.degraded_batches"), 1);
}
