//! Artifact-cache behavior through the public `Engine` API: hit/miss and
//! eviction accounting, corrupt-artifact recovery, and cross-process
//! persistence (simulated with independent engines over one directory).

use std::path::PathBuf;
use unigpu_device::Platform;
use unigpu_engine::{Engine, TuningState};
use unigpu_graph::{Activation, Graph, OpKind};
use unigpu_ops::ConvWorkload;
use unigpu_tensor::{Shape, Tensor};

fn conv_model(name: &str, channels: usize) -> Graph {
    let mut g = Graph::new(name);
    let w = ConvWorkload::square(1, 3, channels, 16, 3, 1, 1);
    let x = g.add(
        OpKind::Input {
            shape: Shape::from(w.input_shape()),
        },
        vec![],
        "data",
    );
    let wt = g.add(
        OpKind::Constant(Tensor::zeros(w.weight_shape())),
        vec![],
        "w0",
    );
    let c = g.add(
        OpKind::Conv2d {
            w,
            bias: false,
            act: Activation::Relu,
        },
        vec![x, wt],
        "conv0",
    );
    g.mark_output(c);
    g
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("unigpu_engine_it_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn hit_miss_and_eviction_ordering() {
    let engine = Engine::builder()
        .platform(Platform::deeplens())
        .persist(false)
        .cache_capacity(2)
        .build();
    let a = conv_model("a", 4);
    let b = conv_model("b", 8);
    let c = conv_model("c", 16);

    assert!(!engine.compile(&a).from_cache()); // miss
    assert!(!engine.compile(&b).from_cache()); // miss
    assert!(engine.compile(&a).from_cache()); // hit, bumps `a` over `b`
    assert!(!engine.compile(&c).from_cache()); // miss, evicts `b` (LRU)
    assert!(!engine.compile(&b).from_cache()); // `b` was evicted: miss again
    assert!(engine.compile(&c).from_cache()); // `c` survived

    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 4);
    assert!(stats.evictions >= 1);
    assert_eq!(stats.disk_hits, 0, "memory-only engine never touches disk");
}

#[test]
fn cross_process_persistence_round_trip() {
    let dir = temp_dir("persist");
    let model = conv_model("persisted", 8);

    let first = Engine::builder()
        .platform(Platform::deeplens())
        .cache_dir(&dir)
        .build()
        .compile(&model);
    assert!(!first.from_cache());

    // the artifact landed as a JSONL file whose first line is the metadata
    let files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    assert_eq!(files.len(), 1);
    let text = std::fs::read_to_string(&files[0]).unwrap();
    let meta: serde_json::Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
    assert_eq!(meta["kind"], "unigpu-artifact");
    assert_eq!(meta["model"], "persisted");

    // a fresh engine (≈ a new process) over the same directory compiles
    // from disk, skipping the pipeline
    let engine2 = Engine::builder()
        .platform(Platform::deeplens())
        .cache_dir(&dir)
        .build();
    let second = engine2.compile(&model);
    assert!(
        second.from_cache(),
        "disk artifact served the second compile"
    );
    assert_eq!(engine2.cache_stats().disk_hits, 1);
    assert_eq!(
        first.estimate().total_ms,
        second.estimate().total_ms,
        "cached compile estimates identically"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_artifact_recompiles_instead_of_crashing() {
    let dir = temp_dir("corrupt");
    let model = conv_model("fragile", 8);
    let mk = || {
        Engine::builder()
            .platform(Platform::deeplens())
            .cache_dir(&dir)
            .build()
    };

    let baseline = mk().compile(&model);
    let file = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .next()
        .unwrap();
    std::fs::write(&file, "{ truncated garbage").unwrap();

    // fresh engine: the corrupt file is dropped and the model recompiles
    let engine = mk();
    let recompiled = engine.compile(&model);
    assert!(!recompiled.from_cache(), "corrupt artifact must not serve");
    assert_eq!(engine.cache_stats().corrupt, 1);
    assert_eq!(recompiled.estimate().total_ms, baseline.estimate().total_ms);

    // the recompile re-persisted a good artifact
    let healed = mk().compile(&model);
    assert!(healed.from_cache());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tuning_state_partitions_the_key_space() {
    let dir = temp_dir("tuning_key");
    let model = conv_model("keyed", 4);
    let fallback = Engine::builder()
        .platform(Platform::deeplens())
        .cache_dir(&dir)
        .build();
    let tuned = Engine::builder()
        .platform(Platform::deeplens())
        .cache_dir(&dir)
        .tuned(8)
        .build();

    let f = fallback.compile(&model);
    let t = tuned.compile(&model);
    assert_eq!(f.key().tuning, TuningState::Fallback);
    assert_eq!(t.key().tuning, TuningState::Tuned { trials: 8 });
    assert!(t.is_tuned());
    assert!(!f.is_tuned());
    // each engine hits only its own key
    assert!(fallback.compile(&model).from_cache());
    assert!(tuned.compile(&model).from_cache());
    std::fs::remove_dir_all(&dir).ok();
}
