//! Observability-layer guarantees through the public serving API: the
//! cost-model drift monitor flags miscalibration under throttle chaos and
//! writes a re-tune recommendation, stays quiet on a calibrated zero-noise
//! run, the flight recorder's dumps are byte-identical across two
//! zero-noise runs, and the chaos accounting invariant survives with the
//! whole observability stack switched on.

use std::path::PathBuf;
use std::time::Duration;
use unigpu_device::{DeviceFaultPlan, Platform};
use unigpu_engine::{uniform_requests, Engine, ServeConfig, ServeReport};
use unigpu_graph::{Activation, Graph, OpKind};
use unigpu_ops::ConvWorkload;
use unigpu_telemetry::{AlertRule, MetricsRegistry, SpanRecorder};
use unigpu_tensor::{Shape, Tensor};

fn conv_model(name: &str) -> Graph {
    let mut g = Graph::new(name);
    let w0 = ConvWorkload::square(1, 3, 8, 16, 3, 1, 1);
    let x = g.add(
        OpKind::Input {
            shape: Shape::from(w0.input_shape()),
        },
        vec![],
        "data",
    );
    let wt0 = g.add(
        OpKind::Constant(Tensor::zeros(w0.weight_shape())),
        vec![],
        "w0",
    );
    let c0 = g.add(
        OpKind::Conv2d {
            w: w0,
            bias: false,
            act: Activation::Relu,
        },
        vec![x, wt0],
        "conv0",
    );
    g.mark_output(c0);
    g
}

fn compile(name: &str) -> unigpu_engine::CompiledModel {
    Engine::builder()
        .platform(Platform::deeplens())
        .persist(false)
        .build()
        .compile(&conv_model(name))
}

/// A fresh per-test scratch directory (recreated empty every run).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("unigpu-drift-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn serve(
    compiled: &unigpu_engine::CompiledModel,
    cfg: &ServeConfig,
    n: usize,
    interval_ms: f64,
) -> (ServeReport, MetricsRegistry) {
    let spans = SpanRecorder::new();
    let metrics = MetricsRegistry::new();
    let mut server = compiled.server_with(cfg, &spans, &metrics);
    for r in uniform_requests(compiled, n, interval_ms) {
        let _ = server.submit(r);
    }
    (server.shutdown(), metrics)
}

#[test]
fn throttle_chaos_flags_miscalibration_and_writes_a_retune_record() {
    let compiled = compile("drift-chaos");
    let dir = scratch("chaos");
    let retune_dir = dir.join("retune");
    let n = 32;
    // a sustained 3× thermal throttle: every batch observes ~3× its
    // predicted cost, a +200% relative error — far past the 25% threshold
    let cfg = ServeConfig {
        concurrency: 2,
        max_batch: 2,
        batch_window: Duration::from_millis(1),
        faults: DeviceFaultPlan::parse("throttle_after_ms=1:3.0"),
        recorder_dump_dir: Some(dir.join("dumps")),
        retune_dir: Some(retune_dir.clone()),
        alert_rules: AlertRule::parse_rules("drift:engine.drift.max_abs_rel_err>0.25")
            .expect("valid rule"),
        ..Default::default()
    };
    let single = compiled.estimate_batch_ms(1);
    let (report, metrics) = serve(&compiled, &cfg, n, single / 2.0);

    assert_eq!(report.results.len(), n, "throttling slows, never drops");
    assert!(
        report.drift.samples >= cfg.drift_min_samples,
        "enough batches retired to judge calibration ({} < {})",
        report.drift.samples,
        cfg.drift_min_samples
    );
    assert!(
        report.drift.mean_abs_rel_err > cfg.drift_threshold,
        "3× throttle must push mean |rel err| past the threshold (got {})",
        report.drift.mean_abs_rel_err
    );
    assert!(report.drift.miscalibrated, "model flagged as miscalibrated");
    assert_eq!(metrics.gauge("engine.drift.miscalibrated"), Some(1.0));

    // the drift alert fired on the end-of-run gauge sweep
    assert!(report.alerts_fired >= 1, "drift alert fired");
    assert!(report.fired_alerts.iter().any(|a| a == "drift"));
    assert_eq!(metrics.counter("engine.alert.fired"), report.alerts_fired);

    // a re-tune recommendation landed in the tuning database
    let jsonl = retune_dir.join("retune.jsonl");
    let body = std::fs::read_to_string(&jsonl).expect("retune.jsonl written");
    let line = body.lines().next().expect("at least one record");
    let rec: serde_json::Value = serde_json::from_str(line).expect("valid JSONL record");
    assert_eq!(rec["model"], "drift-chaos");
    assert!(rec["max_abs_rel_err"].as_f64().unwrap() > 0.25);
    assert_eq!(
        metrics.counter("engine.drift.retune_recommendations"),
        1,
        "exactly one recommendation per run"
    );

    // every dump on disk is valid JSON carrying the event window
    assert!(!report.recorder_dumps.is_empty(), "chaos run left dumps");
    for path in &report.recorder_dumps {
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(path).expect("dump readable"))
                .expect("dump is valid JSON");
        assert!(!doc["events"].as_array().unwrap().is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_noise_zero_fault_run_stays_calibrated_with_no_alerts() {
    let compiled = compile("drift-clean");
    let n = 32;
    let cfg = ServeConfig {
        concurrency: 2,
        max_batch: 2,
        batch_window: Duration::from_millis(1),
        alert_rules: AlertRule::parse_rules("drift:engine.drift.max_abs_rel_err>0.25")
            .expect("valid rule"),
        ..Default::default()
    };
    let single = compiled.estimate_batch_ms(1);
    let (report, metrics) = serve(&compiled, &cfg, n, single / 2.0);

    assert_eq!(report.results.len(), n);
    assert!(report.drift.samples >= cfg.drift_min_samples);
    // the simulator's no-fault pricing IS the cost model: drift is exactly 0
    assert_eq!(report.drift.mean_abs_rel_err, 0.0);
    assert_eq!(report.drift.max_abs_rel_err, 0.0);
    assert!(!report.drift.miscalibrated);
    assert_eq!(report.alerts_fired, 0, "no alert on a calibrated run");
    assert_eq!(report.alerts_resolved, 0);
    assert!(report.fired_alerts.is_empty());
    assert_eq!(metrics.counter("engine.alert.fired"), 0);
    assert!(report.recorder_dumps.is_empty(), "no dump dir, no dumps");
}

#[test]
fn recorder_dumps_are_byte_identical_across_zero_noise_runs() {
    let compiled = compile("drift-det");
    let n = 16;
    let run = |dir: &PathBuf| {
        let cfg = ServeConfig {
            concurrency: 2,
            max_batch: 2,
            batch_window: Duration::from_millis(1),
            recorder_dump_dir: Some(dir.clone()),
            ..Default::default()
        };
        let single = compiled.estimate_batch_ms(1);
        serve(&compiled, &cfg, n, single / 2.0).0
    };
    let dir_a = scratch("det-a");
    let dir_b = scratch("det-b");
    let a = run(&dir_a);
    let b = run(&dir_b);

    // a clean run leaves exactly the unconditional shutdown dump
    assert_eq!(a.recorder_dumps.len(), 1);
    assert_eq!(b.recorder_dumps.len(), 1);
    assert_eq!(
        a.recorder_dumps[0].file_name(),
        b.recorder_dumps[0].file_name(),
        "deterministic dump naming"
    );
    let bytes_a = std::fs::read(&a.recorder_dumps[0]).expect("dump A readable");
    let bytes_b = std::fs::read(&b.recorder_dumps[0]).expect("dump B readable");
    assert_eq!(bytes_a, bytes_b, "zero-noise dumps are byte-identical");
    let doc: serde_json::Value =
        serde_json::from_slice(&bytes_a).expect("shutdown dump is valid JSON");
    assert_eq!(doc["trigger"], "shutdown");
    assert!(!doc["events"].as_array().unwrap().is_empty());
    // the report digest (which folds in drift, alert, and dump-count
    // state) agrees too
    assert_eq!(a.digest(), b.digest());
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn accounting_invariant_survives_with_the_observability_stack_on() {
    let compiled = compile("drift-accounting");
    let dir = scratch("accounting");
    let n = 48;
    let single = compiled.estimate_batch_ms(1);
    let cfg = ServeConfig {
        concurrency: 2,
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        queue_cap: Some(6),
        deadline_ms: Some(6.0 * single),
        faults: DeviceFaultPlan::parse("kernel_fail_nth=5,throttle_after_ms=2:2.0"),
        breaker_threshold: 3,
        breaker_cooldown_ms: 1.0,
        recorder_dump_dir: Some(dir.join("dumps")),
        retune_dir: Some(dir.join("retune")),
        alert_rules: AlertRule::parse_rules(
            "drift:engine.drift.max_abs_rel_err>0.25,burn:engine.slo.burn_rate>1",
        )
        .expect("valid rules"),
        ..Default::default()
    };
    // 4× overload against a throttled, faulting device: sheds, expiries,
    // retries, and breaker traffic all in one run
    let (report, metrics) = serve(&compiled, &cfg, n, single / 8.0);

    assert_eq!(report.offered, n);
    assert_eq!(
        report.results.len() + report.shed.len() + report.expired.len() + report.failed.len(),
        n,
        "offered == completed + shed + expired + failed"
    );
    assert_eq!(report.lost(), 0, "zero lost requests");
    assert_eq!(
        metrics.counter("engine.recorder_dumps"),
        report.recorder_dumps.len() as u64
    );
    assert!(
        !report.recorder_dumps.is_empty(),
        "chaos run leaves at least the shutdown dump"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
