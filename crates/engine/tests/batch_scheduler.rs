//! Batch-scheduler guarantees through the public API: shape isolation,
//! window flushing, and the simulated-clock latency decomposition.
//!
//! Exercises the deprecated `compiled.serve`/`pop_batch` entry points on
//! purpose: the shims must keep their original contract while they live.
#![allow(deprecated)]

use std::time::{Duration, Instant};
use unigpu_device::Platform;
use unigpu_engine::{uniform_requests, Engine, InferenceRequest, RequestQueue, ServeConfig};
use unigpu_graph::{Activation, Graph, OpKind};
use unigpu_ops::ConvWorkload;
use unigpu_telemetry::{MetricsRegistry, SpanRecorder};
use unigpu_tensor::{Shape, Tensor};

fn conv_model(name: &str) -> Graph {
    let mut g = Graph::new(name);
    let w0 = ConvWorkload::square(1, 3, 8, 16, 3, 1, 1);
    let x = g.add(
        OpKind::Input {
            shape: Shape::from(w0.input_shape()),
        },
        vec![],
        "data",
    );
    let wt0 = g.add(
        OpKind::Constant(Tensor::zeros(w0.weight_shape())),
        vec![],
        "w0",
    );
    let c0 = g.add(
        OpKind::Conv2d {
            w: w0,
            bias: false,
            act: Activation::Relu,
        },
        vec![x, wt0],
        "conv0",
    );
    let w1 = ConvWorkload::square(1, 8, 8, 16, 3, 1, 1);
    let wt1 = g.add(
        OpKind::Constant(Tensor::zeros(w1.weight_shape())),
        vec![],
        "w1",
    );
    let c1 = g.add(
        OpKind::Conv2d {
            w: w1,
            bias: false,
            act: Activation::Relu,
        },
        vec![c0, wt1],
        "conv1",
    );
    g.mark_output(c1);
    g
}

fn compile() -> unigpu_engine::CompiledModel {
    Engine::builder()
        .platform(Platform::deeplens())
        .persist(false)
        .build()
        .compile(&conv_model("served"))
}

fn req(id: usize, dims: &[usize], arrival_ms: f64) -> InferenceRequest {
    InferenceRequest {
        id,
        shape: Shape(dims.to_vec()),
        arrival_ms,
        trace: None,
    }
}

#[test]
fn mismatched_shapes_never_coalesce() {
    let q = RequestQueue::new();
    // two shape populations, interleaved
    for i in 0..10 {
        let dims: &[usize] = if i % 2 == 0 {
            &[1, 3, 16, 16]
        } else {
            &[1, 3, 32, 32]
        };
        q.push(req(i, dims, i as f64));
    }
    q.close();
    let mut popped = Vec::new();
    while let Some(batch) = q.pop_batch(8, Duration::from_millis(1)) {
        let anchor = batch[0].shape.clone();
        assert!(
            batch.iter().all(|r| r.shape == anchor),
            "batch is shape-uniform"
        );
        popped.extend(batch.iter().map(|r| r.id));
    }
    assert_eq!(
        popped,
        (0..10).collect::<Vec<_>>(),
        "FIFO preserved across shapes"
    );
}

#[test]
fn batch_window_timeout_flushes_partial_batches() {
    let q = RequestQueue::new();
    for i in 0..3 {
        q.push(req(i, &[1, 3, 16, 16], 0.0));
    }
    let window = Duration::from_millis(50);
    let t0 = Instant::now();
    // queue stays open: only the window can flush this underfull batch
    let batch = q.pop_batch(16, window).expect("partial batch");
    assert_eq!(batch.len(), 3);
    assert!(
        t0.elapsed() >= window,
        "waited out the window before flushing"
    );
    // late same-shape arrival forms its own batch
    q.push(req(3, &[1, 3, 16, 16], 5.0));
    q.close();
    assert_eq!(q.pop_batch(16, window).unwrap().len(), 1);
    assert!(q.pop_batch(16, window).is_none());
}

#[test]
fn per_request_latency_decomposes_on_the_simulated_clock() {
    let compiled = compile();
    let spans = SpanRecorder::new();
    let metrics = MetricsRegistry::new();
    let n = 16;
    let cfg = ServeConfig {
        concurrency: 2,
        max_batch: 4,
        batch_window: Duration::from_millis(2),
        ..Default::default()
    };
    let report = compiled.serve(uniform_requests(&compiled, n, 0.1), &cfg, &spans, &metrics);

    assert_eq!(report.results.len(), n);
    assert_eq!(
        report.results.iter().map(|r| r.id).collect::<Vec<_>>(),
        (0..n).collect::<Vec<_>>()
    );
    for r in &report.results {
        assert!(r.batch_size >= 1 && r.batch_size <= cfg.max_batch);
        assert!(r.worker < cfg.concurrency);
        assert!(
            r.queue_ms() >= 0.0,
            "a batch never starts before the request arrives"
        );
        assert!(r.exec_ms() > 0.0);
        let recomposed = r.queue_ms() + r.exec_ms();
        assert!(
            (r.latency_ms() - recomposed).abs() < 1e-9,
            "latency {} != queueing {} + execution {}",
            r.latency_ms(),
            r.queue_ms(),
            r.exec_ms()
        );
        assert!(r.done_ms <= report.makespan_ms + 1e-9);
    }

    // telemetry agrees with the report
    assert_eq!(metrics.counter("engine.requests"), n as u64);
    assert_eq!(metrics.counter("engine.batches"), report.batches as u64);
    let lat = metrics
        .histogram_summary("engine.latency_ms")
        .expect("latency histogram");
    assert_eq!(lat.count, n as u64);
    assert!(metrics.gauge("engine.throughput_rps").unwrap() > 0.0);
    assert_eq!(spans.len(), n, "one span per request");
    assert!(report.throughput_rps() > 0.0);
}

#[test]
fn batching_trades_latency_for_throughput() {
    let compiled = compile();
    let single = compiled.estimate_batch_ms(1);
    let serve_with = |max_batch: usize| {
        let cfg = ServeConfig {
            concurrency: 2,
            max_batch,
            batch_window: Duration::from_millis(1),
            ..Default::default()
        };
        let spans = SpanRecorder::new();
        let metrics = MetricsRegistry::new();
        // offered load near capacity so batches actually form
        compiled.serve(
            uniform_requests(&compiled, 32, single / 4.0),
            &cfg,
            &spans,
            &metrics,
        )
    };
    let unbatched = serve_with(1);
    let batched = serve_with(8);
    assert!(unbatched.results.iter().all(|r| r.batch_size == 1));
    assert!(
        batched.mean_batch_size() > 1.0,
        "near-capacity load coalesces into real batches"
    );
    assert!(
        batched.makespan_ms < unbatched.makespan_ms,
        "launch amortization: batched serving finishes sooner ({:.2} ms vs {:.2} ms)",
        batched.makespan_ms,
        unbatched.makespan_ms
    );
}
