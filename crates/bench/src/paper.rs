//! The paper's reported numbers (Tables 1–5), kept verbatim for
//! paper-vs-measured reporting in every harness binary and EXPERIMENTS.md.

/// (model, ours_ms, baseline_ms) — `None` = "—" (unsupported by baseline).
pub type OverallRow = (&'static str, f64, Option<f64>);

/// Table 1: AWS DeepLens, ours vs OpenVINO.
pub const TABLE1: [OverallRow; 6] = [
    ("ResNet50_v1", 186.15, Some(203.60)),
    ("MobileNet1.0", 85.58, Some(53.48)),
    ("SqueezeNet1.0", 52.10, Some(42.01)),
    ("SSD_MobileNet1.0", 398.48, None),
    ("SSD_ResNet50", 1006.01, None),
    ("Yolov3", 1004.13, None),
];

/// Table 2: Acer aiSage, ours vs ACL.
pub const TABLE2: [OverallRow; 6] = [
    ("ResNet50_v1", 345.60, Some(358.17)),
    ("MobileNet1.0", 78.83, Some(95.00)),
    ("SqueezeNet1.0", 66.61, Some(77.10)),
    ("SSD_MobileNet1.0", 243.16, Some(216.87)),
    ("SSD_ResNet50", 777.26, Some(737.90)),
    ("Yolov3", 1097.47, Some(1042.90)),
];

/// Table 3: Nvidia Jetson Nano, ours vs cuDNN (MXNet).
pub const TABLE3: [OverallRow; 6] = [
    ("ResNet50_v1", 113.81, Some(117.22)),
    ("MobileNet1.0", 20.63, Some(30.71)),
    ("SqueezeNet1.0", 26.58, Some(42.98)),
    ("SSD_MobileNet1.0", 135.5, Some(197.3)),
    ("SSD_ResNet50", 371.32, Some(478.33)),
    ("Yolov3", 553.79, Some(802.41)),
];

/// Table 4: vision-specific operator optimization (device, model, before, after).
pub const TABLE4: [(&str, &str, f64, f64); 9] = [
    ("AWS DeepLens", "SSD_MobileNet1.0", 966.20, 398.48),
    ("AWS DeepLens", "SSD_ResNet50", 1491.30, 1006.01),
    ("AWS DeepLens", "Yolov3", 2610.13, 1004.13),
    ("Acer aiSage", "SSD_MobileNet1.0", 1098.11, 243.16),
    ("Acer aiSage", "SSD_ResNet50", 1631.30, 777.26),
    ("Acer aiSage", "Yolov3", 6429.69, 1097.47),
    ("Nvidia Jetson Nano", "SSD_MobileNet1.0", 264.0, 135.5),
    ("Nvidia Jetson Nano", "SSD_ResNet50", 490.4, 371.32),
    ("Nvidia Jetson Nano", "Yolov3", 1350.0, 553.79),
];

/// Table 5: convolution auto-tuning (device, model, before, after).
pub const TABLE5: [(&str, &str, f64, f64); 9] = [
    ("AWS DeepLens", "ResNet50_v1", 260.0, 186.15),
    ("AWS DeepLens", "MobileNet1.0", 558.15, 85.58),
    ("AWS DeepLens", "SqueezeNet1.0", 64.0, 52.1),
    ("Acer aiSage", "ResNet50_v1", 727.29, 345.6),
    ("Acer aiSage", "MobileNet1.0", 655.18, 78.83),
    ("Acer aiSage", "SqueezeNet1.0", 1362.2, 106.61),
    ("Nvidia Jetson Nano", "ResNet50_v1", 1088.55, 113.81),
    ("Nvidia Jetson Nano", "MobileNet1.0", 155.14, 20.63),
    ("Nvidia Jetson Nano", "SqueezeNet1.0", 1045.0, 26.58),
];

/// §3.1.2 fallback experiment: SSD(ResNet) on DeepLens.
pub const FALLBACK_ALL_GPU_MS: f64 = 1010.23;
pub const FALLBACK_NMS_CPU_MS: f64 = 1015.14;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_match_abstract() {
        // Abstract: "up to 1.62x" vs vendor libraries — Table 3 SqueezeNet.
        let max = TABLE3
            .iter()
            .filter_map(|(_, ours, base)| base.map(|b| b / ours))
            .fold(0.0f64, f64::max);
        assert!((max - 1.62).abs() < 0.01, "max speedup {max}");
    }

    #[test]
    fn table4_max_speedup_is_5_86() {
        let max = TABLE4
            .iter()
            .map(|(_, _, before, after)| before / after)
            .fold(0.0f64, f64::max);
        assert!((max - 5.86).abs() < 0.01, "{max}");
    }

    #[test]
    fn table5_max_speedup_is_39_3() {
        let max = TABLE5
            .iter()
            .map(|(_, _, before, after)| before / after)
            .fold(0.0f64, f64::max);
        assert!((max - 39.3).abs() < 0.05, "{max}");
    }

    #[test]
    fn fallback_overhead_below_half_percent() {
        let overhead = FALLBACK_NMS_CPU_MS / FALLBACK_ALL_GPU_MS - 1.0;
        assert!(overhead < 0.005);
    }
}
