//! # unigpu-bench
//!
//! The evaluation harness: one binary per table/figure of the paper
//! (`table1`–`table5`, `figure2`, `figure3`, `fallback`) plus Criterion
//! micro-benchmarks of the host kernels.
//!
//! Shared plumbing lives here: tuned-schedule caching, table formatting, and
//! the paper's reported numbers for side-by-side comparison.

pub mod harness;
pub mod paper;

pub use harness::{
    harness_budget, ours_tuned_latency, overall_table, print_ablation, print_table,
    tuned_provider_for, write_bench_json, Row,
};
