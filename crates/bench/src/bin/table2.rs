//! Regenerates Table 2 — Acer aiSage (ARM Mali T-860): Ours vs ACL.

use unigpu_bench::paper::TABLE2;
use unigpu_bench::{overall_table, print_table};
use unigpu_device::Platform;

fn main() {
    let platform = Platform::aisage();
    let rows = overall_table(&platform, &TABLE2);
    print_table(
        "Table 2 — Acer aiSage (ARM Mali T-860): Ours vs ACL",
        "ACL",
        &rows,
    );
}
