//! Regenerates Figure 3 — the three-stage prefix-sum (scan) pipeline.
//!
//! Replays the figure's exact worked example (18 elements, 5 processors:
//! up-sweep → scan of partials → down-sweep) and prints the simulated
//! latency of the register-blocked three-stage scan versus the naive global
//! Hillis–Steele scan on the three integrated GPUs.

use unigpu_device::{dispatch_chunks, dispatch_map, CostModel, Platform};
use unigpu_ops::vision::scan::{hillis_steele, naive_scan_profile, prefix_sum, scan_profiles};

fn walkthrough() {
    println!("=== Figure 3 walkthrough: prefix sum with 5 processors ===");
    let data: Vec<f32> = vec![
        5., 7., 1., 1., 3., 4., 2., 0., 3., 1., 1., 2., 6., 1., 2., 3., 1., 3.,
    ];
    println!("input:      {:?}", data.iter().map(|&v| v as i32).collect::<Vec<_>>());
    let p = 5;
    let block = data.len().div_ceil(p);

    // Stage 1: up-sweep (sequential scan inside each processor's block)
    let mut up = data.clone();
    dispatch_chunks(&mut up, block, |_, chunk| {
        let mut acc = 0.0;
        for v in chunk.iter_mut() {
            acc += *v;
            *v = acc;
        }
    });
    println!("up-sweep:   {:?}", up.iter().map(|&v| v as i32).collect::<Vec<_>>());
    let sums: Vec<f32> = dispatch_map(data.len().div_ceil(block), |g| {
        up[((g + 1) * block).min(data.len()) - 1]
    });
    println!("partials:   {:?}  (red bold numbers)", sums.iter().map(|&v| v as i32).collect::<Vec<_>>());

    // Stage 2: Hillis–Steele over the partials
    let scanned = hillis_steele(&sums);
    println!("scan:       {:?}", scanned.iter().map(|&v| v as i32).collect::<Vec<_>>());

    // Stage 3: down-sweep
    let out = prefix_sum(&data, p);
    println!("down-sweep: {:?}", out.iter().map(|&v| v as i32).collect::<Vec<_>>());
    let expect: Vec<i32> = vec![5, 12, 13, 14, 17, 21, 23, 23, 26, 27, 28, 30, 36, 37, 39, 42, 43, 46];
    assert_eq!(out.iter().map(|&v| v as i32).collect::<Vec<_>>(), expect);
    println!("matches Figure 3's final row ✓\n");
}

fn perf_series() {
    println!("=== three-stage scan vs global Hillis–Steele (simulated ms) ===");
    println!(
        "{:<26} {:>10} {:>12} {:>14} {:>8}",
        "Device", "n", "naive(ms)", "3-stage(ms)", "speedup"
    );
    for platform in Platform::all() {
        let m = CostModel::new(platform.gpu.clone());
        for &n in &[1 << 12, 1 << 16, 1 << 20] {
            let naive = m.kernel_time_ms(&naive_scan_profile(n));
            let opt: f64 = scan_profiles(n, platform.gpu.max_concurrency(), &platform.gpu)
                .iter()
                .map(|p| m.kernel_time_ms(p))
                .sum();
            println!(
                "{:<26} {:>10} {:>12.3} {:>14.3} {:>8.2}",
                platform.gpu.name,
                n,
                naive,
                opt,
                naive / opt
            );
        }
    }
}

fn main() {
    walkthrough();
    perf_series();
}
