//! Regenerates Figure 1 — the working pipeline overview — as a live
//! walkthrough: one model pushed through every stage of the stack with the
//! artifact of each stage printed.
//!
//! CNN model → computational graph → optimized graph (fusion/folding) →
//! tensor-level tuning (AutoTVM) + graph-level tuning (GraphTuner) → unified
//! IR → low-level loop program → CUDA *and* OpenCL code generation.

use unigpu_device::{DeviceSpec, Platform};
use unigpu_graph::passes::optimize;
use unigpu_graph::{op_histogram, parameter_count};
use unigpu_ir::codegen::{generate, line_count, Target};
use unigpu_ir::{lower, simplify_stmt, Schedule};
use unigpu_models::squeezenet;
use unigpu_ops::conv::te::conv2d_compute;
use unigpu_ops::ConvWorkload;
use unigpu_tuner::{tune_graph, TuningBudget};

fn main() {
    println!("=== Figure 1: the unigpu working pipeline, live ===\n");

    // Stage 1: CNN model → computational graph
    let model = squeezenet(1, 224, 1000);
    println!(
        "[1] CNN model `{}` → computational graph: {} nodes, {} convs, {} params",
        model.name,
        model.nodes.len(),
        model.conv_count(),
        parameter_count(&model)
    );

    // Stage 2: graph-level optimization
    let opt = optimize(&model);
    let hist = op_histogram(&opt);
    println!(
        "[2] operator-level & graph-level optimization: {} ops → {} ops (BN folded: {}, fused convs: {})",
        model.op_count(),
        opt.op_count(),
        !hist.contains_key("batch_norm"),
        hist.get("conv2d").copied().unwrap_or(0)
    );

    // Stage 3: tensor-level tuning (AutoTVM) + graph-level tuning (GraphTuner)
    let platform = Platform::jetson_nano();
    let budget = TuningBudget { trials_per_workload: 32, ..Default::default() };
    let db = tune_graph(&opt, &platform.gpu, &budget);
    println!(
        "[3] AutoTVM tensor-level search + GraphTuner layout DP: {} workloads tuned for {}",
        db.len(),
        platform.gpu.name
    );

    // Stage 4: one schedule in the unified IR...
    let w = ConvWorkload::square(1, 64, 128, 56, 3, 1, 1);
    let c = conv2d_compute(&w);
    let mut s = Schedule::default_for(&c);
    s.split_bind("oc", 8, 0).unwrap();
    s.split("ow", 8).unwrap();
    s.vectorize("ow.i").unwrap();
    s.unroll("kw").unwrap();
    let stmt = simplify_stmt(&lower(&c, &s));
    println!(
        "[4] unified IR: conv {} scheduled (grid {}, workgroup {}), lowered to {} IR nodes",
        w.key(),
        s.grid_size(),
        s.workgroup_size(),
        stmt.node_count()
    );

    // Stage 5: ...generates BOTH backends
    let cuda = generate("conv2d", &stmt, Target::Cuda);
    let opencl = generate("conv2d", &stmt, Target::OpenCl);
    println!(
        "[5] code generation from ONE schedule: CUDA ({} lines, Nvidia GPUs) + OpenCL ({} lines, Intel Graphics & Mali ARM GPU)",
        line_count(&cuda),
        line_count(&opencl)
    );
    for spec in [DeviceSpec::intel_hd505(), DeviceSpec::mali_t860(), DeviceSpec::maxwell_nano()] {
        println!("    target {} via {:?}", spec.name, spec.api);
    }
    println!("\npipeline complete — see table1..table5 for the evaluation it feeds.");
}
