//! Ablation studies over the stack's own design choices (beyond the paper's
//! tables): what each optimization layer contributes, per platform.
//!
//! 1. graph optimization (BN folding + fusion) on/off;
//! 2. Intel subgroup usage on/off in the tuned schedule;
//! 3. GraphTuner DP versus greedy per-layer schedule choice;
//! 4. tuner comparison at equal budget (random / SA / GA / model-based).

use unigpu_device::{CostModel, DeviceSpec, Platform};
use unigpu_graph::latency::FallbackSchedules;
use unigpu_graph::passes::optimize;
use unigpu_graph::{estimate_latency, place, LatencyOptions, PlacementPolicy};
use unigpu_models::{resnet50, squeezenet};
use unigpu_ops::conv::{conv_profile, ConfigSpace, ConvConfig};
use unigpu_ops::ConvWorkload;
use unigpu_tuner::graph_tuner::{greedy_chain, optimize_chain, ChainLayer, LayerCandidate};
use unigpu_tuner::{GaTuner, ModelBasedTuner, RandomTuner, SaTuner, SimMeasurer, Tuner};

fn ablate_graph_opt() {
    println!("=== ablation 1: graph-level optimization (BN fold + fusion) ===");
    println!("{:<22} {:>12} {:>12} {:>8}", "Platform", "unfused(ms)", "fused(ms)", "gain");
    let g = resnet50(1, 224, 1000);
    let o = optimize(&g);
    for plat in Platform::all() {
        let opts = LatencyOptions::default();
        let raw = estimate_latency(&place(&g, PlacementPolicy::AllGpu), &plat, &FallbackSchedules, &opts);
        let fused = estimate_latency(&place(&o, PlacementPolicy::AllGpu), &plat, &FallbackSchedules, &opts);
        println!(
            "{:<22} {:>12.2} {:>12.2} {:>7.1}%",
            plat.name,
            raw.total_ms,
            fused.total_ms,
            (1.0 - fused.total_ms / raw.total_ms) * 100.0
        );
    }
}

fn ablate_subgroups() {
    println!("\n=== ablation 2: Intel subgroup weight broadcast (§3.2.1) ===");
    let spec = DeviceSpec::intel_hd505();
    let m = CostModel::new(spec.clone());
    // a bandwidth-hungry projection layer: weight traffic dominates, which
    // is precisely what subgroup block reads amortize
    let w = ConvWorkload::square(1, 512, 512, 14, 1, 1, 0);
    let mut cfg = ConvConfig {
        tile_oc: 2,
        tile_oh: 1,
        tile_ow: 2,
        vector_width: 8,
        unroll: 2,
        workgroup: (16, 4),
        use_subgroup: true,
        use_slm: false,
    };
    let with = m.kernel_time_ms(&conv_profile(&w, &cfg, &spec));
    cfg.use_subgroup = false;
    let without = m.kernel_time_ms(&conv_profile(&w, &cfg, &spec));
    println!(
        "conv {}: with subgroups {:.3} ms, without {:.3} ms ({:.2}x)",
        w.key(),
        with,
        without,
        without / with
    );
}

fn ablate_graph_tuner() {
    println!("\n=== ablation 3: GraphTuner DP vs greedy per-layer choice ===");
    // top-4 candidates per layer of a ResNet-ish chain, measured by the model
    let spec = DeviceSpec::mali_t860();
    let m = SimMeasurer::new(spec.clone(), 0.0, 7);
    let wls = [
        ConvWorkload::square(1, 64, 64, 56, 3, 1, 1),
        ConvWorkload::square(1, 64, 128, 56, 1, 1, 0),
        ConvWorkload::square(1, 128, 128, 28, 3, 1, 1),
        ConvWorkload::square(1, 128, 256, 28, 1, 1, 0),
        ConvWorkload::square(1, 256, 256, 14, 3, 1, 1),
    ];
    let layers: Vec<ChainLayer> = wls
        .iter()
        .map(|w| {
            let space = ConfigSpace::build(w, &spec);
            // best candidate per distinct output layout (tile_oc), so the
            // chain DP has real layout alternatives to weigh
            let mut cands: Vec<LayerCandidate> = Vec::new();
            for &oc in &[1usize, 2, 4, 8, 16] {
                let best = (0..space.len())
                    .step_by(7)
                    .map(|i| space.get(i))
                    .filter(|c| c.tile_oc == oc)
                    .map(|config| LayerCandidate { config, kernel_ms: m.true_cost(w, &config) })
                    .min_by(|a, b| a.kernel_ms.total_cmp(&b.kernel_ms));
                if let Some(c) = best {
                    cands.push(c);
                }
            }
            ChainLayer { workload: *w, candidates: cands }
        })
        .collect();
    let dp = optimize_chain(&layers, &spec);
    let greedy = greedy_chain(&layers, &spec);
    println!(
        "greedy: {:.3} ms with {} layout transforms; DP: {:.3} ms with {} transforms ({:.2}% saved)",
        greedy.total_ms,
        greedy.transforms,
        dp.total_ms,
        dp.transforms,
        (1.0 - dp.total_ms / greedy.total_ms) * 100.0
    );
}

fn ablate_tuners() {
    println!("\n=== ablation 4: search strategies at equal budget (96 trials, 3% noise) ===");
    let w = ConvWorkload::square(1, 128, 128, 28, 3, 1, 1);
    let spec = DeviceSpec::intel_hd505();
    let space = ConfigSpace::build(&w, &spec);
    let tuners: Vec<(&str, Box<dyn Tuner>)> = vec![
        ("random", Box::new(RandomTuner::new(3))),
        ("simulated annealing", Box::new(SaTuner::new(3))),
        ("genetic", Box::new(GaTuner::new(3))),
        ("model-based (GBT)", Box::new(ModelBasedTuner::new(3))),
    ];
    for (name, mut t) in tuners {
        let mut m = SimMeasurer::new(spec.clone(), 0.03, 17);
        let r = t.tune(&w, &space, &mut m, 96);
        println!("{:<22} best true cost {:.4} ms", name, m.true_cost(&w, &r.best_config));
    }

    println!("\n=== SqueezeNet end-to-end: untuned vs tuned (model-based) ===");
    let g = squeezenet(1, 224, 1000);
    for plat in Platform::all() {
        use unigpu_engine::Engine;
        let untuned = Engine::builder().platform(plat.clone()).persist(false).build();
        let tuned = Engine::builder().platform(plat.clone()).persist(false).tuned(48).build();
        let before = untuned.compile(&g).estimate().total_ms;
        let after = tuned.compile(&g).estimate().total_ms;
        println!("{:<22} {:.2} -> {:.2} ms ({:.2}x)", plat.name, before, after, before / after);
    }
}

fn main() {
    ablate_graph_opt();
    ablate_subgroups();
    ablate_graph_tuner();
    ablate_tuners();
}
