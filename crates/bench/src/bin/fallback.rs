//! Regenerates the §3.1.2 fallback experiment: SSD (ResNet50 backbone) on
//! AWS DeepLens, entirely on the integrated GPU versus with the NMS-bearing
//! operators falling back to the CPU.
//!
//! Paper: 1010.23 ms all-GPU vs 1015.14 ms with fallback — "an overhead less
//! than 0.5 %".

use unigpu_bench::paper::{FALLBACK_ALL_GPU_MS, FALLBACK_NMS_CPU_MS};
use unigpu_bench::{harness_budget, tuned_provider_for};
use unigpu_device::Platform;
use unigpu_graph::passes::optimize;
use unigpu_graph::{estimate_latency, place, LatencyOptions, PlacementPolicy};
use unigpu_models::ssd_resnet50;

fn main() {
    let platform = Platform::deeplens();
    let provider = tuned_provider_for(&platform, &harness_budget());
    let g = optimize(&ssd_resnet50(512, 20));
    let opts = LatencyOptions { vision_optimized: true };

    let all_gpu = place(&g, PlacementPolicy::AllGpu);
    let r_gpu = estimate_latency(&all_gpu, &platform, &provider, &opts);

    let fb = place(&g, PlacementPolicy::FallbackVision);
    let r_fb = estimate_latency(&fb, &platform, &provider, &opts);

    println!("\n=== §3.1.2 fallback experiment — SSD_ResNet50 on AWS DeepLens ===");
    println!("{:<28} {:>12} {:>12}", "Configuration", "ours (ms)", "paper (ms)");
    println!("{:<28} {:>12.2} {:>12.2}", "entirely on integrated GPU", r_gpu.total_ms, FALLBACK_ALL_GPU_MS);
    println!("{:<28} {:>12.2} {:>12.2}", "NMS fallback to CPU", r_fb.total_ms, FALLBACK_NMS_CPU_MS);
    let overhead = r_fb.total_ms / r_gpu.total_ms - 1.0;
    let paper_overhead = FALLBACK_NMS_CPU_MS / FALLBACK_ALL_GPU_MS - 1.0;
    println!(
        "fallback overhead: {:.2}% (paper: {:.2}%)  [copies inserted: {}, transfer {:.3} ms]",
        overhead * 100.0,
        paper_overhead * 100.0,
        fb.copy_count(),
        r_fb.transfer_ms
    );
    assert!(overhead.abs() < 0.05, "fallback overhead should be small");
}
