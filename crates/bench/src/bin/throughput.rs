//! Serving-throughput sweep: throughput and latency percentiles versus
//! maximum batch size, through the engine's event-driven scheduler, plus
//! the pipelining ablation (event-driven vs. the phase-sequential
//! baseline) — the repo's first checked-in perf trajectory point.
//!
//! Larger batches amortize kernel-launch overhead (higher throughput) at
//! the price of queueing delay (higher tail latency) — the classic serving
//! trade-off, here priced entirely on the simulated device timeline.
//!
//! ```text
//! cargo run --release -p unigpu-bench --bin throughput [MODEL] [PLATFORM]
//! ```

use std::time::Duration;
use unigpu_device::{Platform, Vendor};
use unigpu_engine::{
    serve_phase_sequential, uniform_requests, CompiledModel, InferenceRequest, Engine,
    ServeConfig, ServeReport,
};
use unigpu_models::full_zoo;
use unigpu_telemetry::{MetricsRegistry, SpanRecorder};

const REQUESTS: usize = 64;
const WORKERS: usize = 4;

/// Stream `requests` through the event-driven scheduler and shut down.
fn serve_stream(
    compiled: &CompiledModel,
    requests: Vec<InferenceRequest>,
    cfg: &ServeConfig,
    spans: &SpanRecorder,
    metrics: &MetricsRegistry,
) -> ServeReport {
    let mut server = compiled.server_with(cfg, spans, metrics);
    for r in requests {
        let _ = server.submit(r);
    }
    server.shutdown()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let model = args.first().map(String::as_str).unwrap_or("MobileNet1.0");
    let platform = args
        .get(1)
        .map(|s| Platform::by_name(s).expect("unknown platform (use deeplens|aisage|nano)"))
        .unwrap_or_else(Platform::deeplens);
    let entry = full_zoo()
        .into_iter()
        .find(|e| e.name == model)
        .expect("unknown model; see `unigpu models`");
    let g = (entry.build)(platform.gpu.vendor == Vendor::Arm);

    let engine = Engine::builder().platform(platform.clone()).build();
    let compiled = engine.compile(&g);
    if compiled.from_cache() {
        println!("(artifact cache hit — compile skipped)");
    }
    let single = compiled.estimate_batch_ms(1);

    println!(
        "=== serving throughput sweep — {model} on {} ({REQUESTS} requests, {WORKERS} workers, \
         single-sample {single:.2} ms) ===",
        platform.name
    );
    println!(
        "{:>6} {:>14} {:>10} {:>10} {:>11} {:>8} {:>8}",
        "batch", "thruput(req/s)", "p50(ms)", "p99(ms)", "queue(ms)", "batches", "idle"
    );
    let mut rows = Vec::new();
    for max_batch in [1usize, 2, 4, 8, 16] {
        let spans = SpanRecorder::new();
        let metrics = MetricsRegistry::new();
        let cfg = ServeConfig::builder()
            .concurrency(WORKERS)
            .max_batch(max_batch)
            .batch_window(Duration::from_millis(2))
            .build()
            .expect("valid sweep config");
        // offered load near aggregate capacity so batches actually form
        let requests = uniform_requests(&compiled, REQUESTS, single / WORKERS as f64);
        let report = serve_stream(&compiled, requests, &cfg, &spans, &metrics);
        let lat = metrics
            .histogram_summary("engine.latency_ms")
            .expect("latency histogram");
        let queue = metrics
            .histogram_summary("engine.queue_ms")
            .expect("queue histogram");
        println!(
            "{:>6} {:>14.1} {:>10.2} {:>10.2} {:>11.2} {:>8} {:>7.1}%",
            max_batch,
            report.throughput_rps(),
            lat.p50,
            lat.p99,
            queue.mean,
            report.batches,
            report.device_idle_fraction * 100.0
        );
        rows.push(serde_json::json!({
            "max_batch": max_batch,
            "throughput_rps": report.throughput_rps(),
            "latency_ms": { "p50": lat.p50, "p95": lat.p95, "p99": lat.p99, "mean": lat.mean },
            "queue_ms": { "p50": queue.p50, "p95": queue.p95, "p99": queue.p99, "mean": queue.mean },
            "batches": report.batches,
            "mean_batch_size": report.mean_batch_size(),
            "device_idle_fraction": report.device_idle_fraction,
            "lane_utilization": report.lane_utilization,
            "alerts_fired": report.alerts_fired,
            "max_abs_drift": report.drift.max_abs_rel_err,
        }));
    }

    // Pipelining ablation: the same saturating arrival stream through the
    // event-driven scheduler and through the phase-sequential baseline
    // (static chunks, no partial flushes, no overlap). Zero flush window:
    // the event-driven core launches whatever is queued the moment a lane
    // frees, which is exactly the pipelining the baseline lacks.
    let ablation_cfg = ServeConfig::builder()
        .concurrency(WORKERS)
        .max_batch(8)
        .batch_window(Duration::ZERO)
        .build()
        .expect("valid ablation config");
    let arrivals = uniform_requests(&compiled, REQUESTS, single / WORKERS as f64);
    let ev_metrics = MetricsRegistry::new();
    let event_driven = serve_stream(
        &compiled,
        arrivals.clone(),
        &ablation_cfg,
        &SpanRecorder::new(),
        &ev_metrics,
    );
    let ps_metrics = MetricsRegistry::new();
    let phase_seq = serve_phase_sequential(
        &compiled,
        arrivals,
        &ablation_cfg,
        &SpanRecorder::new(),
        &ps_metrics,
    );
    let ev_lat = ev_metrics
        .histogram_summary("engine.latency_ms")
        .expect("latency histogram");
    let ps_lat = ps_metrics
        .histogram_summary("engine.latency_ms")
        .expect("latency histogram");

    println!();
    println!(
        "=== pipelining ablation — event-driven vs phase-sequential \
         (batch 8, zero window, saturating load) ==="
    );
    println!(
        "{:>18} {:>14} {:>10} {:>8} {:>8}",
        "scheduler", "thruput(req/s)", "p99(ms)", "idle", "batches"
    );
    for (label, report, lat) in [
        ("event-driven", &event_driven, &ev_lat),
        ("phase-sequential", &phase_seq, &ps_lat),
    ] {
        println!(
            "{:>18} {:>14.1} {:>10.2} {:>7.1}% {:>8}",
            label,
            report.throughput_rps(),
            lat.p99,
            report.device_idle_fraction * 100.0,
            report.batches
        );
    }
    println!(
        "pipelining gain: throughput {:+.1}%, idle {:+.1} pts, makespan {:+.1}%",
        (event_driven.throughput_rps() / phase_seq.throughput_rps() - 1.0) * 100.0,
        (event_driven.device_idle_fraction - phase_seq.device_idle_fraction) * 100.0,
        (event_driven.makespan_ms / phase_seq.makespan_ms - 1.0) * 100.0
    );

    let path = unigpu_bench::write_bench_json(
        "throughput",
        &serde_json::json!({
            "bench": "throughput",
            "model": model,
            "platform": platform.name,
            "requests": REQUESTS,
            "workers": WORKERS,
            "single_sample_ms": single,
            "rows": rows,
            "pipelining": {
                "max_batch": 8,
                "window_ms": 0,
                "event_driven": {
                    "throughput_rps": event_driven.throughput_rps(),
                    "p99_ms": ev_lat.p99,
                    "device_idle_fraction": event_driven.device_idle_fraction,
                    "batches": event_driven.batches,
                    "makespan_ms": event_driven.makespan_ms,
                    "alerts_fired": event_driven.alerts_fired,
                    "max_abs_drift": event_driven.drift.max_abs_rel_err,
                },
                "phase_sequential": {
                    "throughput_rps": phase_seq.throughput_rps(),
                    "p99_ms": ps_lat.p99,
                    "device_idle_fraction": phase_seq.device_idle_fraction,
                    "batches": phase_seq.batches,
                    "makespan_ms": phase_seq.makespan_ms,
                },
            },
        }),
    );
    println!("wrote {}", path.display());
}
