//! Regenerates Table 1 — AWS DeepLens (Intel HD 505): Ours vs OpenVINO.

use unigpu_bench::paper::TABLE1;
use unigpu_bench::{overall_table, print_table};
use unigpu_device::Platform;

fn main() {
    let platform = Platform::deeplens();
    let rows = overall_table(&platform, &TABLE1);
    print_table(
        "Table 1 — AWS DeepLens (Intel HD 505): Ours vs OpenVINO",
        "OpenVINO",
        &rows,
    );
}
