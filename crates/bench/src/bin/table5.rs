//! Regenerates Table 5 — convolution auto-tuning before/after for the three
//! image-classification models across all three platforms.
//!
//! "Before" uses the untuned fallback schedules (hand-written kernels exist
//! for classic shapes, naive ones for novel shapes), compiled through a
//! default (untuned) [`Engine`]; "After" uses the AutoTVM + GraphTuner
//! searched schedules.

use unigpu_bench::paper::TABLE5;
use unigpu_bench::{harness_budget, ours_tuned_latency, print_ablation, tuned_provider_for};
use unigpu_device::Platform;
use unigpu_engine::Engine;
use unigpu_models::classification_zoo;

fn main() {
    let mut rows = Vec::new();
    let mut paper_iter = TABLE5.iter();
    for platform in Platform::all() {
        let provider = tuned_provider_for(&platform, &harness_budget());
        let untuned = Engine::builder().platform(platform.clone()).persist(false).build();
        for entry in classification_zoo() {
            let g = (entry.build)(false);
            let before = untuned.compile(&g).estimate();
            let after = ours_tuned_latency(&g, &platform, &provider);
            let &(pdev, pmodel, pb, pa) = paper_iter.next().expect("9 paper rows");
            assert_eq!(pdev, platform.name);
            assert_eq!(pmodel, entry.name);
            rows.push((
                platform.name.clone(),
                entry.name.to_string(),
                before.total_ms,
                after.total_ms,
                pb,
                pa,
            ));
        }
    }
    print_ablation(
        "Table 5 — with/without machine-learning-based convolution tuning",
        &rows,
    );
}
