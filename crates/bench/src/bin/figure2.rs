//! Regenerates Figure 2 — the segmented-sort pipeline.
//!
//! Prints (a) a structural walkthrough of the algorithm on a small example
//! in the figure's style (flatten → equal blocks → block sort → cooperative
//! merges with doubling span) and (b) the simulated-latency series of the
//! optimized segmented sort versus the naive one-thread-per-segment sort on
//! the three integrated GPUs over SSD-like segment distributions.

use unigpu_device::{CostModel, Platform};
use unigpu_ops::vision::sort::{
    naive_segment_argsort, naive_sort_profile, segmented_argsort, segmented_sort_profiles,
};

fn walkthrough() {
    println!("=== Figure 2 walkthrough: segmented sort pipeline ===");
    // Two segments of unequal length (black/green lines in the figure).
    let data: Vec<f32> = vec![
        0.9, 0.1, 0.5, 0.7, 0.3, // segment 0 (5 elems)
        0.8, 0.2, 0.6, // segment 1 (3 elems)
    ];
    let offsets = [0usize, 5, 8];
    println!("segments: {:?} with offsets {:?}", data, offsets);
    let block = 4;
    println!("flattened into equal blocks of {block} (power of two, padded)");
    let padded = data.len().div_ceil(block) * block;
    let mut coop = 2;
    let mut width = block;
    while width < padded {
        println!("  coop {coop}: merge spans of {width} -> {}", width * 2);
        width *= 2;
        coop *= 2;
    }
    let ranks = segmented_argsort(&data, &offsets, block);
    println!("argsort(desc) per segment: {:?}", ranks);
    assert_eq!(ranks, naive_segment_argsort(&data, &offsets));
    println!("matches reference per-segment argsort ✓\n");
}

fn perf_series() {
    println!("=== segmented sort vs naive per-segment sort (simulated ms) ===");
    println!(
        "{:<26} {:>10} {:>12} {:>12} {:>8}",
        "Device", "boxes", "naive(ms)", "segsort(ms)", "speedup"
    );
    for platform in Platform::all() {
        let m = CostModel::new(platform.gpu.clone());
        for &n in &[1000usize, 6132, 24564] {
            // SSD-like: 21 classes, one dominating segment
            let mut lens = vec![n / 40; 20];
            lens.push(n - lens.iter().sum::<usize>());
            let naive = m.kernel_time_ms(&naive_sort_profile(&lens));
            let opt: f64 = segmented_sort_profiles(n, 256, &platform.gpu)
                .iter()
                .map(|p| m.kernel_time_ms(p))
                .sum();
            println!(
                "{:<26} {:>10} {:>12.3} {:>12.3} {:>8.2}",
                platform.gpu.name,
                n,
                naive,
                opt,
                naive / opt
            );
        }
    }
}

fn main() {
    walkthrough();
    perf_series();
}
