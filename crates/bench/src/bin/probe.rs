//! Calibration probe (development tool): prints cost-model components for
//! the vision-op naive/optimized paths and tuned depthwise schedules.
use unigpu_device::{CostModel, DeviceSpec};
use unigpu_ops::vision::sort::{naive_sort_profile, segmented_sort_profiles};
use unigpu_ops::vision::nms::{naive_nms_profile, nms_profiles};

fn main() {
    let spec = DeviceSpec::mali_t860();
    let m = CostModel::new(spec.clone());
    let mut lens = vec![6132usize / 40; 20];
    lens.push(6132 - lens.iter().sum::<usize>());
    let p = naive_sort_profile(&lens);
    println!("naive sort profile: {p:#?}");
    println!("occupancy: {}", m.occupancy(p.work_items, p.workgroup_size));
    println!("time: {} ms", m.kernel_time_ms(&p));
    println!("total flops {}  total bytes {}", p.total_flops(), p.total_bytes());
    let opt: f64 = segmented_sort_profiles(6132, 256, &spec).iter().map(|q| m.kernel_time_ms(q)).sum();
    println!("optimized sort: {opt} ms");
    let nn = naive_nms_profile(6132, 21);
    println!("naive nms: {} ms", m.kernel_time_ms(&nn));
    let on: f64 = nms_profiles(6132, &spec).iter().map(|q| m.kernel_time_ms(q)).sum();
    println!("optimized nms: {on} ms");
}
