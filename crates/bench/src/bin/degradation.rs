//! Graceful-degradation sweep: shed rate, deadline misses, and degraded
//! batches versus offered load, under a fixed device-fault plan.
//!
//! The serving stack is sized for a capacity; this sweep pushes offered
//! load from half of capacity to 8× past it with a bounded queue and a
//! per-request deadline, while the device misbehaves (periodic kernel
//! failures plus thermal throttling). The interesting shape: completed
//! requests saturate near capacity while the overflow moves into the
//! shed/deadline-expired buckets — load shedding degrades *output*, never
//! correctness, and the accounting column must always balance (0 lost).
//!
//! ```text
//! cargo run --release -p unigpu-bench --bin degradation [MODEL] [PLATFORM]
//! ```

use std::time::Duration;
use unigpu_device::{DeviceFaultPlan, Platform, Vendor};
use unigpu_engine::{uniform_requests, Engine, ServeConfig};
use unigpu_models::full_zoo;
use unigpu_telemetry::{AlertRule, MetricsRegistry, SpanRecorder};

const REQUESTS: usize = 96;
const WORKERS: usize = 2;
const QUEUE_CAP: usize = 24;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let model = args.first().map(String::as_str).unwrap_or("MobileNet1.0");
    let platform = args
        .get(1)
        .map(|s| Platform::by_name(s).expect("unknown platform (use deeplens|aisage|nano)"))
        .unwrap_or_else(Platform::deeplens);
    let entry = full_zoo()
        .into_iter()
        .find(|e| e.name == model)
        .expect("unknown model; see `unigpu models`");
    let g = (entry.build)(platform.gpu.vendor == Vendor::Arm);

    let engine = Engine::builder().platform(platform.clone()).build();
    let compiled = engine.compile(&g);
    let single = compiled.estimate_batch_ms(1);
    // capacity interval: one request per worker-slot of single-sample time
    let capacity_interval = single / WORKERS as f64;
    let faults = DeviceFaultPlan::parse("kernel_fail_nth=7,throttle_after_ms=200:1.5");
    let deadline_ms = 12.0 * single;

    println!(
        "=== degradation sweep — {model} on {} ({REQUESTS} requests, {WORKERS} workers, \
         queue cap {QUEUE_CAP}, deadline {deadline_ms:.0} ms, faults kernel_fail_nth=7 \
         + throttle 1.5x after 200 ms) ===",
        platform.name
    );
    println!(
        "{:>6} {:>9} {:>6} {:>8} {:>8} {:>9} {:>8} {:>14} {:>8}",
        "load",
        "completed",
        "shed",
        "expired",
        "retries",
        "degraded",
        "trips",
        "thruput(req/s)",
        "lost"
    );
    let mut rows = Vec::new();
    for load_factor in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let spans = SpanRecorder::new();
        let metrics = MetricsRegistry::new();
        let cfg = ServeConfig::builder()
            .concurrency(WORKERS)
            .max_batch(8)
            .batch_window(Duration::from_millis(2))
            .queue_cap(QUEUE_CAP)
            .deadline_ms(deadline_ms)
            .faults(faults)
            .alert_rules(
                AlertRule::parse_rules("burn:engine.slo.burn_rate>1,trip:engine.breaker_trips>0")
                    .expect("valid alert rules"),
            )
            .build()
            .expect("valid degradation config");
        let interval = capacity_interval / load_factor;
        let mut server = compiled.server_with(&cfg, &spans, &metrics);
        for r in uniform_requests(&compiled, REQUESTS, interval) {
            let _ = server.submit(r);
        }
        let report = server.shutdown();
        assert_eq!(report.lost(), 0, "every request must be accounted for");
        println!(
            "{:>5.1}x {:>9} {:>6} {:>8} {:>8} {:>9} {:>8} {:>14.1} {:>8}",
            load_factor,
            report.results.len(),
            report.shed.len(),
            report.expired.len(),
            report.retries,
            report.degraded_batches,
            report.breaker_trips,
            report.throughput_rps(),
            report.lost()
        );
        let offered = report.offered.max(1) as f64;
        let lat = metrics.histogram_summary("engine.latency_ms");
        rows.push(serde_json::json!({
            "load_factor": load_factor,
            "completed": report.results.len(),
            "shed": report.shed.len(),
            "expired": report.expired.len(),
            "failed": report.failed.len(),
            "shed_rate": report.shed.len() as f64 / offered,
            "expired_rate": report.expired.len() as f64 / offered,
            "degraded_rate": report.degraded_batches as f64 / report.batches.max(1) as f64,
            "retries": report.retries,
            "degraded_batches": report.degraded_batches,
            "breaker_trips": report.breaker_trips,
            "throughput_rps": report.throughput_rps(),
            "latency_ms": lat.map(|l| serde_json::json!({
                "p50": l.p50, "p95": l.p95, "p99": l.p99, "mean": l.mean,
            })),
            "slo_burn_rate": report.slo.burn_rate,
            "slo_error_rate": report.slo.error_rate,
            "device_idle_fraction": report.device_idle_fraction,
            "alerts_fired": report.alerts_fired,
            "fired_alerts": report.fired_alerts,
            "max_abs_drift": report.drift.max_abs_rel_err,
            "drift_miscalibrated": report.drift.miscalibrated,
        }));
    }
    let path = unigpu_bench::write_bench_json(
        "degradation",
        &serde_json::json!({
            "bench": "degradation",
            "model": model,
            "platform": platform.name,
            "requests": REQUESTS,
            "workers": WORKERS,
            "queue_cap": QUEUE_CAP,
            "deadline_ms": deadline_ms,
            "faults": "kernel_fail_nth=7,throttle_after_ms=200:1.5",
            "rows": rows,
        }),
    );
    println!("wrote {}", path.display());
}
