//! Graceful-degradation sweep: shed rate, deadline misses, and degraded
//! batches versus offered load, under a fixed device-fault plan.
//!
//! The serving stack is sized for a capacity; this sweep pushes offered
//! load from half of capacity to 8× past it with a bounded queue and a
//! per-request deadline, while the device misbehaves (periodic kernel
//! failures plus thermal throttling). The interesting shape: completed
//! requests saturate near capacity while the overflow moves into the
//! shed/deadline-expired buckets — load shedding degrades *output*, never
//! correctness, and the accounting column must always balance (0 lost).
//!
//! ```text
//! cargo run --release -p unigpu-bench --bin degradation [MODEL] [PLATFORM]
//! ```

use std::time::Duration;
use unigpu_device::{DeviceFaultPlan, Platform, Vendor};
use unigpu_engine::{uniform_requests, Engine, ServeConfig};
use unigpu_fleet::{build_pool, FleetReport, ReplicaLink, ReplicaSpec, RoutePolicy, Router, RouterConfig};
use unigpu_models::full_zoo;
use unigpu_telemetry::{AlertRule, MetricsRegistry, SpanRecorder};

const REQUESTS: usize = 96;
const WORKERS: usize = 2;
const QUEUE_CAP: usize = 24;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let model = args.first().map(String::as_str).unwrap_or("MobileNet1.0");
    let platform = args
        .get(1)
        .map(|s| Platform::by_name(s).expect("unknown platform (use deeplens|aisage|nano)"))
        .unwrap_or_else(Platform::deeplens);
    let entry = full_zoo()
        .into_iter()
        .find(|e| e.name == model)
        .expect("unknown model; see `unigpu models`");
    let g = (entry.build)(platform.gpu.vendor == Vendor::Arm);

    let engine = Engine::builder().platform(platform.clone()).build();
    let compiled = engine.compile(&g);
    let single = compiled.estimate_batch_ms(1);
    // capacity interval: one request per worker-slot of single-sample time
    let capacity_interval = single / WORKERS as f64;
    let faults = DeviceFaultPlan::parse("kernel_fail_nth=7,throttle_after_ms=200:1.5");
    let deadline_ms = 12.0 * single;

    println!(
        "=== degradation sweep — {model} on {} ({REQUESTS} requests, {WORKERS} workers, \
         queue cap {QUEUE_CAP}, deadline {deadline_ms:.0} ms, faults kernel_fail_nth=7 \
         + throttle 1.5x after 200 ms) ===",
        platform.name
    );
    println!(
        "{:>6} {:>9} {:>6} {:>8} {:>8} {:>9} {:>8} {:>14} {:>8}",
        "load",
        "completed",
        "shed",
        "expired",
        "retries",
        "degraded",
        "trips",
        "thruput(req/s)",
        "lost"
    );
    let mut rows = Vec::new();
    for load_factor in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let spans = SpanRecorder::new();
        let metrics = MetricsRegistry::new();
        let cfg = ServeConfig::builder()
            .concurrency(WORKERS)
            .max_batch(8)
            .batch_window(Duration::from_millis(2))
            .queue_cap(QUEUE_CAP)
            .deadline_ms(deadline_ms)
            .faults(faults)
            .alert_rules(
                AlertRule::parse_rules("burn:engine.slo.burn_rate>1,trip:engine.breaker_trips>0")
                    .expect("valid alert rules"),
            )
            .build()
            .expect("valid degradation config");
        let interval = capacity_interval / load_factor;
        let mut server = compiled.server_with(&cfg, &spans, &metrics);
        for r in uniform_requests(&compiled, REQUESTS, interval) {
            let _ = server.submit(r);
        }
        let report = server.shutdown();
        assert_eq!(report.lost(), 0, "every request must be accounted for");
        println!(
            "{:>5.1}x {:>9} {:>6} {:>8} {:>8} {:>9} {:>8} {:>14.1} {:>8}",
            load_factor,
            report.results.len(),
            report.shed.len(),
            report.expired.len(),
            report.retries,
            report.degraded_batches,
            report.breaker_trips,
            report.throughput_rps(),
            report.lost()
        );
        let offered = report.offered.max(1) as f64;
        let lat = metrics.histogram_summary("engine.latency_ms");
        rows.push(serde_json::json!({
            "load_factor": load_factor,
            "completed": report.results.len(),
            "shed": report.shed.len(),
            "expired": report.expired.len(),
            "failed": report.failed.len(),
            "shed_rate": report.shed.len() as f64 / offered,
            "expired_rate": report.expired.len() as f64 / offered,
            "degraded_rate": report.degraded_batches as f64 / report.batches.max(1) as f64,
            "retries": report.retries,
            "degraded_batches": report.degraded_batches,
            "breaker_trips": report.breaker_trips,
            "throughput_rps": report.throughput_rps(),
            "latency_ms": lat.map(|l| serde_json::json!({
                "p50": l.p50, "p95": l.p95, "p99": l.p99, "mean": l.mean,
            })),
            "slo_burn_rate": report.slo.burn_rate,
            "slo_error_rate": report.slo.error_rate,
            "device_idle_fraction": report.device_idle_fraction,
            "alerts_fired": report.alerts_fired,
            "fired_alerts": report.fired_alerts,
            "max_abs_drift": report.drift.max_abs_rel_err,
            "drift_miscalibrated": report.drift.miscalibrated,
        }));
    }
    let fleet = fleet_sweep(&g);
    let path = unigpu_bench::write_bench_json(
        "degradation",
        &serde_json::json!({
            "bench": "degradation",
            "model": model,
            "platform": platform.name,
            "requests": REQUESTS,
            "workers": WORKERS,
            "queue_cap": QUEUE_CAP,
            "deadline_ms": deadline_ms,
            "faults": "kernel_fail_nth=7,throttle_after_ms=200:1.5",
            "rows": rows,
            "fleet": fleet,
        }),
    );
    println!("wrote {}", path.display());
}

/// Fleet-level degradation: shed rate and p99 versus replicas killed
/// mid-traffic, on a 3-device heterogeneous pool behind the device-aware
/// router, plus the pow2-vs-round-robin p99 comparison the router design
/// bets on. Same invariant as the single-server sweep: kills degrade
/// output, never correctness (0 lost).
fn fleet_sweep(g: &unigpu_graph::Graph) -> serde_json::Value {
    const FLEET_REQUESTS: usize = 96;
    let serve = ServeConfig::builder()
        .concurrency(1)
        .max_batch(4)
        .queue_cap(16)
        .build()
        .expect("valid fleet serve config");

    let run = |kills: usize, policy: RoutePolicy, tag: &str| -> FleetReport {
        let platforms = [
            ("intel", Platform::deeplens()),
            ("mali", Platform::aisage()),
            ("nano", Platform::jetson_nano()),
        ];
        let specs: Vec<ReplicaSpec> = platforms
            .iter()
            .enumerate()
            .map(|(i, (name, p))| {
                let spec = ReplicaSpec::new(*name, p.clone(), serve.clone());
                // kill the last `kills` replicas mid-traffic, staggered
                if i >= platforms.len() - kills {
                    spec.die_on_submit(8 + 4 * i)
                } else {
                    spec
                }
            })
            .collect();
        let root = std::env::temp_dir().join(format!(
            "unigpu-bench-fleet-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let pool = build_pool(g, &specs, &root);
        let min_pred = pool
            .iter()
            .map(|r| r.predicted_ms())
            .fold(f64::INFINITY, f64::min);
        let interval = min_pred * 0.4; // overload-ish: queues stay non-empty
        let mut router = Router::new(
            RouterConfig { policy, ..RouterConfig::default() },
            pool.into_iter()
                .map(|r| Box::new(r) as Box<dyn ReplicaLink>)
                .collect(),
        );
        for id in 0..FLEET_REQUESTS {
            router.route(id, id as f64 * interval);
        }
        let report = router.finish();
        let _ = std::fs::remove_dir_all(&root);
        assert_eq!(report.lost(), 0, "fleet must account for every request");
        report
    };

    println!(
        "=== fleet degradation — 3 heterogeneous replicas, {FLEET_REQUESTS} requests ==="
    );
    println!(
        "{:>6} {:>9} {:>6} {:>8} {:>9} {:>8} {:>8}",
        "killed", "completed", "shed", "rerouted", "p99(ms)", "deaths", "lost"
    );
    let mut kill_rows = Vec::new();
    for kills in 0..=2usize {
        let r = run(kills, RoutePolicy::PowerOfTwo, &format!("k{kills}"));
        println!(
            "{:>6} {:>9} {:>6} {:>8} {:>9.2} {:>8} {:>8}",
            kills,
            r.completed.len(),
            r.shed.len(),
            r.rerouted,
            r.p99_latency_ms(),
            r.replica_deaths,
            r.lost()
        );
        let offered = r.offered.max(1) as f64;
        kill_rows.push(serde_json::json!({
            "replicas_killed": kills,
            "deaths_observed": r.replica_deaths,
            "completed": r.completed.len(),
            "shed": r.shed.len(),
            "expired": r.expired.len(),
            "failed": r.failed.len(),
            "shed_rate": r.shed.len() as f64 / offered,
            "rerouted": r.rerouted,
            "p99_ms": r.p99_latency_ms(),
            "lost": r.lost(),
        }));
    }
    let pow2 = run(0, RoutePolicy::PowerOfTwo, "pow2");
    let rr = run(0, RoutePolicy::RoundRobin, "rr");
    println!(
        "fleet policy p99: pow2 {:.2} ms vs round-robin {:.2} ms",
        pow2.p99_latency_ms(),
        rr.p99_latency_ms()
    );
    serde_json::json!({
        "replicas": 3,
        "requests": FLEET_REQUESTS,
        "rows": kill_rows,
        "policy_p99_ms": {
            "pow2": pow2.p99_latency_ms(),
            "round_robin": rr.p99_latency_ms(),
        },
    })
}
